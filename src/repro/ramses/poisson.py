"""FFT Poisson solver on the periodic unit box.

Solves ``laplacian(phi) = source`` for a zero-mean source on an n^3 grid
with periodic boundaries, and differentiates the potential spectrally to
obtain the acceleration field.  Wavenumbers are physical: the box has unit
length, so k_i = 2*pi*m_i.

Two discretizations of the Laplacian are offered:

* ``kernel="spectral"`` — exact continuous Green's function -1/k^2;
* ``kernel="discrete"`` — the 7-point finite-difference Laplacian's
  eigenvalues, -(2/h)^2 * sum_i sin^2(k_i h / 2), which matches what an
  AMR relaxation solver (RAMSES uses multigrid) would produce on the same
  grid and damps the force near the Nyquist frequency.

Everything is rfftn-based and allocation-conscious (views, in-place ops).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["poisson_solve", "gradient_spectral", "laplacian_eigenvalues",
           "acceleration_from_source", "cic_window"]


def cic_window(n: int) -> np.ndarray:
    """Fourier transform of the CIC assignment window on the rfftn grid.

    ``W(k) = prod_i sinc^2(k_i h / (2 pi))`` (numpy's sinc includes the pi).
    Deconvolving the potential by one power of W compensates the deposit
    smoothing (Hockney & Eastwood §5-6); a second power would also undo the
    interpolation smoothing but amplifies lattice alias noise into a grid
    instability for 1:1 particle/grid setups, so the solver applies W once —
    measured linear growth then tracks D(a) to ~2%.
    """
    w1 = np.sinc(np.fft.fftfreq(n)) ** 2
    wz = np.sinc(np.fft.rfftfreq(n)) ** 2
    return w1[:, None, None] * w1[None, :, None] * wz[None, None, :]


def laplacian_eigenvalues(n: int, kernel: str = "spectral") -> np.ndarray:
    """Eigenvalues of the chosen Laplacian on the rfftn grid (shape n,n,n//2+1).

    The k=0 entry is set to -inf placeholder 0 handling: callers divide and
    then zero the mean mode explicitly.
    """
    if n < 2:
        raise ValueError("grid must have at least 2 cells per side")
    kx = 2.0 * np.pi * np.fft.fftfreq(n, d=1.0 / n)      # 2*pi*m
    kz = 2.0 * np.pi * np.fft.rfftfreq(n, d=1.0 / n)
    if kernel == "spectral":
        k2 = (kx[:, None, None] ** 2 + kx[None, :, None] ** 2
              + kz[None, None, :] ** 2)
        return -k2
    if kernel == "discrete":
        h = 1.0 / n
        s = lambda k: (2.0 / h * np.sin(k * h / 2.0)) ** 2
        return -(s(kx)[:, None, None] + s(kx)[None, :, None] + s(kz)[None, None, :])
    raise ValueError(f"unknown kernel {kernel!r}")


def poisson_solve(source: np.ndarray, kernel: str = "spectral") -> np.ndarray:
    """Solve laplacian(phi) = source with periodic BC; phi has zero mean.

    The source's mean is removed (a periodic Poisson equation only admits a
    solution for zero-mean sources; physically, the uniform background does
    not gravitate in comoving coordinates).
    """
    source = np.asarray(source, dtype=np.float64)
    if source.ndim != 3 or len(set(source.shape)) != 1:
        raise ValueError("source must be a cubic 3-d array")
    n = source.shape[0]
    s_hat = np.fft.rfftn(source)
    eig = laplacian_eigenvalues(n, kernel)
    with np.errstate(divide="ignore", invalid="ignore"):
        phi_hat = s_hat / eig
    phi_hat[0, 0, 0] = 0.0  # zero-mean gauge
    return np.fft.irfftn(phi_hat, s=source.shape, axes=(0, 1, 2))


def gradient_spectral(field: np.ndarray) -> np.ndarray:
    """Spectral gradient of a periodic scalar field -> (n, n, n, 3)."""
    field = np.asarray(field, dtype=np.float64)
    n = field.shape[0]
    f_hat = np.fft.rfftn(field)
    kx = 2.0 * np.pi * np.fft.fftfreq(n, d=1.0 / n)
    kz = 2.0 * np.pi * np.fft.rfftfreq(n, d=1.0 / n)
    out = np.empty(field.shape + (3,), dtype=np.float64)
    # Zero the pure-Nyquist derivative modes (ik at Nyquist is ambiguous in
    # sign; dropping it keeps the gradient real and symmetric).
    kx_d = kx.copy()
    if n % 2 == 0:
        kx_d[n // 2] = 0.0
    out[..., 0] = np.fft.irfftn(1j * kx_d[:, None, None] * f_hat, s=field.shape, axes=(0, 1, 2))
    out[..., 1] = np.fft.irfftn(1j * kx_d[None, :, None] * f_hat, s=field.shape, axes=(0, 1, 2))
    out[..., 2] = np.fft.irfftn(1j * kz[None, None, :] * f_hat, s=field.shape, axes=(0, 1, 2))
    return out


def acceleration_from_source(source: np.ndarray, kernel: str = "spectral",
                             deconvolve_cic: bool = False
                             ) -> Tuple[np.ndarray, np.ndarray]:
    """Convenience: solve Poisson and return (phi, acc = -grad(phi)).

    ``deconvolve_cic=True`` divides the potential by the CIC window once,
    compensating the deposit smoothing; use it when the source came from
    :func:`~repro.ramses.mesh.cic_deposit` (see :func:`cic_window`).
    """
    source = np.asarray(source, dtype=np.float64)
    if source.ndim != 3 or len(set(source.shape)) != 1:
        raise ValueError("source must be a cubic 3-d array")
    n = source.shape[0]
    s_hat = np.fft.rfftn(source)
    eig = laplacian_eigenvalues(n, kernel)
    with np.errstate(divide="ignore", invalid="ignore"):
        phi_hat = s_hat / eig
    phi_hat[0, 0, 0] = 0.0
    if deconvolve_cic:
        phi_hat /= cic_window(n)
    phi = np.fft.irfftn(phi_hat, s=source.shape, axes=(0, 1, 2))
    acc = gradient_spectral(phi)
    np.negative(acc, out=acc)
    return phi, acc
