"""Background cosmology: Friedmann equation, growth factor, time conversion.

Everything is expressed with ``H0 = 1`` (see :mod:`repro.ramses.units`).
The linear growth factor uses the standard quadrature (Heath 1977)

    D(a)  proportional to  H(a) * integral_0^a da' / (a' H(a'))^3

normalized so that D(1) = 1; for an Einstein-de Sitter universe this
reduces to D(a) = a, which property tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy import integrate

__all__ = ["Cosmology", "EDS", "LCDM_WMAP"]


@dataclass(frozen=True)
class Cosmology:
    """A flat-or-curved FLRW background.

    ``omega_m`` + ``omega_l`` need not sum to 1; curvature takes the rest.
    ``sigma8`` and ``n_s`` parameterize the initial power spectrum used by
    the GRAFIC substitute.
    """

    omega_m: float = 0.3
    omega_l: float = 0.7
    h: float = 0.7
    sigma8: float = 0.9
    n_s: float = 1.0
    omega_b: float = 0.045

    def __post_init__(self):
        if self.omega_m <= 0:
            raise ValueError("Omega_m must be positive")
        if self.h <= 0:
            raise ValueError("h must be positive")

    @property
    def omega_k(self) -> float:
        return 1.0 - self.omega_m - self.omega_l

    # -- expansion -------------------------------------------------------------------

    def hubble(self, a) -> np.ndarray:
        """H(a) in units of H0."""
        a = np.asarray(a, dtype=float)
        if np.any(a <= 0):
            raise ValueError("expansion factor must be positive")
        return np.sqrt(self.omega_m / a ** 3 + self.omega_k / a ** 2 + self.omega_l)

    def omega_m_a(self, a) -> np.ndarray:
        """Matter density parameter at expansion factor a."""
        a = np.asarray(a, dtype=float)
        return self.omega_m / (a ** 3 * self.hubble(a) ** 2)

    def critical_density_a(self, a) -> np.ndarray:
        """rho_crit(a) / rho_crit(0) = H(a)^2."""
        return self.hubble(a) ** 2

    # -- times -------------------------------------------------------------------------

    def age(self, a: float) -> float:
        """Cosmic time t(a) in 1/H0 units: integral_0^a da' / (a' H(a'))."""
        if a <= 0:
            raise ValueError("expansion factor must be positive")
        val, _err = integrate.quad(lambda x: 1.0 / (x * float(self.hubble(x))),
                                   0.0, a, limit=200)
        return val

    def lookback(self, a: float) -> float:
        return self.age(1.0) - self.age(a)

    def a_of_t(self, t: float, a_bracket=(1e-6, 64.0)) -> float:
        """Invert t(a) by bisection (monotone)."""
        from scipy.optimize import brentq
        lo, hi = a_bracket
        t_lo, t_hi = self.age(lo), self.age(hi)
        if not t_lo <= t <= t_hi:
            raise ValueError(f"t={t} outside [{t_lo}, {t_hi}]")
        return float(brentq(lambda a: self.age(a) - t, lo, hi, xtol=1e-12))

    # -- linear growth ---------------------------------------------------------------------

    def growth_factor(self, a) -> np.ndarray:
        """Linear growth factor D(a), normalized to D(1) = 1."""
        scalar = np.isscalar(a)
        a_arr = np.atleast_1d(np.asarray(a, dtype=float))
        if np.any(a_arr <= 0):
            raise ValueError("expansion factor must be positive")

        def unnorm(ai: float) -> float:
            integral, _ = integrate.quad(
                lambda x: 1.0 / (x * float(self.hubble(x))) ** 3,
                0.0, ai, limit=200)
            return float(self.hubble(ai)) * integral

        d1 = unnorm(1.0)
        out = np.array([unnorm(ai) / d1 for ai in a_arr])
        return float(out[0]) if scalar else out

    def growth_rate(self, a, eps: float = 1e-5) -> np.ndarray:
        """dD/da by centred finite difference (robust for any background)."""
        scalar = np.isscalar(a)
        a_arr = np.atleast_1d(np.asarray(a, dtype=float))
        lo = np.maximum(a_arr * (1 - eps), 1e-8)
        hi = a_arr * (1 + eps)
        out = (np.asarray(self.growth_factor(hi)) - np.asarray(self.growth_factor(lo))) / (hi - lo)
        return float(out[0]) if scalar else out

    def f_growth(self, a) -> np.ndarray:
        """Logarithmic growth rate f = dlnD/dlna (approx Omega_m(a)^0.55)."""
        scalar = np.isscalar(a)
        a_arr = np.atleast_1d(np.asarray(a, dtype=float))
        out = (a_arr * np.atleast_1d(self.growth_rate(a_arr))
               / np.atleast_1d(self.growth_factor(a_arr)))
        return float(out[0]) if scalar else out

    # -- expansion-factor schedules -------------------------------------------------------------

    def aexp_schedule(self, a_start: float, a_end: float, n_steps: int,
                      spacing: str = "log") -> np.ndarray:
        """The sequence of expansion factors a PM run steps through."""
        if not 0 < a_start < a_end:
            raise ValueError("need 0 < a_start < a_end")
        if n_steps < 1:
            raise ValueError("need at least one step")
        if spacing == "log":
            return np.exp(np.linspace(np.log(a_start), np.log(a_end), n_steps + 1))
        if spacing == "linear":
            return np.linspace(a_start, a_end, n_steps + 1)
        raise ValueError(f"unknown spacing {spacing!r}")


#: Einstein-de Sitter: the analytic testbed (D(a) = a, H = a^-1.5).
EDS = Cosmology(omega_m=1.0, omega_l=0.0, h=0.7, sigma8=0.9, n_s=1.0, omega_b=0.0)

#: WMAP-1-like parameters, matching the paper's GRAFIC setup ("consistent
#: with current observational data obtained by the WMAP satellite", 2006).
LCDM_WMAP = Cosmology(omega_m=0.27, omega_l=0.73, h=0.71, sigma8=0.84,
                      n_s=0.99, omega_b=0.044)
