"""Parallel-execution model: RAMSES over MPI ranks on a cluster slice.

§4.1: each SeD "will be in charge of a set of machines (typically 32
machines to run a 256^3 particules simulation)"; §5.1 uses 16 machines per
SeD for the 128^3 runs.  This module models what those machines do: the
per-step wall time of a PM/AMR N-body step distributed over ``p`` ranks via
the Peano-Hilbert decomposition,

    t_step(p) = t_compute(p) + t_ghost(p) + t_fft(p)

* ``t_compute`` — the heaviest rank's particle+cell work (the Hilbert cut
  balances counts, not geometry, so clustered snapshots carry imbalance);
* ``t_ghost`` — boundary exchange: per-neighbour latency plus boundary
  volume over the bisection bandwidth (from the real
  :func:`~repro.ramses.domain.exchange_matrix` of the distribution);
* ``t_fft`` — the global PM solve: FFT flops split over ranks plus the
  all-to-all transpose shipping each rank's slab.

The model returns speedup/efficiency curves used by the E10 ablation bench
("why 16 machines per SeD?") and by integration tests that check the
expected scaling regimes (linear at small p, communication-bound at large
p).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .domain import decompose, exchange_matrix

__all__ = ["MpiCostModel", "StepBreakdown", "ParallelStepModel",
           "scaling_curve"]


@dataclass(frozen=True)
class MpiCostModel:
    """Cluster-interconnect and node parameters (GigE-era defaults).

    Work terms are normalized operations (GHz-seconds x speed), matching
    :class:`~repro.services.perfmodel.RamsesPerfModel`.
    """

    #: per-message MPI latency (s) — GigE + TCP stack, mid-2000s.
    latency: float = 60e-6
    #: point-to-point bandwidth (bytes/s).
    bandwidth: float = 1.0e8
    #: bytes exchanged per boundary particle: positions, masses and the
    #: ghost AMR cells riding along (AMR codes ship whole boundary octs).
    bytes_per_boundary_particle: float = 2048.0
    #: normalized work per particle per step (drift+kick+CIC); together
    #: with ``work_per_cell`` this is consistent with the campaign cost
    #: model's kappa (~4.5e-5 GHz-seconds per particle-step).
    work_per_particle: float = 3.5e-5
    #: normalized work per grid cell per step (FFT + difference stencils).
    work_per_cell: float = 1.0e-5
    #: bytes per grid cell crossing the all-to-all FFT transpose.
    bytes_per_cell_transpose: float = 16.0


@dataclass
class StepBreakdown:
    """Per-step wall-time decomposition for one rank count."""

    ncpu: int
    compute: float
    ghost: float
    fft: float
    imbalance: float       # max work / mean work

    @property
    def total(self) -> float:
        return self.compute + self.ghost + self.fft

    @property
    def comm_fraction(self) -> float:
        return (self.ghost + self.fft * 0.5) / max(self.total, 1e-300)


class ParallelStepModel:
    """Wall-time model of one N-body step for a given particle snapshot."""

    def __init__(self, x: np.ndarray, n_grid: int,
                 cost: Optional[MpiCostModel] = None,
                 node_speed_ghz: float = 2.0,
                 decomposition_level: int = 5):
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != 3:
            raise ValueError("x must be (N, 3)")
        if n_grid < 2:
            raise ValueError("n_grid must be >= 2")
        if node_speed_ghz <= 0:
            raise ValueError("node speed must be positive")
        self.x = x
        self.n_grid = int(n_grid)
        self.cost = cost or MpiCostModel()
        self.node_speed = float(node_speed_ghz)
        self.level = decomposition_level

    def breakdown(self, ncpu: int) -> StepBreakdown:
        if ncpu < 1:
            raise ValueError("ncpu must be >= 1")
        cost = self.cost
        n_particles = len(self.x)
        n_cells = self.n_grid ** 3

        if ncpu == 1:
            compute_work = (n_particles * cost.work_per_particle
                            + n_cells * cost.work_per_cell)
            return StepBreakdown(ncpu=1,
                                 compute=compute_work / self.node_speed,
                                 ghost=0.0, fft=0.0, imbalance=1.0)

        decomp = decompose(self.x, ncpu, level=self.level)
        ranks = decomp.rank_of_positions(self.x)
        counts = np.bincount(ranks, minlength=ncpu).astype(float)
        imbalance = counts.max() / max(counts.mean(), 1e-300)

        # compute: the slowest rank paces the step
        max_work = (counts.max() * cost.work_per_particle
                    + (n_cells / ncpu) * cost.work_per_cell)
        compute = max_work / self.node_speed

        # ghost exchange: per-rank neighbour messages + boundary volume
        xmat = exchange_matrix(ranks, self.x, ncpu, level=self.level)
        neighbours = (xmat > 0).sum(axis=1)
        boundary = xmat.sum(axis=1)   # boundary particles per rank (x2-ish)
        ghost = float((neighbours * cost.latency).max()
                      + (boundary * cost.bytes_per_boundary_particle
                         / cost.bandwidth).max())

        # FFT all-to-all: every rank ships its slab once each way
        transpose_bytes = n_cells * cost.bytes_per_cell_transpose / ncpu
        fft = (2.0 * (ncpu - 1) * cost.latency
               + 2.0 * transpose_bytes / cost.bandwidth)

        return StepBreakdown(ncpu=ncpu, compute=compute, ghost=ghost,
                             fft=fft, imbalance=float(imbalance))

    def speedup(self, ncpu: int) -> float:
        return self.breakdown(1).total / self.breakdown(ncpu).total

    def efficiency(self, ncpu: int) -> float:
        return self.speedup(ncpu) / ncpu

    def sweet_spot(self, candidates: Sequence[int],
                   min_efficiency: float = 0.5) -> int:
        """Largest rank count still above the efficiency floor."""
        best = 1
        for p in sorted(candidates):
            if self.efficiency(p) >= min_efficiency:
                best = p
        return best


def scaling_curve(x: np.ndarray, n_grid: int, rank_counts: Sequence[int],
                  cost: Optional[MpiCostModel] = None,
                  node_speed_ghz: float = 2.0) -> List[StepBreakdown]:
    """Step breakdowns over a list of rank counts (the E10 sweep)."""
    model = ParallelStepModel(x, n_grid, cost=cost,
                              node_speed_ghz=node_speed_ghz)
    return [model.breakdown(p) for p in rank_counts]
