"""The PM gravity kernel: particles -> density -> potential -> accelerations.

Chains CIC deposit, the FFT Poisson solve with the cosmological source term

    laplacian(phi) = (3/2) * Omega_m * delta / a

and CIC interpolation of ``-grad(phi)`` back to the particles.  This is the
"N body solver" of the paper's §3 at fixed resolution; the zoom machinery
(:mod:`repro.ramses.zoom`) raises the grid resolution where the multi-level
initial conditions placed small-mass particles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .cosmology import Cosmology
from .mesh import cic_interpolate, cic_weights, density_contrast
from .poisson import acceleration_from_source

__all__ = ["GravitySolver", "PMForceResult"]


@dataclass
class PMForceResult:
    """Outputs of one force evaluation (kept for diagnostics/outputs)."""

    delta: np.ndarray          # density contrast grid
    phi: np.ndarray            # potential grid
    acc: np.ndarray            # (N, 3) particle accelerations
    a: float                   # expansion factor of the evaluation

    @property
    def max_density_contrast(self) -> float:
        return float(self.delta.max())

    @property
    def rms_density_contrast(self) -> float:
        return float(np.sqrt(np.mean(self.delta ** 2)))


class GravitySolver:
    """Particle-mesh gravity at a fixed grid resolution."""

    def __init__(self, cosmology: Cosmology, n_grid: int,
                 kernel: str = "spectral", deconvolve_cic: bool = True):
        if n_grid < 2:
            raise ValueError("n_grid must be >= 2")
        self.cosmology = cosmology
        self.n_grid = int(n_grid)
        self.kernel = kernel
        self.deconvolve_cic = bool(deconvolve_cic)

    def density(self, x: np.ndarray, mass: np.ndarray) -> np.ndarray:
        """Density contrast of the particle distribution on the PM grid."""
        return density_contrast(x, mass, self.n_grid)

    def accelerations(self, x: np.ndarray, mass: np.ndarray, a: float,
                      return_fields: bool = False) -> PMForceResult:
        """Evaluate accelerations d p / d t = -grad(phi) at the particles.

        (The integrator divides by a*H(a) to convert to d p / d a.)
        """
        if a <= 0:
            raise ValueError("expansion factor must be positive")
        # The deposit and the gather happen at the same positions on the
        # same grid: price the CIC weights once for both directions.
        weights = cic_weights(x, self.n_grid)
        delta = density_contrast(x, mass, self.n_grid, weights=weights)
        source = (1.5 * self.cosmology.omega_m / a) * delta
        phi, acc_grid = acceleration_from_source(
            source, kernel=self.kernel, deconvolve_cic=self.deconvolve_cic)
        acc = cic_interpolate(acc_grid, x, weights=weights)
        if return_fields:
            return PMForceResult(delta=delta, phi=phi, acc=acc, a=a)
        return PMForceResult(delta=delta, phi=np.empty(0), acc=acc, a=a)

    def potential_energy_proxy(self, x: np.ndarray, mass: np.ndarray,
                               a: float) -> float:
        """0.5 * sum(m_i * phi(x_i)): a diagnostic scalar for tests."""
        weights = cic_weights(x, self.n_grid)
        delta = density_contrast(x, mass, self.n_grid, weights=weights)
        source = (1.5 * self.cosmology.omega_m / a) * delta
        phi, _ = acceleration_from_source(
            source, kernel=self.kernel, deconvolve_cic=self.deconvolve_cic)
        phi_p = cic_interpolate(phi, x, weights=weights)
        return float(0.5 * np.sum(mass * phi_p))
