"""Fortran namelist reader/writer (RAMSES' configuration format).

The paper's ramsesZoom2 profile ships "a file containing parameters for
RAMSES" — a Fortran namelist (``&RUN_PARAMS ... /`` groups).  This module
parses and emits that format faithfully enough for round-tripping real
RAMSES-style inputs: logical ``.true./.false.``, integers, reals (including
``1.0d0`` doubles), strings in single quotes, comma-separated arrays, and
``!`` comments.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from typing import Any, Dict, List, TextIO, Union

__all__ = ["Namelist", "parse_namelist", "format_namelist"]

Scalar = Union[bool, int, float, str]
Value = Union[Scalar, List[Scalar]]


class Namelist(OrderedDict):
    """Mapping group-name -> OrderedDict of parameter -> value."""

    def group(self, name: str) -> "OrderedDict[str, Value]":
        key = name.upper()
        if key not in self:
            self[key] = OrderedDict()
        return self[key]

    def get_param(self, group: str, param: str, default: Any = None) -> Any:
        return self.get(group.upper(), {}).get(param.lower(), default)

    def set_param(self, group: str, param: str, value: Value) -> None:
        self.group(group)[param.lower()] = value


_TOKEN_RE = re.compile(
    r"""
    '(?:[^']|'')*'          # quoted string (with '' escapes)
    | \.true\. | \.false\.
    | [^\s,]+               # bare token
    """,
    re.VERBOSE | re.IGNORECASE)


def _parse_scalar(tok: str) -> Scalar:
    low = tok.lower()
    if low in (".true.", "t"):
        return True
    if low in (".false.", "f"):
        return False
    if tok.startswith("'") and tok.endswith("'"):
        return tok[1:-1].replace("''", "'")
    try:
        return int(tok)
    except ValueError:
        pass
    try:
        # Fortran double-precision exponents: 1.0d3 -> 1.0e3
        return float(re.sub(r"[dD]", "e", tok))
    except ValueError:
        return tok


def _parse_value(raw: str) -> Value:
    tokens = _TOKEN_RE.findall(raw.strip())
    if not tokens:
        return ""
    values = [_parse_scalar(t) for t in tokens]
    return values[0] if len(values) == 1 else values


def parse_namelist(text: str) -> Namelist:
    """Parse namelist text into a :class:`Namelist`."""
    nml = Namelist()
    group: "OrderedDict[str, Value] | None" = None
    for raw_line in text.splitlines():
        line = raw_line.split("!", 1)[0].strip()
        if not line:
            continue
        if line.startswith("&"):
            group = nml.group(line[1:].strip())
            continue
        if line in ("/", "&end", "&END"):
            group = None
            continue
        if group is None:
            raise ValueError(f"parameter outside any group: {raw_line!r}")
        if "=" not in line:
            raise ValueError(f"malformed namelist line: {raw_line!r}")
        name, _, raw_value = line.partition("=")
        group[name.strip().lower()] = _parse_value(raw_value)
    return nml


def _format_scalar(v: Scalar) -> str:
    if isinstance(v, bool):
        return ".true." if v else ".false."
    if isinstance(v, float):
        return repr(v)
    if isinstance(v, int):
        return str(v)
    return "'" + str(v).replace("'", "''") + "'"


def format_namelist(nml: Dict[str, Dict[str, Value]]) -> str:
    """Emit namelist text (round-trips through :func:`parse_namelist`)."""
    lines: List[str] = []
    for group_name, params in nml.items():
        lines.append(f"&{group_name.upper()}")
        for pname, value in params.items():
            if isinstance(value, list):
                rendered = ",".join(_format_scalar(v) for v in value)
            else:
                rendered = _format_scalar(value)
            lines.append(f"{pname.lower()}={rendered}")
        lines.append("/")
        lines.append("")
    return "\n".join(lines)
