"""Code units and physical constants for the cosmological solver.

The solver works in the dimensionless unit system standard for PM codes
(and equivalent to RAMSES' supercomoving variables up to constant factors):

* comoving positions ``x`` in box units, i.e. ``x in [0, 1)``;
* the expansion factor ``a`` is the time variable;
* ``H0 = 1``: times are in units of the Hubble time ``1/H0``;
* momenta ``p = a^2 dx/dt`` (so the equations of motion are
  ``dx/da = p / (a^3 H(a))``, ``dp/da = -grad(phi) / (a H(a))``);
* the peculiar potential obeys ``laplacian(phi) = (3/2) Omega_m delta / a``.

Conversions to astronomer units (Mpc/h, km/s, Msun/h) are provided for the
snapshot writer and the GALICS post-processing chain.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Units", "H0_KM_S_MPC", "RHO_CRIT_MSUN_H2_MPC3", "MPC_KM"]

#: Hubble constant in km/s/Mpc for h = 1.
H0_KM_S_MPC = 100.0
#: Critical density today, in (Msun/h) / (Mpc/h)^3.
RHO_CRIT_MSUN_H2_MPC3 = 2.77536627e11
#: Kilometres per megaparsec.
MPC_KM = 3.0856775814913673e19


@dataclass(frozen=True)
class Units:
    """Conversion factors for a box of ``boxlen_mpc_h`` comoving Mpc/h.

    All ``to_*`` helpers take code-unit values and return astronomer units.
    """

    boxlen_mpc_h: float
    omega_m: float = 0.3

    def __post_init__(self):
        if self.boxlen_mpc_h <= 0:
            raise ValueError("box length must be positive")
        if not 0 < self.omega_m <= 1.5:
            raise ValueError("unphysical Omega_m")

    # -- lengths ------------------------------------------------------------------

    def to_mpc_h(self, x_code: float) -> float:
        """Comoving box-units -> comoving Mpc/h."""
        return x_code * self.boxlen_mpc_h

    def from_mpc_h(self, x_mpc_h: float) -> float:
        return x_mpc_h / self.boxlen_mpc_h

    # -- masses -------------------------------------------------------------------

    @property
    def total_mass_msun_h(self) -> float:
        """Total dark-matter mass in the box, Msun/h (mean density assumed)."""
        return self.omega_m * RHO_CRIT_MSUN_H2_MPC3 * self.boxlen_mpc_h ** 3

    def particle_mass_msun_h(self, n_particles: int) -> float:
        if n_particles < 1:
            raise ValueError("need at least one particle")
        return self.total_mass_msun_h / n_particles

    # -- velocities ------------------------------------------------------------------

    def momentum_to_km_s(self, p_code: float, a: float) -> float:
        """Code momentum p = a^2 dx/dt -> peculiar velocity in km/s.

        v_pec = a dx/dt = p / a, in units of (box length) * H0.
        """
        if a <= 0:
            raise ValueError("expansion factor must be positive")
        return (p_code / a) * self.boxlen_mpc_h * H0_KM_S_MPC

    # -- times -----------------------------------------------------------------------

    def hubble_time_gyr(self, h: float = 0.7) -> float:
        """1/H0 in Gyr for a given little-h."""
        seconds = MPC_KM / (H0_KM_S_MPC * h)
        return seconds / (3.1557e16)
