"""The simulation driver: configuration, run loop, snapshots.

This is the Python stand-in for running ``ramses3d`` on a namelist: it
takes :class:`~repro.grafic.ic.InitialConditions`, steps them with the KDK
integrator, writes snapshots "given a list of time steps (or expansion
factor)" (§3), and keeps the AMR/domain-decomposition bookkeeping that the
cost model and the analysis figures consume.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a grafic <-> ramses import cycle at runtime
    from ..grafic.ic import InitialConditions

from .amr import AmrHierarchy, build_amr
from .cosmology import Cosmology
from .domain import DomainDecomposition, decompose
from .gravity import GravitySolver
from .integrator import Leapfrog, StepStats
from .io import SnapshotHeader, write_snapshot
from .namelist import Namelist
from .particles import ParticleSet

__all__ = ["RunConfig", "Snapshot", "SimulationResult", "RamsesRun",
           "config_from_namelist"]


@dataclass(frozen=True)
class RunConfig:
    """Run parameters (the RUN_PARAMS / AMR_PARAMS namelist content)."""

    a_end: float = 1.0
    n_steps: int = 32
    #: Expansion factors at which snapshots are taken (aout in RAMSES).
    output_aexp: tuple = (1.0,)
    #: PM grid cells per side; 0 means match the finest particle lattice.
    n_grid: int = 0
    #: Poisson kernel: "spectral" or "discrete".
    kernel: str = "spectral"
    #: MPI ranks for the domain-decomposition bookkeeping.
    ncpu: int = 1
    #: AMR refinement threshold (particles per cell), RAMSES' m_refine.
    m_refine: float = 8.0
    #: Extra AMR levels allowed above the particle lattice level.
    n_extra_levels: int = 2
    spacing: str = "log"

    def __post_init__(self):
        if self.n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        if self.ncpu < 1:
            raise ValueError("ncpu must be >= 1")
        if not self.output_aexp:
            raise ValueError("need at least one output expansion factor")
        if any(a <= 0 for a in self.output_aexp):
            raise ValueError("output expansion factors must be positive")


@dataclass
class Snapshot:
    """State of the universe at one output time."""

    output_number: int
    aexp: float
    particles: ParticleSet
    amr: AmrHierarchy
    rms_delta: float
    max_delta: float

    def projected_density(self, n: int = 64, axis: int = 2) -> np.ndarray:
        """Column-density map (the Figure 2 visual), normalized to mean 1."""
        from .mesh import cic_deposit
        grid = cic_deposit(self.particles.x, self.particles.mass, n)
        proj = grid.sum(axis=axis)
        return proj / proj.mean()


@dataclass
class SimulationResult:
    """Everything a run produced."""

    config: RunConfig
    ic: "InitialConditions"
    snapshots: List[Snapshot] = field(default_factory=list)
    step_stats: List[StepStats] = field(default_factory=list)
    #: load imbalance (max/mean work) per re-decomposition
    imbalance_history: List[float] = field(default_factory=list)
    total_work_units: float = 0.0

    def snapshot_at(self, aexp: float, tol: float = 1e-6) -> Snapshot:
        for snap in self.snapshots:
            if abs(snap.aexp - aexp) <= tol:
                return snap
        raise KeyError(f"no snapshot at aexp={aexp}")

    @property
    def final(self) -> Snapshot:
        if not self.snapshots:
            raise ValueError("run produced no snapshots")
        return self.snapshots[-1]


class RamsesRun:
    """One N-body run, from ICs to a list of snapshots."""

    def __init__(self, ic: InitialConditions, config: Optional[RunConfig] = None):
        self.ic = ic
        self.config = config or RunConfig()
        n_grid = self.config.n_grid
        if n_grid == 0:
            # 1:1 with the finest particle lattice: finer grids excite the
            # lattice alias instability, coarser ones waste resolution.
            n_grid = 2 ** ic.levelmax
        self.n_grid = int(n_grid)
        self.solver = GravitySolver(ic.cosmology, self.n_grid,
                                    kernel=self.config.kernel)
        self.integrator = Leapfrog(ic.cosmology, self.solver)

    # -- schedule -------------------------------------------------------------------

    def schedule(self) -> np.ndarray:
        """Expansion-factor schedule including every output time exactly."""
        cfg = self.config
        a0, a1 = self.ic.a_start, cfg.a_end
        if a1 <= a0:
            raise ValueError("a_end must exceed the IC expansion factor")
        base = self.ic.cosmology.aexp_schedule(a0, a1, cfg.n_steps,
                                               spacing=cfg.spacing)
        outputs = np.asarray([a for a in cfg.output_aexp if a0 < a <= a1])
        merged = np.unique(np.concatenate([base, outputs]))
        return merged

    # -- run -----------------------------------------------------------------------------

    def run(self, callback: Optional[Callable[[Snapshot], None]] = None,
            output_dir: Optional[str] = None) -> SimulationResult:
        cfg = self.config
        parts = self.ic.particles.copy()
        parts.wrap()
        result = SimulationResult(config=cfg, ic=self.ic)
        schedule = self.schedule()
        outputs = sorted(a for a in cfg.output_aexp
                         if self.ic.a_start < a <= cfg.a_end)
        out_idx = 0
        levelmin = self.ic.levelmin
        levelmax = self.ic.levelmax + cfg.n_extra_levels
        work_weights = parts.mass.min() / parts.mass  # fine particles cost more

        decomp = decompose(parts.x, cfg.ncpu, weights=work_weights)
        result.imbalance_history.append(
            decomp.load_imbalance(parts.x, weights=work_weights))

        def take_snapshot(aexp: float) -> None:
            nonlocal out_idx
            amr = build_amr(parts.x, parts.mass, levelmin, levelmax,
                            m_refine=cfg.m_refine)
            force = self.solver.accelerations(parts.x, parts.mass, aexp)
            snap = Snapshot(output_number=out_idx + 1, aexp=aexp,
                            particles=parts.copy(), amr=amr,
                            rms_delta=float(np.sqrt(np.mean(force.delta ** 2))),
                            max_delta=float(force.delta.max()))
            result.snapshots.append(snap)
            result.total_work_units += amr.work_units(n_particles=len(parts))
            if output_dir is not None:
                header = SnapshotHeader(
                    ncpu=cfg.ncpu, ndim=3, npart=len(parts), aexp=aexp,
                    omega_m=self.ic.cosmology.omega_m,
                    omega_l=self.ic.cosmology.omega_l,
                    h0=100.0 * self.ic.cosmology.h,
                    boxlen_mpc_h=self.ic.boxsize_mpc_h,
                    levelmin=levelmin, levelmax=levelmax,
                    output_number=snap.output_number)
                write_snapshot(os.path.join(output_dir,
                                            f"output_{snap.output_number:05d}"),
                               header, parts,
                               ranks=decomp.rank_of_positions(parts.x))
            if callback is not None:
                callback(snap)
            out_idx += 1

        for a, a_next in zip(schedule[:-1], schedule[1:]):
            stats = self.integrator.step(parts, float(a), float(a_next))
            result.step_stats.append(stats)
            # periodic re-decomposition (RAMSES load balances as it runs)
            if len(result.step_stats) % 8 == 0:
                decomp = decompose(parts.x, cfg.ncpu, weights=work_weights)
                result.imbalance_history.append(
                    decomp.load_imbalance(parts.x, weights=work_weights))
            while out_idx < len(outputs) and a_next >= outputs[out_idx] - 1e-12:
                take_snapshot(float(a_next))

        if not result.snapshots:
            take_snapshot(float(schedule[-1]))
        return result


def resume_run(directory: str, output_number: int,
               config: RunConfig) -> "RamsesRun":
    """Restart a run from an on-disk snapshot (RAMSES' restart files).

    Reads the snapshot written by a previous run's ``output_dir`` and
    builds a :class:`RamsesRun` whose initial state is the checkpoint: the
    background cosmology comes from the snapshot header, the expansion
    factor from its ``aexp``.  With a stepping schedule that subdivides the
    original one identically, the resumed run reproduces the original
    trajectory bit for bit (the KDK integrator is deterministic) — the
    restart test asserts exactly that.

    Note: the snapshot header does not carry sigma8/n_s (they only matter
    for IC generation, which a restart never redoes).
    """
    from ..grafic.ic import InitialConditions
    from .cosmology import Cosmology
    from .io import read_snapshot

    header, parts = read_snapshot(directory, output_number)
    cosmology = Cosmology(omega_m=header.omega_m, omega_l=header.omega_l,
                          h=header.h0 / 100.0)
    # The finest particle-lattice level follows from the mass hierarchy
    # (the header's levelmax includes AMR headroom beyond the lattice).
    n_finest = (parts.total_mass / parts.mass.min()) ** (1.0 / 3.0)
    lattice_level = max(int(round(np.log2(max(n_finest, 2.0)))),
                        header.levelmin)
    ic = InitialConditions(particles=parts, a_start=header.aexp,
                           boxsize_mpc_h=header.boxlen_mpc_h,
                           cosmology=cosmology, levelmin=header.levelmin,
                           levelmax=lattice_level)
    return RamsesRun(ic, config)


def config_from_namelist(nml: Namelist) -> RunConfig:
    """Build a RunConfig from a RAMSES-style namelist."""
    aout = nml.get_param("OUTPUT_PARAMS", "aout", 1.0)
    if not isinstance(aout, list):
        aout = [aout]
    return RunConfig(
        a_end=float(nml.get_param("RUN_PARAMS", "aexp_end", 1.0)),
        n_steps=int(nml.get_param("RUN_PARAMS", "nstepmax", 32)),
        output_aexp=tuple(float(a) for a in aout),
        n_grid=int(nml.get_param("AMR_PARAMS", "ngridmax", 0)),
        ncpu=int(nml.get_param("RUN_PARAMS", "ncpu", 1)),
        m_refine=float(nml.get_param("REFINE_PARAMS", "m_refine", 8.0)),
    )
