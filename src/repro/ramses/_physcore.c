/* Physics kernel hot core: CIC scatter/gather, leapfrog kick/drift, FoF.
 *
 * A REAL-mode campaign spends its wall-clock in four numpy hot paths:
 * the 8-pass `np.add.at` CIC deposit, the mirrored 8-pass gather, the
 * kick/drift array temporaries, and the cKDTree -> COO -> connected
 * components FoF chain.  This module keeps those loops in C:
 *
 * cic_deposit(i0, frac, mass, grid, n)
 *   Scatter particle masses onto the n^3 periodic grid.  The per-axis
 *   wrapped indices and weight pairs are computed once per particle into
 *   scratch arrays, then the 8 corner passes accumulate directly into
 *   the grid.  The accumulation is CORNER-MAJOR (all particles' corner
 *   (0,0,0) contributions, then corner (0,0,1), ...), matching the
 *   numpy mirror's pass order addend for addend, so the resulting grid
 *   is bit-identical to the pure-Python implementation.
 *
 * cic_gather(i0, frac, field, out, n, ncomp)
 *   Gather a scalar (ncomp == 1) or C-component grid field at the
 *   particles.  One pass over particles; the 8 corner contributions are
 *   added per output slot in the same corner order the mirror's
 *   `out += field[ix, iy, iz] * w` passes use — bit-identical again.
 *
 * kick(p, acc, coef, m) / drift(x, p, coef, m)
 *   The leapfrog updates without array temporaries.  `drift` fuses the
 *   displacement, the periodic wrap (numpy `mod(x, 1.0)` semantics:
 *   fmod, negative results shifted by the modulus, exact zeros
 *   normalised to +0.0) and the max-displacement reduction into one
 *   pass and returns the max.
 *
 * fof(x, ll, labels)
 *   Friends-of-friends grouping on the periodic unit box: particles are
 *   binned into a cell grid with cell size >= the linking length, pairs
 *   are tested against the 27-cell neighbourhood (min-image metric,
 *   d^2 <= ll^2 exactly like scipy's periodic cKDTree), and groups are
 *   merged with union-find.  Labels are canonicalised to first-
 *   occurrence order (the component containing the lowest particle
 *   index gets label 0, ...), which is also the order scipy's
 *   connected_components assigns — so the labelling matches the numpy
 *   mirror exactly, not just up to permutation.
 *
 * Built on first import by repro.ramses.physcore via repro.sim.cbuild;
 * that module falls back to the numpy implementations when no C
 * toolchain is available, and the kernel test suite runs against both.
 * All arrays cross the boundary through the buffer protocol (C
 * contiguous, 8-byte items), so the extension needs no numpy headers.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <math.h>
#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* Buffer helpers                                                     */
/* ------------------------------------------------------------------ */

static int
get_buf(PyObject *obj, Py_buffer *view, int writable, Py_ssize_t nbytes,
        const char *what)
{
    int flags = PyBUF_C_CONTIGUOUS | (writable ? PyBUF_WRITABLE : 0);
    if (PyObject_GetBuffer(obj, view, flags) < 0)
        return -1;
    if (view->len != nbytes) {
        PyErr_Format(PyExc_ValueError, "%s: expected %zd bytes, got %zd",
                     what, nbytes, view->len);
        PyBuffer_Release(view);
        return -1;
    }
    return 0;
}

/* Python-style non-negative modulus for wrapped cell indices. */
static inline int64_t
wrap_mod(int64_t v, int64_t n)
{
    int64_t r = v % n;
    return r < 0 ? r + n : r;
}

/* ------------------------------------------------------------------ */
/* CIC scatter / gather                                               */
/* ------------------------------------------------------------------ */

static PyObject *
py_cic_deposit(PyObject *self, PyObject *args)
{
    PyObject *i0_obj, *frac_obj, *mass_obj, *grid_obj;
    Py_ssize_t npart;
    long n;
    if (!PyArg_ParseTuple(args, "OOOOnl", &i0_obj, &frac_obj, &mass_obj,
                          &grid_obj, &npart, &n))
        return NULL;
    if (n < 1) {
        PyErr_SetString(PyExc_ValueError, "grid size must be >= 1");
        return NULL;
    }
    Py_buffer i0b, fracb, massb, gridb;
    if (get_buf(i0_obj, &i0b, 0, npart * 3 * 8, "i0") < 0)
        return NULL;
    if (get_buf(frac_obj, &fracb, 0, npart * 3 * 8, "frac") < 0)
        goto fail1;
    if (get_buf(mass_obj, &massb, 0, npart * 8, "mass") < 0)
        goto fail2;
    if (get_buf(grid_obj, &gridb, 1, (Py_ssize_t)n * n * n * 8, "grid") < 0)
        goto fail3;
    {
        const int64_t *i0 = (const int64_t *)i0b.buf;
        const double *frac = (const double *)fracb.buf;
        const double *mass = (const double *)massb.buf;
        double *grid = (double *)gridb.buf;
        Py_ssize_t N = npart;
        /* Per-particle scratch: wrapped index pair and weight pair per
         * axis, computed once (the mirror recomputes them per pass). */
        int64_t *idx = PyMem_Malloc((size_t)(N ? N : 1) * 6 * sizeof(int64_t));
        double *wgt = PyMem_Malloc((size_t)(N ? N : 1) * 6 * sizeof(double));
        if (idx == NULL || wgt == NULL) {
            PyMem_Free(idx);
            PyMem_Free(wgt);
            PyBuffer_Release(&gridb);
            PyErr_NoMemory();
            goto fail3;
        }
        int64_t *ix0 = idx, *ix1 = idx + N, *iy0 = idx + 2 * N,
                *iy1 = idx + 3 * N, *iz0 = idx + 4 * N, *iz1 = idx + 5 * N;
        double *wx0 = wgt, *wx1 = wgt + N, *wy0 = wgt + 2 * N,
               *wy1 = wgt + 3 * N, *wz0 = wgt + 4 * N, *wz1 = wgt + 5 * N;
        for (Py_ssize_t p = 0; p < N; p++) {
            int64_t ax = i0[3 * p], ay = i0[3 * p + 1], az = i0[3 * p + 2];
            ix0[p] = wrap_mod(ax, n);
            ix1[p] = wrap_mod(ax + 1, n);
            iy0[p] = wrap_mod(ay, n);
            iy1[p] = wrap_mod(ay + 1, n);
            iz0[p] = wrap_mod(az, n);
            iz1[p] = wrap_mod(az + 1, n);
            wx1[p] = frac[3 * p];
            wx0[p] = 1.0 - frac[3 * p];
            wy1[p] = frac[3 * p + 1];
            wy0[p] = 1.0 - frac[3 * p + 1];
            wz1[p] = frac[3 * p + 2];
            wz0[p] = 1.0 - frac[3 * p + 2];
        }
        /* Corner-major accumulation: same addend order per cell as the
         * numpy mirror's (dx, dy, dz) passes -> bit-identical grid. */
        for (int corner = 0; corner < 8; corner++) {
            const int64_t *ix = (corner & 4) ? ix1 : ix0;
            const int64_t *iy = (corner & 2) ? iy1 : iy0;
            const int64_t *iz = (corner & 1) ? iz1 : iz0;
            const double *wx = (corner & 4) ? wx1 : wx0;
            const double *wy = (corner & 2) ? wy1 : wy0;
            const double *wz = (corner & 1) ? wz1 : wz0;
            for (Py_ssize_t p = 0; p < N; p++) {
                grid[(ix[p] * n + iy[p]) * n + iz[p]] +=
                    mass[p] * wx[p] * wy[p] * wz[p];
            }
        }
        PyMem_Free(idx);
        PyMem_Free(wgt);
    }
    PyBuffer_Release(&gridb);
    PyBuffer_Release(&massb);
    PyBuffer_Release(&fracb);
    PyBuffer_Release(&i0b);
    Py_RETURN_NONE;
fail3:
    PyBuffer_Release(&massb);
fail2:
    PyBuffer_Release(&fracb);
fail1:
    PyBuffer_Release(&i0b);
    return NULL;
}

static PyObject *
py_cic_gather(PyObject *self, PyObject *args)
{
    PyObject *i0_obj, *frac_obj, *field_obj, *out_obj;
    Py_ssize_t npart, ncomp;
    long n;
    if (!PyArg_ParseTuple(args, "OOOOnln", &i0_obj, &frac_obj, &field_obj,
                          &out_obj, &npart, &n, &ncomp))
        return NULL;
    if (n < 1 || ncomp < 1) {
        PyErr_SetString(PyExc_ValueError, "bad grid size or component count");
        return NULL;
    }
    Py_buffer i0b, fracb, fieldb, outb;
    if (get_buf(i0_obj, &i0b, 0, npart * 3 * 8, "i0") < 0)
        return NULL;
    if (get_buf(frac_obj, &fracb, 0, npart * 3 * 8, "frac") < 0)
        goto fail1;
    if (get_buf(field_obj, &fieldb, 0,
                (Py_ssize_t)n * n * n * ncomp * 8, "field") < 0)
        goto fail2;
    if (get_buf(out_obj, &outb, 1, npart * ncomp * 8, "out") < 0)
        goto fail3;
    {
        const int64_t *i0 = (const int64_t *)i0b.buf;
        const double *frac = (const double *)fracb.buf;
        const double *field = (const double *)fieldb.buf;
        double *out = (double *)outb.buf;
        for (Py_ssize_t p = 0; p < npart; p++) {
            int64_t ix[2], iy[2], iz[2];
            double wx[2], wy[2], wz[2];
            ix[0] = wrap_mod(i0[3 * p], n);
            ix[1] = wrap_mod(i0[3 * p] + 1, n);
            iy[0] = wrap_mod(i0[3 * p + 1], n);
            iy[1] = wrap_mod(i0[3 * p + 1] + 1, n);
            iz[0] = wrap_mod(i0[3 * p + 2], n);
            iz[1] = wrap_mod(i0[3 * p + 2] + 1, n);
            wx[1] = frac[3 * p];
            wx[0] = 1.0 - wx[1];
            wy[1] = frac[3 * p + 1];
            wy[0] = 1.0 - wy[1];
            wz[1] = frac[3 * p + 2];
            wz[0] = 1.0 - wz[1];
            double *o = out + p * ncomp;
            /* Same (dx, dy, dz) corner order as the mirror's passes, so
             * each output slot accumulates in the mirror's order. */
            for (int dx = 0; dx < 2; dx++)
                for (int dy = 0; dy < 2; dy++)
                    for (int dz = 0; dz < 2; dz++) {
                        double w = wx[dx] * wy[dy] * wz[dz];
                        const double *f = field +
                            ((ix[dx] * n + iy[dy]) * n + iz[dz]) * ncomp;
                        for (Py_ssize_t c = 0; c < ncomp; c++)
                            o[c] += f[c] * w;
                    }
        }
    }
    PyBuffer_Release(&outb);
    PyBuffer_Release(&fieldb);
    PyBuffer_Release(&fracb);
    PyBuffer_Release(&i0b);
    Py_RETURN_NONE;
fail3:
    PyBuffer_Release(&fieldb);
fail2:
    PyBuffer_Release(&fracb);
fail1:
    PyBuffer_Release(&i0b);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Leapfrog kick / drift                                              */
/* ------------------------------------------------------------------ */

static PyObject *
py_kick(PyObject *self, PyObject *args)
{
    PyObject *p_obj, *acc_obj;
    double coef;
    Py_ssize_t m; /* total element count (N * 3) */
    if (!PyArg_ParseTuple(args, "OOdn", &p_obj, &acc_obj, &coef, &m))
        return NULL;
    Py_buffer pb, accb;
    if (get_buf(p_obj, &pb, 1, m * 8, "p") < 0)
        return NULL;
    if (get_buf(acc_obj, &accb, 0, m * 8, "acc") < 0) {
        PyBuffer_Release(&pb);
        return NULL;
    }
    double *p = (double *)pb.buf;
    const double *acc = (const double *)accb.buf;
    for (Py_ssize_t i = 0; i < m; i++)
        p[i] += acc[i] * coef;
    PyBuffer_Release(&accb);
    PyBuffer_Release(&pb);
    Py_RETURN_NONE;
}

static PyObject *
py_drift(PyObject *self, PyObject *args)
{
    PyObject *x_obj, *p_obj;
    double coef;
    Py_ssize_t m;
    if (!PyArg_ParseTuple(args, "OOdn", &x_obj, &p_obj, &coef, &m))
        return NULL;
    Py_buffer xb, pb;
    if (get_buf(x_obj, &xb, 1, m * 8, "x") < 0)
        return NULL;
    if (get_buf(p_obj, &pb, 0, m * 8, "p") < 0) {
        PyBuffer_Release(&xb);
        return NULL;
    }
    double *x = (double *)xb.buf;
    const double *p = (const double *)pb.buf;
    double maxd = 0.0;
    for (Py_ssize_t i = 0; i < m; i++) {
        double d = p[i] * coef;
        double v = x[i] + d;
        /* numpy mod(v, 1.0): fmod, shift negatives, normalise 0 -> +0.0 */
        double r = fmod(v, 1.0);
        if (r != 0.0) {
            if (r < 0.0)
                r += 1.0;
        } else {
            r = 0.0;
        }
        x[i] = r;
        d = fabs(d);
        if (d > maxd)
            maxd = d;
    }
    PyBuffer_Release(&pb);
    PyBuffer_Release(&xb);
    return PyFloat_FromDouble(maxd);
}

/* ------------------------------------------------------------------ */
/* Friends-of-friends                                                 */
/* ------------------------------------------------------------------ */

static inline int64_t
uf_find(int64_t *parent, int64_t i)
{
    while (parent[i] != i) {
        parent[i] = parent[parent[i]]; /* path halving */
        i = parent[i];
    }
    return i;
}

static PyObject *
py_fof(PyObject *self, PyObject *args)
{
    PyObject *x_obj, *labels_obj;
    double ll;
    Py_ssize_t N;
    if (!PyArg_ParseTuple(args, "OdOn", &x_obj, &ll, &labels_obj, &N))
        return NULL;
    if (!(ll > 0.0 && ll < 0.5)) {
        PyErr_SetString(PyExc_ValueError,
                        "linking length must be in (0, 0.5)");
        return NULL;
    }
    Py_buffer xb, labb;
    if (get_buf(x_obj, &xb, 0, N * 3 * 8, "x") < 0)
        return NULL;
    if (get_buf(labels_obj, &labb, 1, N * 8, "labels") < 0) {
        PyBuffer_Release(&xb);
        return NULL;
    }
    const double *x = (const double *)xb.buf;
    int64_t *labels = (int64_t *)labb.buf;
    int64_t ngroups = 0;

    if (N > 0) {
        /* Cell size >= ll so only the 27-neighbourhood can hold links;
         * cap the cell count so the grid stays O(N) memory. */
        int64_t ncell = (int64_t)floor(1.0 / ll);
        int64_t cap = (int64_t)cbrt(8.0 * (double)N + 1024.0) + 1;
        if (ncell > cap)
            ncell = cap;
        if (ncell < 1)
            ncell = 1;
        Py_ssize_t ncells3 = (Py_ssize_t)ncell * ncell * ncell;
        int64_t *head = PyMem_Malloc((size_t)ncells3 * sizeof(int64_t));
        int64_t *next = PyMem_Malloc((size_t)N * sizeof(int64_t));
        int64_t *parent = PyMem_Malloc((size_t)N * sizeof(int64_t));
        int64_t *rootlab = PyMem_Malloc((size_t)N * sizeof(int64_t));
        if (!head || !next || !parent || !rootlab) {
            PyMem_Free(head);
            PyMem_Free(next);
            PyMem_Free(parent);
            PyMem_Free(rootlab);
            PyBuffer_Release(&labb);
            PyBuffer_Release(&xb);
            return PyErr_NoMemory();
        }
        for (Py_ssize_t c = 0; c < ncells3; c++)
            head[c] = -1;
        for (Py_ssize_t i = 0; i < N; i++) {
            int64_t cx = (int64_t)(x[3 * i] * ncell);
            int64_t cy = (int64_t)(x[3 * i + 1] * ncell);
            int64_t cz = (int64_t)(x[3 * i + 2] * ncell);
            if (cx >= ncell) cx = ncell - 1;
            if (cy >= ncell) cy = ncell - 1;
            if (cz >= ncell) cz = ncell - 1;
            if (cx < 0) cx = 0;
            if (cy < 0) cy = 0;
            if (cz < 0) cz = 0;
            int64_t c = (cx * ncell + cy) * ncell + cz;
            next[i] = head[c];
            head[c] = i;
            parent[i] = i;
        }
        double ll2 = ll * ll;
        /* Walk occupied cells; the 27 wrapped neighbour cells are
         * computed once per cell and shared by all its particles.  For
         * ncell >= 3 the wrapped offsets are provably distinct, so the
         * dedup pass (ncell < 3 makes offsets alias) is skipped. */
        for (int64_t ci = 0; ci < (int64_t)ncells3; ci++) {
            if (head[ci] < 0)
                continue;
            int64_t cx = ci / (ncell * ncell);
            int64_t cy = (ci / ncell) % ncell;
            int64_t cz = ci % ncell;
            int64_t nb[27];
            int nnb = 0;
            for (int ox = -1; ox <= 1; ox++)
                for (int oy = -1; oy <= 1; oy++)
                    for (int oz = -1; oz <= 1; oz++) {
                        int64_t c = (wrap_mod(cx + ox, ncell) * ncell +
                                     wrap_mod(cy + oy, ncell)) * ncell +
                                    wrap_mod(cz + oz, ncell);
                        if (ncell < 3) {
                            int seen = 0;
                            for (int k = 0; k < nnb; k++)
                                if (nb[k] == c) {
                                    seen = 1;
                                    break;
                                }
                            if (seen)
                                continue;
                        }
                        nb[nnb++] = c;
                    }
            for (int64_t i = head[ci]; i >= 0; i = next[i]) {
                const double xi = x[3 * i], yi = x[3 * i + 1],
                             zi = x[3 * i + 2];
                for (int k = 0; k < nnb; k++) {
                    for (int64_t j = head[nb[k]]; j >= 0; j = next[j]) {
                        if (j >= i)
                            continue; /* each unordered pair tested once */
                        double dx = fabs(xi - x[3 * j]);
                        if (dx > 0.5)
                            dx = 1.0 - dx;
                        double dy = fabs(yi - x[3 * j + 1]);
                        if (dy > 0.5)
                            dy = 1.0 - dy;
                        double dz = fabs(zi - x[3 * j + 2]);
                        if (dz > 0.5)
                            dz = 1.0 - dz;
                        double d2 = dx * dx + dy * dy + dz * dz;
                        if (d2 <= ll2) {
                            int64_t ri = uf_find(parent, i);
                            int64_t rj = uf_find(parent, j);
                            if (ri != rj)
                                parent[ri > rj ? ri : rj] = ri > rj ? rj : ri;
                        }
                    }
                }
            }
        }
        /* First-occurrence canonical labels: the group containing the
         * lowest particle index gets label 0, and so on. */
        for (Py_ssize_t i = 0; i < N; i++)
            rootlab[i] = -1;
        for (Py_ssize_t i = 0; i < N; i++) {
            int64_t r = uf_find(parent, i);
            if (rootlab[r] < 0)
                rootlab[r] = ngroups++;
            labels[i] = rootlab[r];
        }
        PyMem_Free(head);
        PyMem_Free(next);
        PyMem_Free(parent);
        PyMem_Free(rootlab);
    }
    PyBuffer_Release(&labb);
    PyBuffer_Release(&xb);
    return PyLong_FromLongLong((long long)ngroups);
}

/* ------------------------------------------------------------------ */
/* Module                                                             */
/* ------------------------------------------------------------------ */

static PyMethodDef physcore_methods[] = {
    {"cic_deposit", py_cic_deposit, METH_VARARGS,
     "cic_deposit(i0, frac, mass, grid, npart, n): corner-major CIC scatter"},
    {"cic_gather", py_cic_gather, METH_VARARGS,
     "cic_gather(i0, frac, field, out, npart, n, ncomp): CIC gather"},
    {"kick", py_kick, METH_VARARGS,
     "kick(p, acc, coef, m): p += acc * coef in place"},
    {"drift", py_drift, METH_VARARGS,
     "drift(x, p, coef, m): x = mod(x + p * coef, 1); returns max |dx|"},
    {"fof", py_fof, METH_VARARGS,
     "fof(x, ll, labels, npart): periodic FoF labels; returns group count"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef physcore_module = {
    PyModuleDef_HEAD_INIT, "_physcore",
    "Compiled physics kernels (CIC, leapfrog, FoF)", -1, physcore_methods,
};

PyMODINIT_FUNC
PyInit__physcore(void)
{
    return PyModule_Create(&physcore_module);
}
