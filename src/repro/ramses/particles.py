"""Particle storage: a struct-of-arrays container for dark-matter particles.

Positions are comoving box units in [0, 1); momenta are the code momenta
``p = a^2 dx/dt`` (see :mod:`repro.ramses.units`).  Masses are in units of
the *total box mass* so that a uniform single-level run has
``mass = 1 / n_particles`` and the sum over all particles is exactly 1 —
a property the CIC/FFT chain and the tests rely on.  Zoom runs mix masses
(small in the refined Lagrangian region, large outside).

Arrays are kept contiguous float64/int64 (guide: views-not-copies; all
kernels are vectorized over these arrays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = ["ParticleSet"]


@dataclass
class ParticleSet:
    """Struct-of-arrays particle container.

    Attributes
    ----------
    x : (N, 3) float64 — comoving positions in [0, 1)
    p : (N, 3) float64 — code momenta
    mass : (N,) float64 — masses, total box mass == 1 for a full box
    ids : (N,) int64 — persistent identifiers (used by TreeMaker)
    level : (N,) int16 — generation level (0 = coarse, >=1 = zoom levels)
    """

    x: np.ndarray
    p: np.ndarray
    mass: np.ndarray
    ids: np.ndarray
    level: np.ndarray

    def __post_init__(self):
        self.x = np.ascontiguousarray(self.x, dtype=np.float64)
        self.p = np.ascontiguousarray(self.p, dtype=np.float64)
        self.mass = np.ascontiguousarray(self.mass, dtype=np.float64)
        self.ids = np.ascontiguousarray(self.ids, dtype=np.int64)
        self.level = np.ascontiguousarray(self.level, dtype=np.int16)
        n = len(self.x)
        if self.x.shape != (n, 3) or self.p.shape != (n, 3):
            raise ValueError("x and p must be (N, 3) arrays")
        if self.mass.shape != (n,) or self.ids.shape != (n,) or self.level.shape != (n,):
            raise ValueError("mass, ids and level must be (N,) arrays")
        if np.any(self.mass < 0):
            raise ValueError("negative particle mass")

    # -- constructors ---------------------------------------------------------------

    @classmethod
    def empty(cls) -> "ParticleSet":
        return cls(np.empty((0, 3)), np.empty((0, 3)), np.empty(0),
                   np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int16))

    @classmethod
    def uniform_lattice(cls, n_per_side: int) -> "ParticleSet":
        """Unperturbed Lagrangian lattice of n^3 equal-mass particles."""
        if n_per_side < 1:
            raise ValueError("n_per_side must be >= 1")
        n = n_per_side
        q = (np.arange(n) + 0.5) / n
        grid = np.stack(np.meshgrid(q, q, q, indexing="ij"), axis=-1).reshape(-1, 3)
        npart = n ** 3
        return cls(grid, np.zeros_like(grid), np.full(npart, 1.0 / npart),
                   np.arange(npart, dtype=np.int64),
                   np.zeros(npart, dtype=np.int16))

    # -- basics --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.x)

    @property
    def total_mass(self) -> float:
        return float(self.mass.sum())

    def copy(self) -> "ParticleSet":
        return ParticleSet(self.x.copy(), self.p.copy(), self.mass.copy(),
                           self.ids.copy(), self.level.copy())

    def select(self, index) -> "ParticleSet":
        """Subset by boolean mask or integer index array (copies)."""
        return ParticleSet(self.x[index], self.p[index], self.mass[index],
                           self.ids[index], self.level[index])

    @classmethod
    def concatenate(cls, parts: Sequence["ParticleSet"]) -> "ParticleSet":
        if not parts:
            return cls.empty()
        return cls(np.concatenate([p.x for p in parts]),
                   np.concatenate([p.p for p in parts]),
                   np.concatenate([p.mass for p in parts]),
                   np.concatenate([p.ids for p in parts]),
                   np.concatenate([p.level for p in parts]))

    def wrap(self) -> None:
        """Apply periodic boundary conditions in place."""
        np.mod(self.x, 1.0, out=self.x)

    def peculiar_velocity(self, a: float) -> np.ndarray:
        """v_pec = p / a in code (box*H0) units."""
        if a <= 0:
            raise ValueError("expansion factor must be positive")
        return self.p / a

    def validate(self) -> None:
        """Invariant checks used by integration tests."""
        if np.any(~np.isfinite(self.x)) or np.any(~np.isfinite(self.p)):
            raise ValueError("non-finite particle state")
        if np.any(self.x < 0) or np.any(self.x >= 1.0):
            raise ValueError("positions outside [0, 1) - call wrap()")
        if len(np.unique(self.ids)) != len(self.ids):
            raise ValueError("duplicate particle ids")

    def __repr__(self) -> str:
        lv = np.bincount(self.level.astype(np.int64)) if len(self) else []
        return (f"ParticleSet(N={len(self)}, total_mass={self.total_mass:.6g}, "
                f"levels={list(lv)})")
