"""Zoom re-simulation machinery (the HORIZON workflow of §3).

"Performing a zoom simulation requires two steps: the first step consists
of using RAMSES on a low resolution set of initial conditions to obtain at
the end of the simulation a catalog of dark matter halos [...].  A small
region is selected around each halo of the catalog [...].  This idea is to
resimulate this specific halo at a much better resolution.  For that, we
add in the Lagrangian volume of the chosen halo a lot more particles."

This module implements exactly that: trace a halo's particles back to
their Lagrangian lattice sites, bound the Lagrangian volume, build
multi-level ICs centred on it (same noise realization => same large-scale
modes), and run the refined simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a grafic <-> ramses import cycle at runtime
    from ..grafic.ic import InitialConditions, ZoomRegion

from .particles import ParticleSet
from .simulation import RamsesRun, RunConfig, SimulationResult

__all__ = ["lagrangian_positions_of_ids", "lagrangian_region",
           "ZoomSpec", "run_zoom"]


def lagrangian_positions_of_ids(ids: np.ndarray, n_coarse: int) -> np.ndarray:
    """Unperturbed lattice sites of coarse particles, from their ids.

    Single-level ICs lay particles on an ``n^3`` lattice in meshgrid(ij)
    order (see :meth:`ParticleSet.uniform_lattice`), so the id encodes the
    lattice coordinate exactly.
    """
    ids = np.asarray(ids, dtype=np.int64)
    n3 = n_coarse ** 3
    if np.any((ids < 0) | (ids >= n3)):
        raise ValueError("id outside the coarse lattice range")
    iz = ids % n_coarse
    iy = (ids // n_coarse) % n_coarse
    ix = ids // (n_coarse * n_coarse)
    q = np.stack([ix, iy, iz], axis=1).astype(np.float64)
    return (q + 0.5) / n_coarse


def lagrangian_region(ids: np.ndarray, n_coarse: int,
                      padding: float = 1.5) -> "ZoomRegion":
    """Bounding (periodic-aware) cube of a particle group's Lagrangian volume.

    ``padding`` inflates the half-size so the zoom region safely contains
    the halo's convergence volume (GRAFIC practice).
    """
    from ..grafic.ic import ZoomRegion

    q = lagrangian_positions_of_ids(ids, n_coarse)
    if len(q) == 0:
        raise ValueError("empty id set")
    # circular mean per axis for periodic-aware centring
    ang = 2.0 * np.pi * q
    center = np.mod(np.arctan2(np.sin(ang).mean(axis=0),
                               np.cos(ang).mean(axis=0)) / (2.0 * np.pi), 1.0)
    d = np.abs(q - center)
    d = np.minimum(d, 1.0 - d)
    half = float(d.max() * padding)
    half = min(max(half, 1.0 / n_coarse), 0.5)
    return ZoomRegion(tuple(center), half)


@dataclass(frozen=True)
class ZoomSpec:
    """Parameters of one zoom re-simulation (the ramsesZoom2 arguments).

    Mirrors the paper's profile: resolution, box size, centre coordinates
    and number of zoom levels ("number of nested boxes").
    """

    center: Tuple[float, float, float]
    n_levels: int
    region_half_size: float
    n_coarse: int
    boxsize_mpc_h: float

    def __post_init__(self):
        if self.n_levels < 1:
            raise ValueError("need at least one zoom level")

    @property
    def n_finest(self) -> int:
        return self.n_coarse * 2 ** self.n_levels


def run_zoom(parent_ic: "InitialConditions", spec: ZoomSpec,
             config: Optional[RunConfig] = None,
             seed: Optional[int] = None) -> SimulationResult:
    """Build multi-level ICs for ``spec`` and run the re-simulation.

    The noise seed defaults to the parent's, which is what makes the zoom
    consistent with the parent run (mode-matched realizations).
    """
    from ..grafic.ic import make_multi_level_ic

    ic = make_multi_level_ic(
        n_coarse=spec.n_coarse,
        boxsize_mpc_h=spec.boxsize_mpc_h,
        cosmology=parent_ic.cosmology,
        center=spec.center,
        n_levels=spec.n_levels,
        region_half_size=spec.region_half_size,
        a_start=parent_ic.a_start,
        seed=parent_ic.seed if seed is None else seed)
    run = RamsesRun(ic, config)
    return run.run()


def resolution_gain(parent: ParticleSet, zoomed: ParticleSet,
                    region: "ZoomRegion") -> float:
    """Mass-resolution improvement inside the zoom region (Figure 3 metric).

    Ratio of the parent's minimum particle mass in the region to the zoom
    run's minimum there; 8**n_levels for a clean multi-level IC.
    """
    in_parent = region.contains(parent.x)
    in_zoom = region.contains(zoomed.x)
    if not in_parent.any() or not in_zoom.any():
        raise ValueError("region contains no particles")
    return float(parent.mass[in_parent].min() / zoomed.mass[in_zoom].min())
