"""Domain decomposition along the Peano-Hilbert curve.

Implements RAMSES' partitioning strategy: sort cells (here: particles by
their cell) along the Hilbert curve and cut the curve into ``ncpu``
contiguous segments of equal *work*.  The decomposition is described by
``ncpu + 1`` key boundaries, exactly like RAMSES' ``bound_key`` array, so a
particle's owner is a ``searchsorted`` away.

The module also quantifies what the decomposition buys: surface-to-volume
style communication metrics used by the parallel harness's cost model and
compared against a naive slab decomposition in the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .hilbert import hilbert_decode, positions_to_keys

__all__ = ["DomainDecomposition", "decompose", "slab_ranks", "exchange_matrix"]


@dataclass
class DomainDecomposition:
    """A Hilbert-curve decomposition of the unit box over ``ncpu`` ranks."""

    ncpu: int
    level: int
    bound_key: np.ndarray      # (ncpu + 1,) int64, ascending

    def __post_init__(self):
        if self.ncpu < 1:
            raise ValueError("ncpu must be >= 1")
        if len(self.bound_key) != self.ncpu + 1:
            raise ValueError("bound_key must have ncpu + 1 entries")
        if np.any(np.diff(self.bound_key) < 0):
            raise ValueError("bound_key must be non-decreasing")

    def rank_of_keys(self, keys: np.ndarray) -> np.ndarray:
        """Owning rank of each Hilbert key."""
        ranks = np.searchsorted(self.bound_key, keys, side="right") - 1
        return np.clip(ranks, 0, self.ncpu - 1)

    def rank_of_positions(self, x: np.ndarray) -> np.ndarray:
        return self.rank_of_keys(positions_to_keys(x, self.level))

    def counts(self, x: np.ndarray) -> np.ndarray:
        """Particles per rank."""
        return np.bincount(self.rank_of_positions(x), minlength=self.ncpu)

    def load_imbalance(self, x: np.ndarray,
                       weights: Optional[np.ndarray] = None) -> float:
        """max(work) / mean(work) over ranks (1.0 == perfect balance)."""
        ranks = self.rank_of_positions(x)
        if weights is None:
            work = np.bincount(ranks, minlength=self.ncpu).astype(float)
        else:
            work = np.bincount(ranks, weights=weights, minlength=self.ncpu)
        mean = work.mean()
        if mean == 0:
            return 1.0
        return float(work.max() / mean)


def decompose(x: np.ndarray, ncpu: int, level: int = 7,
              weights: Optional[np.ndarray] = None) -> DomainDecomposition:
    """Equal-work cut of the Hilbert curve for the given particle set.

    ``weights`` defaults to one per particle (equal-count split); a zoom run
    passes per-particle work estimates so the refined region, which costs
    more per particle, is spread over more ranks.
    """
    x = np.asarray(x, dtype=np.float64)
    if ncpu < 1:
        raise ValueError("ncpu must be >= 1")
    keys = positions_to_keys(x, level)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    if weights is None:
        w = np.ones(len(x))
    else:
        w = np.asarray(weights, dtype=np.float64)[order]
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
    cum = np.cumsum(w)
    total = cum[-1] if len(cum) else 0.0
    n_keys = np.int64(1) << np.int64(3 * level)
    bound = np.empty(ncpu + 1, dtype=np.int64)
    bound[0] = 0
    bound[ncpu] = n_keys
    for r in range(1, ncpu):
        target = total * r / ncpu
        idx = int(np.searchsorted(cum, target))
        if idx >= len(sorted_keys):
            bound[r] = n_keys
        else:
            # cut *after* the current key block to keep cells atomic
            bound[r] = sorted_keys[idx] + 1
    bound[1:ncpu] = np.maximum.accumulate(bound[1:ncpu])
    return DomainDecomposition(ncpu=ncpu, level=level, bound_key=bound)


def slab_ranks(x: np.ndarray, ncpu: int) -> np.ndarray:
    """Naive slab decomposition along x-axis (the ablation baseline)."""
    x = np.asarray(x, dtype=np.float64)
    return np.minimum((x[:, 0] * ncpu).astype(np.int64), ncpu - 1)


def exchange_matrix(ranks: np.ndarray, x: np.ndarray, ncpu: int,
                    level: int = 5) -> np.ndarray:
    """Communication proxy: ghost-cell traffic between ranks.

    Counts, for every pair of face-adjacent Hilbert cells owned by different
    ranks, the smaller of the two cell populations — an estimate of the
    boundary data rank pairs must exchange each step.  Returns an
    (ncpu, ncpu) symmetric matrix; its total is the locality figure of
    merit (lower is better).
    """
    n_side = 1 << level
    cells = np.clip((np.asarray(x) * n_side).astype(np.int64), 0, n_side - 1)
    flat = (cells[:, 0] * n_side + cells[:, 1]) * n_side + cells[:, 2]
    # per-cell owner = majority rank of its particles (cells are atomic in
    # both decompositions studied, so any particle's rank is the owner)
    order = np.argsort(flat, kind="stable")
    flat_sorted = flat[order]
    first = np.searchsorted(flat_sorted, np.arange(n_side ** 3))
    counts3 = np.bincount(flat, minlength=n_side ** 3)
    owner = np.full(n_side ** 3, -1, dtype=np.int64)
    occupied = counts3 > 0
    owner[occupied] = ranks[order][first[occupied]]

    owner3 = owner.reshape(n_side, n_side, n_side)
    counts3 = counts3.reshape(n_side, n_side, n_side)
    mat = np.zeros((ncpu, ncpu), dtype=np.int64)
    for axis in range(3):
        nb_owner = np.roll(owner3, -1, axis=axis)
        nb_counts = np.roll(counts3, -1, axis=axis)
        mask = (owner3 >= 0) & (nb_owner >= 0) & (owner3 != nb_owner)
        a = owner3[mask]
        b = nb_owner[mask]
        wgt = np.minimum(counts3[mask], nb_counts[mask])
        np.add.at(mat, (a, b), wgt)
        np.add.at(mat, (b, a), wgt)
    return mat
