"""RAMSES substitute: a working cosmological N-body code.

Particle-mesh gravity (CIC + FFT Poisson), cosmological KDK leapfrog,
quasi-Lagrangian AMR bookkeeping, Peano-Hilbert domain decomposition,
Fortran-unformatted snapshot I/O, namelist configuration, and the zoom
re-simulation workflow of the paper's §3.
"""

from .amr import AmrHierarchy, AmrLevel, build_amr
from .cosmology import Cosmology, EDS, LCDM_WMAP
from .energy import LayzerIrvineMonitor, kinetic_energy, potential_energy
from .domain import DomainDecomposition, decompose, exchange_matrix, slab_ranks
from .gravity import GravitySolver, PMForceResult
from .hilbert import hilbert_decode, hilbert_encode, positions_to_keys
from .hydro import HydroSolver, HydroState, hllc_flux
from .integrator import Leapfrog, StepStats
from .io import (
    FortranRecordFile,
    SnapshotHeader,
    read_snapshot,
    snapshot_paths,
    write_snapshot,
)
from .mesh import cic_deposit, cic_interpolate, cic_weights, density_contrast
from .namelist import Namelist, format_namelist, parse_namelist
from .parallel import MpiCostModel, ParallelStepModel, StepBreakdown, scaling_curve
from .riemann import PrimitiveState, exact_riemann, sample_riemann, sod_states
from .particles import ParticleSet
from .physcore import PHYS_IMPL
from .poisson import (
    acceleration_from_source,
    gradient_spectral,
    laplacian_eigenvalues,
    poisson_solve,
)
from .simulation import (
    RamsesRun,
    resume_run,
    RunConfig,
    SimulationResult,
    Snapshot,
    config_from_namelist,
)
from .units import Units
from .zoom import (
    ZoomSpec,
    lagrangian_positions_of_ids,
    lagrangian_region,
    resolution_gain,
    run_zoom,
)

__all__ = [
    "AmrHierarchy",
    "AmrLevel",
    "Cosmology",
    "DomainDecomposition",
    "EDS",
    "FortranRecordFile",
    "GravitySolver",
    "HydroSolver",
    "HydroState",
    "LCDM_WMAP",
    "LayzerIrvineMonitor",
    "Leapfrog",
    "MpiCostModel",
    "Namelist",
    "ParallelStepModel",
    "PMForceResult",
    "ParticleSet",
    "PrimitiveState",
    "RamsesRun",
    "RunConfig",
    "SimulationResult",
    "Snapshot",
    "SnapshotHeader",
    "StepStats",
    "Units",
    "ZoomSpec",
    "acceleration_from_source",
    "build_amr",
    "PHYS_IMPL",
    "cic_deposit",
    "cic_interpolate",
    "cic_weights",
    "config_from_namelist",
    "decompose",
    "density_contrast",
    "exact_riemann",
    "exchange_matrix",
    "format_namelist",
    "gradient_spectral",
    "hllc_flux",
    "hilbert_decode",
    "kinetic_energy",
    "hilbert_encode",
    "lagrangian_positions_of_ids",
    "lagrangian_region",
    "laplacian_eigenvalues",
    "parse_namelist",
    "poisson_solve",
    "potential_energy",
    "positions_to_keys",
    "read_snapshot",
    "sample_riemann",
    "sod_states",
    "resolution_gain",
    "resume_run",
    "run_zoom",
    "slab_ranks",
    "scaling_curve",
    "snapshot_paths",
    "StepBreakdown",
    "write_snapshot",
]
