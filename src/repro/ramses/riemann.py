"""Exact Riemann solver for the 1-d Euler equations (ideal gas).

The reference solution for validating the finite-volume hydro solver
(RAMSES is "a finite volume Euler solver, based on the Adaptive Mesh
Refinement technics", §3).  Implementation follows Toro (2009, ch. 4):
Newton-Raphson on the pressure equation across the two nonlinear waves,
then sampling of the self-similar solution.

Used by the Sod shock-tube tests; also usable as a (slow, scalar) flux
oracle for the HLLC solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["PrimitiveState", "exact_riemann", "sample_riemann", "sod_states"]


@dataclass(frozen=True)
class PrimitiveState:
    """(rho, u, p) of an ideal gas."""

    rho: float
    u: float
    p: float

    def __post_init__(self):
        if self.rho <= 0 or self.p <= 0:
            raise ValueError("density and pressure must be positive")

    def sound_speed(self, gamma: float) -> float:
        return float(np.sqrt(gamma * self.p / self.rho))


def sod_states() -> Tuple[PrimitiveState, PrimitiveState]:
    """The canonical Sod (1978) shock-tube initial states."""
    return (PrimitiveState(1.0, 0.0, 1.0),
            PrimitiveState(0.125, 0.0, 0.1))


def _pressure_function(p: float, state: PrimitiveState, gamma: float
                       ) -> Tuple[float, float]:
    """f(p, state) and df/dp for the pressure equation (Toro eq. 4.6/4.7)."""
    a = state.sound_speed(gamma)
    if p > state.p:     # shock
        big_a = 2.0 / ((gamma + 1.0) * state.rho)
        big_b = (gamma - 1.0) / (gamma + 1.0) * state.p
        sqrt_term = np.sqrt(big_a / (p + big_b))
        f = (p - state.p) * sqrt_term
        df = sqrt_term * (1.0 - 0.5 * (p - state.p) / (p + big_b))
    else:               # rarefaction
        exponent = (gamma - 1.0) / (2.0 * gamma)
        f = (2.0 * a / (gamma - 1.0)) * ((p / state.p) ** exponent - 1.0)
        df = (1.0 / (state.rho * a)) * (p / state.p) ** (-(gamma + 1.0)
                                                         / (2.0 * gamma))
    return float(f), float(df)


def exact_riemann(left: PrimitiveState, right: PrimitiveState,
                  gamma: float = 1.4, tol: float = 1e-12,
                  max_iter: int = 100) -> Tuple[float, float]:
    """Star-region pressure and velocity (p*, u*)."""
    du = right.u - left.u
    # vacuum check (Toro eq. 4.40)
    a_l, a_r = left.sound_speed(gamma), right.sound_speed(gamma)
    if 2.0 * (a_l + a_r) / (gamma - 1.0) <= du:
        raise ValueError("initial states generate vacuum")

    p = max(0.5 * (left.p + right.p) - 0.125 * du
            * (left.rho + right.rho) * (a_l + a_r) * 0.5, 1e-12)
    for _ in range(max_iter):
        f_l, df_l = _pressure_function(p, left, gamma)
        f_r, df_r = _pressure_function(p, right, gamma)
        delta = (f_l + f_r + du) / (df_l + df_r)
        p_new = max(p - delta, 1e-14)
        if abs(p_new - p) < tol * max(p, 1e-14):
            p = p_new
            break
        p = p_new
    f_l, _ = _pressure_function(p, left, gamma)
    f_r, _ = _pressure_function(p, right, gamma)
    u = 0.5 * (left.u + right.u) + 0.5 * (f_r - f_l)
    return float(p), float(u)


def sample_riemann(left: PrimitiveState, right: PrimitiveState,
                   xi: np.ndarray, gamma: float = 1.4) -> np.ndarray:
    """Sample the solution at similarity coordinates xi = x/t.

    Returns an array of shape (len(xi), 3): (rho, u, p) at each point.
    """
    xi = np.atleast_1d(np.asarray(xi, dtype=float))
    p_star, u_star = exact_riemann(left, right, gamma)
    out = np.empty((len(xi), 3))
    gm1, gp1 = gamma - 1.0, gamma + 1.0

    for k, s in enumerate(xi):
        if s <= u_star:     # left of the contact
            st = left
            a = st.sound_speed(gamma)
            if p_star > st.p:   # left shock
                shock_speed = st.u - a * np.sqrt(
                    gp1 / (2 * gamma) * p_star / st.p + gm1 / (2 * gamma))
                if s < shock_speed:
                    rho, u, p = st.rho, st.u, st.p
                else:
                    rho = st.rho * ((p_star / st.p + gm1 / gp1)
                                    / (gm1 / gp1 * p_star / st.p + 1.0))
                    u, p = u_star, p_star
            else:               # left rarefaction
                head = st.u - a
                a_star = a * (p_star / st.p) ** (gm1 / (2 * gamma))
                tail = u_star - a_star
                if s < head:
                    rho, u, p = st.rho, st.u, st.p
                elif s > tail:
                    rho = st.rho * (p_star / st.p) ** (1.0 / gamma)
                    u, p = u_star, p_star
                else:           # inside the fan
                    u = (2.0 / gp1) * (a + gm1 / 2.0 * st.u + s)
                    c = (2.0 / gp1) * (a + gm1 / 2.0 * (st.u - s))
                    rho = st.rho * (c / a) ** (2.0 / gm1)
                    p = st.p * (c / a) ** (2.0 * gamma / gm1)
        else:               # right of the contact
            st = right
            a = st.sound_speed(gamma)
            if p_star > st.p:   # right shock
                shock_speed = st.u + a * np.sqrt(
                    gp1 / (2 * gamma) * p_star / st.p + gm1 / (2 * gamma))
                if s > shock_speed:
                    rho, u, p = st.rho, st.u, st.p
                else:
                    rho = st.rho * ((p_star / st.p + gm1 / gp1)
                                    / (gm1 / gp1 * p_star / st.p + 1.0))
                    u, p = u_star, p_star
            else:               # right rarefaction
                head = st.u + a
                a_star = a * (p_star / st.p) ** (gm1 / (2 * gamma))
                tail = u_star + a_star
                if s > head:
                    rho, u, p = st.rho, st.u, st.p
                elif s < tail:
                    rho = st.rho * (p_star / st.p) ** (1.0 / gamma)
                    u, p = u_star, p_star
                else:
                    u = (2.0 / gp1) * (-a + gm1 / 2.0 * st.u + s)
                    c = (2.0 / gp1) * (a - gm1 / 2.0 * (st.u - s))
                    rho = st.rho * (c / a) ** (2.0 / gm1)
                    p = st.p * (c / a) ** (2.0 * gamma / gm1)
        out[k] = (rho, u, p)
    return out
