"""Adaptive mesh refinement bookkeeping.

RAMSES is a tree-based AMR code: cells refine where the local particle
count exceeds a threshold (quasi-Lagrangian refinement).  Our force solver
is particle-mesh at the finest required level over the zoom region (see
DESIGN.md for the substitution argument), but the AMR *structure* matters
in its own right:

* it drives the cost model (CPU time scales with the total number of
  cells across levels plus particle operations);
* snapshot headers record ``levelmin``/``levelmax``/cell counts like RAMSES
  outputs do;
* the Figure-3 analogue measures how many extra levels the zoom region
  triggers.

:class:`AmrHierarchy` builds the level-by-level refinement map bottom-up
from a particle distribution, entirely with vectorized histogramming.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["AmrLevel", "AmrHierarchy", "build_amr"]


@dataclass
class AmrLevel:
    """One refinement level.

    ``refined`` flags the cells (at this level's resolution) that spawn
    children on the next level; leaf cells are occupied-but-not-refined.
    """

    level: int
    n_side: int
    occupied: np.ndarray      # bool (n,n,n): cell contains mass
    refined: np.ndarray       # bool (n,n,n): cell is split further

    @property
    def n_cells(self) -> int:
        """Active cells at this level (cells that exist in the tree)."""
        return int(self.occupied.sum())

    @property
    def n_leaves(self) -> int:
        return int((self.occupied & ~self.refined).sum())


@dataclass
class AmrHierarchy:
    """The refinement tree summary for one particle snapshot."""

    levelmin: int
    levelmax: int
    levels: List[AmrLevel] = field(default_factory=list)

    @property
    def total_cells(self) -> int:
        return sum(lv.n_cells for lv in self.levels)

    @property
    def total_leaves(self) -> int:
        return sum(lv.n_leaves for lv in self.levels)

    @property
    def deepest_refined_level(self) -> int:
        for lv in reversed(self.levels):
            if lv.n_cells > 0:
                return lv.level
        return self.levelmin

    def cells_per_level(self) -> Dict[int, int]:
        return {lv.level: lv.n_cells for lv in self.levels}

    def work_units(self, cell_cost: float = 1.0, particle_cost: float = 2.0,
                   n_particles: int = 0) -> float:
        """Normalized work proxy for the cost model: sweep cost over the
        tree plus per-particle cost (deeper levels step more often, so each
        level is weighted by 2**(level - levelmin), RAMSES' subcycling)."""
        work = 0.0
        for lv in self.levels:
            work += cell_cost * lv.n_cells * 2.0 ** (lv.level - self.levelmin)
        return work + particle_cost * n_particles


def build_amr(x: np.ndarray, mass: np.ndarray, levelmin: int, levelmax: int,
              m_refine: float = 8.0) -> AmrHierarchy:
    """Quasi-Lagrangian refinement map for a particle distribution.

    A cell at level L refines when it holds more than ``m_refine`` times
    the *coarse-particle* mass quantum — i.e. roughly more than ``m_refine``
    high-resolution particles, matching RAMSES' ``m_refine`` namelist
    parameter.  Refinement is strictly nested: a cell only refines if its
    parent did (enforced top-down).
    """
    if not 1 <= levelmin <= levelmax:
        raise ValueError("need 1 <= levelmin <= levelmax")
    x = np.asarray(x, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    if len(x) == 0:
        raise ValueError("empty particle set")
    total_mass = mass.sum()
    # Mass quantum: the smallest particle mass present (the zoom species).
    quantum = float(mass.min())
    if quantum <= 0:
        raise ValueError("particle masses must be positive")

    levels: List[AmrLevel] = []
    parent_refined: Optional[np.ndarray] = None
    for level in range(levelmin, levelmax + 1):
        n_side = 1 << level
        cells = np.clip((x * n_side).astype(np.int64), 0, n_side - 1)
        flat = (cells[:, 0] * n_side + cells[:, 1]) * n_side + cells[:, 2]
        mass_grid = np.bincount(flat, weights=mass,
                                minlength=n_side ** 3).reshape(n_side, n_side, n_side)
        occupied = mass_grid > 0
        if parent_refined is not None:
            # strict nesting: only cells whose parent refined are active
            parent_mask = np.repeat(np.repeat(np.repeat(
                parent_refined, 2, axis=0), 2, axis=1), 2, axis=2)
            occupied &= parent_mask
        if level < levelmax:
            refined = occupied & (mass_grid > m_refine * quantum)
        else:
            refined = np.zeros_like(occupied)
        levels.append(AmrLevel(level=level, n_side=n_side,
                               occupied=occupied, refined=refined))
        parent_refined = refined
        if not refined.any():
            # nothing deeper can exist; fill the remaining levels as empty
            for deeper in range(level + 1, levelmax + 1):
                nn = 1 << deeper
                empty = np.zeros((1, 1, 1), dtype=bool)
                levels.append(AmrLevel(level=deeper, n_side=nn,
                                       occupied=empty, refined=empty))
            break

    hierarchy = AmrHierarchy(levelmin=levelmin, levelmax=levelmax, levels=levels)
    # Sanity: level-min grid must account for all mass.
    if abs(float(mass.sum()) - total_mass) > 1e-9 * max(total_mass, 1.0):
        raise AssertionError("mass bookkeeping error in AMR build")
    return hierarchy
