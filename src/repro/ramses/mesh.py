"""Periodic mesh operations: CIC mass deposit and field interpolation.

Cloud-in-cell is the workhorse of the PM solver.  Both directions run on
the compiled kernels of ``_physcore.c`` when a C toolchain is available
(weights computed once per particle, one scatter/gather call instead of
8 numpy index passes) and on fully vectorized numpy mirrors otherwise —
a flattened ``np.bincount`` accumulation for the scatter (``np.add.at``
is notoriously slow) and fancy indexing for the gather.  The two
implementations are *bit-identical*: the C scatter accumulates corner-
major in exactly the order the bincount mirror (and the historical
``np.add.at`` passes) sum their addends, and the test suite asserts
``array_equal`` between them on seeded inputs.

Both directions accept a precomputed ``weights=(i0, frac)`` pair from
:func:`cic_weights` so a force evaluation that deposits and gathers at
the same positions prices the weights once.

Deposit conserves mass to machine precision (a hypothesis test asserts
it) and the deposit/interpolate pair is adjoint, which keeps the PM
force momentum-conserving to the accuracy of the differencing scheme.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .physcore import phys_c

__all__ = ["cic_weights", "cic_deposit", "cic_interpolate", "density_contrast"]


def cic_weights(x: np.ndarray, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Base cell indices and weights for CIC on an n^3 periodic grid.

    Returns ``(i0, frac)`` where ``i0`` is the lower cell index per axis
    and ``frac`` the fractional offset, both (N, 3).  The pair can be
    passed back to :func:`cic_deposit` / :func:`cic_interpolate` (for the
    same positions *and the same n*) to avoid recomputing it.
    """
    if n < 1:
        raise ValueError("grid size must be >= 1")
    x = np.asarray(x, dtype=np.float64)
    s = x * n - 0.5          # position in cell-centre coordinates
    i0 = np.floor(s).astype(np.int64)
    frac = s - i0
    return i0, frac


# Backwards-compatible private alias (pre-compiled-kernels name).
_cic_weights = cic_weights


def _deposit_py(i0: np.ndarray, frac: np.ndarray, mass: np.ndarray,
                n: int) -> np.ndarray:
    """Pure-numpy scatter: one flattened bincount over all 8 corners.

    The corner contributions are laid out corner-major (all particles'
    corner (0,0,0) entries, then corner (0,0,1), ...), so bincount's
    sequential accumulation adds them per cell in exactly the order the
    historical 8x ``np.add.at`` implementation did — bit-identical
    grids, ~an order of magnitude faster.
    """
    npart = len(i0)
    flat = np.empty(8 * npart, dtype=np.int64)
    wts = np.empty(8 * npart, dtype=np.float64)
    k = 0
    for dx in (0, 1):
        wx = (1.0 - frac[:, 0]) if dx == 0 else frac[:, 0]
        ix = (i0[:, 0] + dx) % n
        for dy in (0, 1):
            wy = (1.0 - frac[:, 1]) if dy == 0 else frac[:, 1]
            iy = (i0[:, 1] + dy) % n
            for dz in (0, 1):
                wz = (1.0 - frac[:, 2]) if dz == 0 else frac[:, 2]
                iz = (i0[:, 2] + dz) % n
                flat[k * npart:(k + 1) * npart] = (ix * n + iy) * n + iz
                wts[k * npart:(k + 1) * npart] = mass * wx * wy * wz
                k += 1
    grid = np.bincount(flat, weights=wts, minlength=n ** 3)
    return grid.reshape(n, n, n)


def cic_deposit(x: np.ndarray, mass: np.ndarray, n: int,
                weights: Optional[Tuple[np.ndarray, np.ndarray]] = None
                ) -> np.ndarray:
    """Deposit particle masses onto an (n, n, n) periodic grid with CIC.

    Parameters
    ----------
    x : (N, 3) positions in [0, 1)
    mass : (N,) masses
    n : grid cells per side
    weights : optional precomputed ``cic_weights(x, n)`` pair

    Returns the mass grid (not density): ``grid.sum() == mass.sum()``.
    """
    x = np.asarray(x, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    if x.ndim != 2 or x.shape[1] != 3:
        raise ValueError("x must be (N, 3)")
    if mass.shape != (x.shape[0],):
        raise ValueError("mass must be (N,)")
    if n < 1:
        raise ValueError("grid size must be >= 1")
    if len(x) == 0:
        return np.zeros((n, n, n), dtype=np.float64)
    i0, frac = cic_weights(x, n) if weights is None else weights
    if phys_c is not None:
        grid = np.zeros((n, n, n), dtype=np.float64)
        phys_c.cic_deposit(np.ascontiguousarray(i0),
                           np.ascontiguousarray(frac),
                           np.ascontiguousarray(mass), grid, len(x), n)
        return grid
    return _deposit_py(i0, frac, mass, n)


def _interpolate_py(field: np.ndarray, i0: np.ndarray, frac: np.ndarray,
                    n: int, vector: bool) -> np.ndarray:
    """Pure-numpy gather: 8 fancy-indexing passes, corner-major."""
    npart = len(i0)
    out_shape = (npart, field.shape[3]) if vector else (npart,)
    out = np.zeros(out_shape, dtype=np.float64)
    for dx in (0, 1):
        wx = (1.0 - frac[:, 0]) if dx == 0 else frac[:, 0]
        ix = (i0[:, 0] + dx) % n
        for dy in (0, 1):
            wy = (1.0 - frac[:, 1]) if dy == 0 else frac[:, 1]
            iy = (i0[:, 1] + dy) % n
            for dz in (0, 1):
                wz = (1.0 - frac[:, 2]) if dz == 0 else frac[:, 2]
                iz = (i0[:, 2] + dz) % n
                w = wx * wy * wz
                if vector:
                    out += field[ix, iy, iz] * w[:, None]
                else:
                    out += field[ix, iy, iz] * w
    return out


def cic_interpolate(field: np.ndarray, x: np.ndarray,
                    weights: Optional[Tuple[np.ndarray, np.ndarray]] = None
                    ) -> np.ndarray:
    """Gather a grid field at particle positions with CIC weights.

    ``field`` may be (n, n, n) for a scalar or (n, n, n, C) for C components
    (e.g. acceleration); the result is (N,) or (N, C) accordingly.  A
    precomputed ``weights`` pair must come from ``cic_weights(x, n)`` with
    ``n == field.shape[0]``.
    """
    field = np.asarray(field, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if field.ndim not in (3, 4):
        raise ValueError("field must be (n,n,n) or (n,n,n,C)")
    n = field.shape[0]
    if field.shape[1] != n or field.shape[2] != n:
        raise ValueError("field must be cubic")
    i0, frac = cic_weights(x, n) if weights is None else weights
    vector = field.ndim == 4
    if phys_c is not None:
        ncomp = field.shape[3] if vector else 1
        out_shape = (len(x), ncomp) if vector else (len(x),)
        out = np.zeros(out_shape, dtype=np.float64)
        if len(x):
            phys_c.cic_gather(np.ascontiguousarray(i0),
                              np.ascontiguousarray(frac),
                              np.ascontiguousarray(field), out,
                              len(x), n, ncomp)
        return out
    return _interpolate_py(field, i0, frac, n, vector)


def density_contrast(x: np.ndarray, mass: np.ndarray, n: int,
                     weights: Optional[Tuple[np.ndarray, np.ndarray]] = None
                     ) -> np.ndarray:
    """Density contrast delta = rho/rho_mean - 1 on an n^3 grid.

    The mean is taken over the actual deposited mass, so delta always has
    zero mean regardless of the particle masses (full-box or zoom sets).
    """
    grid = cic_deposit(x, mass, n, weights=weights)
    total = grid.sum()
    if total <= 0:
        raise ValueError("no mass deposited")
    mean = total / n ** 3
    return grid / mean - 1.0
