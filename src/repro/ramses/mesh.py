"""Periodic mesh operations: CIC mass deposit and field interpolation.

Cloud-in-cell is the workhorse of the PM solver.  Both directions are fully
vectorized (``np.add.at`` for the scatter, fancy indexing for the gather),
following the hpc-parallel guide's vectorize-first rule — no per-particle
Python loops anywhere in the hot path.

Deposit conserves mass to machine precision (a hypothesis test asserts it)
and the deposit/interpolate pair is adjoint, which keeps the PM force
momentum-conserving to the accuracy of the differencing scheme.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["cic_deposit", "cic_interpolate", "density_contrast"]


def _cic_weights(x: np.ndarray, n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Base cell indices and weights for CIC on an n^3 periodic grid.

    Returns (i0, frac) where ``i0`` is the lower cell index per axis and
    ``frac`` the fractional offset, both (N, 3).
    """
    if n < 1:
        raise ValueError("grid size must be >= 1")
    s = x * n - 0.5          # position in cell-centre coordinates
    i0 = np.floor(s).astype(np.int64)
    frac = s - i0
    return i0, frac


def cic_deposit(x: np.ndarray, mass: np.ndarray, n: int) -> np.ndarray:
    """Deposit particle masses onto an (n, n, n) periodic grid with CIC.

    Parameters
    ----------
    x : (N, 3) positions in [0, 1)
    mass : (N,) masses
    n : grid cells per side

    Returns the mass grid (not density): ``grid.sum() == mass.sum()``.
    """
    x = np.asarray(x, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    if x.ndim != 2 or x.shape[1] != 3:
        raise ValueError("x must be (N, 3)")
    if mass.shape != (x.shape[0],):
        raise ValueError("mass must be (N,)")
    grid = np.zeros((n, n, n), dtype=np.float64)
    if len(x) == 0:
        return grid
    i0, frac = _cic_weights(x, n)
    for dx in (0, 1):
        wx = (1.0 - frac[:, 0]) if dx == 0 else frac[:, 0]
        ix = (i0[:, 0] + dx) % n
        for dy in (0, 1):
            wy = (1.0 - frac[:, 1]) if dy == 0 else frac[:, 1]
            iy = (i0[:, 1] + dy) % n
            for dz in (0, 1):
                wz = (1.0 - frac[:, 2]) if dz == 0 else frac[:, 2]
                iz = (i0[:, 2] + dz) % n
                np.add.at(grid, (ix, iy, iz), mass * wx * wy * wz)
    return grid


def cic_interpolate(field: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Gather a grid field at particle positions with CIC weights.

    ``field`` may be (n, n, n) for a scalar or (n, n, n, C) for C components
    (e.g. acceleration); the result is (N,) or (N, C) accordingly.
    """
    field = np.asarray(field, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if field.ndim not in (3, 4):
        raise ValueError("field must be (n,n,n) or (n,n,n,C)")
    n = field.shape[0]
    if field.shape[1] != n or field.shape[2] != n:
        raise ValueError("field must be cubic")
    i0, frac = _cic_weights(x, n)
    vector = field.ndim == 4
    out_shape = (len(x), field.shape[3]) if vector else (len(x),)
    out = np.zeros(out_shape, dtype=np.float64)
    for dx in (0, 1):
        wx = (1.0 - frac[:, 0]) if dx == 0 else frac[:, 0]
        ix = (i0[:, 0] + dx) % n
        for dy in (0, 1):
            wy = (1.0 - frac[:, 1]) if dy == 0 else frac[:, 1]
            iy = (i0[:, 1] + dy) % n
            for dz in (0, 1):
                wz = (1.0 - frac[:, 2]) if dz == 0 else frac[:, 2]
                iz = (i0[:, 2] + dz) % n
                w = wx * wy * wz
                if vector:
                    out += field[ix, iy, iz] * w[:, None]
                else:
                    out += field[ix, iy, iz] * w
    return out


def density_contrast(x: np.ndarray, mass: np.ndarray, n: int) -> np.ndarray:
    """Density contrast delta = rho/rho_mean - 1 on an n^3 grid.

    The mean is taken over the actual deposited mass, so delta always has
    zero mean regardless of the particle masses (full-box or zoom sets).
    """
    grid = cic_deposit(x, mass, n)
    total = grid.sum()
    if total <= 0:
        raise ValueError("no mass deposited")
    mean = total / n ** 3
    return grid / mean - 1.0
