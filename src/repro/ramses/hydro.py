"""Finite-volume Euler solver (the hydro half of RAMSES, §3).

A 3-d Godunov scheme on a periodic uniform grid: conservative variables
``(rho, rho*u, rho*v, rho*w, E)``, HLLC approximate Riemann fluxes applied
dimension-by-dimension (unsplit, first-order in space/time), ideal-gas EOS,
CFL-limited time steps, and an optional gravity source (from the same FFT
Poisson solver the N-body code uses — "coupled to a finite volume Euler
solver").

The scheme is exactly conservative on the periodic box (tests check mass,
momentum and energy to machine precision) and validated against the exact
Riemann solver on Sod shock tubes along each axis.  Everything is numpy
``np.roll`` stencil algebra — no Python-level cell loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .poisson import acceleration_from_source

__all__ = ["HydroState", "HydroSolver", "hllc_flux"]

_SMALL = 1e-12


@dataclass
class HydroState:
    """Conservative fluid state on an (nx, ny, nz) periodic grid."""

    rho: np.ndarray
    mom: np.ndarray           # (..., 3)
    energy: np.ndarray        # total energy density
    gamma: float = 1.4

    def __post_init__(self):
        self.rho = np.asarray(self.rho, dtype=np.float64)
        self.mom = np.asarray(self.mom, dtype=np.float64)
        self.energy = np.asarray(self.energy, dtype=np.float64)
        if self.mom.shape != self.rho.shape + (3,):
            raise ValueError("mom must be rho.shape + (3,)")
        if self.energy.shape != self.rho.shape:
            raise ValueError("energy must match rho's shape")
        if self.gamma <= 1.0:
            raise ValueError("gamma must exceed 1")

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_primitive(cls, rho: np.ndarray, velocity: np.ndarray,
                       pressure: np.ndarray, gamma: float = 1.4) -> "HydroState":
        rho = np.asarray(rho, dtype=np.float64)
        velocity = np.asarray(velocity, dtype=np.float64)
        pressure = np.asarray(pressure, dtype=np.float64)
        mom = rho[..., None] * velocity
        kinetic = 0.5 * rho * np.sum(velocity ** 2, axis=-1)
        energy = pressure / (gamma - 1.0) + kinetic
        return cls(rho=rho, mom=mom, energy=energy, gamma=gamma)

    @classmethod
    def uniform(cls, shape: Tuple[int, int, int], rho: float = 1.0,
                pressure: float = 1.0, gamma: float = 1.4) -> "HydroState":
        r = np.full(shape, rho)
        v = np.zeros(shape + (3,))
        p = np.full(shape, pressure)
        return cls.from_primitive(r, v, p, gamma)

    # -- primitives ----------------------------------------------------------------

    def velocity(self) -> np.ndarray:
        return self.mom / np.maximum(self.rho, _SMALL)[..., None]

    def pressure(self) -> np.ndarray:
        kinetic = 0.5 * np.sum(self.mom ** 2, axis=-1) / np.maximum(
            self.rho, _SMALL)
        return np.maximum((self.gamma - 1.0) * (self.energy - kinetic), _SMALL)

    def sound_speed(self) -> np.ndarray:
        return np.sqrt(self.gamma * self.pressure()
                       / np.maximum(self.rho, _SMALL))

    # -- conserved totals (for the conservation tests) --------------------------------

    def totals(self) -> Tuple[float, np.ndarray, float]:
        return (float(self.rho.sum()),
                self.mom.sum(axis=tuple(range(self.rho.ndim))),
                float(self.energy.sum()))

    def copy(self) -> "HydroState":
        return HydroState(self.rho.copy(), self.mom.copy(),
                          self.energy.copy(), self.gamma)


def _flux_along(rho, mom, energy, pressure, axis):
    """Physical flux of the conservative variables along ``axis``."""
    u = mom[..., axis] / np.maximum(rho, _SMALL)
    f_rho = mom[..., axis]
    f_mom = mom * u[..., None]
    f_mom[..., axis] += pressure
    f_energy = (energy + pressure) * u
    return f_rho, f_mom, f_energy


def hllc_flux(left: HydroState, right: HydroState, axis: int):
    """HLLC flux (Toro ch. 10) between two cellwise states along ``axis``.

    ``left``/``right`` hold the states on either side of every interface
    (arrays of identical shape); returns (f_rho, f_mom, f_energy).
    """
    gamma = left.gamma
    rl, rr = np.maximum(left.rho, _SMALL), np.maximum(right.rho, _SMALL)
    ul = left.mom[..., axis] / rl
    ur = right.mom[..., axis] / rr
    pl, pr = left.pressure(), right.pressure()
    al, ar = left.sound_speed(), right.sound_speed()

    # wave-speed estimates (Davis/Einfeldt bounds)
    s_l = np.minimum(ul - al, ur - ar)
    s_r = np.maximum(ul + al, ur + ar)
    # contact speed (HLLC)
    denom = rl * (s_l - ul) - rr * (s_r - ur)
    s_star = ((pr - pl + rl * ul * (s_l - ul) - rr * ur * (s_r - ur))
              / np.where(np.abs(denom) < _SMALL, _SMALL, denom))

    fl = _flux_along(left.rho, left.mom, left.energy, pl, axis)
    fr = _flux_along(right.rho, right.mom, right.energy, pr, axis)

    def _signed_safe(x):
        """Protect a denominator without flipping its sign."""
        return np.where(np.abs(x) < _SMALL,
                        np.where(x < 0, -_SMALL, _SMALL), x)

    def star_state(state, rho, u, p, s, s_star):
        """HLLC star-region conservative state (Toro eq. 10.39)."""
        factor = rho * (s - u) / _signed_safe(s - s_star)
        rho_star = factor
        mom_star = state.mom * (factor / np.maximum(state.rho, _SMALL))[..., None]
        mom_star[..., axis] = factor * s_star
        e_star = factor * (state.energy / np.maximum(state.rho, _SMALL)
                           + (s_star - u)
                           * (s_star + p / _signed_safe(rho * (s - u))))
        return rho_star, mom_star, e_star

    rho_sl, mom_sl, e_sl = star_state(left, rl, ul, pl, s_l, s_star)
    rho_sr, mom_sr, e_sr = star_state(right, rr, ur, pr, s_r, s_star)

    # assemble by region
    f_rho = np.where(s_l >= 0, fl[0],
                     np.where(s_star >= 0, fl[0] + s_l * (rho_sl - left.rho),
                              np.where(s_r >= 0,
                                       fr[0] + s_r * (rho_sr - right.rho),
                                       fr[0])))
    f_energy = np.where(s_l >= 0, fl[2],
                        np.where(s_star >= 0,
                                 fl[2] + s_l * (e_sl - left.energy),
                                 np.where(s_r >= 0,
                                          fr[2] + s_r * (e_sr - right.energy),
                                          fr[2])))
    f_mom = np.where(s_l[..., None] >= 0, fl[1],
                     np.where(s_star[..., None] >= 0,
                              fl[1] + s_l[..., None] * (mom_sl - left.mom),
                              np.where(s_r[..., None] >= 0,
                                       fr[1] + s_r[..., None]
                                       * (mom_sr - right.mom),
                                       fr[1])))
    return f_rho, f_mom, f_energy


class HydroSolver:
    """First-order Godunov/HLLC solver on the periodic unit box."""

    def __init__(self, cfl: float = 0.4,
                 self_gravity_constant: float = 0.0):
        if not 0 < cfl < 1:
            raise ValueError("cfl must be in (0, 1)")
        self.cfl = cfl
        #: 4 pi G in code units; 0 disables the gravity source term.
        self.g_constant = self_gravity_constant

    def max_dt(self, state: HydroState, dx: float) -> float:
        speed = (np.abs(state.velocity()).max()
                 + float(state.sound_speed().max()))
        return self.cfl * dx / max(speed, _SMALL)

    def step(self, state: HydroState, dt: float,
             dx: Optional[float] = None) -> None:
        """Advance ``state`` in place by ``dt`` (unsplit Godunov update)."""
        if dx is None:
            dx = 1.0 / state.rho.shape[0]
        d_rho = np.zeros_like(state.rho)
        d_mom = np.zeros_like(state.mom)
        d_energy = np.zeros_like(state.energy)

        for axis in range(state.rho.ndim):
            # interface i+1/2: left = cell i, right = cell i+1
            right = HydroState(np.roll(state.rho, -1, axis=axis),
                               np.roll(state.mom, -1, axis=axis),
                               np.roll(state.energy, -1, axis=axis),
                               state.gamma)
            f_rho, f_mom, f_energy = hllc_flux(state, right, axis)
            d_rho += (np.roll(f_rho, 1, axis=axis) - f_rho) / dx
            d_mom += (np.roll(f_mom, 1, axis=axis) - f_mom) / dx
            d_energy += (np.roll(f_energy, 1, axis=axis) - f_energy) / dx

        state.rho += dt * d_rho
        state.mom += dt * d_mom
        state.energy += dt * d_energy

        if self.g_constant > 0:
            self._apply_gravity(state, dt)

        np.maximum(state.rho, _SMALL, out=state.rho)

    def _apply_gravity(self, state: HydroState, dt: float) -> None:
        """Self-gravity source: laplacian(phi) = g_constant * (rho - mean)."""
        source = self.g_constant * (state.rho - state.rho.mean())
        _, acc = acceleration_from_source(source)
        state.mom += dt * state.rho[..., None] * acc
        state.energy += dt * np.sum(state.mom * acc, axis=-1) \
            / np.maximum(state.rho, _SMALL)

    def run(self, state: HydroState, t_end: float,
            dx: Optional[float] = None, max_steps: int = 100000) -> int:
        """Advance to ``t_end`` with CFL-limited steps; returns step count."""
        if dx is None:
            dx = 1.0 / state.rho.shape[0]
        t = 0.0
        steps = 0
        while t < t_end and steps < max_steps:
            dt = min(self.max_dt(state, dx), t_end - t)
            self.step(state, dt, dx)
            t += dt
            steps += 1
        return steps
