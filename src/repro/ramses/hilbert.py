"""Peano-Hilbert space-filling curve (3-d), fully vectorized.

RAMSES decomposes its computational volume over MPI processes by sorting
cells along the Peano-Hilbert curve and cutting the sorted list into equal-
work chunks ([5, 6] in the paper; §3: "The computational space is
decomposed among the available processors using a mesh partitioning
strategy based on the Peano-Hilbert cell ordering").

The implementation is Skilling's transpose algorithm (AIP Conf. Proc. 707,
2004) operating on numpy integer arrays, so encoding a few million cells is
a handful of vectorized passes.  ``encode``/``decode`` are exact inverses
for any level <= 20 (property-tested), and consecutive keys are
face-adjacent cells — the locality property that makes the decomposition
communication-friendly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hilbert_encode", "hilbert_decode", "positions_to_keys"]

_MAX_LEVEL = 20  # 3*20 = 60 key bits < 63


def _check_level(level: int) -> None:
    if not 1 <= level <= _MAX_LEVEL:
        raise ValueError(f"level must be in [1, {_MAX_LEVEL}], got {level}")


def hilbert_encode(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray,
                   level: int) -> np.ndarray:
    """Cell indices (each in [0, 2**level)) -> Hilbert keys (int64).

    Keys enumerate the 2**(3*level) cells along the Hilbert curve.
    """
    _check_level(level)
    X = [np.asarray(c).astype(np.int64).copy() for c in (ix, iy, iz)]
    n_side = np.int64(1) << level
    for c in X:
        if np.any((c < 0) | (c >= n_side)):
            raise ValueError(f"cell index out of range [0, {n_side})")

    m = np.int64(1) << (level - 1)
    # -- Skilling: AxesToTranspose ------------------------------------------------
    q = m
    while q > 1:
        p = q - 1
        for i in range(3):
            flag = (X[i] & q) != 0
            # invert X[0] where flag, else exchange low bits of X[0] and X[i]
            X[0] = np.where(flag, X[0] ^ p, X[0])
            t = np.where(flag, 0, (X[0] ^ X[i]) & p)
            X[0] ^= t
            X[i] ^= t
        q >>= 1
    # Gray encode
    for i in range(1, 3):
        X[i] ^= X[i - 1]
    t = np.zeros_like(X[0])
    q = np.int64(2)
    while q != (m << 1):
        t = np.where((X[2] & q) != 0, t ^ (q - 1), t)
        q <<= 1
    for i in range(3):
        X[i] ^= t

    # -- interleave transposed bits into a single key ---------------------------------
    key = np.zeros_like(X[0])
    for b in range(level):
        for i in range(3):
            bit = (X[i] >> np.int64(level - 1 - b)) & 1
            key = (key << 1) | bit
    return key


def hilbert_decode(key: np.ndarray, level: int):
    """Hilbert keys -> cell indices (ix, iy, iz); inverse of encode."""
    _check_level(level)
    key = np.asarray(key).astype(np.int64)
    n_keys = np.int64(1) << (3 * level)
    if np.any((key < 0) | (key >= n_keys)):
        raise ValueError(f"key out of range [0, {n_keys})")

    # de-interleave into the transposed representation
    X = [np.zeros_like(key) for _ in range(3)]
    for b in range(level):
        for i in range(3):
            shift = np.int64(3 * (level - 1 - b) + (2 - i))
            bit = (key >> shift) & 1
            X[i] = (X[i] << 1) | bit

    m = np.int64(1) << (level - 1)
    # -- Skilling: TransposeToAxes -------------------------------------------------
    t = X[2] >> 1
    for i in range(2, 0, -1):
        X[i] ^= X[i - 1]
    X[0] ^= t
    q = np.int64(2)
    while q != (m << 1):
        p = q - 1
        for i in range(2, -1, -1):
            flag = (X[i] & q) != 0
            X[0] = np.where(flag, X[0] ^ p, X[0])
            tt = np.where(flag, 0, (X[0] ^ X[i]) & p)
            X[0] ^= tt
            X[i] ^= tt
        q <<= 1
    return X[0], X[1], X[2]


def positions_to_keys(x: np.ndarray, level: int) -> np.ndarray:
    """Positions in [0,1)^3 -> Hilbert keys of their cells at ``level``."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2 or x.shape[1] != 3:
        raise ValueError("x must be (N, 3)")
    n_side = 1 << level
    cells = np.clip((x * n_side).astype(np.int64), 0, n_side - 1)
    return hilbert_encode(cells[:, 0], cells[:, 1], cells[:, 2], level)
