"""Layzer-Irvine cosmic energy diagnostics.

For the comoving equations of motion used here (``dx/dt = p/a^2``,
``dp/dt = -grad(phi)``, ``laplacian(phi) = (3/2) Omega_m delta / a``),
define

    T(a) = 1/2 sum_i m_i (p_i / a)^2        (peculiar kinetic energy)
    U(a) = 1/2 sum_i m_i phi(x_i)           (comoving potential energy)

Differentiating along the flow gives the Layzer-Irvine equation

    d(T + U)/dt = -(adot/a) (2T + U)

so the integral

    I(a) = T + U + int_{a0}^{a} (2T(a') + U(a')) da'/a'

is an exact invariant of the continuum dynamics.  :class:`LayzerIrvineMonitor`
accumulates I(a) during a run (trapezoidal quadrature between force
evaluations); its relative drift measures the combined time-integration +
PM-force error — a few percent for linear evolution, ~10% deep into the
nonlinear regime at these resolutions, which is standard for a one-level PM
code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from .gravity import GravitySolver
from .particles import ParticleSet

__all__ = ["kinetic_energy", "potential_energy", "LayzerIrvineMonitor"]


def kinetic_energy(parts: ParticleSet, a: float) -> float:
    """Peculiar kinetic energy T = 1/2 sum m (p/a)^2."""
    if a <= 0:
        raise ValueError("expansion factor must be positive")
    return float(0.5 * np.sum(parts.mass * np.sum((parts.p / a) ** 2, axis=1)))


def potential_energy(parts: ParticleSet, solver: GravitySolver,
                     a: float) -> float:
    """Comoving potential energy U = 1/2 sum m phi(x)."""
    return solver.potential_energy_proxy(parts.x, parts.mass, a)


@dataclass
class _Sample:
    a: float
    kinetic: float
    potential: float

    @property
    def virial_sum(self) -> float:
        return 2.0 * self.kinetic + self.potential


@dataclass
class LayzerIrvineMonitor:
    """Accumulates the Layzer-Irvine invariant during a run.

    Use as a :meth:`~repro.ramses.integrator.Leapfrog.run` callback::

        monitor = LayzerIrvineMonitor(solver)
        monitor.sample(a_start, parts)
        leapfrog.run(parts, schedule, callback=monitor.sample)
        assert monitor.relative_drift() < 0.15
    """

    solver: GravitySolver
    samples: List[_Sample] = field(default_factory=list)
    _integral: float = 0.0
    invariants: List[float] = field(default_factory=list)

    def sample(self, a: float, parts: ParticleSet) -> None:
        t = kinetic_energy(parts, a)
        u = potential_energy(parts, self.solver, a)
        current = _Sample(a=a, kinetic=t, potential=u)
        if self.samples:
            prev = self.samples[-1]
            da = current.a - prev.a
            self._integral += 0.5 * (prev.virial_sum / prev.a
                                     + current.virial_sum / current.a) * da
        self.samples.append(current)
        self.invariants.append(t + u + self._integral)

    @property
    def kinetic_history(self) -> np.ndarray:
        return np.array([s.kinetic for s in self.samples])

    @property
    def potential_history(self) -> np.ndarray:
        return np.array([s.potential for s in self.samples])

    def energy_scale(self) -> float:
        """|T| + |U| at the latest sample (the drift normalization)."""
        if not self.samples:
            raise ValueError("no samples taken")
        last = self.samples[-1]
        return abs(last.kinetic) + abs(last.potential)

    def relative_drift(self) -> float:
        """max - min of the invariant, relative to the final energy scale."""
        if len(self.invariants) < 2:
            return 0.0
        inv = np.asarray(self.invariants)
        return float((inv.max() - inv.min()) / max(self.energy_scale(), 1e-300))

    def virial_ratio(self) -> float:
        """-2T/U at the latest sample (-> 1 for a virialized system)."""
        last = self.samples[-1]
        if last.potential == 0:
            raise ValueError("zero potential energy")
        return -2.0 * last.kinetic / last.potential
