"""Snapshot I/O in Fortran unformatted record format.

RAMSES writes "Fortran binary files" (§3): sequential-access unformatted
records, each framed by 4-byte little-endian length markers.  We write the
particle snapshots the same way — one ``part_XXXXX.outYYYYY`` style file
per (output, cpu) pair plus an ``info`` header — so the GALICS substitute
genuinely parses the on-disk format rather than passing numpy arrays
around.  :class:`FortranRecordFile` is usable standalone for any
Fortran-style binary.
"""

from __future__ import annotations

import io
import os
import struct
from dataclasses import dataclass
from typing import BinaryIO, Dict, List, Optional, Union

import numpy as np

from .particles import ParticleSet

__all__ = ["FortranRecordFile", "SnapshotHeader", "write_snapshot",
           "read_snapshot", "snapshot_paths"]

_MARKER = struct.Struct("<i")


class FortranRecordFile:
    """Sequential Fortran unformatted record reader/writer."""

    def __init__(self, stream: BinaryIO):
        self._f = stream

    # -- writing ------------------------------------------------------------------

    def write_record(self, data: Union[bytes, np.ndarray]) -> None:
        if isinstance(data, np.ndarray):
            data = np.ascontiguousarray(data).tobytes()
        marker = _MARKER.pack(len(data))
        self._f.write(marker)
        self._f.write(data)
        self._f.write(marker)

    def write_ints(self, *values: int) -> None:
        self.write_record(np.asarray(values, dtype="<i4"))

    def write_doubles(self, *values: float) -> None:
        self.write_record(np.asarray(values, dtype="<f8"))

    # -- reading ---------------------------------------------------------------------

    def read_record(self) -> bytes:
        head = self._f.read(4)
        if len(head) == 0:
            raise EOFError("end of file")
        if len(head) != 4:
            raise IOError("truncated record marker")
        (nbytes,) = _MARKER.unpack(head)
        if nbytes < 0:
            raise IOError(f"negative record length {nbytes}")
        data = self._f.read(nbytes)
        if len(data) != nbytes:
            raise IOError("truncated record payload")
        tail = self._f.read(4)
        if tail != head:
            raise IOError("record length markers disagree (corrupt file)")
        return data

    def read_ints(self) -> np.ndarray:
        return np.frombuffer(self.read_record(), dtype="<i4")

    def read_longs(self) -> np.ndarray:
        return np.frombuffer(self.read_record(), dtype="<i8")

    def read_doubles(self) -> np.ndarray:
        return np.frombuffer(self.read_record(), dtype="<f8")


@dataclass
class SnapshotHeader:
    """Metadata of one particle snapshot (the RAMSES info file content)."""

    ncpu: int
    ndim: int
    npart: int
    aexp: float
    omega_m: float
    omega_l: float
    h0: float
    boxlen_mpc_h: float
    levelmin: int
    levelmax: int
    output_number: int = 1

    def validate(self) -> None:
        if self.ncpu < 1 or self.npart < 0 or self.ndim != 3:
            raise ValueError("invalid snapshot header")
        if not 0 < self.aexp <= 100:
            raise ValueError(f"unphysical aexp {self.aexp}")


def snapshot_paths(directory: str, output_number: int, ncpu: int) -> List[str]:
    """The per-cpu particle file names of one output."""
    return [os.path.join(directory,
                         f"part_{output_number:05d}.out{icpu + 1:05d}")
            for icpu in range(ncpu)]


def write_snapshot(directory: str, header: SnapshotHeader, parts: ParticleSet,
                   ranks: Optional[np.ndarray] = None) -> List[str]:
    """Write a snapshot split over ``header.ncpu`` per-cpu files + info file.

    ``ranks`` assigns particles to cpu files (defaults to the Hilbert-order
    contiguous split used by the domain decomposition).
    """
    header.validate()
    if header.npart != len(parts):
        raise ValueError("header.npart disagrees with particle count")
    os.makedirs(directory, exist_ok=True)
    if ranks is None:
        from .domain import decompose
        ranks = decompose(parts.x, header.ncpu).rank_of_positions(parts.x)
    ranks = np.asarray(ranks)
    if ranks.shape != (len(parts),):
        raise ValueError("ranks must be (N,)")

    # info file: plain text, RAMSES style
    info_path = os.path.join(directory, f"info_{header.output_number:05d}.txt")
    with open(info_path, "w") as f:
        for key, value in [("ncpu", header.ncpu), ("ndim", header.ndim),
                           ("levelmin", header.levelmin),
                           ("levelmax", header.levelmax),
                           ("npart", header.npart),
                           ("aexp", header.aexp), ("omega_m", header.omega_m),
                           ("omega_l", header.omega_l), ("h0", header.h0),
                           ("boxlen", header.boxlen_mpc_h)]:
            f.write(f"{key:12s}= {value}\n")

    paths = snapshot_paths(directory, header.output_number, header.ncpu)
    for icpu, path in enumerate(paths):
        sel = ranks == icpu
        sub = parts.select(sel)
        with open(path, "wb") as raw:
            rec = FortranRecordFile(raw)
            rec.write_ints(header.ncpu)
            rec.write_ints(header.ndim)
            rec.write_ints(len(sub))
            rec.write_doubles(header.aexp)
            for dim in range(3):
                rec.write_record(sub.x[:, dim].astype("<f8"))
            for dim in range(3):
                rec.write_record(sub.p[:, dim].astype("<f8"))
            rec.write_record(sub.mass.astype("<f8"))
            rec.write_record(sub.ids.astype("<i8"))
            rec.write_record(sub.level.astype("<i4"))
    return [info_path] + paths


def read_snapshot(directory: str, output_number: int) -> "tuple[SnapshotHeader, ParticleSet]":
    """Read a snapshot written by :func:`write_snapshot`."""
    info_path = os.path.join(directory, f"info_{output_number:05d}.txt")
    fields: Dict[str, str] = {}
    with open(info_path) as f:
        for line in f:
            if "=" in line:
                key, _, value = line.partition("=")
                fields[key.strip()] = value.strip()
    header = SnapshotHeader(
        ncpu=int(fields["ncpu"]), ndim=int(fields["ndim"]),
        npart=int(fields["npart"]), aexp=float(fields["aexp"]),
        omega_m=float(fields["omega_m"]), omega_l=float(fields["omega_l"]),
        h0=float(fields["h0"]), boxlen_mpc_h=float(fields["boxlen"]),
        levelmin=int(fields["levelmin"]), levelmax=int(fields["levelmax"]),
        output_number=output_number)

    pieces: List[ParticleSet] = []
    for path in snapshot_paths(directory, output_number, header.ncpu):
        with open(path, "rb") as raw:
            rec = FortranRecordFile(raw)
            ncpu = int(rec.read_ints()[0])
            ndim = int(rec.read_ints()[0])
            npart = int(rec.read_ints()[0])
            aexp = float(rec.read_doubles()[0])
            if ncpu != header.ncpu or ndim != header.ndim:
                raise IOError(f"inconsistent snapshot piece {path}")
            if abs(aexp - header.aexp) > 1e-10:
                raise IOError(f"aexp mismatch in {path}")
            x = np.empty((npart, 3))
            for dim in range(3):
                x[:, dim] = rec.read_doubles()
            p = np.empty((npart, 3))
            for dim in range(3):
                p[:, dim] = rec.read_doubles()
            mass = rec.read_doubles().copy()
            ids = rec.read_longs().copy()
            level = np.frombuffer(rec.read_record(), dtype="<i4").astype(np.int16)
            pieces.append(ParticleSet(x, p, mass, ids, level))
    parts = ParticleSet.concatenate(pieces)
    if len(parts) != header.npart:
        raise IOError(f"expected {header.npart} particles, read {len(parts)}")
    return header, parts
