"""Cosmological kick-drift-kick leapfrog in the expansion factor.

Equations of motion in code units (H0 = 1, box length 1, p = a^2 dx/dt):

    dx/da = p / (a^3 H(a))                     (drift)
    dp/da = -grad(phi) / (a H(a))              (kick)

with ``laplacian(phi) = (3/2) Omega_m delta / a``.  The KDK splitting is
symplectic for a frozen potential and second-order accurate in da; the
Zel'dovich test (tests/integration) verifies that a pure growing mode in an
Einstein-de Sitter universe follows D(a) = a across many steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .cosmology import Cosmology
from .gravity import GravitySolver
from .particles import ParticleSet
from .physcore import phys_c

__all__ = ["Leapfrog", "StepStats"]


@dataclass
class StepStats:
    """Diagnostics from one KDK step."""

    a_before: float
    a_after: float
    max_delta: float
    rms_delta: float
    max_disp: float            # largest drift distance this step (box units)


class Leapfrog:
    """KDK integrator bound to a gravity solver."""

    def __init__(self, cosmology: Cosmology, solver: GravitySolver):
        self.cosmology = cosmology
        self.solver = solver
        self.stats: List[StepStats] = []

    # -- operators ---------------------------------------------------------------

    def kick(self, parts: ParticleSet, a: float, da: float) -> None:
        """p <- p + dp/da * da at fixed positions (in place)."""
        result = self.solver.accelerations(parts.x, parts.mass, a)
        h = float(self.cosmology.hubble(a))
        coef = da / (a * h)
        if phys_c is not None:
            phys_c.kick(parts.p, np.ascontiguousarray(result.acc),
                        coef, parts.p.size)
        else:
            parts.p += result.acc * coef
        self._last_force = result

    def drift(self, parts: ParticleSet, a: float, da: float) -> float:
        """x <- x + dx/da * da at fixed momenta (in place, wrapped).

        Returns the max displacement (a CFL-like diagnostic).
        """
        h = float(self.cosmology.hubble(a))
        coef = da / (a ** 3 * h)
        if not len(parts):
            return 0.0
        if phys_c is not None:
            # Fused update + wrap + max-|dx| reduction, no temporaries;
            # bit-identical to the numpy expressions below.
            return float(phys_c.drift(parts.x, parts.p, coef, parts.x.size))
        dx = parts.p * coef
        parts.x += dx
        parts.wrap()
        return float(np.abs(dx).max())

    # -- full step -------------------------------------------------------------------

    def step(self, parts: ParticleSet, a: float, a_next: float) -> StepStats:
        """One KDK step from a to a_next (midpoint evaluations)."""
        if a_next <= a:
            raise ValueError("a_next must exceed a")
        da = a_next - a
        self.kick(parts, a, 0.5 * da)
        max_disp = self.drift(parts, 0.5 * (a + a_next), da)
        self.kick(parts, a_next, 0.5 * da)
        force = self._last_force
        stats = StepStats(a_before=a, a_after=a_next,
                          max_delta=float(force.delta.max()),
                          rms_delta=float(np.sqrt(np.mean(force.delta ** 2))),
                          max_disp=max_disp)
        self.stats.append(stats)
        return stats

    def run(self, parts: ParticleSet, schedule: np.ndarray,
            callback: Optional[Callable[[float, ParticleSet], None]] = None
            ) -> List[StepStats]:
        """Step through an expansion-factor schedule; callback after each step."""
        schedule = np.asarray(schedule, dtype=float)
        if schedule.ndim != 1 or len(schedule) < 2:
            raise ValueError("schedule must contain at least two expansion factors")
        if np.any(np.diff(schedule) <= 0):
            raise ValueError("schedule must be strictly increasing")
        out = []
        for a, a_next in zip(schedule[:-1], schedule[1:]):
            out.append(self.step(parts, float(a), float(a_next)))
            if callback is not None:
                callback(float(a_next), parts)
        return out
