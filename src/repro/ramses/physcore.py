"""Compiled physics kernels: build-on-first-import glue for ``_physcore.c``.

The extension implements the REAL-mode hot paths — CIC scatter/gather,
the leapfrog kick/drift updates and friends-of-friends linking — and is
compiled through the same :mod:`repro.sim.cbuild` machinery as the event
heap: first import compiles with whatever ``cc`` the box has, the result
is sha1-cached, and any failure (no compiler, sandboxed filesystem, a
failed smoke test) silently degrades to the numpy implementations in
:mod:`repro.ramses.mesh`, :mod:`repro.ramses.integrator` and
:mod:`repro.galics.halomaker`.

The smoke test below is the bit-compatibility contract in miniature:
every kernel is compared against the numpy reference on seeded inputs
with ``np.array_equal`` — not ``allclose`` — before the extension is
trusted.  ``REPRO_PURE_PY=1`` skips the build entirely, the same switch
that forces the pure-Python event heap; the test suite runs against both
implementations in CI.
"""

from __future__ import annotations

import os

import numpy as np

from ..sim.cbuild import build_and_load

__all__ = ["PHYS_IMPL", "phys_c"]


def _reference_cic(i0, frac, mass, field, vfield, n):
    """The historical 8-pass numpy CIC: scatter + scalar/vector gather."""
    npart = len(i0)
    grid = np.zeros((n, n, n))
    out_s = np.zeros(npart)
    out_v = np.zeros((npart, vfield.shape[3]))
    for dx in (0, 1):
        wx = (1.0 - frac[:, 0]) if dx == 0 else frac[:, 0]
        ix = (i0[:, 0] + dx) % n
        for dy in (0, 1):
            wy = (1.0 - frac[:, 1]) if dy == 0 else frac[:, 1]
            iy = (i0[:, 1] + dy) % n
            for dz in (0, 1):
                wz = (1.0 - frac[:, 2]) if dz == 0 else frac[:, 2]
                iz = (i0[:, 2] + dz) % n
                np.add.at(grid, (ix, iy, iz), mass * wx * wy * wz)
                w = wx * wy * wz
                out_s += field[ix, iy, iz] * w
                out_v += vfield[ix, iy, iz] * w[:, None]
    return grid, out_s, out_v


def _smoke(mod) -> bool:
    rng = np.random.default_rng(12345)
    n, npart = 5, 48
    x = rng.random((npart, 3))
    mass = rng.random(npart)
    s = x * n - 0.5
    i0 = np.floor(s).astype(np.int64)
    frac = s - i0
    field = rng.random((n, n, n))
    vfield = rng.random((n, n, n, 3))
    ref_grid, ref_s, ref_v = _reference_cic(i0, frac, mass, field, vfield, n)

    grid = np.zeros((n, n, n))
    mod.cic_deposit(i0, frac, mass, grid, npart, n)
    if not np.array_equal(grid, ref_grid):
        return False
    out_s = np.zeros(npart)
    out_v = np.zeros((npart, 3))
    mod.cic_gather(i0, frac, field, out_s, npart, n, 1)
    mod.cic_gather(i0, frac, vfield, out_v, npart, n, 3)
    if not (np.array_equal(out_s, ref_s) and np.array_equal(out_v, ref_v)):
        return False

    # kick / drift vs the numpy expressions, including wrap of negative
    # and > 1 positions and the max-displacement reduction.
    p = rng.standard_normal((npart, 3))
    acc = rng.standard_normal((npart, 3))
    pc = p.copy()
    mod.kick(pc, acc, 0.37, pc.size)
    if not np.array_equal(pc, p + acc * 0.37):
        return False
    mom = 40.0 * rng.standard_normal((npart, 3))
    dx = mom * 0.013
    ref_x = np.mod(x + dx, 1.0)
    xc = x.copy()
    maxd = mod.drift(xc, mom, 0.013, xc.size)
    if not np.array_equal(xc, ref_x) or maxd != float(np.abs(dx).max()):
        return False

    # FoF: a chain linked across the periodic seam plus an isolated
    # particle, with first-occurrence canonical labels.
    pts = np.array([[0.999, 0.5, 0.5], [0.003, 0.5, 0.5],
                    [0.007, 0.5, 0.5], [0.5, 0.5, 0.5]])
    labels = np.empty(4, dtype=np.int64)
    ngroups = mod.fof(pts, 0.006, labels, 4)
    if ngroups != 2 or labels.tolist() != [0, 0, 0, 1]:
        return False
    return True


_mod = None
if not os.environ.get("REPRO_PURE_PY"):
    try:
        _mod = build_and_load(
            os.path.join(os.path.dirname(__file__), "_physcore.c"),
            "_physcore", smoke=_smoke)
    except Exception:  # pragma: no cover - any build breakage means fallback
        _mod = None

#: Raw extension module, or None when running on the numpy mirrors.
phys_c = _mod
#: "c" or "python" — surfaced in benchmark exports and asserted by the CI
#: C leg, exactly like ``HEAP_IMPL`` for the event heap.
PHYS_IMPL = "c" if _mod is not None else "python"
