"""The DIET client: session management, synchronous and asynchronous calls.

§4.3 of the paper: "a client is an application which uses DIET to request a
service.  The goal of the client is to connect to a Master Agent in order
to dispose of a SED which will be able to solve the problem.  Then the
client sends input data to the chosen SED and, after the end of
computation, retrieve output data from the SED."

The client API is deliberately close to the C one: ``initialize`` /
``finalize`` bracket a session; a *function handle* binds a service name
(and, after the call, the server that solved it); ``call`` is synchronous
(within a simulation process), ``call_async`` returns a request handle that
can be probed and waited on — the paper's campaign submits its 100
sub-simulations this way.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Iterable, Optional

from ..sim.engine import Engine, Event, Process
from ..sim.network import Host
from .exceptions import (
    CommunicationError,
    DataError,
    InvalidHandleError,
    InvalidSessionError,
    NotCompletedError,
    NotInitializedError,
    ServerNotFoundError,
)
from .pipeline import Interceptor, TracingInterceptor
from .profile import Profile
from .requests import MemoHit, SolveRequest, SubmitRequest
from .statistics import Tracer
from .transport import Endpoint, TransportFabric

__all__ = ["FunctionHandle", "AsyncRequest", "DietClient", "absorb_memo_hit"]


def absorb_memo_hit(endpoint: Endpoint, profile: Profile, hit: MemoHit
                    ) -> Generator[Event, Any, None]:
    """Materialize a memo hit into the client profile (process helper).

    Returning arguments (``*_RETURN`` modes — the client owns the bytes)
    are pulled from the owning SeD with ``memo_fetch`` at the data's true
    size; non-returning ones bind to the persisted handle directly,
    exactly as a fresh solve's reply would have.  Raises
    :class:`CommunicationError` (owner died since the lookup) or
    :class:`DataError` (result evicted) — callers fall back to a normal
    re-solve, which repopulates the memo.
    """
    for index in sorted(hit.out_values):
        handle = hit.out_values[index]
        arg = profile.parameter(index)
        if arg.desc.persistence.returns_to_client:
            value = yield from endpoint.rpc(hit.owner, "memo_fetch",
                                            handle.data_id)
            arg.set(value)
        else:
            arg.set(handle)


@dataclass
class FunctionHandle:
    """Associates a service name with the server that (last) solved it."""

    service_name: str
    server: Optional[str] = None
    bound: bool = True

    def __post_init__(self):
        if not self.service_name:
            raise InvalidHandleError("empty service name")


@dataclass
class AsyncRequest:
    """Handle on an in-flight asynchronous call (grpc_call_async)."""

    request_id: int
    profile: Profile
    process: Process
    _client: "DietClient" = field(repr=False, default=None)

    @property
    def done(self) -> bool:
        return self.process.triggered

    def status(self) -> int:
        """GridRPC probe-style status; raises if not finished."""
        if not self.done:
            raise NotCompletedError(f"request {self.request_id} still running")
        if not self.process.ok:
            raise self.process.value
        return self.process.value

    def wait(self) -> Generator[Event, Any, int]:
        """Process helper: suspend until completion (grpc_wait)."""
        result = yield self.process
        return result

    def cancel(self) -> bool:
        """grpc_cancel: abort the client side of an in-flight call.

        Returns True if the request was still running (and is now
        cancelled), False if it had already completed.  The SeD is not
        preempted — like GridRPC, cancellation abandons the session; a job
        already solving runs to completion server-side.
        """
        if self.done:
            return False
        self.process.interrupt("cancelled")
        return True


class DietClient:
    """A DIET client application bound to one simulated host."""

    def __init__(self, fabric: TransportFabric, host: Host,
                 name: str = "client", tracer: Optional[Tracer] = None,
                 interceptors: Iterable[Interceptor] = (),
                 memo_enabled: bool = False):
        self.fabric = fabric
        self.engine: Engine = fabric.engine
        self.host = host
        self.name = name
        self.tracer = tracer or Tracer()
        self.endpoint: Endpoint = fabric.endpoint(name, host.name)
        #: Request-lifecycle stamps (submitted/found/data-sent/completed) are
        #: taken by the pipeline, not by call(); extra interceptors (e.g. a
        #: DeadlineInterceptor from grpc_set_deadline) append after it.
        self.tracing = self.endpoint.pipeline.add(TracingInterceptor(self.tracer))
        for icpt in interceptors:
            self.endpoint.pipeline.add(icpt)
        self.ma_name: Optional[str] = None
        self._initialized = False
        self._session_ids = itertools.count(1)
        self._requests: Dict[int, AsyncRequest] = {}
        #: Calls resubmitted through the MA after a middleware failure
        #: (:meth:`call_retry`); application failures are never retried.
        self.resubmissions = 0
        #: Send a canonical request-descriptor digest with every submit so
        #: the MA can short-circuit repeats to grid-memo hits.  Off by
        #: default: a key-less submit never touches the memo.
        self.memo_enabled = memo_enabled
        #: Memo hits whose owner vanished before the results could be
        #: pulled; each one fell back to a normal re-solve.
        self.memo_fallbacks = 0

    # -- session -------------------------------------------------------------------

    def initialize(self, config: Dict[str, Any]) -> None:
        """diet_initialize(configuration_file): binds to the Master Agent.

        ``config`` plays the role of the parsed configuration file; the only
        mandatory key is ``"MA_name"``.
        """
        ma = config.get("MA_name")
        if not ma:
            raise NotInitializedError("configuration lacks 'MA_name'")
        # Resolving validates the MA actually exists (name-service lookup).
        self.fabric.resolve(ma)
        self.ma_name = ma
        self._initialized = True
        self.endpoint.start()

    def finalize(self) -> None:
        """diet_finalize(): frees session state.

        Per §4.3.1 this does *not* free memory of INOUT/OUT arguments
        already brought back to the client — profiles stay usable.
        """
        self._check_session()
        self._requests.clear()
        self._initialized = False

    def _check_session(self) -> None:
        if not self._initialized:
            raise NotInitializedError("diet_initialize() has not been called")

    def function_handle(self, service_name: str) -> FunctionHandle:
        """grpc_function_handle_default(service_name)."""
        self._check_session()
        return FunctionHandle(service_name)

    # -- calls ----------------------------------------------------------------------

    def call(self, profile: Profile,
             handle: Optional[FunctionHandle] = None
             ) -> Generator[Event, Any, int]:
        """diet_call(): synchronous solve.  Process helper.

        Returns the service's integer status; OUT/INOUT values are written
        back into ``profile`` (freshly allocated on the client side, as the
        C API does for OUT arguments).
        """
        self._check_session()
        profile.validate_for_submit()
        use_memo = self.memo_enabled
        while True:
            # Fabric-scoped (not process-global): identical campaigns get
            # identical request ids regardless of what ran before them.
            request_id = self.fabric.new_request_id()
            memo_key = None
            if use_memo:
                from ..data.memo import descriptor_digest

                memo_key = descriptor_digest(profile)

            # Data Location Manager view: persistent inputs already on SeDs.
            from .data import DataHandle

            resident: Dict[str, int] = {}
            for arg in profile.arguments:
                if isinstance(arg.value, DataHandle):
                    resident[arg.value.sed_name] = (
                        resident.get(arg.value.sed_name, 0) + arg.value.nbytes)

            sub = SubmitRequest(request_id=request_id,
                                service_desc=profile.desc,
                                client_host=self.host.name,
                                client_endpoint=self.endpoint.name,
                                request_nbytes=profile.request_nbytes(),
                                resident_bytes=resident,
                                data_handles=tuple(
                                    arg.value for arg in profile.arguments
                                    if isinstance(arg.value, DataHandle)),
                                memo_key=memo_key)
            # Lifecycle stamps (submitted_at/found_at/data_sent_at/
            # completed_at) are recorded by the endpoint's
            # TracingInterceptor as the messages pass through the pipeline.
            sed_name, est = yield from self.endpoint.rpc(
                self.ma_name, "submit", sub)
            if isinstance(est, MemoHit):
                try:
                    yield from absorb_memo_hit(self.endpoint, profile, est)
                except (CommunicationError, DataError):
                    # The owner died (or evicted the result) between the
                    # MA's lookup and our pull: fall back to a re-solve.
                    self.memo_fallbacks += 1
                    use_memo = False
                    continue
                if handle is not None:
                    handle.server = sed_name
                return 0
            if handle is not None:
                handle.server = sed_name

            solve_req = SolveRequest(request_id=request_id, profile=profile,
                                     client_endpoint=self.endpoint.name,
                                     memo_key=memo_key)
            reply = yield from self.endpoint.rpc(
                sed_name, "solve", solve_req, nbytes=profile.request_nbytes())

            for index, value in reply.out_values.items():
                profile.parameter(index).set(value)
            return reply.status

    def call_retry(self, profile: Profile,
                   handle: Optional[FunctionHandle] = None,
                   max_attempts: int = 3,
                   backoff: float = 0.0) -> Generator[Event, Any, int]:
        """diet_call with resubmission on *middleware* failure.

        A SeD that crashes mid-solve surfaces as
        :class:`CommunicationError` (its endpoint dead-letters the request);
        a hierarchy momentarily without candidates surfaces as
        :class:`ServerNotFoundError`.  Both mean the job was lost, not that
        it failed — so the profile is resubmitted through the normal MA
        finding path and a surviving (or restarted) SeD absorbs it.
        Application failures (non-zero status) return normally and are
        never retried.  The last attempt's exception propagates.
        """
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        attempt = 0
        while True:
            try:
                status = yield from self.call(profile, handle)
            except (CommunicationError, ServerNotFoundError):
                attempt += 1
                if attempt >= max_attempts:
                    raise
                self.resubmissions += 1
                if backoff > 0:
                    yield self.engine.timeout(backoff * attempt)
                continue
            return status

    #: Status reported for a cancelled asynchronous call.
    STATUS_CANCELLED = -1

    def _cancellable_call(self, profile: Profile,
                          handle: Optional[FunctionHandle],
                          max_attempts: int = 1,
                          backoff: float = 0.0
                          ) -> Generator[Event, Any, int]:
        from ..sim.engine import Interrupt

        try:
            if max_attempts > 1:
                status = yield from self.call_retry(
                    profile, handle, max_attempts=max_attempts, backoff=backoff)
            else:
                status = yield from self.call(profile, handle)
        except Interrupt:
            return self.STATUS_CANCELLED
        return status

    def call_async(self, profile: Profile,
                   handle: Optional[FunctionHandle] = None,
                   max_attempts: int = 1,
                   backoff: float = 0.0) -> AsyncRequest:
        """diet_call_async(): returns immediately with a request handle.

        ``max_attempts > 1`` makes the in-flight call resubmit on middleware
        failure with :meth:`call_retry` semantics.
        """
        self._check_session()
        proc = self.engine.process(
            self._cancellable_call(profile, handle, max_attempts, backoff),
            name=f"call:{profile.path}")
        req = AsyncRequest(request_id=0, profile=profile, process=proc,
                           _client=self)
        # The request id is only known once the call process starts; expose
        # the process itself for waiting, and a session id for bookkeeping.
        req.request_id = next(self._session_ids)
        self._requests[req.request_id] = req
        return req

    def probe(self, session_id: int) -> int:
        """grpc_probe(): 0 if complete, raises NotCompletedError otherwise."""
        req = self._requests.get(session_id)
        if req is None:
            raise InvalidSessionError(f"unknown session {session_id}")
        if not req.done:
            raise NotCompletedError(f"session {session_id} still running")
        return 0

    def wait_all(self) -> Generator[Event, Any, Dict[int, int]]:
        """grpc_wait_all(): suspend until every async request completes."""
        self._check_session()
        procs = [r.process for r in self._requests.values()]
        if procs:
            yield self.engine.all_of(procs)
        return {sid: r.process.value for sid, r in self._requests.items()}

    def wait_any(self) -> Generator[Event, Any, int]:
        """grpc_wait_any(): suspend until one request completes; its id."""
        self._check_session()
        pending = [r for r in self._requests.values() if not r.done]
        if not pending:
            raise InvalidSessionError("no pending requests")
        yield self.engine.any_of([r.process for r in pending])
        for r in pending:
            if r.done:
                return r.request_id
        raise AssertionError("any_of fired with no completed request")
