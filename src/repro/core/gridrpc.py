"""GridRPC facade: ``grpc_*`` aliases over the client API.

§4.3.1: "The client API follows the GridRPC definition: all diet_ functions
are 'duplicated' with grpc_ functions.  Both diet_initialize() /
grpc_initialize() and diet_finalize() / grpc_finalize() belong to the
GridRPC API."

These free functions operate on an explicit :class:`DietClient` (the C API
keeps the session in a hidden global; we require it as the first argument,
which keeps tests parallel-safe).  Functions that must run inside a
simulation process are generators, like the methods they wrap.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Sequence

from .client import AsyncRequest, DietClient, FunctionHandle
from .exceptions import GRPC_NO_ERROR
from .pipeline import DeadlineInterceptor
from .profile import Profile, ProfileDesc

__all__ = [
    "grpc_initialize",
    "grpc_finalize",
    "grpc_function_handle_default",
    "grpc_profile_alloc",
    "grpc_call",
    "grpc_call_async",
    "grpc_cancel",
    "grpc_probe",
    "grpc_set_deadline",
    "grpc_wait",
    "grpc_wait_all",
    "grpc_wait_any",
]


def grpc_initialize(client: DietClient, config: Dict[str, Any]) -> int:
    client.initialize(config)
    return GRPC_NO_ERROR


def grpc_finalize(client: DietClient) -> int:
    client.finalize()
    return GRPC_NO_ERROR


def grpc_function_handle_default(client: DietClient, service_name: str) -> FunctionHandle:
    return client.function_handle(service_name)


def grpc_profile_alloc(desc: ProfileDesc) -> Profile:
    """diet_profile_alloc: allocates every argument slot (§4.3.2: 'no
    allocation function is required' beyond this one)."""
    return desc.instantiate()


def grpc_call(client: DietClient, handle: FunctionHandle,
              profile: Profile) -> Generator[Any, Any, int]:
    """Synchronous GridRPC call (process helper)."""
    status = yield from client.call(profile, handle)
    return status


def grpc_call_async(client: DietClient, handle: FunctionHandle,
                    profile: Profile) -> AsyncRequest:
    return client.call_async(profile, handle)


def grpc_probe(client: DietClient, session_id: int) -> int:
    return client.probe(session_id)


def grpc_cancel(request: AsyncRequest) -> bool:
    """Abort an in-flight asynchronous call (client side)."""
    return request.cancel()


def grpc_wait(request: AsyncRequest) -> Generator[Any, Any, int]:
    status = yield from request.wait()
    return status


def grpc_wait_all(client: DietClient) -> Generator[Any, Any, Dict[int, int]]:
    statuses = yield from client.wait_all()
    return statuses


def grpc_wait_any(client: DietClient) -> Generator[Any, Any, int]:
    sid = yield from client.wait_any()
    return sid


def grpc_set_deadline(client: DietClient, deadline: float, retries: int = 0,
                      backoff: float = 0.0,
                      ops: Sequence[str] = ("submit", "solve")) -> DeadlineInterceptor:
    """Give the client's calls a deadline (with optional retry/backoff).

    Installs a :class:`DeadlineInterceptor` on the client's endpoint — the
    same mechanism that bounds the agents' estimate fan-out — and returns it
    so it can be removed later (``client.endpoint.pipeline.remove(...)``).
    A call whose reply misses every deadline raises
    :class:`~repro.core.exceptions.DeadlineExceededError`.
    """
    return client.endpoint.pipeline.add(
        DeadlineInterceptor(deadline, retries=retries, backoff=backoff, ops=ops))
