"""Multi-MA federation: several DIET hierarchies over a multi-grid platform.

The paper's follow-up deployments run DIET with *several* Master Agents —
one hierarchy per grid — because a single MA is both a scalability
bottleneck and a single point of failure.  This module models that
platform (ROADMAP item 1):

* :func:`federation_cluster_specs` replicates the §5.1 cluster catalogue
  across ``n_grids`` grids (sites prefixed ``g0-``, ``g1-``, ...), all
  star-attached to one shared RENATER-style core, and
  :func:`build_federation` stands up one MA→LA→SeD hierarchy per grid on
  a single shared :class:`~repro.core.transport.TransportFabric`;
* :class:`FederatedClient` implements the inter-MA redirection policy: a
  client is homed on one MA and, when that MA rejects the request
  (:class:`~repro.core.exceptions.ServerNotFoundError`) or is unreachable
  (:class:`~repro.core.exceptions.CommunicationError`), rotates through
  the sibling MAs in federation order before giving up;
* :func:`schedule_churn` draws non-overlapping SeD outages from named
  random streams and hands them to the existing
  :class:`~repro.sim.failures.FailureInjector` — grid nodes disappear and
  come back while load is offered.

Everything is deterministic per seed: victim choice uses
``choice(replace=False)`` (the injector forbids overlapping outages per
victim), MA/LA/SeD names embed the grid index, and request ids stay
fabric-scoped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, Tuple

import numpy as np

from ..obs import Observability
from ..platform.grid5000 import (
    _LAN_BW,
    _LAN_LATENCY,
    PAPER_CLUSTERS,
    ClusterSpec,
    Grid5000Platform,
    build_grid5000,
)
from ..sim.engine import Engine, Event
from ..sim.failures import FailureInjector, Outage
from ..sim.network import Host, Link
from ..sim.rng import RandomStreams
from .agent import AgentParams, LocalAgent, MasterAgent
from .client import absorb_memo_hit
from .data import DataHandle
from .exceptions import (CommunicationError, DataError, DietError,
                         ServerNotFoundError)
from .profile import Profile
from .requests import MemoHit, SolveRequest, SubmitRequest
from .sed import SeD, SeDParams
from .statistics import Tracer
from .transport import TransportFabric

__all__ = ["FederationConfig", "FederatedGrid", "Federation",
           "FederatedClient", "ChurnPlan", "federation_cluster_specs",
           "build_federation", "schedule_churn"]


@dataclass(frozen=True)
class FederationConfig:
    """Shape of one federated deployment."""

    #: Independent MA hierarchies (one per grid).
    n_grids: int = 2
    #: Clusters per grid, drawn cyclically from the §5.1 catalogue.
    clusters_per_grid: int = 2
    #: Estimate flow of every hierarchy ("pull" or "push").
    routing: str = "pull"
    #: Agent knobs shared by every MA/LA (None = defaults).  Set
    #: ``heartbeat_interval`` here when churn is injected — push mode
    #: relies on the heartbeat cascade to invalidate dead SeDs' rows.
    agent_params: Optional[AgentParams] = None
    #: SeD knobs shared by every SeD (None = defaults).
    sed_params: Optional[SeDParams] = None
    #: Deploy a federation-wide result memo
    #: (:class:`repro.data.memo.MemoIndex`) consulted by every MA and
    #: populated by every SeD.  Off by default — a memo-less federation is
    #: byte-identical to one built before the memo existed.
    memo: bool = False
    #: Scheduling policy name (:data:`repro.core.scheduling.POLICIES`) each
    #: MA runs; None keeps the DefaultPolicy (the paper's baseline).
    policy: Optional[str] = None
    #: Attach a federation-wide :class:`~repro.data.manager.DataGrid` with
    #: this :class:`~repro.data.manager.DataManagerConfig` (replica catalog
    #: on every agent, per-SeD stores, MCT data-locality hook).  None — the
    #: default — wires nothing, byte-identical to before the data layer.
    data: Optional[Any] = None
    #: Where :class:`FederatedClient`\s run.  ``"per-grid"`` attaches one
    #: client host per grid to that grid's first site router, so client→MA
    #: latency is priced by the network model; ``"core"`` is the legacy
    #: placement on the shared core service node (kept for byte-compat
    #: with pre-existing sweeps — E13 pins it).
    client_placement: str = "per-grid"

    def __post_init__(self) -> None:
        if self.n_grids < 1:
            raise ValueError(f"n_grids must be >= 1, got {self.n_grids}")
        if self.clusters_per_grid < 1:
            raise ValueError(f"clusters_per_grid must be >= 1, "
                             f"got {self.clusters_per_grid}")
        if self.client_placement not in ("per-grid", "core"):
            raise ValueError(f"client_placement must be 'per-grid' or "
                             f"'core', got {self.client_placement!r}")


def federation_cluster_specs(n_grids: int,
                             clusters_per_grid: int) -> List[ClusterSpec]:
    """The §5.1 catalogue replicated across grids.

    Site names gain a ``g{i}-`` prefix so each grid keeps its own site
    routers (and NFS volumes) while sharing the single core the one
    :func:`~repro.platform.grid5000.build_grid5000` call creates — a star
    of grids instead of a star of sites.
    """
    specs: List[ClusterSpec] = []
    for g in range(n_grids):
        for c in range(clusters_per_grid):
            base = PAPER_CLUSTERS[c % len(PAPER_CLUSTERS)]
            specs.append(ClusterSpec(
                site=f"g{g}-{base.site}", name=base.name,
                machine_key=base.machine_key,
                total_nodes=base.total_nodes, n_seds=base.n_seds,
                efficiency=base.efficiency, wan_latency=base.wan_latency))
    return specs


@dataclass
class FederatedGrid:
    """One grid's hierarchy: its MA, LAs and SeDs."""

    index: int
    ma: MasterAgent
    local_agents: List[LocalAgent] = field(default_factory=list)
    seds: List[SeD] = field(default_factory=list)
    #: This grid's dedicated client host ("per-grid" placement); None
    #: under the legacy "core" placement.
    client_host: Optional[Host] = None

    def launch(self) -> None:
        self.ma.launch()
        for la in self.local_agents:
            la.launch()
        for sed in self.seds:
            sed.launch()


@dataclass
class Federation:
    """A built federation: shared fabric + one hierarchy per grid."""

    engine: Engine
    fabric: TransportFabric
    tracer: Tracer
    platform: Grid5000Platform
    config: FederationConfig
    grids: List[FederatedGrid] = field(default_factory=list)
    #: The shared :class:`repro.data.memo.MemoIndex` when
    #: ``config.memo`` is set; None otherwise.
    memo: Optional[Any] = None
    #: The federation-wide :class:`~repro.data.manager.DataGrid` when
    #: ``config.data`` is set; None otherwise.
    data_grid: Optional[Any] = None

    @property
    def ma_names(self) -> List[str]:
        return [grid.ma.name for grid in self.grids]

    @property
    def seds(self) -> List[SeD]:
        out: List[SeD] = []
        for grid in self.grids:
            out.extend(grid.seds)
        return out

    @property
    def client_host(self) -> Host:
        """The shared core-attached service node clients run on."""
        return self.platform.client_host

    def client_host_for(self, grid_index: int) -> Host:
        """Where a client homed on ``grid_index`` runs: the grid's own
        client host under "per-grid" placement, else the shared core node.
        """
        grid = self.grids[grid_index % len(self.grids)]
        if grid.client_host is not None:
            return grid.client_host
        return self.platform.client_host

    def launch_all(self) -> None:
        for grid in self.grids:
            grid.launch()

    def add_service_everywhere(self, make_desc, solve_func) -> None:
        """Register ``make_desc()`` with ``solve_func`` on every SeD."""
        for sed in self.seds:
            sed.add_service(make_desc(), solve_func)


def build_federation(engine: Engine, config: FederationConfig,
                     obs: Optional[Observability] = None) -> Federation:
    """Stand up ``config.n_grids`` MA hierarchies over one shared platform.

    Each grid gets its own MA host attached to its first site's router
    (mirroring the paper's Lyon service node, one per grid); the platform's
    own ``lyon-ma`` fallback host hangs off the shared core and serves as
    the federation-wide client host.
    """
    specs = federation_cluster_specs(config.n_grids, config.clusters_per_grid)
    platform = build_grid5000(engine, specs)
    fabric = TransportFabric(engine, platform.network)
    tracer = Tracer(obs)
    engine.obs = tracer.obs

    federation = Federation(engine=engine, fabric=fabric, tracer=tracer,
                            platform=platform, config=config)
    memo = None
    if config.memo:
        # Imported lazily: repro.data depends on repro.core at module level.
        from ..data.memo import MemoIndex

        memo = MemoIndex(obs=tracer.obs)
        federation.memo = memo
    data_grid = None
    if config.data is not None:
        # One federation-wide replica catalog: handles resolve across
        # grids, matching the federation-wide memo.
        from ..data.manager import DataGrid

        data_grid = DataGrid(platform.network)
        federation.data_grid = data_grid
    for g in range(config.n_grids):
        prefix = f"g{g}-"
        clusters = [cluster for name, cluster in platform.clusters.items()
                    if cluster.spec.site.startswith(prefix)]
        if not clusters:
            raise DietError(f"grid {g} built no clusters")
        ma_host = platform.network.add_host(
            Host(engine, f"{prefix}ma", speed=2.4))
        site_router = platform.sites[clusters[0].spec.site].router
        platform.network.connect(
            ma_host.name, site_router.name,
            Link(engine, f"lan-{prefix}ma", _LAN_LATENCY, _LAN_BW))
        policy = None
        if config.policy is not None:
            # A fresh instance per MA: policies keep per-hierarchy state
            # (round-robin counters, history means).
            from .scheduling import make_policy

            policy = make_policy(config.policy)
        ma = MasterAgent(fabric, ma_host, name=f"MA{g}",
                         params=config.agent_params, tracer=tracer,
                         routing=config.routing, policy=policy)
        ma.memo = memo
        if data_grid is not None:
            ma.data_catalog = data_grid.root
            ma.data_cost_fn = data_grid.transfer_cost
        grid = FederatedGrid(index=g, ma=ma)
        if config.client_placement == "per-grid":
            client_host = platform.network.add_host(
                Host(engine, f"{prefix}client", speed=2.4))
            platform.network.connect(
                client_host.name, site_router.name,
                Link(engine, f"lan-{prefix}client", _LAN_LATENCY, _LAN_BW))
            grid.client_host = client_host
        for cluster in clusters:
            la = LocalAgent(fabric, cluster.frontend,
                            name=f"LA-{cluster.full_name}", parent=ma.name,
                            params=config.agent_params, tracer=tracer,
                            routing=config.routing)
            la.memo = memo
            la_node = None
            if data_grid is not None:
                la_node = data_grid.node(la.name)
                la.data_catalog = la_node
                data_grid.volumes[cluster.nfs.name] = cluster.nfs
            ma.add_child(la.name)
            grid.local_agents.append(la)
            for host in cluster.sed_hosts:
                sed = SeD(fabric, host, name=f"SeD-{host.name}",
                          ma_name=ma.name, params=config.sed_params,
                          tracer=tracer, nfs=cluster.nfs, parent=la.name,
                          routing=config.routing)
                sed.data_manager.memo = memo
                if data_grid is not None:
                    data_grid.attach(sed, la_node, config.data)
                la.add_child(sed.name)
                grid.seds.append(sed)
        federation.grids.append(grid)
    return federation


class FederatedClient:
    """A client homed on one MA that fails over to sibling MAs.

    Redirection policy: MAs are tried in least-recent-rejection order —
    the MA-level load feedback loop.  Before any MA has refused this
    client the order is exactly the old home-first rotation; once an MA
    rejects (``ServerNotFoundError`` — no candidate survived the grace
    period) or is unreachable (``CommunicationError``), it sinks to the
    back of the order until every other MA has rejected more recently.
    The per-MA refusal counts/stamps feeding the order are the same
    events exported as the ``federation.rejections`` metric (labelled by
    MA), so the policy consumes exactly what observability reports.  The
    request fails only once every tried MA declined.  ``redirects``
    counts submits retried on a sibling MA, ``rejections`` every per-MA
    refusal.
    """

    def __init__(self, fabric: TransportFabric, host: Host, name: str,
                 ma_names: List[str], home: int = 0,
                 tracer: Optional[Tracer] = None,
                 max_redirects: Optional[int] = None,
                 memo_enabled: bool = False):
        if not ma_names:
            raise DietError("a FederatedClient needs at least one MA")
        self.fabric = fabric
        self.engine: Engine = fabric.engine
        self.host = host
        self.name = name
        self.ma_names = list(ma_names)
        self.home = home % len(self.ma_names)
        self.tracer = tracer or Tracer()
        #: None tries every MA once; otherwise at most this many siblings.
        self.max_redirects = max_redirects
        self.endpoint = fabric.endpoint(name, host.name)
        self.endpoint.start()
        self.redirects = 0
        self.rejections = 0
        #: Per-MA refusal counts (the ``federation.rejections`` breakdown).
        self.rejections_by_ma: dict = {}
        #: Simulated instant each MA last refused us; feeds the
        #: least-recent-rejection order.
        self._last_rejected: dict = {}
        #: Stamp submits with canonical request-descriptor digests so MAs
        #: can answer repeats from the federation-wide memo.
        self.memo_enabled = memo_enabled
        #: Memo hits whose owner vanished before the pull; each fell back
        #: to a fresh memo-less submit round.
        self.memo_fallbacks = 0

    def _ma_order(self) -> List[str]:
        """Least-recent-rejection order, home-rotation as the tiebreak.

        Deterministic: never-rejected MAs sort first in rotation order
        (byte-identical to the old fixed rotation until the first
        rejection), then ascending last-rejection stamp — simulated time,
        so identical per seed.
        """
        n = len(self.ma_names)
        rotation = [self.ma_names[(self.home + i) % n] for i in range(n)]
        position = {name: i for i, name in enumerate(rotation)}
        order = sorted(rotation,
                       key=lambda name: (
                           self._last_rejected.get(name, float("-inf")),
                           position[name]))
        if self.max_redirects is not None:
            order = order[:self.max_redirects + 1]
        return order

    def _note_rejection(self, ma_name: str) -> None:
        self.rejections += 1
        self.rejections_by_ma[ma_name] = \
            self.rejections_by_ma.get(ma_name, 0) + 1
        self._last_rejected[ma_name] = self.engine.now

    def call(self, profile: Profile
             ) -> Generator[Event, Any, Tuple[int, str, float]]:
        """Submit through the federation, then solve; a process helper.

        Returns ``(status, sed_name, found_at)`` where ``found_at`` is the
        simulated instant the winning submit reply arrived (finding time =
        ``found_at - submit start``, redirects included).  Raises the last
        MA's error when every MA declined; a SeD crash mid-solve raises
        ``CommunicationError`` exactly like the single-MA client.
        """
        profile.validate_for_submit()
        obs = self.tracer.obs
        use_memo = self.memo_enabled
        while True:
            memo_key = None
            if use_memo:
                # Lazy: repro.data depends on repro.core at module level.
                from ..data.memo import descriptor_digest

                memo_key = descriptor_digest(profile)
            last_error: Optional[Exception] = None
            fell_back = False
            order = self._ma_order()
            resident: dict = {}
            handles = []
            for arg in profile.arguments:
                if isinstance(arg.value, DataHandle):
                    handles.append(arg.value)
                    resident[arg.value.sed_name] = \
                        resident.get(arg.value.sed_name, 0) + arg.value.nbytes
            for i, ma_name in enumerate(order):
                request_id = self.fabric.new_request_id()
                sub = SubmitRequest(request_id=request_id,
                                    service_desc=profile.desc,
                                    client_host=self.host.name,
                                    client_endpoint=self.endpoint.name,
                                    request_nbytes=profile.request_nbytes(),
                                    resident_bytes=resident,
                                    data_handles=tuple(handles),
                                    memo_key=memo_key)
                try:
                    sed_name, est = yield from self.endpoint.rpc(
                        ma_name, "submit", sub)
                except (ServerNotFoundError, CommunicationError) as exc:
                    last_error = exc
                    self._note_rejection(ma_name)
                    if obs.enabled:
                        obs.metrics.counter("federation.rejections",
                                            ma=ma_name).inc(1, self.engine.now)
                    if i + 1 < len(order):
                        self.redirects += 1
                        if obs.enabled:
                            obs.metrics.counter("federation.redirects").inc(
                                1, self.engine.now)
                    continue
                found_at = self.engine.now
                if isinstance(est, MemoHit):
                    try:
                        yield from absorb_memo_hit(self.endpoint, profile,
                                                   est)
                    except (CommunicationError, DataError):
                        # Owner died between lookup and pull: retry the
                        # whole submit round without the stale hit.
                        self.memo_fallbacks += 1
                        fell_back = True
                        break
                    return 0, est.owner, found_at
                reply = yield from self.endpoint.rpc(
                    sed_name, "solve",
                    SolveRequest(request_id=request_id, profile=profile,
                                 client_endpoint=self.endpoint.name,
                                 memo_key=memo_key),
                    nbytes=profile.request_nbytes())
                for index, value in reply.out_values.items():
                    profile.parameter(index).set(value)
                return reply.status, sed_name, found_at
            if fell_back:
                use_memo = False
                continue
            raise (last_error if last_error is not None
                   else ServerNotFoundError("no MA accepted the request"))


@dataclass(frozen=True)
class ChurnPlan:
    """SeD churn drawn for one run: how many outages, when, how long."""

    #: Distinct SeD victims (one outage each — no overlap by construction).
    n_outages: int
    #: Crash instants are uniform over [start, end).
    start: float
    end: float
    #: Exponential mean downtime, floored at ``min_downtime``.
    mean_downtime: float = 5.0
    min_downtime: float = 1.0

    def __post_init__(self) -> None:
        if self.n_outages < 0:
            raise ValueError(f"n_outages must be >= 0, got {self.n_outages}")
        if self.end < self.start:
            raise ValueError(f"churn window ends ({self.end}) before it "
                             f"starts ({self.start})")


def schedule_churn(federation: Federation, plan: ChurnPlan,
                   streams: RandomStreams) -> FailureInjector:
    """Draw ``plan`` deterministically and arm the failure injector.

    Victims are drawn without replacement across the whole federation (the
    injector treats overlapping outages of one victim as a caller bug), so
    at most every SeD crashes once.
    """
    injector = FailureInjector(federation.engine)
    seds = federation.seds
    n = min(plan.n_outages, len(seds))
    if n == 0:
        return injector
    rng = streams.get("federation", "churn")
    victims = rng.choice(len(seds), size=n, replace=False)
    crash_ats = rng.uniform(plan.start, plan.end, size=n)
    downtimes = np.maximum(plan.min_downtime,
                           rng.exponential(plan.mean_downtime, size=n))
    for idx, at, downtime in zip(victims, crash_ats, downtimes):
        injector.schedule(seds[int(idx)],
                          [Outage(float(at), float(downtime))])
    return injector
