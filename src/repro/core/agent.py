"""The agent hierarchy: Local Agents and the Master Agent.

§2.1 of the paper: "When a Master Agent receives a computation request from
a client, agents collect computation abilities from servers (through the
hierarchy) and chooses the best one according to some scheduling
heuristics.  The MA sends back a reference to the chosen server."

Two routing modes share this module (see DESIGN.md, "Scheduling
architecture: pull vs push aggregation"):

``pull`` (default, the paper's protocol)
    every ``submit`` fans an estimation request down the tree and gathers
    fresh vectors back up — O(tree) messages per request, faithful to the
    measured 11-SeD deployment and kept byte-identical for the figures;

``push`` (the scale path)
    SeDs push estimate *deltas* upward on state changes; agents fold them
    into materialized per-service top-k tables
    (:mod:`repro.core.aggregation`) and forward only table *changes*; the
    MA answers ``submit`` from its table, admitting requests in batches —
    routing cost no longer depends on hierarchy size.

In both modes the Master Agent owns the
:class:`~repro.core.scheduling.SchedulerPolicy` that ranks candidates, the
dispatch history used by the default policy, and the completion feedback
consumed by history-based plug-in schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from ..sim.engine import Engine, Event, Interrupt
from ..sim.network import Host
from ..sim.resources import Store
from .aggregation import AggregationTable
from .exceptions import ServerNotFoundError
from .liveness import HeartbeatConfig, HeartbeatMonitor
from .pipeline import DeadlineInterceptor, TracingInterceptor
from .requests import EstimateDelta, EstimateRequest, MemoHit, SubmitRequest
from .scheduling import (
    EST_NBJOBS,
    EST_SPEED,
    DefaultPolicy,
    EstimationVector,
    SchedulerPolicy,
    SchedulingContext,
)
from .statistics import Tracer
from .transport import Endpoint, TransportFabric

__all__ = ["AgentParams", "LocalAgent", "MasterAgent", "ROUTING_MODES"]

#: Valid values of the agents' ``routing`` switch.
ROUTING_MODES = ("pull", "push")


@dataclass(frozen=True)
class AgentParams:
    """Agent-side processing cost per request (sorting, bookkeeping)."""

    processing_time: float = 1.8e-3
    #: Give up on children that do not answer within this many seconds
    #: (covers crashed SeDs in the failure-injection tests).  Enforced by a
    #: :class:`DeadlineInterceptor` on the agent's endpoint.
    child_timeout: float = 10.0
    #: Re-send an unanswered estimate this many times before giving up on
    #: the child (recovers a dropped request instead of pruning its subtree).
    child_retries: int = 0
    #: Seconds to wait between estimate retries (multiplied by the attempt).
    retry_backoff: float = 0.0
    #: LA-side aggregation: forward only the best ``aggregate_top_k``
    #: estimates upward (§2.1: agents sort responses through the hierarchy).
    #: None forwards everything — the MA then sees every candidate, which
    #: the stateful default/MCT policies need; a top-k cut trades candidate
    #: visibility for smaller response messages in very wide hierarchies.
    aggregate_top_k: Optional[int] = None
    #: Seconds between liveness pings to children; None (the default)
    #: disables the heartbeat monitor entirely, preserving the happy-path
    #: deployment byte for byte.
    heartbeat_interval: Optional[float] = None
    #: Seconds to wait for a pong before counting a miss.
    heartbeat_timeout: float = 2.0
    #: Consecutive misses before a child is deregistered.
    heartbeat_miss_threshold: int = 2
    #: Push mode: most submits admitted per admission-loop wake-up.  The
    #: loop pays one ``processing_time`` per batch, so a burst of
    #: simultaneous requests costs one agent charge instead of one each.
    admission_batch_max: int = 64


class LocalAgent:
    """An interior node of the hierarchy: fans requests out to its children.

    Children are endpoint names: SeDs for a leaf LA, further LAs otherwise
    (DIET allows arbitrary depth; the paper's deployment is MA -> 6 LA ->
    SeDs).  The LA concatenates child estimate lists — ranking happens once,
    at the MA, where the scheduling context lives.
    """

    def __init__(self, fabric: TransportFabric, host: Host, name: str,
                 parent: Optional[str] = None,
                 params: Optional[AgentParams] = None,
                 tracer: Optional[Tracer] = None,
                 routing: str = "pull"):
        if routing not in ROUTING_MODES:
            raise ValueError(f"routing must be one of {ROUTING_MODES}, "
                             f"got {routing!r}")
        self.routing = routing
        self.fabric = fabric
        self.engine: Engine = fabric.engine
        self.host = host
        self.name = name
        self.parent = parent
        self.params = params or AgentParams()
        #: Shared deployment tracer; liveness marks and scheduler metrics
        #: reach the observability hub through ``tracer.obs``.
        self.tracer = tracer or Tracer()
        self.children: List[str] = []
        self.endpoint: Endpoint = fabric.endpoint(name, host.name)
        #: Child fan-out timeout/retry, shared with every other RPC deadline
        #: through the one pipeline mechanism.
        self.deadline = self.endpoint.pipeline.add(DeadlineInterceptor(
            self.params.child_timeout, retries=self.params.child_retries,
            backoff=self.params.retry_backoff, ops=("estimate",)))
        self.endpoint.on("estimate", self._handle_estimate)
        self.endpoint.on("register", self._handle_register)
        self.endpoint.on("ping", self._handle_ping)
        #: Liveness: with ``heartbeat_interval`` set the agent pings its
        #: children and deregisters the persistently silent ones, so a
        #: crashed SeD stops costing a ``child_timeout`` on every request.
        self.heartbeat: Optional[HeartbeatMonitor] = None
        if self.params.heartbeat_interval is not None:
            self.endpoint.pipeline.add(DeadlineInterceptor(
                self.params.heartbeat_timeout, ops=("ping",)))
            self.heartbeat = HeartbeatMonitor(self, HeartbeatConfig(
                interval=self.params.heartbeat_interval,
                timeout=self.params.heartbeat_timeout,
                miss_threshold=self.params.heartbeat_miss_threshold))
        #: Children deregistered by the heartbeat monitor, in event order.
        self.deregistrations: List[str] = []
        #: Replica catalog node of this agent (set by the deployment when a
        #: data grid is wired; None keeps the agent data-unaware).
        self.data_catalog = None
        #: Grid-wide result memo (:class:`repro.data.memo.MemoIndex`), set
        #: by deployments that opt into memoization.  The MA consults it
        #: before scheduling; every agent invalidates a deregistered
        #: child's entries so a crashed SeD's results stop being served.
        self.memo = None
        self.endpoint.on("dm_locate", self._handle_dm_locate)
        #: Monitoring counters ("the information stored on an agent is the
        #: list of requests, the number of servers that can solve a given
        #: problem...", §2.1).
        self.request_count = 0
        #: Push mode: the materialized per-service candidate tables fed by
        #: ``est_delta`` messages from children (None in pull mode).
        self.table: Optional[AggregationTable] = None
        self._fwd_dirty = False
        if routing == "push":
            self.table = AggregationTable(top_k=self.params.aggregate_top_k)
            self.endpoint.on("est_delta", self._handle_est_delta)

    def add_child(self, endpoint_name: str) -> None:
        if endpoint_name in self.children:
            raise ValueError(f"child {endpoint_name!r} already attached to {self.name!r}")
        self.children.append(endpoint_name)

    def remove_child(self, endpoint_name: str) -> bool:
        """Deregister a child (heartbeat death); True if it was attached.

        Push mode additionally invalidates every table row that arrived
        through the dead child and propagates the removals upward — the
        table counterpart of pull mode's per-request subtree pruning.
        """
        try:
            self.children.remove(endpoint_name)
        except ValueError:
            return False
        self.deregistrations.append(endpoint_name)
        if self.memo is not None:
            # A dead child's memoized results are unreachable: drop them
            # (the cascade reaches the leaf agents, whose children are the
            # SeD owners the memo is keyed by).
            self.memo.invalidate_owner(endpoint_name, self.engine.now)
        if self.table is not None and self.table.drop_via(endpoint_name):
            # Pure removals: rows only disappeared, no service gained a
            # candidate — interior agents still cascade the shrink upward,
            # but the MA must not re-examine parked submits for it.
            self._on_table_change(frozenset())
        return True

    def launch(self) -> None:
        self.endpoint.start()
        if self.heartbeat is not None:
            self.heartbeat.launch()

    # -- child (re-)registration ----------------------------------------------------

    def _handle_register(self, msg) -> Generator[Event, Any, tuple]:
        """A SeD announcing itself (initial deployment wires children
        directly; this op is how a *restarted* SeD rejoins the hierarchy)."""
        child: str = msg.payload
        rejoined = child not in self.children
        if rejoined:
            self.children.append(child)
        if self.heartbeat is not None:
            self.heartbeat.note_registered(child, rejoined)
        return ("ok", 64)
        yield  # pragma: no cover - make this a generator function

    def _handle_ping(self, msg) -> Generator[Event, Any, tuple]:
        """Liveness probe from the parent's heartbeat monitor (the MA
        monitors its LAs exactly as LAs monitor their SeDs)."""
        return ("pong", 64)
        yield  # pragma: no cover - make this a generator function

    # -- replica catalog (DAGDA lookups) ---------------------------------------------

    def _handle_dm_locate(self, msg) -> Generator[Event, Any, tuple]:
        """Resolve replicas of a data id, with service-``find`` hop
        accounting: answer from this agent's catalog when it knows the id,
        else forward one level up (LA miss -> MA)."""
        data_id: str = msg.payload
        replicas = []
        if self.data_catalog is not None and data_id in self.data_catalog:
            replicas = self.data_catalog.locate(data_id)
        elif self.parent is not None:
            replicas = yield from self.endpoint.rpc(
                self.parent, "dm_locate", data_id)
        return (list(replicas), 64 + 96 * len(replicas))

    # -- push-mode delta ingest + upward forwarding ---------------------------------

    def _handle_est_delta(self, msg) -> Generator[Event, Any, None]:
        """Fold a child's estimate delta into the materialized tables."""
        delta: EstimateDelta = msg.payload
        if delta.source not in self.children:
            # Late delta from a deregistered child: its rows were already
            # invalidated; applying them would resurrect a dead candidate.
            return
        outcome = self.table.apply_delta(delta)
        if outcome:
            self._on_table_change(outcome.gained)
        return
        yield  # pragma: no cover - make this a generator function

    def _on_table_change(self, gained: frozenset) -> None:
        """React to table changes: interior agents cascade a diff upward
        (the MA has no parent — its table is read directly by admission).

        ``gained`` names the services that received applied update rows
        (empty for pure removals); interior agents forward either way, the
        MA override keys its parked-submit rescue on it.
        """
        if self.parent is not None:
            self._schedule_forward()

    def _schedule_forward(self) -> None:
        """Arm the (coalescing) forward pump; no-op while one is pending."""
        if self._fwd_dirty or self.endpoint.closed:
            return
        self._fwd_dirty = True
        self.engine.process(self._forward_pump(), name=f"fwd:{self.name}")

    def _forward_pump(self) -> Generator[Event, Any, None]:
        """One processing charge, then ship the accumulated table diff.

        Deltas that land within the ``processing_time`` window ride the
        same export, so a burst of child updates costs one upward message.
        Sending is best-effort: a stopped parent is liveness's problem, not
        the pump's.
        """
        yield self.engine.timeout(self.params.processing_time)
        self._fwd_dirty = False
        if self.endpoint.closed or self.parent is None:
            return
        updates, removals = self.table.export_diff()
        if not updates and not removals:
            return
        delta = EstimateDelta(self.name, updates, removals)
        yield from self.endpoint.try_send(self.parent, "est_delta", delta,
                                          nbytes=delta.wire_bytes())

    # -- estimate fan-out ----------------------------------------------------------

    def _child_estimate(self, child: str, req: EstimateRequest
                        ) -> Generator[Event, Any, List[EstimationVector]]:
        try:
            result = yield from self.endpoint.rpc(child, "estimate", req)
        except Exception:
            # A dead, misbehaving or timed-out child (DeadlineExceededError
            # from the endpoint's DeadlineInterceptor) prunes its subtree
            # from the candidate set; it must not fail the whole request.
            return []
        return list(result) if result else []

    def _gather(self, req: EstimateRequest) -> Generator[Event, Any, List[EstimationVector]]:
        self.request_count += 1
        yield self.engine.timeout(self.params.processing_time)
        if not self.children:
            return []
        procs = [self.engine.process(self._child_estimate(c, req),
                                     name=f"{self.name}->{c}")
                 for c in self.children]
        # Every child RPC carries its own deadline/retry budget (the
        # endpoint's DeadlineInterceptor), so each proc is guaranteed to
        # terminate — no fan-out-level watchdog needed.
        yield self.engine.all_of(procs)
        ests: List[EstimationVector] = []
        for proc in procs:
            ests.extend(proc.value)
        return ests

    def _aggregate(self, ests: List[EstimationVector]) -> List[EstimationVector]:
        """LA-level sort + optional truncation before forwarding upward.

        Stateless ordering only (queue length, then speed): the stateful
        ranking belongs to the MA where the scheduling context lives.
        """
        if self.params.aggregate_top_k is None or not ests:
            return ests
        ranked = sorted(ests, key=lambda e: (e.get(EST_NBJOBS, 0.0),
                                             -e.get(EST_SPEED, 0.0),
                                             e.sed_name))
        return ranked[:self.params.aggregate_top_k]

    def _handle_estimate(self, msg) -> Generator[Event, Any, tuple]:
        req: EstimateRequest = msg.payload
        ests = self._aggregate((yield from self._gather(req)))
        return (ests, 128 + 384 * len(ests))


class MasterAgent(LocalAgent):
    """The root of the hierarchy: clients submit here.

    Holds the scheduler policy + context and answers ``submit`` requests
    with the chosen SeD's endpoint name.
    """

    def __init__(self, fabric: TransportFabric, host: Host, name: str = "MA",
                 policy: Optional[SchedulerPolicy] = None,
                 params: Optional[AgentParams] = None,
                 tracer: Optional[Tracer] = None,
                 log_central: Optional[str] = None,
                 routing: str = "pull"):
        super().__init__(fabric, host, name, parent=None, params=params,
                         tracer=tracer, routing=routing)
        self.log_central = log_central
        self.policy = policy or DefaultPolicy()
        self.ctx = SchedulingContext()
        #: Requests refused because no candidate could serve them (mirrors
        #: the ``scheduler.rejections`` obs counter, available without obs).
        self.rejections = 0
        #: Push mode: submits park here; the admission loop drains them in
        #: batches against the materialized table.
        self._admission: Optional[Store] = None
        #: Submits with no candidates *yet* (cold start, a service whose
        #: first SeD has not pushed): held until a table change rescues
        #: them or their grace deadline rejects them.
        self._parked: List[list] = []
        #: The single expiry sweeper serving every parked submit (see
        #: :meth:`_park`); None while no submit is parked.
        self._sweep_proc = None
        self._sweep_target = float("inf")
        if self.routing == "push":
            self._admission = Store(self.engine)
        #: Data-locality pricing hook: ``fn(handles, candidate_names) ->
        #: {sed_name: seconds}`` (the deployment wires
        #: :meth:`repro.data.DataGrid.transfer_cost` here).  None when no
        #: data grid is deployed.
        self.data_cost_fn = None
        #: One call site for monitoring: journals to the tracer and posts
        #: the same event to LogCentral (when deployed).
        self.tracing = self.endpoint.pipeline.add(
            TracingInterceptor(self.tracer, log_central))
        self.endpoint.on("submit", self._handle_submit)
        self.endpoint.on("job_done", self._handle_job_done)

    def launch(self) -> None:
        super().launch()
        if self._admission is not None:
            self.engine.process(self._admission_loop(),
                                name=f"admit:{self.name}")

    def _handle_submit(self, msg) -> Generator[Event, Any, tuple]:
        sub: SubmitRequest = msg.payload
        obs = self.tracer.obs
        span = None
        if obs.enabled:
            # Nested inside the client's open "finding" span on the same
            # request track: scheduling is the agent-side share of finding.
            span = obs.spans.begin(
                f"req:{sub.request_id}", "schedule", self.engine.now,
                "schedule", request_id=sub.request_id, agent=self.name,
                service=sub.service_desc.path)
        if self._admission is not None:
            # Push mode: no fan-out — queue on the batched admission loop,
            # which answers from the materialized table (consulting the
            # memo at admission).  The deadline bounds how long a submit
            # may wait for its first candidate (cold start / unknown
            # service) before rejection; it mirrors pull mode's per-child
            # estimate deadline.
            self.request_count += 1
            done = Event(self.engine)
            item = [sub, done, self.engine.now + self.params.child_timeout,
                    False]
            self._admission.put(item)
            chosen, n_candidates = yield done
        elif (hit := self._memo_lookup(sub)) is not None:
            # Pull mode memo hit: the whole estimate fan-out is skipped —
            # one agent processing charge answers the submit with the
            # memoized result's handles.
            self.request_count += 1
            yield self.engine.timeout(self.params.processing_time)
            chosen, n_candidates = hit, 0
        else:
            req = EstimateRequest(sub.request_id, sub.service_desc,
                                  sub.client_host, sub.request_nbytes)
            candidates = yield from self._gather(req)
            n_candidates = len(candidates)
            chosen = self._admit(sub, candidates) if candidates else None
        if chosen is None:
            self.rejections += 1
            now = self.engine.now
            if obs.enabled:
                obs.spans.end(span, now, status="rejected")
                obs.metrics.counter("scheduler.rejections").inc(1, now)
            self.tracing.emit(self.endpoint, "schedule-reject",
                              request_id=sub.request_id,
                              service=sub.service_desc.path)
            raise ServerNotFoundError(
                f"no SeD can solve {sub.service_desc.path!r}")
        if isinstance(chosen, MemoHit):
            # Short-circuit: no solve is dispatched — the reply carries the
            # owning SeD's result handles instead of a schedule.
            if span is not None:
                obs.spans.end(span, self.engine.now, sed=chosen.owner,
                              n_candidates=0, memo="hit")
            self.tracing.emit(self.endpoint, "schedule-memo",
                              request_id=sub.request_id, sed=chosen.owner,
                              service=sub.service_desc.path)
            return ((chosen.owner, chosen), chosen.wire_bytes())
        if span is not None:
            now = self.engine.now
            obs.spans.end(span, now, sed=chosen.sed_name,
                          n_candidates=n_candidates)
            obs.metrics.counter("scheduler.dispatches",
                                sed=chosen.sed_name).inc(1, now)
        self.tracing.emit(self.endpoint, "schedule",
                          request_id=sub.request_id, sed=chosen.sed_name,
                          service=sub.service_desc.path,
                          n_candidates=n_candidates)
        return ((chosen.sed_name, chosen), 512)

    def _memo_lookup(self, sub: SubmitRequest) -> Optional[MemoHit]:
        """Consult the grid memo for one submit; None when the memo is off,
        the client sent no key, or the key misses."""
        if self.memo is None or sub.memo_key is None:
            return None
        return self.memo.lookup(sub.memo_key, self.engine.now)

    def _admit(self, sub: SubmitRequest, candidates: List[EstimationVector],
               hosts: Optional[Dict[str, str]] = None) -> EstimationVector:
        """Rank candidates for one request and record the dispatch.

        Pure bookkeeping, no yields: in pull mode the vectors just arrived
        from the gather; in push mode they are the table rows' vectors and
        ``hosts`` lets the MA price the client->SeD transfer for policies
        that read comm time (a pushed row predates the client, so the
        vector cannot carry it).
        """
        ctx = self.ctx
        ctx.now = self.engine.now
        ctx.service = sub.service_desc.path
        ctx.resident_bytes = sub.resident_bytes
        if self.data_cost_fn is not None and sub.data_handles:
            ctx.data_transfer_cost = self.data_cost_fn(
                sub.data_handles, [c.sed_name for c in candidates])
        else:
            ctx.data_transfer_cost = {}
        if hosts is not None and self.policy.uses_commtime:
            net = self.fabric.network
            ctx.comm_time = {
                sed: net.transfer_time(sub.client_host, host,
                                       sub.request_nbytes)
                for sed, host in hosts.items()}
        else:
            ctx.comm_time = {}
        chosen = self.policy.choose(candidates, ctx)
        assert chosen is not None
        ctx.note_dispatch(chosen.sed_name)
        return chosen

    def _admission_loop(self) -> Generator[Event, Any, None]:
        """Push mode: drain parked submits in batches against the table.

        One ``processing_time`` charge covers the whole batch — requests
        arriving in the same burst coalesce, so the per-request agent cost
        amortizes away.  Admissions within a batch stay in arrival order
        (the store is FIFO), preserving determinism.
        """
        store = self._admission
        batch_max = self.params.admission_batch_max
        while True:
            first = yield store.get()
            batch = [first]
            yield self.engine.timeout(self.params.processing_time)
            while len(batch) < batch_max:
                extra = store.try_get()
                if extra is None:
                    break
                batch.append(extra)
            for item in batch:
                sub, done, expires_at, memo_checked = item
                if done.triggered:
                    continue  # expired while parked/queued
                if not memo_checked:
                    # One memo consultation per submit, on its first
                    # admission pass (a parked item re-queued by a table
                    # change was already counted as a miss).
                    item[3] = True
                    hit = self._memo_lookup(sub)
                    if hit is not None:
                        done.succeed((hit, 0))
                        continue
                rows = self.table.candidates(sub.service_desc.path)
                if not rows:
                    if self.engine.now >= expires_at:
                        done.succeed((None, 0))
                    else:
                        self._park(item)
                    continue
                hosts = {row.sed_name: row.host for row in rows}
                chosen = self._admit(sub, [row.vector for row in rows],
                                     hosts)
                done.succeed((chosen, len(rows)))

    def _park(self, item: list) -> None:
        """Hold a candidate-less submit until a table change or expiry.

        One sweeper process serves every parked submit.  A per-item
        watchdog would sleep the full ``child_timeout`` even after its
        submit was admitted, leaving one dead timer on the event heap per
        admitted-after-park request — at load that is an O(in-flight)
        heap leak.  The sweeper instead sleeps until the *earliest*
        pending deadline (retargeted by interrupt when a re-park brings an
        earlier one) and expires whatever is due when it wakes, so the
        heap carries at most one live park timer at any moment.
        """
        self._parked.append(item)
        if self._sweep_proc is None or not self._sweep_proc.is_alive:
            # -inf sentinel: a fresh sweeper computes its own first target
            # (it must not be interrupted before its generator starts).
            self._sweep_target = float("-inf")
            self._sweep_proc = self.engine.process(
                self._expiry_sweep(), name=f"admit-park:{self.name}")
        elif item[2] < self._sweep_target:
            self._sweep_proc.interrupt("earlier park deadline")

    def _expiry_sweep(self) -> Generator[Event, Any, None]:
        """Reject parked submits whose grace deadline passed (see _park)."""
        while True:
            pending = [it for it in self._parked if not it[1].triggered]
            if not pending:
                return
            self._sweep_target = min(it[2] for it in pending)
            try:
                yield self.engine.timeout(
                    max(0.0, self._sweep_target - self.engine.now))
            except Interrupt:
                continue  # an earlier deadline was parked: retarget
            now = self.engine.now
            keep = []
            for it in self._parked:
                if it[1].triggered:
                    continue
                if it[2] <= now:
                    it[1].succeed((None, 0))
                else:
                    keep.append(it)
            self._parked = keep

    def _on_table_change(self, gained: frozenset) -> None:
        # The MA is the root: nothing cascades upward; instead table growth
        # may rescue submits parked for want of candidates (cold start, a
        # service whose first SeD just pushed).  Only submits whose service
        # actually *gained* a candidate row are re-queued: a pure removal
        # (heartbeat crash cascade) cannot help a candidate-less submit,
        # and re-examining every parked item on every churn event would
        # burn a full ``processing_time`` admission batch for nothing.
        if not self._parked or not gained:
            return
        keep = []
        for item in self._parked:
            if item[0].service_desc.path in gained:
                self._admission.put(item)
            else:
                keep.append(item)
        self._parked = keep

    def _handle_job_done(self, msg) -> Generator[Event, Any, None]:
        info = msg.payload
        self.ctx.note_completion(info["sed"], info["duration"],
                                 service=info.get("service", ""))
        self.tracing.emit(self.endpoint, "job-done", **info)
        return
        yield  # pragma: no cover - make this a generator function
