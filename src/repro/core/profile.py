"""Problem profiles and the SeD service table.

Mirrors ``DIET_server.h`` (§4.2.1–§4.2.2 of the paper):

* :class:`ProfileDesc` — the *description* of a service: a path (service
  name) plus ``last_in``, ``last_inout``, ``last_out`` indices and an array
  of argument descriptions (no values).  This is what both client and
  server must agree on ("to match client requests with server services,
  clients and servers must use the same problem description").
* :class:`Profile` — a concrete instance with values, built by the client
  (``diet_profile_alloc``) and shipped with the request.
* :class:`ServiceTable` — the per-SeD registry filled by
  ``diet_service_table_add`` before ``diet_SeD()`` is launched.

The paper's ramsesZoom2 example allocates
``diet_profile_desc_alloc("ramsesZoom2", 6, 6, 8)``: arguments 0..6 are IN,
none are INOUT (last_inout == last_in), and 7..8 are OUT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from .data import HANDLE_WIRE_BYTES, ArgDesc, DietArg, Direction
from .exceptions import ProfileError, ServiceNotFoundError

__all__ = ["ProfileDesc", "Profile", "ServiceTable", "SolveFunc"]


def _direction_of(index: int, last_in: int, last_inout: int, last_out: int) -> Direction:
    if index <= last_in:
        return Direction.IN
    if index <= last_inout:
        return Direction.INOUT
    return Direction.OUT


@dataclass
class ProfileDesc:
    """Type-level service description (diet_profile_desc_t).

    ``last_in``, ``last_inout`` and ``last_out`` "respectively point at the
    indexes in the array of the last IN, last INOUT and last OUT arguments";
    the array has ``last_out + 1`` slots.  ``last_in == -1`` means no IN
    arguments, etc.
    """

    path: str
    last_in: int
    last_inout: int
    last_out: int
    args: List[ArgDesc] = field(default_factory=list)

    def __post_init__(self):
        if not self.path:
            raise ProfileError("service path must be non-empty")
        if not (-1 <= self.last_in <= self.last_inout <= self.last_out):
            raise ProfileError(
                f"indices must satisfy -1 <= last_in <= last_inout <= last_out, "
                f"got ({self.last_in}, {self.last_inout}, {self.last_out})")
        if not self.args:
            self.args = [ArgDesc() for _ in range(self.last_out + 1)]
        elif len(self.args) != self.last_out + 1:
            raise ProfileError(
                f"args array must have last_out+1 = {self.last_out + 1} entries, "
                f"got {len(self.args)}")

    # -- C-API-style setters --------------------------------------------------

    def set_arg(self, index: int, desc: ArgDesc) -> None:
        """diet_generic_desc_set(diet_parameter(pb, index), ...)."""
        if not 0 <= index <= self.last_out:
            raise ProfileError(f"argument index {index} out of range [0, {self.last_out}]")
        self.args[index] = desc

    def direction(self, index: int) -> Direction:
        if not 0 <= index <= self.last_out:
            raise ProfileError(f"argument index {index} out of range [0, {self.last_out}]")
        return _direction_of(index, self.last_in, self.last_inout, self.last_out)

    @property
    def n_args(self) -> int:
        return self.last_out + 1

    def matches(self, other: "ProfileDesc") -> bool:
        """Structural service matching (name + arity + directions + types)."""
        return (self.path == other.path
                and self.last_in == other.last_in
                and self.last_inout == other.last_inout
                and self.last_out == other.last_out
                and all(a.composite is b.composite and a.base is b.base
                        for a, b in zip(self.args, other.args)))

    def instantiate(self) -> "Profile":
        """Client-side diet_profile_alloc: allocate all argument slots."""
        return Profile(self)

    def signature(self) -> str:
        dirs = [self.direction(i).value for i in range(self.n_args)]
        parts = [f"{d}:{a.describe()}" for d, a in zip(dirs, self.args)]
        return f"{self.path}({', '.join(parts)})"


class Profile:
    """A concrete call profile: the description plus one value slot per arg."""

    def __init__(self, desc: ProfileDesc):
        self.desc = desc
        self.arguments: List[DietArg] = [
            DietArg(desc=desc.args[i], direction=desc.direction(i))
            for i in range(desc.n_args)
        ]

    # -- paper-style accessors ---------------------------------------------------

    def parameter(self, index: int) -> DietArg:
        """diet_parameter(pb, index)."""
        if not 0 <= index < len(self.arguments):
            raise ProfileError(f"argument index {index} out of range")
        return self.arguments[index]

    def __iter__(self) -> Iterator[DietArg]:
        return iter(self.arguments)

    @property
    def path(self) -> str:
        return self.desc.path

    def in_args(self) -> List[DietArg]:
        return [a for a in self.arguments if a.direction is Direction.IN]

    def inout_args(self) -> List[DietArg]:
        return [a for a in self.arguments if a.direction is Direction.INOUT]

    def out_args(self) -> List[DietArg]:
        return [a for a in self.arguments if a.direction is Direction.OUT]

    # -- transport accounting ---------------------------------------------------

    def request_nbytes(self) -> int:
        """Bytes shipped client -> SeD (IN + INOUT values)."""
        return sum(a.nbytes for a in self.arguments
                   if a.direction in (Direction.IN, Direction.INOUT))

    def response_nbytes(self) -> int:
        """Bytes shipped SeD -> client (INOUT + returning OUT values).

        A produced OUT value that stays on the server (persistent,
        non-RETURN mode) still ships its :data:`HANDLE_WIRE_BYTES`-sized
        reference — charged here, exactly once, and nowhere else on the
        reply path.  Values are sized from what the producer actually set
        (``a.nbytes`` reads the declared FileRef/array size), never from a
        client-side placeholder.
        """
        total = 0
        for a in self.arguments:
            if a.direction is Direction.INOUT:
                total += a.nbytes
            elif a.direction is Direction.OUT:
                if a.desc.persistence.returns_to_client:
                    total += a.nbytes
                elif a.is_set and a.value is not None:
                    total += HANDLE_WIRE_BYTES
        return total

    def validate_for_submit(self) -> None:
        for i, arg in enumerate(self.arguments):
            try:
                arg.validate_for_submit()
            except ProfileError as exc:
                raise ProfileError(f"argument {i} of {self.path!r}: {exc}") from None


#: A solve function: takes (profile, solve-context) and is a *generator*
#: yielding simulation events (so it can charge time / do NFS I/O);
#: returns the integer status like the C `int solve_serviceName(profile)`.
SolveFunc = Callable[..., Any]


class ServiceTable:
    """The SeD-side service registry (diet_service_table_*)."""

    def __init__(self, max_size: int = 64):
        if max_size < 1:
            raise ProfileError("service table size must be >= 1")
        self.max_size = max_size
        self._services: Dict[str, tuple] = {}

    def add(self, profile_desc: ProfileDesc, convertor: Optional[Any],
            solve_func: SolveFunc) -> None:
        """diet_service_table_add(profile, convertor, solve_func).

        ``convertor`` is accepted for API fidelity and ignored — "this is
        out of scope of this paper and never used for this application".
        """
        if len(self._services) >= self.max_size:
            raise ProfileError(f"service table full (max_size={self.max_size})")
        if profile_desc.path in self._services:
            raise ProfileError(f"service {profile_desc.path!r} already registered")
        if not callable(solve_func):
            raise ProfileError("solve_func must be callable")
        self._services[profile_desc.path] = (profile_desc, solve_func)

    def lookup(self, path: str) -> tuple:
        try:
            return self._services[path]
        except KeyError:
            raise ServiceNotFoundError(f"no service {path!r} in table") from None

    def can_solve(self, desc: ProfileDesc) -> bool:
        entry = self._services.get(desc.path)
        return entry is not None and entry[0].matches(desc)

    def paths(self) -> List[str]:
        return sorted(self._services)

    def __len__(self) -> int:
        return len(self._services)

    def print_table(self) -> str:
        """diet_print_service_table(): human-readable dump."""
        lines = [f"Service table ({len(self._services)}/{self.max_size}):"]
        for path in self.paths():
            desc, _ = self._services[path]
            lines.append(f"  {desc.signature()}")
        return "\n".join(lines)
