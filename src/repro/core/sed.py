"""Server Daemon (SeD): service registration, estimation, solving.

§4.2 of the paper: a SeD "encapsulates a computational server", stores the
list of problems it can solve, answers monitoring queries from its parent
Local Agent and forks the solving function upon an application client
request.  The RAMSES deployment (§4.1) has each SeD manage a whole cluster
slice: one simulation at a time per SeD (``max_concurrent_solves=1``), the
property that produces the queueing visible in Figure 5's latency curve.

Solve functions are generator functions ``solve(profile, ctx)`` so they can
charge simulated time (``yield ctx.host.execute(work)``), touch the
cluster's NFS volume, and run the real Python RAMSES pipeline in REAL mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from ..sim.engine import Engine, Event, Interrupt
from ..sim.network import Host
from ..sim.resources import Resource
from ..platform.nfs import NfsVolume
from .agent import ROUTING_MODES
from .cori import CoRI
from .data import DataHandle, Direction
from .exceptions import DataError, DietError
from .pipeline import TracingInterceptor
from .profile import Profile, ProfileDesc, ServiceTable, SolveFunc
from .requests import (EstimateDelta, EstimateRequest, MemoHit, SolveReply,
                       SolveRequest)
from .statistics import Tracer
from .transport import Endpoint, TransportFabric

__all__ = ["SeDParams", "SolveContext", "SeD"]


@dataclass(frozen=True)
class SeDParams:
    """Timing knobs of one SeD."""

    #: Time to initiate a service once a job slot is free (fork of the solve
    #: function + MPI environment setup).  Paper §5.2: 20.8 ms average.
    service_init_time: float = 20.8e-3
    #: Simultaneous solves ("each server cannot compute more than one
    #: simulation at the same time", §5.1).
    max_concurrent_solves: int = 1
    #: CoRI probe duration, part of the finding time.
    estimate_collect_time: float = 11.3e-3


@dataclass
class SolveContext:
    """Everything a solve function may need."""

    engine: Engine
    host: Host
    sed: "SeD"
    nfs: Optional[NfsVolume] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def execute(self, work: float) -> Generator[Event, Any, None]:
        """Charge ``work`` normalized operations on the SeD's host."""
        yield from self.host.execute(work)


@dataclass
class _Registration:
    desc: ProfileDesc
    solve_func: SolveFunc
    #: Optional performance model: (profile_desc_or_profile) -> predicted
    #: seconds.  Used by plug-in schedulers; the default deployment has none
    #: (which is exactly why the paper's schedule is suboptimal).
    predictor: Optional[Callable[..., Optional[float]]] = None


class SeD:
    """A DIET Server Daemon bound to one simulated host."""

    def __init__(self, fabric: TransportFabric, host: Host, name: str,
                 ma_name: Optional[str] = None,
                 params: Optional[SeDParams] = None,
                 tracer: Optional[Tracer] = None,
                 nfs: Optional[NfsVolume] = None,
                 table_size: int = 64,
                 log_central: Optional[str] = None,
                 parent: Optional[str] = None,
                 routing: str = "pull"):
        if routing not in ROUTING_MODES:
            raise ValueError(f"routing must be one of {ROUTING_MODES}, "
                             f"got {routing!r}")
        self.routing = routing
        self.fabric = fabric
        self.engine = fabric.engine
        self.host = host
        self.name = name
        self.ma_name = ma_name
        #: Endpoint name of the parent Local Agent, used to re-register
        #: after a crash/restart cycle.  None disables re-registration.
        self.parent = parent
        self.params = params or SeDParams()
        self.tracer = tracer or Tracer()
        self.log_central = log_central
        self.nfs = nfs
        self.table = ServiceTable(max_size=table_size)
        self._registrations: Dict[str, _Registration] = {}
        self.job_slots = Resource(self.engine, capacity=self.params.max_concurrent_solves)
        self.cori = CoRI(self.engine, host, fabric.network,
                         collect_time=self.params.estimate_collect_time)
        self.endpoint: Endpoint = fabric.endpoint(name, host.name)
        #: Stamps data arrival on incoming solves (deliver phase) and gives
        #: solve_start / solve_end one emit() call site for tracer+LogCentral.
        self.tracing = self.endpoint.pipeline.add(
            TracingInterceptor(self.tracer, log_central))
        self._bind_handlers()
        #: DTM/DAGDA data agent.  Standalone by default (legacy persistent-
        #: data behaviour); ``DataGrid.attach`` upgrades it in place with a
        #: capacity-bounded store, replica catalog and transfer machinery.
        #: (Imported here: repro.data depends on repro.core at module level.)
        from ..data.manager import DataManager

        self.data_manager = DataManager(self)
        self.solve_count = 0
        self.solve_durations: List[float] = []
        self.crash_count = 0
        self._crashed = False
        self._launched = False
        #: Push routing: per-origin monotone stamp on every pushed row.
        #: Never reset — it must stay monotone across crash/restart cycles
        #: so a pre-crash straggler can't overwrite a post-restart row.
        self._push_seq = 0
        self._push_dirty = False

    def _bind_handlers(self) -> None:
        """Attach operation handlers to the current endpoint (a restart
        creates a fresh endpoint, so this runs once per incarnation)."""
        self.endpoint.on("estimate", self._handle_estimate)
        self.endpoint.on("solve", self._handle_solve)
        self.endpoint.on("fetch_data", self._handle_fetch_data)
        self.endpoint.on("dm_fetch", self._handle_fetch_data)
        self.endpoint.on("memo_fetch", self._handle_memo_fetch)
        self.endpoint.on("ping", self._handle_ping)

    # -- service registration (diet_service_table_add) ----------------------------

    def add_service(self, desc: ProfileDesc, solve_func: SolveFunc,
                    convertor: Any = None,
                    predictor: Optional[Callable] = None) -> None:
        self.table.add(desc, convertor, solve_func)
        self._registrations[desc.path] = _Registration(desc, solve_func, predictor)

    def launch(self) -> None:
        """diet_SeD(): start serving.  (Unlike the C API this returns — the
        serving loop lives as a simulation process.)"""
        if not self.table.paths():
            raise DietError("refusing to launch a SeD with an empty service table")
        self.endpoint.start()
        self._launched = True
        # Push routing: announce the initial (idle) estimates so the agent
        # tables know this SeD before the first request arrives.
        self._schedule_push()

    @property
    def n_jobs(self) -> int:
        """Running + queued solves (the EST_NBJOBS probe)."""
        return self.job_slots.count + self.job_slots.queue_length

    @property
    def cluster(self) -> str:
        """Cluster this SeD's host belongs to (metric/span label)."""
        return str(self.host.properties.get("cluster", self.host.name))

    @property
    def data_store(self):
        """The data manager's store (kept for the legacy attribute name)."""
        return self.data_manager.store

    # -- crash / restart (failure model) -------------------------------------------

    @property
    def is_down(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """The node hosting this SeD dies abruptly.

        Unbinding the endpoint dead-letters queued requests and interrupts
        every in-flight handler (the Interrupt unwinds ``execute()`` claims
        and job slots on its way out) — callers see
        :class:`~repro.core.exceptions.CommunicationError`, exactly as if
        the TCP connection to a real SeD had been torn down.  Volatile state
        (DTM data store) is lost with the process; anything on NFS survives.
        """
        if self._crashed:
            raise DietError(f"SeD {self.name!r} is already down")
        self._crashed = True
        self.crash_count += 1
        obs = self.tracer.obs
        if obs.enabled:
            now = self.engine.now
            obs.spans.mark(f"sed:{self.name}", "crash", now, sed=self.name)
            obs.metrics.counter("sed.crashes", sed=self.name).inc(1, now)
            # Abort every span this SeD's serving loop had open (queued and
            # in-flight solves), innermost first so statuses stay "aborted"
            # rather than cascaded "interrupted".
            for span in reversed(obs.spans.open_spans()):
                if span.attrs.get("sed") == self.name:
                    obs.spans.end(span, now, "aborted")
        self.fabric.unbind(self.name)
        self.data_manager.on_crash()
        if self.nfs is not None:
            # A crashed writer's in-flight NFS reservations must not leak
            # volume capacity (its partial files never land).
            self.nfs.release_host(self.host.name)

    def restart(self) -> None:
        """The node comes back: fresh endpoint, empty volatile state.

        Mirrors a SeD process being relaunched by the batch system — it
        re-announces itself to its parent LA (the ``register`` op) so the
        agent hierarchy picks it back up for scheduling; until that RPC
        lands the SeD is invisible, exactly like a real daemon between
        exec() and its CORBA bind.
        """
        if not self._crashed:
            raise DietError(f"SeD {self.name!r} is not down")
        self._crashed = False
        obs = self.tracer.obs
        if obs.enabled:
            now = self.engine.now
            obs.spans.mark(f"sed:{self.name}", "restart", now, sed=self.name)
            obs.metrics.counter("sed.restarts", sed=self.name).inc(1, now)
        # A push pump armed before the crash belongs to the dead
        # incarnation (it will see the endpoint swap below and exit without
        # touching state); its dirty flag must not suppress this
        # incarnation's first re-announce push.
        self._push_dirty = False
        self.endpoint = self.fabric.endpoint(self.name, self.host.name)
        self.tracing = self.endpoint.pipeline.add(
            TracingInterceptor(self.tracer, self.log_central))
        self._bind_handlers()
        if self._launched:
            self.endpoint.start()
            if self.parent is not None:
                self.engine.process(self._announce(),
                                    name=f"register:{self.name}")

    def _announce(self) -> Generator[Event, Any, None]:
        """Re-register with the parent LA, retrying a few times: the LA may
        itself be briefly unreachable right after our restart."""
        for attempt in range(3):
            try:
                yield from self.endpoint.rpc(self.parent, "register", self.name)
                # Rejoined: re-push our estimates — the LA invalidated (or
                # holds stale rows for) this SeD while it was down.
                self._schedule_push()
                return
            except Exception:
                if self.endpoint.closed:   # crashed again mid-announce
                    return
                yield self.engine.timeout(1.0 * (attempt + 1))

    def _handle_ping(self, msg) -> Generator[Event, Any, tuple]:
        """Liveness probe from the parent LA's heartbeat monitor."""
        return ("pong", 64)
        yield  # pragma: no cover - make this a generator function

    # -- estimation ---------------------------------------------------------------

    def _schedule_push(self) -> None:
        """Arm the push pump on a state change (solve start/end, queue
        change, launch, restart rejoin).  Coalescing: while a pump is
        pending, further changes ride its snapshot — the pump reads state
        *after* its probe delay, so it always ships the freshest view."""
        if (self.routing != "push" or self.parent is None or self._crashed
                or not self._launched or self._push_dirty):
            return
        self._push_dirty = True
        self.engine.process(self._push_pump(self.endpoint),
                            name=f"push:{self.name}")

    def _push_pump(self, endpoint: Endpoint) -> Generator[Event, Any, None]:
        """Pay one CoRI probe, then push fresh vectors for every service.

        Runs as a standalone process (not an endpoint handler), so it
        guards its own liveness: a crash while the probe was sleeping ends
        the pump silently.  ``endpoint`` is pinned at arm time — if a
        crash/restart cycle completed during the probe sleep, the pump
        belongs to the dead incarnation: it must neither send through the
        new endpoint (its registration may not have landed) nor clear the
        new incarnation's dirty flag (``restart()`` reset it; a fresh pump
        from the re-announce may already be pending).  The send is
        best-effort — a dead parent is the heartbeat monitor's problem.
        """
        yield self.engine.timeout(self.params.estimate_collect_time)
        if endpoint is not self.endpoint:
            return  # stale incarnation: exit without touching state
        self._push_dirty = False
        if self._crashed or endpoint.closed:
            return
        n_jobs = self.n_jobs
        updates = []
        for path, reg in self._registrations.items():
            predicted = reg.predictor(reg.desc) if reg.predictor else None
            est = self.cori.build(self.name, n_jobs,
                                  predicted_tcomp=predicted)
            self._push_seq += 1
            updates.append((path, est, self.host.name, self._push_seq))
        delta = EstimateDelta(self.name, updates)
        yield from self.endpoint.try_send(self.parent, "est_delta", delta,
                                          nbytes=delta.wire_bytes())

    def _handle_estimate(self, msg) -> Generator[Event, Any, tuple]:
        req: EstimateRequest = msg.payload
        if not self.table.can_solve(req.service_desc):
            return ([], 64)
        reg = self._registrations[req.service_desc.path]
        predicted = reg.predictor(req.service_desc) if reg.predictor else None
        est = yield from self.cori.collect(
            self.name, self.n_jobs,
            client_host=req.client_host,
            request_nbytes=req.request_nbytes,
            predicted_tcomp=predicted)
        return ([est], 512)

    # -- persistent data (DTM) ---------------------------------------------------------

    def _handle_fetch_data(self, msg) -> Generator[Event, Any, tuple]:
        """Serve a persisted datum to a peer SeD (or back to a client).

        Bound as both the legacy ``fetch_data`` op and the data manager's
        ``dm_fetch`` — one lookup, charged at the datum's true size.
        """
        data_id = msg.payload
        value, nbytes = self.data_manager.serve(data_id)
        yield self.engine.timeout(0.0)
        return (value, nbytes)

    def _handle_memo_fetch(self, msg) -> Generator[Event, Any, tuple]:
        """Serve a memoized result back to a client absorbing a memo hit.

        Unlike peer ``fetch_data``, STICKY pins do not refuse: stickiness
        constrains SeD-to-SeD movement, not the *_RETURN contract that the
        client gets its bytes back.
        """
        data_id = msg.payload
        value, nbytes = self.data_manager.serve(data_id, allow_pinned=True)
        yield self.engine.timeout(0.0)
        return (value, nbytes)

    def _resolve_handles(self, profile: Profile) -> Generator[Event, Any, None]:
        """Materialize DataHandle-valued IN/INOUT arguments ("Data
        downloading" in the paper's solve skeleton).

        Local handles cost nothing; remote ones are pulled through the data
        manager (nearest replica, coalesced with concurrent pulls) at the
        data's true size — the point of DIET_PERSISTENT: the bytes never
        round-trip through the client.
        """
        for arg in profile.arguments:
            if (arg.direction is Direction.OUT
                    or not isinstance(arg.value, DataHandle)):
                continue
            value = yield from self.data_manager.resolve(arg.value)
            arg.set(value)

    def _persist_outputs(self, req: SolveRequest, profile: Profile,
                         out_values: Dict[int, Any]
                         ) -> Dict[int, DataHandle]:
        """Keep server copies per the argument persistence modes; replace
        non-returning values with handles in the reply.

        Returns the handle of every argument that kept a server copy this
        call (including ``*_RETURN`` ones, whose reply still ships the
        bytes) — the raw material for memo population.  A full store with
        everything pinned raises ``StoreFullError`` (a :class:`DataError`),
        which the transport reports to the client as an error reply.
        """
        handles: Dict[int, DataHandle] = {}
        for i, arg in enumerate(profile.arguments):
            if arg.direction is Direction.IN or not arg.is_set:
                continue
            if arg.value is None or isinstance(arg.value, DataHandle):
                # Nothing produced, or already persisted under a handle the
                # solve passed through — never re-store a handle as data.
                continue
            mode = arg.desc.persistence
            if not mode.keeps_server_copy:
                continue
            data_id = self.data_manager.put(
                f"{self.name}/req{req.request_id}/arg{i}",
                arg.value, arg.nbytes, mode)
            handles[i] = DataHandle(data_id=data_id, sed_name=self.name,
                                    nbytes=arg.nbytes)
            if not mode.returns_to_client:
                out_values[i] = handles[i]
                self.data_manager.note_reply_handle(arg.nbytes)
        return handles

    def _memo_populate(self, key: str, profile: Profile,
                       handles: Dict[int, DataHandle]) -> None:
        """Register a successful solve in the grid memo.

        Every OUT/INOUT argument must have kept a server copy for the
        result to be replayable from this SeD — one VOLATILE output means
        the request leaves nothing behind to point at, so it is *never*
        memoized (the DIET persistence contract: volatile data is freed
        after the call).
        """
        memo = self.data_manager.memo
        out_handles: Dict[int, DataHandle] = {}
        for i, arg in enumerate(profile.arguments):
            if arg.direction is Direction.IN:
                continue
            if not arg.desc.persistence.keeps_server_copy:
                return  # a VOLATILE output: not memoizable
            handle = handles.get(i)
            if handle is None and isinstance(arg.value, DataHandle):
                handle = arg.value  # passed through, already persisted
            if handle is None:
                return  # nothing produced / not server-resident
            out_handles[i] = handle
        memo.put(MemoHit(key=key, owner=self.name, out_values=out_handles),
                 self.engine.now)

    # -- solving --------------------------------------------------------------------

    def _handle_solve(self, msg) -> Generator[Event, Any, tuple]:
        req: SolveRequest = msg.payload
        profile: Profile = req.profile
        # Arrival already stamped by the endpoint's TracingInterceptor
        # (deliver phase); this fetches the same trace record.
        trace = self.tracer.trace(req.request_id, profile.path)
        try:
            yield from self._resolve_handles(profile)
        except DataError as exc:
            # a stale/unfetchable handle is a per-request data failure, not
            # a middleware crash: report it through the status channel
            return (SolveReply(request_id=req.request_id, status=1,
                               sed_name=self.name,
                               error=f"DataError: {exc}"), 256)

        obs = self.tracer.obs
        track = f"req:{req.request_id}"
        # Queue is about to grow: push the new backlog up the tree.
        self._schedule_push()
        slot = yield from self.job_slots.acquire()
        try:
            # Slot granted: the queue wait is over, initiation begins.
            trace.init_started_at = self.engine.now
            init_span = solve_span = None
            if obs.enabled:
                spans = obs.spans
                queue_span = spans.open_span(track, "queue")
                if queue_span is not None:
                    spans.end(queue_span, trace.init_started_at)
                init_span = spans.begin(
                    track, "init", trace.init_started_at, "init",
                    request_id=req.request_id, service=profile.path,
                    sed=self.name)
            # Service initiation: fork of the solve function, MPI env setup.
            yield self.engine.timeout(self.params.service_init_time)
            started = self.engine.now
            trace.solve_started_at = started
            if init_span is not None:
                obs.spans.end(init_span, started)
                solve_span = obs.spans.begin(
                    track, "solve", started, "solve",
                    request_id=req.request_id, service=profile.path,
                    sed=self.name, cluster=self.cluster)
            self.tracing.emit(self.endpoint, "solve_start",
                              request_id=req.request_id, service=profile.path)
            desc, solve_func = self.table.lookup(profile.path)
            ctx = SolveContext(self.engine, self.host, self, self.nfs)
            try:
                status = yield from solve_func(profile, ctx)
                if status is None:
                    status = 0
                error = None
            except DietError:
                raise
            except Interrupt:
                # Host crash mid-solve, not an application failure: let the
                # transport dead-letter the request (must re-raise before
                # ``except Exception`` — Interrupt subclasses it).
                raise
            except Exception as exc:
                # An application failure is a *service* result (the paper's
                # profile carries an explicit error-control integer), not a
                # middleware failure.
                status, error = 1, f"{type(exc).__name__}: {exc}"
            ended = self.engine.now
            trace.solve_ended_at = ended
            if solve_span is not None:
                obs.spans.end(solve_span, ended, status_code=status)
                obs.metrics.histogram("sed.solve_seconds", sed=self.name,
                                      cluster=self.cluster).observe(
                                          ended - started, ended)
        finally:
            self.job_slots.release(slot)

        self.tracing.emit(self.endpoint, "solve_end",
                          request_id=req.request_id, service=profile.path,
                          duration=ended - started, status=status)
        duration = ended - started
        self.solve_count += 1
        self.solve_durations.append(duration)
        self.cori.note_solve_end()
        # Queue shrank (slot released above): push the new state upward.
        self._schedule_push()

        if self.ma_name is not None:
            # Lightweight completion feedback for history-based plug-in
            # schedulers (LogService carries the equivalent event in DIET).
            yield from self.endpoint.send(
                self.ma_name, "job_done",
                payload={"sed": self.name, "duration": duration,
                         "service": profile.path})

        out_values = {
            i: arg.value for i, arg in enumerate(profile.arguments)
            if arg.direction in (Direction.OUT, Direction.INOUT) and arg.is_set
        }
        handles = self._persist_outputs(req, profile, out_values)
        if (self.data_manager.memo is not None and req.memo_key is not None
                and status == 0):
            self._memo_populate(req.memo_key, profile, handles)
        reply = SolveReply(request_id=req.request_id, status=status,
                           out_values=out_values, solve_started_at=started,
                           solve_ended_at=ended, sed_name=self.name, error=error)
        return (reply, max(profile.response_nbytes(), 256))
