"""CoRI-like collector of resource information.

DIET's CoRI (Collector of Resource Information) fills the standard tags of
an estimation vector from local probes (CPU load, free memory, ...).  Here
the probes read the simulated host state: queue occupancy of the SeD's job
slot, host speed, free memory from host properties, and a predicted
client->SeD communication time from the network model.

Collection takes simulated time (``collect_time``) — this is a visible part
of the paper's ~50 ms finding time.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..sim.engine import Engine, Event
from ..sim.network import Host, Network
from .scheduling import (
    EST_COMMTIME,
    EST_FREECPU,
    EST_FREEMEM,
    EST_NBJOBS,
    EST_SPEED,
    EST_TCOMP,
    EST_TIMESINCELASTSOLVE,
    EstimationVector,
)

__all__ = ["CoRI"]


class CoRI:
    """Per-SeD resource prober."""

    def __init__(self, engine: Engine, host: Host, network: Optional[Network] = None,
                 collect_time: float = 11.3e-3):
        self.engine = engine
        self.host = host
        self.network = network
        self.collect_time = collect_time
        self.last_solve_end: Optional[float] = None

    def note_solve_end(self) -> None:
        self.last_solve_end = self.engine.now

    def collect(self, sed_name: str, n_jobs: int,
                client_host: Optional[str] = None,
                request_nbytes: int = 0,
                predicted_tcomp: Optional[float] = None
                ) -> Generator[Event, Any, EstimationVector]:
        """Process helper: probe the host and build the estimation vector."""
        yield self.engine.timeout(self.collect_time)
        return self.build(sed_name, n_jobs, client_host, request_nbytes,
                          predicted_tcomp)

    def build(self, sed_name: str, n_jobs: int,
              client_host: Optional[str] = None,
              request_nbytes: int = 0,
              predicted_tcomp: Optional[float] = None) -> EstimationVector:
        """Probe the host *now* (no simulated delay) and build the vector.

        Push-mode SeDs pay ``collect_time`` once per state change in their
        push pump and then snapshot with this; pull mode keeps using
        :meth:`collect`, whose delay is part of the per-request finding time.
        """
        est = EstimationVector(sed_name=sed_name)
        est.set(EST_SPEED, self.host.speed)
        est.set(EST_NBJOBS, float(n_jobs))
        busy = self.host.cpu.count / max(self.host.cpu.capacity, 1)
        est.set(EST_FREECPU, max(0.0, 1.0 - busy))
        est.set(EST_FREEMEM, float(self.host.properties.get("memory_gib", 0.0)))
        if self.last_solve_end is not None:
            est.set(EST_TIMESINCELASTSOLVE, self.engine.now - self.last_solve_end)
        if predicted_tcomp is not None:
            est.set(EST_TCOMP, predicted_tcomp)
        if self.network is not None and client_host is not None:
            est.set(EST_COMMTIME,
                    self.network.transfer_time(client_host, self.host.name,
                                               request_nbytes))
        return est
