"""LogService: central monitoring as a real middleware component.

DIET deployments run LogCentral, a service that components stream their
events to ("along with omniORB, the monitoring tools, and the client",
§5.1 — the monitoring tools live on the MA node).  The in-process
:class:`~repro.core.statistics.Tracer` gives the *figures* their data; this
component models the monitoring *traffic*: SeDs and the MA post events as
one-way messages that cross the simulated network, arrive with real
latency, and land in the collector's journal.

Events are posted fire-and-forget from a spawned process, so monitoring
never delays the control path (the calibrated finding time is unchanged
whether LogCentral is deployed or not — a test asserts this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from ..sim.engine import Engine, Event
from ..sim.network import Host

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a runtime cycle:
    # transport -> pipeline -> logservice; post_event is duck-typed).
    from .transport import Endpoint, TransportFabric

__all__ = ["LogEvent", "LogCentral", "post_event"]


@dataclass(frozen=True)
class LogEvent:
    """One monitoring record as received by LogCentral."""

    recv_time: float       # simulated arrival time at the collector
    sent_time: float       # component-side emission time
    component: str
    kind: str
    info: Dict[str, Any]

    @property
    def transit(self) -> float:
        return self.recv_time - self.sent_time


class LogCentral:
    """The collector: receives ``log_event`` messages, keeps a journal."""

    def __init__(self, fabric: TransportFabric, host: Host,
                 name: str = "LogCentral"):
        self.fabric = fabric
        self.engine: Engine = fabric.engine
        self.name = name
        self.endpoint: Endpoint = fabric.endpoint(name, host.name)
        self.endpoint.on("log_event", self._handle_event)
        self.journal: List[LogEvent] = []

    def launch(self) -> None:
        self.endpoint.start()

    def _handle_event(self, msg) -> Generator[Event, Any, None]:
        payload = msg.payload
        self.journal.append(LogEvent(
            recv_time=self.engine.now,
            sent_time=float(payload.get("time", msg.sent_at)),
            component=str(payload.get("component", msg.src)),
            kind=str(payload.get("kind", "unknown")),
            info=dict(payload.get("info", {}))))
        return
        yield  # pragma: no cover - generator marker

    # -- journal queries -----------------------------------------------------------

    def events(self, kind: Optional[str] = None,
               component: Optional[str] = None) -> List[LogEvent]:
        out = self.journal
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if component is not None:
            out = [e for e in out if e.component == component]
        return list(out)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.journal:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def components_seen(self) -> List[str]:
        return sorted({e.component for e in self.journal})

    def mean_transit(self) -> float:
        if not self.journal:
            raise ValueError("empty journal")
        return sum(e.transit for e in self.journal) / len(self.journal)


def post_event(endpoint: Endpoint, log_central: Optional[str], kind: str,
               **info) -> None:
    """Fire-and-forget monitoring event (no-op without a collector).

    Runs in a spawned process so the caller's control path is not delayed
    by marshalling or transfer time.
    """
    if log_central is None:
        return
    engine = endpoint.fabric.engine
    payload = {"time": engine.now, "component": endpoint.name,
               "kind": kind, "info": info}

    def _poster():
        try:
            yield from endpoint.send(log_central, "log_event", payload)
        except Exception:
            pass  # monitoring must never take the application down

    engine.process(_poster(), name=f"log:{endpoint.name}:{kind}")
