"""LogService-like tracing: the raw material of Figures 4 and 5.

DIET deployments run LogCentral to collect middleware events.  The
:class:`Tracer` plays that role: every phase of every request is recorded
with simulated timestamps, and accessors produce exactly the series the
paper plots —

* **finding time** per request (Figure 5): submit -> SeD chosen;
* **latency** per request (Figure 5): SeD chosen -> solve actually starts
  (data transfer + queue wait + service initiation);
* the **Gantt chart** (Figure 4 left): per-SeD (start, end) solve spans;
* per-SeD **busy time** and request counts (Figure 4 right).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs import NULL_OBS, Observability

__all__ = ["RequestTrace", "Tracer"]


@dataclass(slots=True)
class RequestTrace:
    """Lifecycle timestamps of one request (simulated seconds).

    ``slots=True``: campaigns create one record per request and stamp each
    field once from the interceptor hot path — slots make those attribute
    writes cheaper and the records smaller.
    """

    request_id: int
    service: str
    submitted_at: Optional[float] = None
    found_at: Optional[float] = None
    sed_name: Optional[str] = None
    data_sent_at: Optional[float] = None
    #: SeD side: solve request delivered (stamped by TracingInterceptor).
    data_arrived_at: Optional[float] = None
    #: SeD side: job slot granted, service initiation begins.
    init_started_at: Optional[float] = None
    solve_started_at: Optional[float] = None
    solve_ended_at: Optional[float] = None
    completed_at: Optional[float] = None
    status: Optional[int] = None

    @property
    def finding_time(self) -> Optional[float]:
        if self.submitted_at is None or self.found_at is None:
            return None
        return self.found_at - self.submitted_at

    @property
    def latency(self) -> Optional[float]:
        """Paper §5.2: client->SeD data send + service initiation, including
        the wait for the SeD to become free."""
        if self.found_at is None or self.solve_started_at is None:
            return None
        return self.solve_started_at - self.found_at

    @property
    def queue_wait(self) -> Optional[float]:
        """Time between data arrival at the SeD and the job slot opening —
        the workload-induced wait the paper excludes from overhead."""
        if self.data_arrived_at is None or self.init_started_at is None:
            return None
        return self.init_started_at - self.data_arrived_at

    @property
    def initiation_time(self) -> Optional[float]:
        """Pure service initiation (fork + MPI env setup), queue wait
        excluded — the paper's §5.2 "about 20.8 ms" per execution."""
        if self.init_started_at is None or self.solve_started_at is None:
            return None
        return self.solve_started_at - self.init_started_at

    @property
    def solve_duration(self) -> Optional[float]:
        if self.solve_started_at is None or self.solve_ended_at is None:
            return None
        return self.solve_ended_at - self.solve_started_at

    @property
    def total_time(self) -> Optional[float]:
        if self.submitted_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def overhead(self) -> Optional[float]:
        """Middleware overhead: total minus pure solve and queue-wait time.

        The paper counts finding time + service initiation (it excludes the
        inter-simulation wait, which is workload, not middleware)."""
        if self.finding_time is None:
            return None
        if self.initiation_time is not None:
            # Queue wait measured exactly at the SeD: exclude it.
            return self.finding_time + self.initiation_time
        if self.solve_duration is None:
            return None
        if self.completed_at is None or self.data_sent_at is None:
            return None
        return self.finding_time + (self.solve_started_at - self.data_sent_at)


class Tracer:
    """Collects :class:`RequestTrace` records plus free-form middleware events."""

    def __init__(self, obs: Optional[Observability] = None):
        #: The deployment-wide observability hub; components that hold the
        #: shared tracer reach spans/metrics as ``tracer.obs``.  Defaults to
        #: the permanently-disabled :data:`~repro.obs.NULL_OBS` singleton,
        #: so a bare ``Tracer()`` records exactly what it always did.
        self.obs: Observability = obs if obs is not None else NULL_OBS
        self._traces: Dict[int, RequestTrace] = {}
        #: Records in creation order — the append-only buffer report-time
        #: aggregation works from (the dict above is just the id index).
        self._order: List[RequestTrace] = []
        #: Free-form middleware events, append-only.
        self.events: List[tuple] = []

    # -- recording --------------------------------------------------------------

    def trace(self, request_id: int, service: str = "") -> RequestTrace:
        """Get-or-create the record for ``request_id`` (the stamp hot path:
        interceptors call this once per lifecycle phase per request)."""
        rec = self._traces.get(request_id)
        if rec is None:
            rec = RequestTrace(request_id=request_id, service=service)
            self._traces[request_id] = rec
            self._order.append(rec)
        elif service and not rec.service:
            rec.service = service
        return rec

    def log(self, time: float, kind: str, **info) -> None:
        self.events.append((time, kind, info))

    # -- series for the figures ----------------------------------------------------

    def all_traces(self, service: Optional[str] = None) -> List[RequestTrace]:
        """Report-time aggregation: sort the append-only record buffer by
        submission time (records are never mutated here, only viewed)."""
        out = self._order if service is None else [
            t for t in self._order if t.service == service]
        return sorted(out, key=lambda t: (t.submitted_at if t.submitted_at is not None
                                          else float("inf"), t.request_id))

    def finding_times(self, service: Optional[str] = None) -> List[float]:
        return [t.finding_time for t in self.all_traces(service)
                if t.finding_time is not None]

    def latencies(self, service: Optional[str] = None) -> List[float]:
        return [t.latency for t in self.all_traces(service)
                if t.latency is not None]

    def initiation_times(self, service: Optional[str] = None) -> List[float]:
        return [t.initiation_time for t in self.all_traces(service)
                if t.initiation_time is not None]

    def queue_waits(self, service: Optional[str] = None) -> List[float]:
        return [t.queue_wait for t in self.all_traces(service)
                if t.queue_wait is not None]

    def gantt(self, service: Optional[str] = None) -> Dict[str, List[tuple]]:
        """Per-SeD list of (start, end, request_id) solve spans, sorted."""
        chart: Dict[str, List[tuple]] = {}
        for t in self.all_traces(service):
            if t.sed_name and t.solve_started_at is not None and t.solve_ended_at is not None:
                chart.setdefault(t.sed_name, []).append(
                    (t.solve_started_at, t.solve_ended_at, t.request_id))
        for spans in chart.values():
            spans.sort()
        return chart

    def busy_time_per_sed(self, service: Optional[str] = None) -> Dict[str, float]:
        return {sed: sum(end - start for start, end, _ in spans)
                for sed, spans in self.gantt(service).items()}

    def requests_per_sed(self, service: Optional[str] = None) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for t in self.all_traces(service):
            if t.sed_name is not None:
                counts[t.sed_name] = counts.get(t.sed_name, 0) + 1
        return counts

    # -- export (LogCentral dumps) ---------------------------------------------------

    _CSV_FIELDS = ("request_id", "service", "sed_name", "submitted_at",
                   "found_at", "data_sent_at", "data_arrived_at",
                   "init_started_at", "solve_started_at",
                   "solve_ended_at", "completed_at", "status",
                   "finding_time", "latency", "queue_wait",
                   "initiation_time", "solve_duration")

    def to_records(self, service: Optional[str] = None) -> List[dict]:
        """One plain dict per request (raw timestamps + derived metrics)."""
        out = []
        for t in self.all_traces(service):
            out.append({field: getattr(t, field) for field in self._CSV_FIELDS})
        return out

    def write_csv(self, path: str, service: Optional[str] = None) -> None:
        """Dump the trace table as CSV (empty cells for missing phases)."""
        import csv

        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=self._CSV_FIELDS)
            writer.writeheader()
            for rec in self.to_records(service):
                writer.writerow({k: ("" if v is None else v)
                                 for k, v in rec.items()})

    def write_json(self, path: str, service: Optional[str] = None) -> None:
        import json

        with open(path, "w") as fh:
            json.dump(self.to_records(service), fh, indent=1)

    def makespan(self, service: Optional[str] = None) -> Optional[float]:
        traces = [t for t in self.all_traces(service)
                  if t.submitted_at is not None and t.completed_at is not None]
        if not traces:
            return None
        return (max(t.completed_at for t in traces)
                - min(t.submitted_at for t in traces))
