"""DIET middleware reimplementation (the paper's contribution surface).

Layers (bottom-up): :mod:`pipeline` (the interceptor chain every message
travels through) and :mod:`transport` (CORBA substitute over the simulated
network), :mod:`data`/:mod:`profile` (the DIET data model and service
profiles of §4.2), :mod:`sed` / :mod:`agent` / :mod:`client` (the
client/agent/server paradigm of §2.1), :mod:`scheduling` (default and
plug-in schedulers), :mod:`deployment` (GoDIET-like hierarchy builder) and
:mod:`statistics` (LogService-like tracing behind Figures 4-5).
"""

from .agent import ROUTING_MODES, AgentParams, LocalAgent, MasterAgent
from .aggregation import AggregationTable, CandidateRow
from .client import AsyncRequest, DietClient, FunctionHandle
from .cori import CoRI
from .data import (
    ArgDesc,
    DataHandle,
    BaseType,
    CompositeType,
    DietArg,
    Direction,
    FileRef,
    PersistenceMode,
    file_desc,
    matrix_desc,
    scalar_desc,
    sizeof_value,
    string_desc,
    vector_desc,
)
from .deployment import Deployment, deploy_paper_hierarchy
from .federation import (
    ChurnPlan,
    FederatedClient,
    FederatedGrid,
    Federation,
    FederationConfig,
    build_federation,
    federation_cluster_specs,
    schedule_churn,
)
from .exceptions import (
    CommunicationError,
    DataError,
    DeadlineExceededError,
    DietError,
    NotCompletedError,
    NotInitializedError,
    ProfileError,
    ServerNotFoundError,
    ServiceNotFoundError,
)
from .liveness import HeartbeatConfig, HeartbeatMonitor
from .logservice import LogCentral, LogEvent, post_event
from .pipeline import (
    AccountingInterceptor,
    DeadlineInterceptor,
    FaultInjectionInterceptor,
    Interceptor,
    InterceptorPipeline,
    MarshallingInterceptor,
    MessageContext,
    MessageDropped,
    RpcPolicy,
    TracingInterceptor,
)
from .profile import Profile, ProfileDesc, ServiceTable
from .requests import (
    EstimateDelta,
    EstimateRequest,
    SolveReply,
    SolveRequest,
    SubmitRequest,
    new_request_id,
)
from .scheduling import (
    DataLocalityPolicy,
    DefaultPolicy,
    EstimationVector,
    FastestNodePolicy,
    MCTPolicy,
    MinQueuePolicy,
    PriorityListPolicy,
    RandomPolicy,
    SchedulerPolicy,
    SchedulingContext,
    make_policy,
)
from .sed import SeD, SeDParams, SolveContext
from .statistics import RequestTrace, Tracer
from .transport import Endpoint, Message, TransportFabric, TransportParams

__all__ = [
    "AccountingInterceptor",
    "AgentParams",
    "AggregationTable",
    "ArgDesc",
    "AsyncRequest",
    "BaseType",
    "CandidateRow",
    "ChurnPlan",
    "CommunicationError",
    "CompositeType",
    "CoRI",
    "DataError",
    "DataHandle",
    "DataLocalityPolicy",
    "DeadlineExceededError",
    "DeadlineInterceptor",
    "DefaultPolicy",
    "Deployment",
    "DietArg",
    "DietClient",
    "DietError",
    "Direction",
    "Endpoint",
    "EstimateDelta",
    "EstimateRequest",
    "EstimationVector",
    "FastestNodePolicy",
    "FaultInjectionInterceptor",
    "FederatedClient",
    "FederatedGrid",
    "Federation",
    "FederationConfig",
    "FileRef",
    "FunctionHandle",
    "HeartbeatConfig",
    "HeartbeatMonitor",
    "Interceptor",
    "InterceptorPipeline",
    "LocalAgent",
    "LogCentral",
    "LogEvent",
    "MCTPolicy",
    "MarshallingInterceptor",
    "MasterAgent",
    "Message",
    "MessageContext",
    "MessageDropped",
    "MinQueuePolicy",
    "NotCompletedError",
    "NotInitializedError",
    "PersistenceMode",
    "PriorityListPolicy",
    "Profile",
    "ProfileDesc",
    "ProfileError",
    "ROUTING_MODES",
    "RandomPolicy",
    "RequestTrace",
    "RpcPolicy",
    "SchedulerPolicy",
    "SchedulingContext",
    "SeD",
    "SeDParams",
    "ServerNotFoundError",
    "ServiceNotFoundError",
    "ServiceTable",
    "SolveContext",
    "SolveReply",
    "SolveRequest",
    "SubmitRequest",
    "Tracer",
    "TracingInterceptor",
    "TransportFabric",
    "TransportParams",
    "build_federation",
    "deploy_paper_hierarchy",
    "federation_cluster_specs",
    "file_desc",
    "matrix_desc",
    "make_policy",
    "new_request_id",
    "post_event",
    "scalar_desc",
    "schedule_churn",
    "sizeof_value",
    "string_desc",
    "vector_desc",
]
