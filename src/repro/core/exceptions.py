"""DIET / GridRPC error model.

GridRPC (the API standard DIET implements, §4.3.1) defines numeric error
codes; we expose them both as constants (for the C-flavoured facade in
:mod:`repro.core.gridrpc`) and as an exception hierarchy for Pythonic use.
"""

from __future__ import annotations

__all__ = [
    "GRPC_NO_ERROR",
    "GRPC_NOT_INITIALIZED",
    "GRPC_SERVER_NOT_FOUND",
    "GRPC_FUNCTION_NOT_FOUND",
    "GRPC_INVALID_FUNCTION_HANDLE",
    "GRPC_INVALID_SESSION_ID",
    "GRPC_RPC_REFUSED",
    "GRPC_COMMUNICATION_FAILED",
    "GRPC_SESSION_FAILED",
    "GRPC_NOT_COMPLETED",
    "GRPC_OTHER_ERROR_CODE",
    "DietError",
    "NotInitializedError",
    "ServerNotFoundError",
    "ServiceNotFoundError",
    "InvalidHandleError",
    "InvalidSessionError",
    "RpcRefusedError",
    "CommunicationError",
    "DeadlineExceededError",
    "SessionFailedError",
    "NotCompletedError",
    "ProfileError",
    "DataError",
    "error_code_of",
]

GRPC_NO_ERROR = 0
GRPC_NOT_INITIALIZED = 1
GRPC_SERVER_NOT_FOUND = 2
GRPC_FUNCTION_NOT_FOUND = 3
GRPC_INVALID_FUNCTION_HANDLE = 4
GRPC_INVALID_SESSION_ID = 5
GRPC_RPC_REFUSED = 6
GRPC_COMMUNICATION_FAILED = 7
GRPC_SESSION_FAILED = 8
GRPC_NOT_COMPLETED = 9
GRPC_OTHER_ERROR_CODE = 10


class DietError(RuntimeError):
    """Base class for all middleware errors."""

    code = GRPC_OTHER_ERROR_CODE


class NotInitializedError(DietError):
    """diet_initialize() has not been called on this client."""

    code = GRPC_NOT_INITIALIZED


class ServerNotFoundError(DietError):
    """No SeD can satisfy the request (empty response set at the MA)."""

    code = GRPC_SERVER_NOT_FOUND


class ServiceNotFoundError(DietError):
    """The requested service name is not in any service table."""

    code = GRPC_FUNCTION_NOT_FOUND


class InvalidHandleError(DietError):
    code = GRPC_INVALID_FUNCTION_HANDLE


class InvalidSessionError(DietError):
    code = GRPC_INVALID_SESSION_ID


class RpcRefusedError(DietError):
    code = GRPC_RPC_REFUSED


class CommunicationError(DietError):
    code = GRPC_COMMUNICATION_FAILED


class DeadlineExceededError(CommunicationError):
    """An RPC outlived its :class:`~repro.core.pipeline.DeadlineInterceptor`
    policy (deadline expired on every attempt, retries exhausted)."""


class SessionFailedError(DietError):
    code = GRPC_SESSION_FAILED


class NotCompletedError(DietError):
    """Async request not finished yet (grpc_probe)."""

    code = GRPC_NOT_COMPLETED


class ProfileError(DietError):
    """Malformed profile (bad indices, type mismatch, unset argument)."""


class DataError(DietError):
    """Illegal data access (reading an OUT before solve, freeing twice...)."""


def error_code_of(exc: BaseException) -> int:
    """Map an exception to its GridRPC numeric code."""
    if isinstance(exc, DietError):
        return exc.code
    return GRPC_OTHER_ERROR_CODE
