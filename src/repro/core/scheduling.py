"""Scheduling: estimation vectors, aggregation, and plug-in schedulers.

DIET's scheduling pipeline (§2.1 and the plug-in scheduler design of
Chis et al. [2], which the paper cites as the fix for its non-optimal
makespan):

1. every SeD answers an *estimation request* with an **estimation vector**
   (standard tags filled by CoRI plus service-specific custom tags);
2. agents **aggregate** the responses coming from their subtree — i.e. sort
   them according to an aggregation policy;
3. the Master Agent picks the head of the sorted list.

The default DIET policy knows nothing about execution times of a service
never run before ("the best it can do is to share the total amount of
requests on the available SEDs"), which the experiment in §5 demonstrates:
100 simultaneous requests are split 9/9/.../10 over the 11 SeDs.  The MCT
plug-in implements what the paper proposes as future improvement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "EstimationVector",
    "SchedulingContext",
    "SchedulerPolicy",
    "DataLocalityPolicy",
    "DefaultPolicy",
    "RandomPolicy",
    "MinQueuePolicy",
    "MCTPolicy",
    "FastestNodePolicy",
    "PriorityListPolicy",
    "POLICIES",
    "make_policy",
    # standard estimation tags
    "EST_TCOMP",
    "EST_NBJOBS",
    "EST_FREECPU",
    "EST_FREEMEM",
    "EST_SPEED",
    "EST_TIMESINCELASTSOLVE",
    "EST_COMMTIME",
]

# Standard estimation tags (mirroring DIET's EST_* constants).
EST_TCOMP = "EST_TCOMP"                       # predicted solve time (s); inf if unknown
EST_NBJOBS = "EST_NBJOBS"                     # jobs running + waiting at the SeD
EST_FREECPU = "EST_FREECPU"                   # fraction of CPU free [0, 1]
EST_FREEMEM = "EST_FREEMEM"                   # free memory (GiB)
EST_SPEED = "EST_SPEED"                       # normalized host speed
EST_TIMESINCELASTSOLVE = "EST_TIMESINCELASTSOLVE"
EST_COMMTIME = "EST_COMMTIME"                 # predicted client->SeD transfer (s)


@dataclass(slots=True)
class EstimationVector:
    """One SeD's answer to an estimation request.

    Slotted because it matters at scale: push-mode tables materialize one
    vector per (service, SeD) and the gather/aggregate hot path churns
    through them — at 10^4 SeDs the per-instance ``__dict__`` is measurable.
    """

    sed_name: str
    values: Dict[str, float] = field(default_factory=dict)

    def get(self, tag: str, default: float = float("inf")) -> float:
        return self.values.get(tag, default)

    def set(self, tag: str, value: float) -> None:
        self.values[tag] = float(value)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.4g}" for k, v in sorted(self.values.items()))
        return f"EstimationVector({self.sed_name}: {inner})"


@dataclass
class SchedulingContext:
    """Master-Agent-side state available to a policy when sorting.

    ``dispatched`` counts requests already routed to each SeD during this
    session (including ones whose solve has not started yet — exactly the
    information the MA *does* have even for a service it knows nothing
    about).
    """

    now: float = 0.0
    #: Service whose request is currently being scheduled (set by the MA
    #: before each policy.choose call).
    service: str = ""
    dispatched: Dict[str, int] = field(default_factory=dict)
    completed: Dict[str, int] = field(default_factory=dict)
    #: Mean observed solve time per (service, SeD) — FAST-like history.
    #: Keyed per service: a short ramsesZoom1 run must not make a SeD look
    #: fast for ramsesZoom2 (that mistake measurably overloads it).
    history_mean: Dict[tuple, float] = field(default_factory=dict)
    _history_n: Dict[tuple, int] = field(default_factory=dict)
    #: Monotone counter used by round-robin tie-breaking.
    rr_counter: int = 0
    #: Bytes of the current request's persistent inputs resident per SeD
    #: (set by the MA from the submit request; the DTM location view).
    resident_bytes: Dict[str, int] = field(default_factory=dict)
    #: Estimated seconds each candidate SeD would spend pulling the
    #: request's non-resident persistent inputs (set by the MA from the
    #: replica catalog; empty when no data grid is deployed).
    data_transfer_cost: Dict[str, float] = field(default_factory=dict)
    #: Predicted client->SeD transfer seconds per candidate for the request
    #: being scheduled.  Pull mode leaves this empty (CoRI stamps
    #: ``EST_COMMTIME`` into each fresh vector); push mode fills it at the
    #: MA, because pushed table rows predate the client and cannot carry a
    #: per-client comm time.  Only computed when ``policy.uses_commtime``.
    comm_time: Dict[str, float] = field(default_factory=dict)

    def note_dispatch(self, sed_name: str) -> None:
        self.dispatched[sed_name] = self.dispatched.get(sed_name, 0) + 1
        self.rr_counter += 1

    def note_completion(self, sed_name: str, duration: float,
                        service: str = "") -> None:
        self.completed[sed_name] = self.completed.get(sed_name, 0) + 1
        key = (service, sed_name)
        n = self._history_n.get(key, 0) + 1
        self._history_n[key] = n
        prev = self.history_mean.get(key, 0.0)
        self.history_mean[key] = prev + (duration - prev) / n

    def service_history(self, sed_name: str) -> Optional[float]:
        """Observed mean solve time of the current service on this SeD."""
        return self.history_mean.get((self.service, sed_name))

    def in_flight(self, sed_name: str) -> int:
        return (self.dispatched.get(sed_name, 0)
                - self.completed.get(sed_name, 0))

    def data_cost(self, sed_name: str) -> float:
        """Transfer seconds this SeD would pay for non-resident inputs."""
        return self.data_transfer_cost.get(sed_name, 0.0)

    def comm_cost(self, est: EstimationVector) -> float:
        """Predicted client->SeD transfer time for the current request.

        Prefers the per-request value the MA computed (push mode), falling
        back to the vector's own ``EST_COMMTIME`` (pull mode); unknown
        means free, matching the historical MCT behaviour.
        """
        comm = self.comm_time.get(est.sed_name)
        if comm is None:
            comm = est.get(EST_COMMTIME, 0.0)
        if comm == float("inf"):
            comm = 0.0
        return comm


class SchedulerPolicy:
    """Base class: orders candidate estimation vectors, best first.

    Policies are *stateless over the candidates they are given*: whether
    the vectors arrive fresh from a pull-mode gather or as materialized
    push-mode table rows, ranking combines the vectors with the MA-side
    :class:`SchedulingContext` (in-flight dispatch counts, history, data
    residency) — the context carries everything that must be per-request.
    """

    name = "base"
    #: True when the policy reads client->SeD comm time; lets push mode
    #: skip computing it per candidate for policies that ignore it.
    uses_commtime = False

    def sort(self, candidates: Sequence[EstimationVector],
             ctx: SchedulingContext) -> List[EstimationVector]:
        raise NotImplementedError

    def choose(self, candidates: Sequence[EstimationVector],
               ctx: SchedulingContext) -> Optional[EstimationVector]:
        ranked = self.sort(candidates, ctx)
        return ranked[0] if ranked else None


class DefaultPolicy(SchedulerPolicy):
    """DIET's observed default behaviour for an unknown service.

    With no execution-time knowledge the only fair criterion is the number
    of requests already handed to each SeD; ties break round-robin (stable
    rotation by the MA's dispatch counter).  For 100 simultaneous requests
    over 11 SeDs this produces the paper's 9/9/.../10 split (Figure 4).
    """

    name = "default"

    def sort(self, candidates, ctx):
        n = len(candidates)
        if n == 0:
            return []

        def key(item):
            idx, est = item
            load = ctx.dispatched.get(est.sed_name, 0)
            rotation = (idx - ctx.rr_counter) % n
            return (load, rotation, est.sed_name)

        return [est for _, est in
                sorted(enumerate(candidates), key=key)]


class RandomPolicy(SchedulerPolicy):
    """Uniform random choice (a DIET built-in aggregator)."""

    name = "random"

    def __init__(self, rng):
        self._rng = rng

    def sort(self, candidates, ctx):
        order = list(candidates)
        self._rng.shuffle(order)
        return order


class MinQueuePolicy(SchedulerPolicy):
    """Pick the SeD reporting the fewest queued+running jobs.

    Unlike :class:`DefaultPolicy` this trusts the *SeD-reported* queue
    length, which lags behind dispatch decisions for simultaneous requests
    (data takes time to reach the SeD) — tests show it degenerates towards
    the first SeDs when many requests arrive in one burst.
    """

    name = "min-queue"

    def sort(self, candidates, ctx):
        return sorted(candidates,
                      key=lambda e: (e.get(EST_NBJOBS) + ctx.in_flight(e.sed_name),
                                     e.sed_name))


class FastestNodePolicy(SchedulerPolicy):
    """Pick by raw node speed (ignores load) — a deliberately bad baseline."""

    name = "fastest"

    def sort(self, candidates, ctx):
        return sorted(candidates, key=lambda e: (-e.get(EST_SPEED, 0.0), e.sed_name))


class MCTPolicy(SchedulerPolicy):
    """Minimum-Completion-Time plug-in scheduler.

    Estimated completion on SeD *s* for the next request:

        (jobs in flight on s) * t(s) + t(s) + commtime(s)

    where ``t(s)`` is the observed mean solve time on *s* when history
    exists (FAST-like), else the SeD's own prediction ``EST_TCOMP`` (from a
    service-provided cost model), else ``1 / EST_SPEED`` as a last resort.
    This is the plug-in scheduler the paper says "a better makespan could
    be attained by writing" (§5.2, citing MGC'06).

    When a data grid is deployed the MA also prices each candidate's pull
    of non-resident persistent inputs (``ctx.data_cost``) — the DAGDA
    locality hook: completion estimates include the data movement the
    placement would cause.
    """

    name = "mct"
    uses_commtime = True

    def per_job_time(self, est: EstimationVector, ctx: SchedulingContext) -> float:
        hist = ctx.service_history(est.sed_name)
        if hist is not None:
            return hist
        tcomp = est.get(EST_TCOMP)
        if tcomp != float("inf"):
            return tcomp
        speed = est.get(EST_SPEED, 0.0)
        return 1.0 / speed if speed > 0 else float("inf")

    def sort(self, candidates, ctx):
        def completion(est: EstimationVector) -> float:
            t = self.per_job_time(est, ctx)
            backlog = max(ctx.in_flight(est.sed_name), est.get(EST_NBJOBS, 0.0))
            return ((backlog + 1.0) * t + ctx.comm_cost(est)
                    + ctx.data_cost(est.sed_name))

        return sorted(candidates, key=lambda e: (completion(e), e.sed_name))


class PriorityListPolicy(SchedulerPolicy):
    """Generic plug-in aggregator: lexicographic (tag, direction) list.

    This is the user-facing face of the plug-in scheduler framework of [2]:
    e.g. ``PriorityListPolicy([("EST_NBJOBS", "min"), ("EST_SPEED", "max")])``
    prefers idle SeDs and breaks ties by speed.
    """

    name = "priority-list"

    def __init__(self, priorities: Sequence[tuple]):
        if not priorities:
            raise ValueError("priority list must be non-empty")
        for tag, direction in priorities:
            if direction not in ("min", "max"):
                raise ValueError(f"direction must be 'min' or 'max', got {direction!r}")
        self.priorities = list(priorities)

    def sort(self, candidates, ctx):
        def key(est: EstimationVector):
            parts = []
            for tag, direction in self.priorities:
                v = est.get(tag)
                parts.append(v if direction == "min" else -v)
            parts.append(est.sed_name)
            return tuple(parts)

        return sorted(candidates, key=key)


class DataLocalityPolicy(SchedulerPolicy):
    """Prefer SeDs already holding the request's persistent input data.

    The DTM-aware aggregator: rank by resident bytes (more is better), then
    by load (in-flight jobs), then round-robin.  A job consuming a
    DIET_PERSISTENT result lands on the SeD that produced it whenever that
    SeD is not overloaded — the data never crosses the network at all
    (tests measure exactly that through the fabric byte counters).

    ``max_backlog`` caps how many queued jobs locality is allowed to buy:
    beyond it the policy degrades to load-based placement so one popular
    dataset cannot serialize the whole platform.
    """

    name = "data-locality"

    def __init__(self, max_backlog: int = 2):
        if max_backlog < 0:
            raise ValueError("max_backlog must be >= 0")
        self.max_backlog = max_backlog

    def sort(self, candidates, ctx):
        n = len(candidates)

        def key(item):
            idx, est = item
            resident = ctx.resident_bytes.get(est.sed_name, 0)
            backlog = ctx.in_flight(est.sed_name)
            # locality counts only while the owner is not overloaded
            effective = resident if backlog <= self.max_backlog else 0
            rotation = (idx - ctx.rr_counter) % max(n, 1)
            return (-effective, backlog, rotation, est.sed_name)

        return [est for _, est in sorted(enumerate(candidates), key=key)]


#: Registry of constructible policies (used by experiment configs).
POLICIES: Dict[str, Callable[..., SchedulerPolicy]] = {
    "default": DefaultPolicy,
    "random": RandomPolicy,
    "min-queue": MinQueuePolicy,
    "mct": MCTPolicy,
    "fastest": FastestNodePolicy,
    "data-locality": DataLocalityPolicy,
}


def make_policy(name: str, **kwargs) -> SchedulerPolicy:
    try:
        factory = POLICIES[name]
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; known: {sorted(POLICIES)}") from None
    return factory(**kwargs)
