"""Heartbeat-based liveness between an agent and its children.

DIET's real hierarchy learns of dead SeDs only when a CORBA call to them
fails; combined with estimate timeouts that makes every scheduling round
pay for every corpse.  The monitor here is the standard fix (and what the
follow-up grid deployments ran operationally): the parent LA pings each
child every ``interval`` seconds, a ping unanswered within ``timeout``
counts as a miss, and ``miss_threshold`` consecutive misses deregister the
child from the agent — after which scheduling never fans out to it.  A
restarted SeD re-registers explicitly (the ``register`` op), which clears
its miss count and re-adds it to the candidate set.

Probes ride the normal RPC path, so they are charged marshalling + network
time like any other control message and show up in the accounting counters
— liveness is not free, which is exactly the overhead/responsiveness
trade-off ``interval`` expresses.

Deregistration calls :meth:`LocalAgent.remove_child`, which in push
routing mode also invalidates every materialized-table row that arrived
through the dead child and cascades the removals upward (see
:mod:`repro.core.aggregation`) — heartbeats are how push mode learns a
candidate is gone, so push deployments that expect crashes should enable
them; without them stale rows linger until the client's retry path routes
around the dead dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Tuple, TYPE_CHECKING

from ..sim.engine import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .agent import LocalAgent

__all__ = ["HeartbeatConfig", "HeartbeatMonitor"]


@dataclass(frozen=True)
class HeartbeatConfig:
    """Liveness protocol knobs (see module docstring)."""

    #: Seconds between ping rounds.
    interval: float = 5.0
    #: Seconds to wait for one pong (enforced by a DeadlineInterceptor on
    #: the agent's endpoint, like every other RPC deadline).
    timeout: float = 2.0
    #: Consecutive misses before the child is declared dead.
    miss_threshold: int = 2

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if self.timeout <= 0:
            raise ValueError("heartbeat timeout must be positive")
        if self.miss_threshold < 1:
            raise ValueError("miss threshold must be >= 1")


class HeartbeatMonitor:
    """Pings an agent's children; deregisters the persistently silent."""

    def __init__(self, agent: "LocalAgent", config: HeartbeatConfig):
        self.agent = agent
        self.config = config
        self._misses: Dict[str, int] = {}
        #: (child, time) pairs, in event order.
        self.deaths: List[Tuple[str, float]] = []
        self.recoveries: List[Tuple[str, float]] = []
        self.pings_sent = 0
        self._proc = None

    def launch(self) -> None:
        """Start the ping loop (idempotent)."""
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.agent.engine.process(
                self._beat_loop(), name=f"heartbeat:{self.agent.name}")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("monitor stopped")
            self._proc = None

    def note_registered(self, child: str, rejoined: bool) -> None:
        """A child (re-)registered: clear its miss count, log the recovery."""
        self._misses.pop(child, None)
        if rejoined:
            now = self.agent.engine.now
            self.recoveries.append((child, now))
            obs = self.agent.tracer.obs
            if obs.enabled:
                obs.spans.mark(f"agent:{self.agent.name}", "re-register",
                               now, child=child)
                obs.metrics.counter("liveness.recoveries",
                                    agent=self.agent.name).inc(1, now)

    # -- the protocol ---------------------------------------------------------

    def _beat_loop(self) -> Generator[Event, Any, None]:
        engine = self.agent.engine
        try:
            while True:
                yield engine.timeout(self.config.interval)
                # Snapshot: registration during a round must not mutate the
                # list we are iterating; probes run in parallel, in child
                # order, so rounds are deterministic.
                children = list(self.agent.children)
                if not children:
                    continue
                probes = [engine.process(self._probe(c),
                                         name=f"ping:{self.agent.name}->{c}")
                          for c in children]
                yield engine.all_of(probes)
        except Interrupt:
            return

    def _probe(self, child: str) -> Generator[Event, Any, None]:
        self.pings_sent += 1
        try:
            yield from self.agent.endpoint.rpc(child, "ping")
        except Exception:
            # CommunicationError (unresolvable / crashed mid-flight) or
            # DeadlineExceededError (no pong in time): one miss either way.
            misses = self._misses.get(child, 0) + 1
            self._misses[child] = misses
            if misses >= self.config.miss_threshold:
                self._misses.pop(child, None)
                if self.agent.remove_child(child):
                    now = self.agent.engine.now
                    self.deaths.append((child, now))
                    obs = self.agent.tracer.obs
                    if obs.enabled:
                        obs.spans.mark(f"agent:{self.agent.name}",
                                       "deregister", now, child=child)
                        obs.metrics.counter(
                            "liveness.deregistrations",
                            agent=self.agent.name).inc(1, now)
            return
        self._misses.pop(child, None)
