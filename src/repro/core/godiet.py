"""GoDIET-style XML deployment descriptions.

DIET deployments on Grid'5000 were driven by GoDIET, which reads an XML
description of the agent hierarchy and launches the components.  This
module implements the equivalent: parse an XML hierarchy description,
validate it against a built platform, and instantiate the MA/LA/SeD tree.

The dialect (close to GoDIET's, trimmed to what the reproduction needs)::

    <diet_configuration>
      <master_agent name="MA" host="lyon-ma">
        <local_agent name="LA-lyon-capricorne" host="lyon-capricorne-frontend">
          <sed name="SeD-lyon-capricorne-sed0" host="lyon-capricorne-sed0"/>
          ...
        </local_agent>
        ...
      </master_agent>
    </diet_configuration>

Arbitrary nesting of ``local_agent`` elements is allowed (DIET hierarchies
are trees of any depth).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import List, Optional

from ..platform.grid5000 import Grid5000Platform
from .agent import AgentParams, LocalAgent, MasterAgent
from .client import DietClient
from .deployment import Deployment
from .exceptions import DietError
from .scheduling import SchedulerPolicy
from .sed import SeD, SeDParams
from .statistics import Tracer
from .transport import TransportFabric, TransportParams

__all__ = ["SedSpec", "AgentSpec", "HierarchySpec", "parse_godiet_xml",
           "render_godiet_xml", "deploy_from_spec", "paper_hierarchy_spec"]


@dataclass
class SedSpec:
    name: str
    host: str


@dataclass
class AgentSpec:
    name: str
    host: str
    children: List["AgentSpec"] = field(default_factory=list)
    seds: List[SedSpec] = field(default_factory=list)

    def all_seds(self) -> List[SedSpec]:
        out = list(self.seds)
        for child in self.children:
            out.extend(child.all_seds())
        return out

    def all_agents(self) -> List["AgentSpec"]:
        out = [self]
        for child in self.children:
            out.extend(child.all_agents())
        return out


@dataclass
class HierarchySpec:
    master: AgentSpec
    client_host: Optional[str] = None

    def validate(self) -> None:
        names = [a.name for a in self.master.all_agents()]
        names += [s.name for s in self.master.all_seds()]
        if len(set(names)) != len(names):
            raise DietError("duplicate component names in hierarchy spec")
        if not self.master.all_seds():
            raise DietError("hierarchy contains no SeD")


def _parse_agent(element: ET.Element) -> AgentSpec:
    name = element.get("name")
    host = element.get("host")
    if not name or not host:
        raise DietError(f"<{element.tag}> needs name= and host= attributes")
    spec = AgentSpec(name=name, host=host)
    for child in element:
        if child.tag == "local_agent":
            spec.children.append(_parse_agent(child))
        elif child.tag == "sed":
            sed_name = child.get("name")
            sed_host = child.get("host")
            if not sed_name or not sed_host:
                raise DietError("<sed> needs name= and host= attributes")
            spec.seds.append(SedSpec(name=sed_name, host=sed_host))
        else:
            raise DietError(f"unexpected element <{child.tag}>")
    return spec


def parse_godiet_xml(text: str) -> HierarchySpec:
    """Parse a GoDIET-style XML document into a :class:`HierarchySpec`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise DietError(f"malformed GoDIET XML: {exc}") from None
    if root.tag != "diet_configuration":
        raise DietError("root element must be <diet_configuration>")
    masters = [el for el in root if el.tag == "master_agent"]
    if len(masters) != 1:
        raise DietError("exactly one <master_agent> is required")
    client_el = root.find("client")
    client_host = client_el.get("host") if client_el is not None else None
    spec = HierarchySpec(master=_parse_agent(masters[0]),
                         client_host=client_host)
    spec.validate()
    return spec


def _render_agent(spec: AgentSpec, indent: int) -> List[str]:
    pad = "  " * indent
    tag = "master_agent" if indent == 1 else "local_agent"
    lines = [f'{pad}<{tag} name="{spec.name}" host="{spec.host}">']
    for sed in spec.seds:
        lines.append(f'{pad}  <sed name="{sed.name}" host="{sed.host}"/>')
    for child in spec.children:
        lines.extend(_render_agent(child, indent + 1))
    lines.append(f"{pad}</{tag}>")
    return lines


def render_godiet_xml(spec: HierarchySpec) -> str:
    """Emit the XML for a spec (round-trips through parse_godiet_xml)."""
    lines = ["<diet_configuration>"]
    if spec.client_host:
        lines.append(f'  <client host="{spec.client_host}"/>')
    lines.extend(_render_agent(spec.master, 1))
    lines.append("</diet_configuration>")
    return "\n".join(lines)


def paper_hierarchy_spec(platform: Grid5000Platform) -> HierarchySpec:
    """The §5.1 deployment as a spec (what GoDIET would have been fed)."""
    master = AgentSpec(name="MA", host=platform.ma_host.name)
    for full_name, cluster in platform.clusters.items():
        la = AgentSpec(name=f"LA-{full_name}", host=cluster.frontend.name)
        for host in cluster.sed_hosts:
            la.seds.append(SedSpec(name=f"SeD-{host.name}", host=host.name))
        master.children.append(la)
    return HierarchySpec(master=master,
                         client_host=platform.client_host.name)


def deploy_from_spec(platform: Grid5000Platform, spec: HierarchySpec,
                     policy: Optional[SchedulerPolicy] = None,
                     transport_params: Optional[TransportParams] = None,
                     sed_params: Optional[SeDParams] = None,
                     agent_params: Optional[AgentParams] = None) -> Deployment:
    """Instantiate the described hierarchy on a built platform.

    Host names are validated against the platform's network; SeD hosts must
    mount their cluster's NFS volume (§4.1) when they belong to a cluster.
    """
    spec.validate()
    engine = platform.engine
    fabric = TransportFabric(engine, platform.network, transport_params)
    tracer = Tracer()

    ma_host = platform.network.host(spec.master.host)
    ma = MasterAgent(fabric, ma_host, name=spec.master.name, policy=policy,
                     params=agent_params, tracer=tracer)

    local_agents: List[LocalAgent] = []
    seds: List[SeD] = []

    def build(agent_spec: AgentSpec, parent) -> None:
        for child_spec in agent_spec.children:
            host = platform.network.host(child_spec.host)
            la = LocalAgent(fabric, host, name=child_spec.name,
                            parent=parent.name, params=agent_params)
            parent.add_child(la.name)
            local_agents.append(la)
            build(child_spec, la)
        for sed_spec in agent_spec.seds:
            host = platform.network.host(sed_spec.host)
            cluster = platform.cluster_of_host(host.name)
            nfs = cluster.nfs if cluster is not None else None
            if nfs is not None and not nfs.is_mounted_on(host.name):
                raise DietError(
                    f"SeD host {host.name} does not mount {nfs.name}")
            sed = SeD(fabric, host, name=sed_spec.name, ma_name=ma.name,
                      params=sed_params, tracer=tracer, nfs=nfs)
            parent.add_child(sed.name)
            seds.append(sed)

    build(spec.master, ma)

    client = None
    if spec.client_host:
        client_host = platform.network.host(spec.client_host)
        client = DietClient(fabric, client_host, name="client", tracer=tracer)

    return Deployment(engine=engine, fabric=fabric, tracer=tracer, ma=ma,
                      local_agents=local_agents, seds=seds, client=client,
                      platform=platform)
