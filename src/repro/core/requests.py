"""Request descriptors exchanged between client, agents and SeDs."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .profile import Profile, ProfileDesc

__all__ = ["EstimateRequest", "SubmitRequest", "SolveRequest", "SolveReply",
           "new_request_id"]

_request_ids = itertools.count(1)


def new_request_id() -> int:
    """Globally unique (per-process) request identifier."""
    return next(_request_ids)


@dataclass
class EstimateRequest:
    """Broadcast down the agent hierarchy to collect estimation vectors."""

    request_id: int
    service_desc: ProfileDesc
    client_host: str
    request_nbytes: int = 0

    @property
    def service_path(self) -> str:
        """Uniform service accessor for the tracing pipeline."""
        return self.service_desc.path


@dataclass
class SubmitRequest:
    """Client -> Master Agent: find me a SeD for this profile."""

    request_id: int
    service_desc: ProfileDesc
    client_host: str
    client_endpoint: str
    request_nbytes: int = 0
    #: Bytes of this request's persistent input data already resident per
    #: SeD (from DataHandle arguments) — the Data Location Manager's view,
    #: consumed by locality-aware schedulers.
    resident_bytes: Dict[str, int] = field(default_factory=dict)
    #: The persistent-input handles themselves, so the MA can price each
    #: candidate's transfer cost through the replica catalog (DataHandle is
    #: frozen/hashable; empty for requests without persistent inputs).
    data_handles: Tuple = ()

    @property
    def service_path(self) -> str:
        """Uniform service accessor for the tracing pipeline."""
        return self.service_desc.path


@dataclass
class SolveRequest:
    """Client -> chosen SeD: here is the data, run the service."""

    request_id: int
    profile: Profile
    client_endpoint: str

    @property
    def service_path(self) -> str:
        """Uniform service accessor for the tracing pipeline."""
        return self.profile.path


@dataclass
class SolveReply:
    """SeD -> client: status + OUT/INOUT values + timing metadata."""

    request_id: int
    status: int
    out_values: Dict[int, object] = field(default_factory=dict)
    solve_started_at: float = 0.0
    solve_ended_at: float = 0.0
    sed_name: str = ""
    error: Optional[str] = None
