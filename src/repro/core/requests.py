"""Request descriptors exchanged between client, agents and SeDs."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .data import DataHandle, HANDLE_WIRE_BYTES
from .profile import Profile, ProfileDesc

__all__ = ["EstimateDelta", "EstimateRequest", "MemoHit", "SubmitRequest",
           "SolveRequest", "SolveReply", "new_request_id"]

_request_ids = itertools.count(1)


def new_request_id() -> int:
    """Globally unique (per-process) request identifier."""
    return next(_request_ids)


@dataclass
class EstimateRequest:
    """Broadcast down the agent hierarchy to collect estimation vectors."""

    request_id: int
    service_desc: ProfileDesc
    client_host: str
    request_nbytes: int = 0

    @property
    def service_path(self) -> str:
        """Uniform service accessor for the tracing pipeline."""
        return self.service_desc.path


@dataclass
class EstimateDelta:
    """Child -> parent: incremental estimate-table update (push routing).

    The inverse of :class:`EstimateRequest`: instead of the hierarchy
    polling every SeD per request, a SeD pushes a fresh estimation vector
    when its own state changes (solve start/end, queue change, restart) and
    each agent forwards only the resulting *changes* of its materialized
    top-k table upward.  ``updates`` rows carry a per-origin monotone
    ``seq`` so a stale delta (late wire arrival, pre-crash leftovers) can
    never overwrite a newer row.
    """

    #: Endpoint that sent this delta — the immediate child, which is the
    #: SeD itself at a leaf LA and the forwarding LA above that.
    source: str
    #: ``(service_path, EstimationVector, origin_host_name, seq)`` rows.
    updates: List[Tuple] = field(default_factory=list)
    #: ``(service_path, sed_name)`` rows whose candidate disappeared
    #: (fell out of the child's top-k, or the SeD was deregistered).
    removals: List[Tuple] = field(default_factory=list)

    def wire_bytes(self) -> int:
        """Message size: same per-vector cost as an estimate reply."""
        return 128 + 384 * len(self.updates) + 64 * len(self.removals)


@dataclass
class SubmitRequest:
    """Client -> Master Agent: find me a SeD for this profile."""

    request_id: int
    service_desc: ProfileDesc
    client_host: str
    client_endpoint: str
    request_nbytes: int = 0
    #: Bytes of this request's persistent input data already resident per
    #: SeD (from DataHandle arguments) — the Data Location Manager's view,
    #: consumed by locality-aware schedulers.
    resident_bytes: Dict[str, int] = field(default_factory=dict)
    #: The persistent-input handles themselves, so the MA can price each
    #: candidate's transfer cost through the replica catalog (DataHandle is
    #: frozen/hashable; empty for requests without persistent inputs).
    data_handles: Tuple = ()
    #: Canonical request-descriptor digest
    #: (:func:`repro.data.memo.descriptor_digest`); None when the client
    #: did not opt into memoization — the MA then never consults the memo,
    #: keeping memo-off deployments byte-identical.
    memo_key: Optional[str] = None

    @property
    def service_path(self) -> str:
        """Uniform service accessor for the tracing pipeline."""
        return self.service_desc.path


@dataclass
class SolveRequest:
    """Client -> chosen SeD: here is the data, run the service."""

    request_id: int
    profile: Profile
    client_endpoint: str
    #: Same digest as the submit carried; the SeD uses it to populate the
    #: memo on solve completion (None when memoization is off).
    memo_key: Optional[str] = None

    @property
    def service_path(self) -> str:
        """Uniform service accessor for the tracing pipeline."""
        return self.profile.path


@dataclass(frozen=True)
class MemoHit:
    """MA -> client: the request was already solved; here are the handles.

    Returned in place of the estimation vector when the submit's
    ``memo_key`` is in the grid memo: ``out_values`` maps OUT/INOUT
    argument indices to the :class:`~repro.core.data.DataHandle`\\ s of the
    persisted results on ``owner``.  The client materializes returning
    arguments with a ``memo_fetch`` pull from the owner and binds
    non-returning ones to the handles directly — no solve runs.
    """

    key: str
    owner: str
    out_values: Dict[int, DataHandle] = field(default_factory=dict)

    @property
    def sed_name(self) -> str:
        """Uniform accessor: scheduling traces label the chosen SeD."""
        return self.owner

    def wire_bytes(self) -> int:
        """Reply size: envelope plus one reference per result handle."""
        return 128 + HANDLE_WIRE_BYTES * len(self.out_values)


@dataclass
class SolveReply:
    """SeD -> client: status + OUT/INOUT values + timing metadata."""

    request_id: int
    status: int
    out_values: Dict[int, object] = field(default_factory=dict)
    solve_started_at: float = 0.0
    solve_ended_at: float = 0.0
    sed_name: str = ""
    error: Optional[str] = None
