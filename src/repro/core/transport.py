"""CORBA-substitute message transport over the simulated network.

DIET uses omniORB; GridSolve and Ninf use raw sockets (§2.1).  Here both
reduce to the same abstraction: named :class:`Endpoint` objects living on
simulated hosts, exchanging :class:`Message` objects whose delivery costs

    marshal(client) + network(latency, bandwidth, size) + unmarshal(server)

Every cost, counter and trace stamp on that path is charged by the
interceptor pipeline (:mod:`repro.core.pipeline`): a message travels as a
:class:`~repro.core.pipeline.MessageContext` through the ``send`` chain in
the sender, the ``deliver`` chain in the receiver, the ``reply`` chain in
the replier and the ``complete`` chain back in the caller.  The fabric
installs the calibrated :class:`MarshallingInterceptor` (mid-2000s omniORB
figures: fixed per-invocation + per-byte cost) and an
:class:`AccountingInterceptor`; components layer tracing, deadlines and
fault injection on their endpoints' own chains.

An RPC is a request message carrying a reply-to token; :meth:`Endpoint.rpc`
suspends the calling process until the reply arrives — or, when a
:class:`DeadlineInterceptor` grants the operation a policy, until the
deadline expires, with optional retries before
:class:`DeadlineExceededError` is raised.

A :class:`TransportFabric` owns the endpoint namespace — this doubles as
the omniNames-like naming service (endpoints are resolved by string name).
Reply delivery is at-most-once: a request whose reply can no longer arrive
(receiver stopped or unbound mid-flight) fails with
:class:`CommunicationError` instead of suspending the caller forever, and
duplicate replies are suppressed with an accounting mark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Iterable, Optional, Tuple

from ..sim.engine import Engine, Event, Interrupt, Process
from ..sim.network import Network
from ..sim.resources import Store
from .exceptions import CommunicationError, DeadlineExceededError
from .pipeline import (
    OUTBOUND_PHASES,
    AccountingInterceptor,
    Interceptor,
    InterceptorPipeline,
    MarshallingInterceptor,
    MessageContext,
    MessageDropped,
)

__all__ = ["TransportParams", "Message", "Endpoint", "TransportFabric"]


@dataclass(frozen=True)
class TransportParams:
    """Timing model of the RPC layer.

    Defaults are calibrated (see ``experiments/calibration.py``) so that the
    full MA/LA/SeD estimate round trip over the §5.1 topology averages the
    paper's 49.8 ms finding time.  The charges themselves are applied by the
    fabric's :class:`MarshallingInterceptor`.
    """

    #: CPU cost to marshal one invocation (CORBA stub + ORB dispatch), s.
    marshal_fixed: float = 2.8e-3
    #: Additional marshalling cost per byte of payload, s/byte.
    marshal_per_byte: float = 1.0e-9
    #: Server-side demultiplex + POA dispatch cost per message, s.
    dispatch_fixed: float = 1.6e-3
    #: Default payload size for control messages with no data, bytes.
    control_payload: int = 256


@dataclass
class Message:
    """One transported message."""

    msg_id: int
    src: str            # endpoint name
    dst: str            # endpoint name
    op: str             # operation name, e.g. "estimate", "solve"
    payload: Any = None
    nbytes: int = 0
    reply_to: Optional[Event] = None
    sent_at: float = 0.0
    delivered_at: float = 0.0

    @property
    def is_request(self) -> bool:
        return self.reply_to is not None


class Endpoint:
    """A named communication endpoint bound to a host.

    Handlers are registered per operation name; each incoming request spawns
    a handler *process* so a slow solve does not block the mailbox.  A
    handler is a generator function ``handler(message) -> (value, nbytes)``;
    its return value is shipped back as the RPC reply.

    Each endpoint owns an :class:`InterceptorPipeline`; its chain wraps the
    fabric-wide one like a protocol stack (endpoint hooks run closest to the
    application, fabric hooks closest to the wire).
    """

    def __init__(self, fabric: "TransportFabric", name: str, host_name: str,
                 interceptors: Iterable[Interceptor] = ()):
        self.fabric = fabric
        self.name = name
        self.host_name = host_name
        self.mailbox: Store = Store(fabric.engine)
        self.pipeline = InterceptorPipeline(interceptors)
        #: Combined (endpoint + fabric) pre-bound hook chains, one tuple per
        #: phase, rebuilt lazily whenever either pipeline's version moves.
        self._chains: Dict[str, tuple] = {}
        self._chains_key: Tuple[int, int] = (-1, -1)
        self._handlers: Dict[str, Callable] = {}
        #: Requests currently being handled: msg_id -> (message, process).
        #: :meth:`stop` interrupts these so a crashing server neither strands
        #: its callers nor keeps computing from beyond the grave.
        self._inflight: Dict[int, Tuple[Message, Process]] = {}
        self._serving = False
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once :meth:`stop` (or :meth:`TransportFabric.unbind`) ran."""
        return self._closed

    # -- interceptor chain fast path -------------------------------------------

    def chain_hooks(self, phase: str) -> tuple:
        """The combined pre-bound hook chain for ``phase``.

        Layering matches :func:`~repro.core.pipeline.run_chains`: endpoint
        hooks wrap fabric hooks on outbound phases, the reverse inbound.
        Cached against both pipelines' versions so per-message work is two
        dict probes instead of rebuilding the layering and re-fetching every
        hook.
        """
        ep, fab = self.pipeline, self.fabric.pipeline
        key = (ep.version, fab.version)
        if key != self._chains_key:
            self._chains.clear()
            self._chains_key = key
        hooks = self._chains.get(phase)
        if hooks is None:
            if phase in OUTBOUND_PHASES:
                hooks = ep.hooks(phase) + fab.hooks(phase)
            else:
                hooks = fab.hooks(phase) + ep.hooks(phase)
            self._chains[phase] = hooks
        return hooks

    def run_chain(self, phase: str,
                  ctx: MessageContext) -> Generator[Event, Any, None]:
        """Run the combined chain for one phase of ``ctx`` (fast path)."""
        ctx.phase = phase
        for hook in self.chain_hooks(phase):
            yield from hook(ctx)

    # -- handler registration --------------------------------------------------

    def on(self, op: str, handler: Callable) -> None:
        """Register a generator handler for operation ``op``."""
        self._handlers[op] = handler

    def start(self) -> None:
        """Start the serving loop (idempotent)."""
        if self._closed:
            raise CommunicationError(f"endpoint {self.name!r} is stopped")
        if not self._serving:
            self._serving = True
            self.fabric.engine.process(self._serve_loop(), name=f"serve:{self.name}")

    def _serve_loop(self) -> Generator[Event, Any, None]:
        engine = self.fabric.engine
        while True:
            msg = yield self.mailbox.get()
            if msg is _SHUTDOWN:
                return
            if self._closed:
                # stop() raced with an arriving message: dead-letter it.
                self.fabric._dead_letter(msg, f"endpoint {self.name!r} stopped")
                continue
            handler = self._handlers.get(msg.op)
            if handler is None:
                if msg.reply_to is not None:
                    err = CommunicationError(
                        f"endpoint {self.name!r} has no handler for {msg.op!r}")
                    self.fabric._deliver_reply(msg, self, "error", err, 128)
                continue
            proc = engine.process(self._handle(handler, msg),
                                  name=f"{self.name}:{msg.op}#{msg.msg_id}")
            self._inflight[msg.msg_id] = (msg, proc)

    def _handle(self, handler: Callable, msg: Message) -> Generator[Event, Any, None]:
        ctx = MessageContext(self.fabric, msg, self, msg.nbytes)
        try:
            try:
                # Server-side dispatch cost + any deliver-side interceptors.
                yield from self.run_chain("deliver", ctx)
            except MessageDropped:
                self.fabric.accounting.note_dropped()
                return
            try:
                result = yield from handler(msg)
            except Interrupt:
                # Not an application failure: the endpoint is crashing.  Let
                # the outer handler dead-letter the request (must re-raise
                # before ``except Exception`` — Interrupt subclasses it).
                raise
            except Exception as exc:  # ship failures back to the caller
                if msg.reply_to is not None:
                    self.fabric._deliver_reply(msg, self, "error", exc, 128)
                    return
                raise
            if msg.reply_to is not None:
                value, nbytes = result if isinstance(result, tuple) else (result, None)
                if nbytes is None:
                    nbytes = self.fabric.params.control_payload
                self.fabric._deliver_reply(msg, self, "ok", value, nbytes)
        except Interrupt:
            # The server died mid-request (endpoint stopped / host crash):
            # resume the caller with CommunicationError, never a reply.
            self.fabric._dead_letter(
                msg, f"endpoint {self.name!r} stopped while handling {msg.op!r}")
        finally:
            self._inflight.pop(msg.msg_id, None)

    def stop(self) -> None:
        """Stop serving; queued and in-flight requests are dead-lettered.

        Any request already in the mailbox (or racing in behind the shutdown)
        has its ``reply_to`` failed with :class:`CommunicationError` so the
        caller resumes instead of suspending forever.  Handler processes
        still running are interrupted: the Interrupt unwinds them (releasing
        CPU/slot claims along the way) and :meth:`_handle` dead-letters the
        request — crash semantics, not graceful drain.
        """
        if self._closed:
            return
        self._closed = True
        while True:
            msg = self.mailbox.try_get()
            if msg is None:
                break
            if msg is not _SHUTDOWN:
                self.fabric._dead_letter(msg, f"endpoint {self.name!r} stopped")
        for msg, proc in list(self._inflight.values()):
            if proc.is_alive:
                proc.interrupt(CommunicationError(
                    f"endpoint {self.name!r} stopped"))
            else:
                self.fabric._dead_letter(
                    msg, f"endpoint {self.name!r} stopped")
        if self._serving:
            self.mailbox.put(_SHUTDOWN)
            self._serving = False

    # -- sending ---------------------------------------------------------------

    def send(self, dst: str, op: str, payload: Any = None,
             nbytes: Optional[int] = None) -> Generator[Event, Any, None]:
        """One-way message (no reply expected)."""
        yield from self.fabric._transmit(self, dst, op, payload, nbytes, reply_to=None)

    def try_send(self, dst: str, op: str, payload: Any = None,
                 nbytes: Optional[int] = None) -> Generator[Event, Any, bool]:
        """Best-effort one-way message: False instead of raising.

        Push-mode estimate deltas use this — a parent that is stopped,
        unbound, or vanishes while the delta is on the wire is a liveness
        problem (heartbeats will deal with it), not the sender's: the pump
        must keep running, not unwind.
        """
        try:
            yield from self.fabric._transmit(self, dst, op, payload, nbytes,
                                             reply_to=None)
        except CommunicationError:
            return False
        return True

    def rpc(self, dst: str, op: str, payload: Any = None,
            nbytes: Optional[int] = None) -> Generator[Event, Any, Any]:
        """Remote invocation; suspends until the reply arrives.

        Returns the handler's value; re-raises the handler's exception.  When
        a :class:`DeadlineInterceptor` (endpoint chain first, then fabric)
        grants ``op`` a policy, the reply is raced against the deadline and
        the request re-sent up to ``retries`` times (waiting ``backoff *
        attempt`` between tries) before :class:`DeadlineExceededError`.
        """
        engine = self.fabric.engine
        policy = self.pipeline.rpc_policy(op) or self.fabric.pipeline.rpc_policy(op)
        attempt = 0
        while True:
            reply = Event(engine)
            msg = yield from self.fabric._transmit(
                self, dst, op, payload, nbytes, reply_to=reply, attempt=attempt)
            if policy is None:
                result = yield reply
            else:
                yield engine.any_of([reply, engine.timeout(policy.deadline)])
                if not reply.triggered:
                    if attempt < policy.retries:
                        attempt += 1
                        if policy.backoff > 0:
                            yield engine.timeout(policy.backoff * attempt)
                        continue
                    raise DeadlineExceededError(
                        f"rpc {op!r} to {dst!r} exceeded {policy.deadline}s "
                        f"deadline after {attempt + 1} attempt(s)")
                result = reply.value
            status, value, reply_nbytes = result
            ctx = MessageContext(self.fabric, msg, self, reply_nbytes,
                                 reply_status=status, reply_value=value,
                                 attempt=attempt)
            yield from self.run_chain("complete", ctx)
            if status == "error":
                raise value
            return value


_SHUTDOWN = object()


class TransportFabric:
    """Endpoint namespace + message delivery over the simulated network."""

    def __init__(self, engine: Engine, network: Network,
                 params: Optional[TransportParams] = None):
        self.engine = engine
        self.network = network
        self.params = params or TransportParams()
        self._endpoints: Dict[str, Endpoint] = {}
        self._msg_ids = itertools.count(1)
        #: Request ids are fabric-scoped, not process-global: a campaign's
        #: ids are then a pure function of the campaign itself, so two runs
        #: of the same seeded experiment — in one process, in different
        #: processes, serial or under the parallel runner — label their
        #: traces identically.
        self._request_ids = itertools.count(1)
        #: Fabric-wide chain: cost model first (wire time), then accounting.
        self.pipeline = InterceptorPipeline()
        self.marshalling = self.pipeline.add(MarshallingInterceptor(self.params))
        self.accounting = self.pipeline.add(AccountingInterceptor())

    def new_request_id(self) -> int:
        """Next request id, unique within this fabric (all clients of a
        deployment share the counter, so ids never collide)."""
        return next(self._request_ids)

    # -- counters (kept as properties for the statistics layer) -----------------

    @property
    def messages_sent(self) -> int:
        return self.accounting.messages_sent

    @property
    def bytes_sent(self) -> int:
        return self.accounting.bytes_sent

    # -- naming service (omniNames substitute) -----------------------------------

    def endpoint(self, name: str, host_name: str,
                 interceptors: Iterable[Interceptor] = ()) -> Endpoint:
        """Create and register a named endpoint on ``host_name``."""
        if name in self._endpoints:
            raise CommunicationError(f"endpoint name {name!r} already bound")
        # Validate the host exists up front.
        self.network.host(host_name)
        ep = Endpoint(self, name, host_name, interceptors)
        self._endpoints[name] = ep
        return ep

    def resolve(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise CommunicationError(f"cannot resolve endpoint {name!r}") from None

    def unbind(self, name: str) -> None:
        ep = self._endpoints.pop(name, None)
        if ep is not None:
            ep.stop()

    # -- delivery -----------------------------------------------------------------

    def _dead_letter(self, msg: Message, reason: str) -> None:
        """A message that can never be processed: resume its caller (if any)
        with :class:`CommunicationError` instead of stranding it."""
        self.accounting.note_dead_letter()
        if msg.reply_to is not None and not msg.reply_to.triggered:
            msg.reply_to.succeed(("error", CommunicationError(reason), 0))

    def _transmit(self, src: Endpoint, dst_name: str, op: str, payload: Any,
                  nbytes: Optional[int], reply_to: Optional[Event],
                  attempt: int = 0) -> Generator[Event, Any, Message]:
        dst = self.resolve(dst_name)
        if dst.closed:
            raise CommunicationError(f"endpoint {dst_name!r} is stopped")
        size = self.params.control_payload if nbytes is None else int(nbytes)
        msg = Message(next(self._msg_ids), src.name, dst_name, op, payload,
                      size, reply_to, sent_at=self.engine.now)
        ctx = MessageContext(self, msg, src, size, attempt=attempt)
        try:
            # Sender-side chain: marshalling cost, accounting, tracing, faults.
            yield from src.run_chain("send", ctx)
        except MessageDropped:
            self.accounting.note_dropped()
            return msg
        yield from self.network.transfer(src.host_name, dst.host_name, ctx.nbytes)
        # The destination may have stopped or been unbound while the message
        # was on the wire; surface that to the sender rather than parking the
        # message in a mailbox nobody will ever read.
        if self._endpoints.get(dst_name) is not dst or dst.closed:
            self.accounting.note_dead_letter()
            raise CommunicationError(
                f"endpoint {dst_name!r} vanished while {op!r} was in flight")
        msg.delivered_at = self.engine.now
        dst.mailbox.put(msg)
        for _ in range(ctx.meta.get("duplicates", 0)):
            dst.mailbox.put(msg)
        return msg

    def _deliver_reply(self, request: Message, replier: Endpoint, status: str,
                       value: Any, nbytes: int) -> None:
        """Ship an RPC reply back asynchronously (spawned process).

        Delivery is at-most-once: a duplicate reply (fault injection, or a
        retry racing a late original) is suppressed with an accounting mark.
        If the replier or the caller disappeared mid-flight the caller is
        resumed with :class:`CommunicationError` — never crash the engine on
        a name that no longer resolves.
        """
        def _reply_proc() -> Generator[Event, Any, None]:
            reply_to = request.reply_to
            assert reply_to is not None
            if reply_to.triggered:
                self.accounting.note_suppressed_reply()
                return
            ctx = MessageContext(self, request, replier, nbytes,
                                 reply_status=status, reply_value=value)
            try:
                yield from replier.run_chain("reply", ctx)
            except MessageDropped:
                self.accounting.note_dropped()
                return
            caller = self._endpoints.get(request.src)
            if replier.closed or self._endpoints.get(request.dst) is not replier:
                self._dead_letter(
                    request, f"endpoint {request.dst!r} stopped before its "
                             f"{request.op!r} reply was sent")
                return
            if caller is None or caller.closed:
                self._dead_letter(
                    request, f"caller {request.src!r} unbound before its "
                             f"{request.op!r} reply arrived")
                return
            yield from self.network.transfer(replier.host_name, caller.host_name,
                                             ctx.nbytes)
            if not reply_to.triggered:
                reply_to.succeed((status, value, ctx.nbytes))
            else:
                self.accounting.note_suppressed_reply()

        self.engine.process(_reply_proc(), name=f"reply:{request.op}#{request.msg_id}")
