"""CORBA-substitute message transport over the simulated network.

DIET uses omniORB; GridSolve and Ninf use raw sockets (§2.1).  Here both
reduce to the same abstraction: named :class:`Endpoint` objects living on
simulated hosts, exchanging :class:`Message` objects whose delivery costs

    marshal(client) + network(latency, bandwidth, size) + unmarshal(server)

The marshalling model is calibrated to mid-2000s omniORB figures: a fixed
per-invocation cost plus a per-byte cost, both charged as simulated time.
An RPC is a request message carrying a reply-to token; :meth:`Endpoint.rpc`
suspends the calling process until the reply arrives.

A :class:`TransportFabric` owns the endpoint namespace — this doubles as
the omniNames-like naming service (endpoints are resolved by string name).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from ..sim.engine import Engine, Event
from ..sim.network import Network
from ..sim.resources import Store
from .exceptions import CommunicationError

__all__ = ["TransportParams", "Message", "Endpoint", "TransportFabric"]


@dataclass(frozen=True)
class TransportParams:
    """Timing model of the RPC layer.

    Defaults are calibrated (see ``experiments/calibration.py``) so that the
    full MA/LA/SeD estimate round trip over the §5.1 topology averages the
    paper's 49.8 ms finding time.
    """

    #: CPU cost to marshal one invocation (CORBA stub + ORB dispatch), s.
    marshal_fixed: float = 2.8e-3
    #: Additional marshalling cost per byte of payload, s/byte.
    marshal_per_byte: float = 1.0e-9
    #: Server-side demultiplex + POA dispatch cost per message, s.
    dispatch_fixed: float = 1.6e-3
    #: Default payload size for control messages with no data, bytes.
    control_payload: int = 256


@dataclass
class Message:
    """One transported message."""

    msg_id: int
    src: str            # endpoint name
    dst: str            # endpoint name
    op: str             # operation name, e.g. "estimate", "solve"
    payload: Any = None
    nbytes: int = 0
    reply_to: Optional[Event] = None
    sent_at: float = 0.0
    delivered_at: float = 0.0

    @property
    def is_request(self) -> bool:
        return self.reply_to is not None


class Endpoint:
    """A named communication endpoint bound to a host.

    Handlers are registered per operation name; each incoming request spawns
    a handler *process* so a slow solve does not block the mailbox.  A
    handler is a generator function ``handler(message) -> (value, nbytes)``;
    its return value is shipped back as the RPC reply.
    """

    def __init__(self, fabric: "TransportFabric", name: str, host_name: str):
        self.fabric = fabric
        self.name = name
        self.host_name = host_name
        self.mailbox: Store = Store(fabric.engine)
        self._handlers: Dict[str, Callable] = {}
        self._serving = False

    # -- handler registration --------------------------------------------------

    def on(self, op: str, handler: Callable) -> None:
        """Register a generator handler for operation ``op``."""
        self._handlers[op] = handler

    def start(self) -> None:
        """Start the serving loop (idempotent)."""
        if not self._serving:
            self._serving = True
            self.fabric.engine.process(self._serve_loop(), name=f"serve:{self.name}")

    def _serve_loop(self) -> Generator[Event, Any, None]:
        engine = self.fabric.engine
        while True:
            msg = yield self.mailbox.get()
            if msg is _SHUTDOWN:
                return
            handler = self._handlers.get(msg.op)
            if handler is None:
                if msg.reply_to is not None:
                    err = CommunicationError(
                        f"endpoint {self.name!r} has no handler for {msg.op!r}")
                    self.fabric._deliver_reply(msg, ("error", err), 128)
                continue
            engine.process(self._handle(handler, msg),
                           name=f"{self.name}:{msg.op}#{msg.msg_id}")

    def _handle(self, handler: Callable, msg: Message) -> Generator[Event, Any, None]:
        engine = self.fabric.engine
        # Server-side dispatch cost.
        yield engine.timeout(self.fabric.params.dispatch_fixed)
        try:
            result = yield from handler(msg)
        except Exception as exc:  # ship failures back to the caller
            if msg.reply_to is not None:
                self.fabric._deliver_reply(msg, ("error", exc), 128)
                return
            raise
        if msg.reply_to is not None:
            value, nbytes = result if isinstance(result, tuple) else (result, None)
            if nbytes is None:
                nbytes = self.fabric.params.control_payload
            self.fabric._deliver_reply(msg, ("ok", value), nbytes)

    def stop(self) -> None:
        self.mailbox.put(_SHUTDOWN)
        self._serving = False

    # -- sending ---------------------------------------------------------------

    def send(self, dst: str, op: str, payload: Any = None,
             nbytes: Optional[int] = None) -> Generator[Event, Any, None]:
        """One-way message (no reply expected)."""
        yield from self.fabric._transmit(self, dst, op, payload, nbytes, reply_to=None)

    def rpc(self, dst: str, op: str, payload: Any = None,
            nbytes: Optional[int] = None) -> Generator[Event, Any, Any]:
        """Remote invocation; suspends until the reply arrives.

        Returns the handler's value; re-raises the handler's exception.
        """
        reply = Event(self.fabric.engine)
        yield from self.fabric._transmit(self, dst, op, payload, nbytes, reply_to=reply)
        status, value = yield reply
        if status == "error":
            raise value
        return value


_SHUTDOWN = object()


class TransportFabric:
    """Endpoint namespace + message delivery over the simulated network."""

    def __init__(self, engine: Engine, network: Network,
                 params: Optional[TransportParams] = None):
        self.engine = engine
        self.network = network
        self.params = params or TransportParams()
        self._endpoints: Dict[str, Endpoint] = {}
        self._msg_ids = itertools.count(1)
        #: Counters for the statistics layer.
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- naming service (omniNames substitute) -----------------------------------

    def endpoint(self, name: str, host_name: str) -> Endpoint:
        """Create and register a named endpoint on ``host_name``."""
        if name in self._endpoints:
            raise CommunicationError(f"endpoint name {name!r} already bound")
        # Validate the host exists up front.
        self.network.host(host_name)
        ep = Endpoint(self, name, host_name)
        self._endpoints[name] = ep
        return ep

    def resolve(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise CommunicationError(f"cannot resolve endpoint {name!r}") from None

    def unbind(self, name: str) -> None:
        ep = self._endpoints.pop(name, None)
        if ep is not None:
            ep.stop()

    # -- delivery -----------------------------------------------------------------

    def _transmit(self, src: Endpoint, dst_name: str, op: str, payload: Any,
                  nbytes: Optional[int], reply_to: Optional[Event]
                  ) -> Generator[Event, Any, None]:
        dst = self.resolve(dst_name)
        size = self.params.control_payload if nbytes is None else int(nbytes)
        msg = Message(next(self._msg_ids), src.name, dst_name, op, payload,
                      size, reply_to, sent_at=self.engine.now)
        # Sender-side marshalling cost.
        yield self.engine.timeout(
            self.params.marshal_fixed + self.params.marshal_per_byte * size)
        self.messages_sent += 1
        self.bytes_sent += size
        yield from self.network.transfer(src.host_name, dst.host_name, size)
        msg.delivered_at = self.engine.now
        dst.mailbox.put(msg)

    def _deliver_reply(self, request: Message, value: Any, nbytes: int) -> None:
        """Ship an RPC reply back asynchronously (spawned process)."""
        def _reply_proc() -> Generator[Event, Any, None]:
            yield self.engine.timeout(
                self.params.marshal_fixed + self.params.marshal_per_byte * nbytes)
            self.messages_sent += 1
            self.bytes_sent += nbytes
            src_ep = self.resolve(request.dst)   # replying endpoint
            dst_ep = self.resolve(request.src)   # original caller
            yield from self.network.transfer(src_ep.host_name, dst_ep.host_name, nbytes)
            assert request.reply_to is not None
            request.reply_to.succeed(value)

        self.engine.process(_reply_proc(), name=f"reply:{request.op}#{request.msg_id}")
