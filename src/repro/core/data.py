"""DIET data model: base types, composite types, persistence, arguments.

Mirrors ``DIET_data.h`` (§4.2.1, §4.2.3, §4.3.2 of the paper):

* composite types — ``DIET_SCALAR``, ``DIET_VECTOR``, ``DIET_MATRIX``,
  ``DIET_STRING``, ``DIET_FILE``;
* base types — ``DIET_CHAR``, ``DIET_INT``, ``DIET_FLOAT``, ``DIET_DOUBLE``;
* persistence modes — ``DIET_VOLATILE``, ``DIET_PERSISTENT``,
  ``DIET_STICKY`` (and their ``*_RETURN`` variants);
* argument direction — ``IN``, ``INOUT``, ``OUT`` with the paper's memory
  contract (OUT values are produced by the server; the client must not read
  them before the call completes, and owns them afterwards).

Sizes are tracked on every argument so the transport layer can charge
realistic transfer times.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from .exceptions import DataError, ProfileError

__all__ = [
    "BaseType",
    "CompositeType",
    "PersistenceMode",
    "Direction",
    "ArgDesc",
    "DataHandle",
    "DietArg",
    "FileRef",
    "HANDLE_WIRE_BYTES",
    "sizeof_value",
    "scalar_desc",
    "vector_desc",
    "matrix_desc",
    "string_desc",
    "file_desc",
]


class BaseType(enum.Enum):
    """Element types (DIET_CHAR ... DIET_DOUBLE)."""

    CHAR = ("DIET_CHAR", 1)
    SHORT = ("DIET_SHORT", 2)
    INT = ("DIET_INT", 4)
    LONGINT = ("DIET_LONGINT", 8)
    FLOAT = ("DIET_FLOAT", 4)
    DOUBLE = ("DIET_DOUBLE", 8)

    def __init__(self, cname: str, nbytes: int):
        self.cname = cname
        self.nbytes = nbytes


class CompositeType(enum.Enum):
    """Container types (DIET_SCALAR ... DIET_FILE)."""

    SCALAR = "DIET_SCALAR"
    VECTOR = "DIET_VECTOR"
    MATRIX = "DIET_MATRIX"
    STRING = "DIET_STRING"
    FILE = "DIET_FILE"


class PersistenceMode(enum.Enum):
    """Where data lives after the call (DIET data management, §4.2.3)."""

    VOLATILE = "DIET_VOLATILE"            # freed on the server after the call
    PERSISTENT = "DIET_PERSISTENT"        # kept on the server for reuse
    PERSISTENT_RETURN = "DIET_PERSISTENT_RETURN"
    STICKY = "DIET_STICKY"                # kept and never moved between SeDs
    STICKY_RETURN = "DIET_STICKY_RETURN"

    @property
    def keeps_server_copy(self) -> bool:
        return self is not PersistenceMode.VOLATILE

    @property
    def returns_to_client(self) -> bool:
        return self in (PersistenceMode.VOLATILE,
                        PersistenceMode.PERSISTENT_RETURN,
                        PersistenceMode.STICKY_RETURN)


class Direction(enum.Enum):
    IN = "IN"
    INOUT = "INOUT"
    OUT = "OUT"


def sizeof_value(composite: CompositeType, base: BaseType, value: Any) -> int:
    """Wire size in bytes of ``value`` under the declared DIET type."""
    if value is None:
        return 0
    if isinstance(value, DataHandle):
        # a reference travels, not the data
        return HANDLE_WIRE_BYTES
    if composite is CompositeType.SCALAR:
        return base.nbytes
    if composite is CompositeType.STRING:
        return len(str(value)) + 1
    if composite is CompositeType.FILE:
        # FILE values are (path, nbytes) pairs or FileRef objects.
        if isinstance(value, FileRef):
            return value.nbytes
        if isinstance(value, tuple) and len(value) == 2:
            return int(value[1])
        raise DataError(f"DIET_FILE value must be FileRef or (path, nbytes), got {value!r}")
    if composite in (CompositeType.VECTOR, CompositeType.MATRIX):
        arr = np.asarray(value)
        return int(arr.size) * base.nbytes
    raise DataError(f"unsupported composite type {composite}")


@dataclass(frozen=True)
class FileRef:
    """A reference to a (simulated or real) file: logical path + size.

    In REAL execution mode ``local_path`` points at an actual file on the
    local disk of the pytest/example process; in MODELED mode only the size
    matters.
    """

    path: str
    nbytes: int
    local_path: Optional[str] = None
    #: Optional in-band file content (DIET ships DIET_FILE arguments by
    #: value; small text files like namelists travel inline).
    content: Optional[str] = None

    def __post_init__(self):
        if self.nbytes < 0:
            raise DataError("file size must be non-negative")

    @classmethod
    def from_text(cls, path: str, text: str) -> "FileRef":
        return cls(path=path, nbytes=len(text.encode()), content=text)


#: Wire size of a data *reference* (a CORBA object reference, roughly).
HANDLE_WIRE_BYTES = 64


@dataclass(frozen=True)
class DataHandle:
    """A reference to data persisted on a SeD (the DTM side of §4.2.3).

    Arguments with ``DIET_PERSISTENT``/``DIET_STICKY`` persistence stay on
    the server after the call; the client receives a handle instead of the
    bytes, and may pass the handle as an IN argument of a later call — the
    data then moves SeD-to-SeD (or not at all, when the scheduler picks the
    owner) instead of round-tripping through the client.
    """

    data_id: str
    sed_name: str
    nbytes: int

    def __post_init__(self):
        if self.nbytes < 0:
            raise DataError("data size must be non-negative")


@dataclass
class ArgDesc:
    """Type-level description of one profile argument (no value).

    This is what ``diet_generic_desc_set(diet_parameter(pb, i), ...)``
    builds in the C API.
    """

    composite: CompositeType = CompositeType.SCALAR
    base: BaseType = BaseType.INT
    persistence: PersistenceMode = PersistenceMode.VOLATILE

    def describe(self) -> str:
        return f"{self.composite.value}/{self.base.cname}/{self.persistence.value}"


@dataclass
class DietArg:
    """One argument slot of a concrete profile: description + value + size."""

    desc: ArgDesc = field(default_factory=ArgDesc)
    direction: Direction = Direction.IN
    value: Any = None
    _set: bool = False

    def set(self, value: Any) -> None:
        """Client/server-side setter (diet_scalar_set / diet_file_set ...).

        Per §4.3.1 OUT arguments must be *declared* even when their value is
        still NULL; setting ``None`` marks the slot declared-but-empty.
        """
        self.value = value
        self._set = True

    def get(self) -> Any:
        """Accessor (diet_scalar_get / diet_file_get ...)."""
        if not self._set:
            raise DataError(f"argument not set (direction {self.direction.value})")
        return self.value

    @property
    def is_set(self) -> bool:
        return self._set

    @property
    def nbytes(self) -> int:
        if not self._set or self.value is None:
            return 0
        return sizeof_value(self.desc.composite, self.desc.base, self.value)

    def validate_for_submit(self) -> None:
        """Check the client filled this argument correctly before diet_call."""
        if self.direction in (Direction.IN, Direction.INOUT):
            if not self._set:
                raise ProfileError(
                    f"{self.direction.value} argument must be set before diet_call")
        else:  # OUT: must be declared, value may be None
            if not self._set:
                raise ProfileError("OUT arguments must be declared (value may be NULL)")


# -- convenience constructors ----------------------------------------------------

def scalar_desc(base: BaseType = BaseType.INT,
                persistence: PersistenceMode = PersistenceMode.VOLATILE) -> ArgDesc:
    return ArgDesc(CompositeType.SCALAR, base, persistence)


def vector_desc(base: BaseType = BaseType.DOUBLE,
                persistence: PersistenceMode = PersistenceMode.VOLATILE) -> ArgDesc:
    return ArgDesc(CompositeType.VECTOR, base, persistence)


def matrix_desc(base: BaseType = BaseType.DOUBLE,
                persistence: PersistenceMode = PersistenceMode.VOLATILE) -> ArgDesc:
    return ArgDesc(CompositeType.MATRIX, base, persistence)


def string_desc(persistence: PersistenceMode = PersistenceMode.VOLATILE) -> ArgDesc:
    return ArgDesc(CompositeType.STRING, BaseType.CHAR, persistence)


def file_desc(persistence: PersistenceMode = PersistenceMode.VOLATILE) -> ArgDesc:
    return ArgDesc(CompositeType.FILE, BaseType.CHAR, persistence)
