"""Composable interceptor pipeline for the DIET message path.

Every message that crosses the transport — client submit, agent estimate
fan-out, SeD solve, monitoring posts — travels as a :class:`MessageContext`
envelope through an ordered chain of interceptors.  The paper's whole
evaluation (finding time ≈ 49.8 ms, latency growth, ≈ 70.6 ms/simulation
overhead) is a property of this client → MA → LA → SeD path, so the
concerns that used to be hand-inlined per component are expressed once,
as stock interceptors that compose on the one path:

* :class:`MarshallingInterceptor` — the calibrated CORBA cost model
  (fixed + per-byte marshalling, server-side dispatch);
* :class:`AccountingInterceptor` — message/byte counters plus drop,
  dead-letter and duplicate-suppression marks;
* :class:`TracingInterceptor` — feeds
  :class:`~repro.core.statistics.RequestTrace` lifecycle stamps and emits
  LogCentral events, replacing the ad-hoc call sites that used to live in
  ``client.py`` / ``agent.py`` / ``sed.py``;
* :class:`DeadlineInterceptor` — one timeout/retry/backoff mechanism shared
  by the MA/LA estimate fan-out and client-side solve deadlines;
* :class:`FaultInjectionInterceptor` — message drop / delay / duplicate by
  named RNG stream, for the failure-injection test suite.

A message passes four phases:

``send``
    in the sender's process, before the network transfer (marshalling);
``deliver``
    in the receiver's handler process, before the handler runs (dispatch);
``reply``
    in the spawned reply process, before the reply crosses the network;
``complete``
    back in the caller's process, once the RPC reply has arrived.

Interceptor hooks are generator functions so they can charge simulated
time (``yield engine.timeout(...)``).  Chains are layered like a protocol
stack: on *outbound* phases (``send``, ``reply``) the local endpoint's
interceptors run before the fabric-wide ones (application → wire); on
*inbound* phases (``deliver``, ``complete``) the fabric chain runs first
(wire → application).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..sim.engine import Engine, Event
from .exceptions import ServerNotFoundError
from .logservice import post_event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .statistics import Tracer
    from .transport import Endpoint, Message, TransportFabric, TransportParams

__all__ = [
    "MessageContext",
    "MessageDropped",
    "Interceptor",
    "InterceptorPipeline",
    "RpcPolicy",
    "MarshallingInterceptor",
    "AccountingInterceptor",
    "TracingInterceptor",
    "DeadlineInterceptor",
    "FaultInjectionInterceptor",
]

#: Phase names, in path order.
PHASES = ("send", "deliver", "reply", "complete")

#: Phases where the endpoint chain wraps the fabric chain (application
#: layers run closest to the handler, wire layers closest to the network).
OUTBOUND_PHASES = frozenset({"send", "reply"})


class MessageDropped(Exception):
    """Control-flow signal: an interceptor swallowed the message.

    The transport treats a dropped message as silently lost: a one-way send
    vanishes; an RPC request or reply never arrives, leaving the caller to
    its deadline (install a :class:`DeadlineInterceptor` when injecting
    drops, exactly as a real deployment pairs fault tolerance with
    timeouts).
    """


@dataclass
class MessageContext:
    """The envelope an in-flight message travels in through one phase.

    ``nbytes`` is the size of the *current leg* — the request payload on
    ``send``/``deliver``, the reply payload on ``reply``/``complete`` — and
    is mutable so compression-style interceptors can rewrite it before the
    wire cost is charged.
    """

    fabric: "TransportFabric"
    message: "Message"
    endpoint: "Endpoint"
    nbytes: int
    phase: str = "send"
    #: "ok" / "error" on the reply/complete legs, None on the request legs.
    reply_status: Optional[str] = None
    reply_value: Any = None
    #: Retry attempt this message belongs to (0 = first try).
    attempt: int = 0
    #: Free-form annotations interceptors leave for each other.
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def engine(self) -> Engine:
        return self.fabric.engine

    @property
    def op(self) -> str:
        return self.message.op

    @property
    def payload(self) -> Any:
        return self.message.payload

    @property
    def src(self) -> str:
        return self.message.src

    @property
    def dst(self) -> str:
        return self.message.dst

    @property
    def is_request(self) -> bool:
        return self.message.reply_to is not None

    @property
    def request_id(self) -> Optional[int]:
        """Request id carried by the payload, when the payload is one of the
        DIET request descriptors (see :mod:`repro.core.requests`)."""
        return getattr(self.message.payload, "request_id", None)

    @property
    def service(self) -> str:
        """Service path carried by the payload, '' when not a DIET request."""
        return getattr(self.message.payload, "service_path", "")

    def drop(self, reason: str = "dropped by interceptor") -> None:
        """Abort the current phase, discarding the message."""
        raise MessageDropped(reason)


@dataclass(frozen=True)
class RpcPolicy:
    """Deadline/retry contract a :class:`DeadlineInterceptor` grants an op."""

    deadline: float
    retries: int = 0
    backoff: float = 0.0


class Interceptor:
    """Base class: every hook is a generator that may charge simulated time.

    Subclasses override only the phases they care about; the defaults are
    zero-cost pass-throughs.
    """

    def intercept_send(self, ctx: MessageContext) -> Generator[Event, Any, None]:
        return
        yield  # pragma: no cover - generator marker

    def intercept_deliver(self, ctx: MessageContext) -> Generator[Event, Any, None]:
        return
        yield  # pragma: no cover - generator marker

    def intercept_reply(self, ctx: MessageContext) -> Generator[Event, Any, None]:
        return
        yield  # pragma: no cover - generator marker

    def intercept_complete(self, ctx: MessageContext) -> Generator[Event, Any, None]:
        return
        yield  # pragma: no cover - generator marker

    def rpc_policy(self, op: str) -> Optional[RpcPolicy]:
        """Deadline/retry policy this interceptor grants RPCs of ``op``."""
        return None


class InterceptorPipeline:
    """An ordered chain of interceptors.

    Hot-path discipline: the per-phase hook chains are *pre-bound* —
    :meth:`hooks` returns a cached tuple of bound hook methods with the
    no-op defaults already filtered out, so the per-message cost is one
    dict lookup instead of a list copy plus a ``getattr`` per interceptor
    (every message crosses four phases, and a campaign sends hundreds of
    thousands).  Mutating the chain through :meth:`add` / :meth:`remove`
    bumps :attr:`version`, which invalidates the caches here and the
    combined per-endpoint chains in the transport.
    """

    def __init__(self, interceptors: Iterable[Interceptor] = ()):
        self.interceptors: List[Interceptor] = list(interceptors)
        #: Bumped on every add/remove; consumers key their caches on it.
        self.version = 0
        self._hooks: Dict[str, tuple] = {}
        self._policies: Dict[str, Optional[RpcPolicy]] = {}

    def _invalidate(self) -> None:
        self.version += 1
        self._hooks.clear()
        self._policies.clear()

    def add(self, interceptor: Interceptor, index: Optional[int] = None) -> Interceptor:
        """Append (or insert at ``index``) an interceptor; returns it."""
        if index is None:
            self.interceptors.append(interceptor)
        else:
            self.interceptors.insert(index, interceptor)
        self._invalidate()
        return interceptor

    def remove(self, interceptor: Interceptor) -> None:
        self.interceptors.remove(interceptor)
        self._invalidate()

    def find(self, kind: type) -> Optional[Interceptor]:
        """First installed interceptor of ``kind``, or None."""
        for icpt in self.interceptors:
            if isinstance(icpt, kind):
                return icpt
        return None

    def hooks(self, phase: str) -> tuple:
        """Pre-bound hook chain for ``phase`` (no-op defaults skipped)."""
        chain = self._hooks.get(phase)
        if chain is None:
            attr = "intercept_" + phase
            default = getattr(Interceptor, attr)
            chain = tuple(getattr(icpt, attr) for icpt in self.interceptors
                          if getattr(type(icpt), attr, None) is not default)
            self._hooks[phase] = chain
        return chain

    def run(self, phase: str, ctx: MessageContext) -> Generator[Event, Any, None]:
        """Run this chain's hooks for ``phase``, in installation order."""
        for hook in self.hooks(phase):
            yield from hook(ctx)

    def rpc_policy(self, op: str) -> Optional[RpcPolicy]:
        """First non-None policy granted for ``op`` (cached per op until
        the chain is mutated — policies are expected to be stable for a
        given chain, as :class:`DeadlineInterceptor`'s are)."""
        try:
            return self._policies[op]
        except KeyError:
            pass
        policy = None
        for icpt in self.interceptors:
            policy = icpt.rpc_policy(op)
            if policy is not None:
                break
        self._policies[op] = policy
        return policy


def run_chains(phase: str, endpoint_pipeline: InterceptorPipeline,
               fabric_pipeline: InterceptorPipeline,
               ctx: MessageContext) -> Generator[Event, Any, None]:
    """Run the layered chain for one phase (see module docstring).

    The transport's :meth:`~repro.core.transport.Endpoint.run_chain` is the
    fast path (combined pre-bound chain per endpoint); this function is the
    composable equivalent for callers holding two bare pipelines.
    """
    ctx.phase = phase
    if phase in OUTBOUND_PHASES:
        order = (endpoint_pipeline, fabric_pipeline)
    else:
        order = (fabric_pipeline, endpoint_pipeline)
    for pipeline in order:
        yield from pipeline.run(phase, ctx)


# ---------------------------------------------------------------------------
# stock interceptors
# ---------------------------------------------------------------------------


class MarshallingInterceptor(Interceptor):
    """The calibrated CORBA cost model as a pipeline stage.

    Charges the mid-2000s omniORB figures that used to be inlined in the
    transport's send/reply paths: ``marshal_fixed + marshal_per_byte * n``
    on each outbound leg, ``dispatch_fixed`` on delivery.  These defaults
    are what makes the §5.1 round trip average the paper's 49.8 ms finding
    time — see :class:`~repro.core.transport.TransportParams`.
    """

    def __init__(self, params: "TransportParams"):
        self.params = params

    def intercept_send(self, ctx: MessageContext) -> Generator[Event, Any, None]:
        yield ctx.engine.timeout(
            self.params.marshal_fixed + self.params.marshal_per_byte * ctx.nbytes)

    def intercept_deliver(self, ctx: MessageContext) -> Generator[Event, Any, None]:
        yield ctx.engine.timeout(self.params.dispatch_fixed)

    def intercept_reply(self, ctx: MessageContext) -> Generator[Event, Any, None]:
        yield ctx.engine.timeout(
            self.params.marshal_fixed + self.params.marshal_per_byte * ctx.nbytes)


class AccountingInterceptor(Interceptor):
    """Counts traffic on the wire: messages, bytes, per-op breakdown.

    The transport also reports exceptional outcomes here (`note_dropped`,
    `note_dead_letter`, `note_suppressed_reply`) so the counters describe
    the full fate of every message.
    """

    def __init__(self):
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Append-only op-name buffer; the per-op histogram is aggregated
        #: lazily in :attr:`messages_by_op` so the per-message cost is one
        #: list append instead of a dict read-modify-write.
        self._ops: List[str] = []
        self._by_op: Dict[str, int] = {}
        self._by_op_agg = 0  # buffer entries already folded into _by_op
        #: Messages swallowed by a fault-injection (or other) interceptor.
        self.messages_dropped = 0
        #: Requests/replies that could never be delivered (endpoint stopped
        #: or unbound mid-flight); their callers got a CommunicationError.
        self.dead_letters = 0
        #: Duplicate replies suppressed by at-most-once RPC semantics.
        self.replies_suppressed = 0

    @property
    def messages_by_op(self) -> Dict[str, int]:
        """Per-op message counts (aggregated from the buffer on access)."""
        ops = self._ops
        start = self._by_op_agg
        if start < len(ops):
            by_op = self._by_op
            self._by_op_agg = len(ops)
            for op in ops[start:]:
                by_op[op] = by_op.get(op, 0) + 1
        return self._by_op

    def _count(self, ctx: MessageContext) -> None:
        self.messages_sent += 1
        self.bytes_sent += ctx.nbytes
        self._ops.append(ctx.op)

    def intercept_send(self, ctx: MessageContext) -> Generator[Event, Any, None]:
        self._count(ctx)
        return
        yield  # pragma: no cover - generator marker

    def intercept_reply(self, ctx: MessageContext) -> Generator[Event, Any, None]:
        self._count(ctx)
        return
        yield  # pragma: no cover - generator marker

    # -- exceptional outcomes (reported by the transport) -----------------------

    def note_dropped(self) -> None:
        self.messages_dropped += 1

    def note_dead_letter(self) -> None:
        self.dead_letters += 1

    def note_suppressed_reply(self) -> None:
        self.replies_suppressed += 1


class TracingInterceptor(Interceptor):
    """Feeds :class:`RequestTrace` stamps and LogCentral from the pipeline.

    Installed on a client endpoint it records the request lifecycle the
    figures are built from (submitted → found → data sent → completed);
    installed on a SeD endpoint it records data arrival.  Components also
    route their application-level monitoring events through :meth:`emit`,
    which both journals to the in-process :class:`Tracer` and posts a
    fire-and-forget LogCentral message — one call site instead of parallel
    ``tracer.log`` / ``post_event`` side-channels.

    None of the hooks charge simulated time, so tracing never perturbs the
    calibrated control path (a LogService test asserts this).

    When the shared tracer carries an enabled
    :class:`~repro.obs.Observability`, the same call sites also emit the
    request-track **spans** (``request`` → ``finding`` / ``transfer`` /
    ``queue``) the exporters and figure queries consume — begun and closed
    with the *same* ``engine.now`` reads that stamp the trace fields, and
    unwound with status ``"error"`` when a submit/solve RPC completes with
    an error reply (the dead-letter path), so failures never leak open
    spans.  Span recording is pure bookkeeping: no events, no time.
    """

    #: ops whose request/reply legs carry client-lifecycle stamps
    SUBMIT_OP = "submit"
    SOLVE_OP = "solve"

    def __init__(self, tracer: "Tracer", log_central: Optional[str] = None):
        self.tracer = tracer
        self.log_central = log_central

    # -- application-level events ------------------------------------------------

    def emit(self, endpoint: "Endpoint", kind: str, **info: Any) -> None:
        """Journal an event locally and post it to LogCentral (if deployed)."""
        self.tracer.log(endpoint.fabric.engine.now, kind, **info)
        post_event(endpoint, self.log_central, kind, **info)

    # -- message-path stamps -------------------------------------------------------

    def intercept_send(self, ctx: MessageContext) -> Generator[Event, Any, None]:
        rid = ctx.request_id
        if rid is not None:
            now = ctx.engine.now
            if ctx.op == self.SUBMIT_OP:
                self.tracer.trace(rid, ctx.service).submitted_at = now
                obs = self.tracer.obs
                if obs.enabled:
                    track = f"req:{rid}"
                    spans = obs.spans
                    if spans.open_spans(track):
                        # RPC-layer retry re-sending the same request id:
                        # the previous attempt's spans are dead weight.
                        spans.unwind(track, now, "interrupted")
                    spans.begin(track, "request", now, "request",
                                request_id=rid, service=ctx.service)
                    spans.begin(track, "finding", now, "finding",
                                request_id=rid, service=ctx.service)
            elif ctx.op == self.SOLVE_OP:
                self.tracer.trace(rid, ctx.service).data_sent_at = now
                obs = self.tracer.obs
                if obs.enabled:
                    obs.spans.begin(f"req:{rid}", "transfer", now, "transfer",
                                    request_id=rid, service=ctx.service,
                                    nbytes=ctx.nbytes)
        return
        yield  # pragma: no cover - generator marker

    def intercept_deliver(self, ctx: MessageContext) -> Generator[Event, Any, None]:
        rid = ctx.request_id
        if rid is not None and ctx.op == self.SOLVE_OP:
            now = ctx.engine.now
            trace = self.tracer.trace(rid, ctx.service)
            trace.data_arrived_at = now
            obs = self.tracer.obs
            if obs.enabled:
                track = f"req:{rid}"
                spans = obs.spans
                transfer = spans.open_span(track, "transfer")
                if transfer is not None:
                    spans.end(transfer, now)
                spans.begin(track, "queue", now, "queue", request_id=rid,
                            service=ctx.service, sed=ctx.endpoint.name)
            self.tracer.log(now, "data-arrived",
                            sed=ctx.endpoint.name, request_id=rid)
        return
        yield  # pragma: no cover - generator marker

    def intercept_complete(self, ctx: MessageContext) -> Generator[Event, Any, None]:
        rid = ctx.request_id
        if rid is None:
            return
        if ctx.reply_status != "ok":
            # Submit/solve RPC failed (dead letter, crashed SeD, no server
            # found): unwind the whole request track so the failure path
            # leaves no open spans.  Other ops (estimate fan-out legs) fail
            # without killing the request.  An MA admission rejection is
            # distinguishable from transport loss so saturation experiments
            # can separate rejected from failed requests.
            if ctx.op in (self.SUBMIT_OP, self.SOLVE_OP):
                obs = self.tracer.obs
                if obs.enabled:
                    status = ("rejected"
                              if isinstance(ctx.reply_value, ServerNotFoundError)
                              else "error")
                    obs.spans.unwind(f"req:{rid}", ctx.engine.now, status)
            return
        now = ctx.engine.now
        if ctx.op == self.SUBMIT_OP:
            trace = self.tracer.trace(rid, ctx.service)
            trace.found_at = now
            if isinstance(ctx.reply_value, tuple) and ctx.reply_value:
                trace.sed_name = ctx.reply_value[0]
            obs = self.tracer.obs
            if obs.enabled:
                finding = obs.spans.open_span(f"req:{rid}", "finding")
                if finding is not None:
                    obs.spans.end(finding, now, sed=trace.sed_name)
                    if finding.duration is not None:
                        obs.metrics.histogram(
                            "request.finding_seconds").observe(
                                finding.duration, now)
        elif ctx.op == self.SOLVE_OP:
            trace = self.tracer.trace(rid, ctx.service)
            trace.completed_at = now
            reply = ctx.reply_value
            trace.status = getattr(reply, "status", trace.status)
            # The tracer is usually shared with the SeD in-process; when it
            # is not (separate tracers in tests) the reply timestamps fill
            # the server-side gaps.
            if trace.solve_started_at is None:
                trace.solve_started_at = getattr(reply, "solve_started_at", None)
            if trace.solve_ended_at is None:
                trace.solve_ended_at = getattr(reply, "solve_ended_at", None)
            obs = self.tracer.obs
            if obs.enabled:
                request = obs.spans.open_span(f"req:{rid}", "request")
                if request is not None:
                    obs.spans.end(request, now, status_code=trace.status)
        return
        yield  # pragma: no cover - generator marker


class DeadlineInterceptor(Interceptor):
    """One timeout/retry mechanism for every RPC on the path.

    Grants matching ops an :class:`RpcPolicy`: the caller's
    :meth:`Endpoint.rpc` races the reply against the deadline, retries up
    to ``retries`` times (waiting ``backoff * attempt`` between tries) and
    raises :class:`DeadlineExceededError` once the budget is spent.  This
    generalizes what used to be the agents' private ``child_timeout``
    fan-out guard so client-side solve deadlines and the MA/LA estimate
    collection share a single mechanism.
    """

    def __init__(self, deadline: float, retries: int = 0, backoff: float = 0.0,
                 ops: Optional[Sequence[str]] = None):
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.deadline = float(deadline)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.ops: Optional[Tuple[str, ...]] = tuple(ops) if ops is not None else None

    def rpc_policy(self, op: str) -> Optional[RpcPolicy]:
        if self.ops is not None and op not in self.ops:
            return None
        return RpcPolicy(self.deadline, self.retries, self.backoff)


class FaultInjectionInterceptor(Interceptor):
    """Drop / delay / duplicate messages, driven by a named RNG stream.

    Probabilistic faults draw from ``rng`` (a numpy Generator, e.g.
    ``RandomStreams(seed).get("faults")``) so runs stay reproducible under
    the stream-splitting discipline; :meth:`drop_next` arms deterministic
    drops for targeted tests.  Filters narrow the blast radius to specific
    ``ops`` and ``phases``.

    Dropping a request or reply silently loses it — pair with a
    :class:`DeadlineInterceptor` on the caller so the loss is recovered
    (retry) or surfaced (DeadlineExceededError) instead of hanging.
    """

    def __init__(self, rng: Any = None, *, drop: float = 0.0,
                 delay: float = 0.0, delay_prob: float = 1.0,
                 duplicate: float = 0.0,
                 ops: Optional[Sequence[str]] = None,
                 phases: Sequence[str] = ("deliver",)):
        unknown = set(phases) - set(PHASES)
        if unknown:
            raise ValueError(f"unknown phases: {sorted(unknown)}")
        if any(p < 0 or p > 1 for p in (drop, delay_prob, duplicate)):
            raise ValueError("probabilities must be within [0, 1]")
        self.rng = rng
        self.drop = float(drop)
        self.delay = float(delay)
        self.delay_prob = float(delay_prob)
        self.duplicate = float(duplicate)
        self.ops: Optional[Tuple[str, ...]] = tuple(ops) if ops is not None else None
        self.phases = tuple(phases)
        self._drop_next = 0
        #: Observability for assertions in tests.
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0

    def drop_next(self, n: int = 1) -> None:
        """Deterministically drop the next ``n`` matching messages."""
        self._drop_next += int(n)

    def _matches(self, ctx: MessageContext) -> bool:
        if ctx.phase not in self.phases:
            return False
        return self.ops is None or ctx.op in self.ops

    def _chance(self, p: float) -> bool:
        return p > 0 and self.rng is not None and float(self.rng.random()) < p

    def _apply(self, ctx: MessageContext) -> Generator[Event, Any, None]:
        if not self._matches(ctx):
            return
        if self._drop_next > 0 or self._chance(self.drop):
            if self._drop_next > 0:
                self._drop_next -= 1
            self.dropped += 1
            ctx.drop(f"fault injection dropped {ctx.op!r}#{ctx.message.msg_id}")
        if self.delay > 0 and (self.delay_prob >= 1.0 or self._chance(self.delay_prob)):
            self.delayed += 1
            yield ctx.engine.timeout(self.delay)
        if ctx.phase == "send" and self._chance(self.duplicate):
            self.duplicated += 1
            ctx.meta["duplicates"] = ctx.meta.get("duplicates", 0) + 1

    intercept_send = _apply
    intercept_deliver = _apply
    intercept_reply = _apply
