"""GoDIET-like deployment: instantiate a DIET hierarchy on a platform.

§5.1's deployment — 1 MA (+ client) on a Lyon node, one LA per cluster, two
SeDs per cluster (one for sagittaire) — becomes :func:`deploy_paper_hierarchy`.
The generic :class:`Deployment` builder supports arbitrary hierarchies for
tests and examples, enforcing the §4.1 constraint that a SeD must mount its
cluster's NFS volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..obs import Observability
from ..platform.grid5000 import Grid5000Platform
from ..sim.engine import Engine
from .agent import AgentParams, LocalAgent, MasterAgent
from .client import DietClient
from .exceptions import DietError
from .scheduling import SchedulerPolicy
from .sed import SeD, SeDParams
from .statistics import Tracer
from .transport import TransportFabric, TransportParams

if TYPE_CHECKING:  # pragma: no cover - import cycle (repro.data needs core)
    from ..data.manager import DataGrid, DataManagerConfig

__all__ = ["Deployment", "deploy_paper_hierarchy"]


@dataclass
class Deployment:
    """A built middleware stack: fabric + agents + SeDs + client + tracer."""

    engine: Engine
    fabric: TransportFabric
    tracer: Tracer
    ma: MasterAgent
    local_agents: List[LocalAgent] = field(default_factory=list)
    seds: List[SeD] = field(default_factory=list)
    client: Optional[DietClient] = None
    platform: Optional[Grid5000Platform] = None
    log_central: Optional["LogCentral"] = None
    #: DAGDA data fabric (None unless the deployment wired one).
    data_grid: Optional["DataGrid"] = None
    #: Estimate-flow mode the hierarchy was built with ("pull" or "push").
    routing: str = "pull"

    def sed_by_name(self, name: str) -> SeD:
        for sed in self.seds:
            if sed.name == name:
                return sed
        raise DietError(f"no SeD named {name!r} in this deployment")

    def launch_all(self) -> None:
        """Start every agent and SeD's serving loop (GoDIET 'launch')."""
        if self.log_central is not None:
            self.log_central.launch()
        self.ma.launch()
        for la in self.local_agents:
            la.launch()
        for sed in self.seds:
            sed.launch()

    @property
    def sed_names(self) -> List[str]:
        return [s.name for s in self.seds]

    def cluster_of_sed(self, sed_name: str) -> str:
        sed = self.sed_by_name(sed_name)
        return str(sed.host.properties.get("cluster", sed.host.name))

    @property
    def obs(self) -> Observability:
        """The deployment-wide observability hub (NULL_OBS when disabled)."""
        return self.tracer.obs


def deploy_paper_hierarchy(platform: Grid5000Platform,
                           policy: Optional[SchedulerPolicy] = None,
                           transport_params: Optional[TransportParams] = None,
                           sed_params: Optional[SeDParams] = None,
                           agent_params: Optional[AgentParams] = None,
                           with_client: bool = True,
                           with_log_central: bool = False,
                           obs: Optional[Observability] = None,
                           data: Optional["DataManagerConfig"] = None,
                           routing: str = "pull") -> Deployment:
    """Deploy the exact §5.1 hierarchy on a built Grid'5000 platform.

    * MA on the Lyon service node (with the client and, when
      ``with_log_central``, the monitoring collector — "along with omniORB,
      the monitoring tools, and the client", §5.1);
    * one LA per cluster, on the cluster frontend;
    * one SeD per reserved 16-node block (11 in the paper layout), each
      mounting its cluster's NFS volume.

    ``data`` opts into the DAGDA data grid: every SeD's data manager joins
    a shared replica catalog threaded through the MA/LA tree with the given
    per-SeD configuration.  None (the default) leaves the deployment
    byte-for-byte as before the data subsystem existed.

    ``routing`` selects the estimate flow: ``"pull"`` (the default, the
    paper's per-request fan-out — kept byte-identical for every figure) or
    ``"push"`` (SeDs push deltas, agents materialize top-k tables, the MA
    admits from its table in batches; see DESIGN.md).
    """
    engine = platform.engine
    fabric = TransportFabric(engine, platform.network, transport_params)
    tracer = Tracer(obs)
    # The engine reads obs directly (run-level spans, transfer metrics).
    engine.obs = tracer.obs

    log_central = None
    log_name: Optional[str] = None
    if with_log_central:
        from .logservice import LogCentral

        log_central = LogCentral(fabric, platform.ma_host)
        log_name = log_central.name

    ma = MasterAgent(fabric, platform.ma_host, name="MA", policy=policy,
                     params=agent_params, tracer=tracer,
                     log_central=log_name, routing=routing)

    data_grid: Optional["DataGrid"] = None
    if data is not None:
        from ..data.manager import DataGrid

        data_grid = DataGrid(platform.network)
        ma.data_catalog = data_grid.root
        ma.data_cost_fn = data_grid.transfer_cost

    local_agents: List[LocalAgent] = []
    seds: List[SeD] = []
    for full_name, cluster in platform.clusters.items():
        la = LocalAgent(fabric, cluster.frontend, name=f"LA-{full_name}",
                        parent=ma.name, params=agent_params, tracer=tracer,
                        routing=routing)
        ma.add_child(la.name)
        local_agents.append(la)
        la_node = None
        if data_grid is not None:
            la_node = data_grid.node(la.name)
            la.data_catalog = la_node
            data_grid.volumes[cluster.nfs.name] = cluster.nfs
        for host in cluster.sed_hosts:
            if not cluster.nfs.is_mounted_on(host.name):
                raise DietError(
                    f"SeD host {host.name} does not mount {cluster.nfs.name} "
                    f"(§4.1 requires an NFS working directory)")
            sed = SeD(fabric, host, name=f"SeD-{host.name}", ma_name=ma.name,
                      params=sed_params, tracer=tracer, nfs=cluster.nfs,
                      log_central=log_name, parent=la.name, routing=routing)
            la.add_child(sed.name)
            seds.append(sed)
            if data_grid is not None:
                data_grid.attach(sed, la_node, data)

    client = None
    if with_client:
        client = DietClient(fabric, platform.client_host, name="client",
                            tracer=tracer)

    return Deployment(engine=engine, fabric=fabric, tracer=tracer, ma=ma,
                      local_agents=local_agents, seds=seds, client=client,
                      platform=platform, log_central=log_central,
                      data_grid=data_grid, routing=routing)
