"""Materialized candidate tables for push-based estimate aggregation.

The pull path (§2.1 of the paper) walks the whole MA→LA→SeD tree per
request: O(tree) messages and simulated events for every ``submit``.  This
module is the core of the inverted flow: every agent keeps, per service, a
**materialized table** of candidate rows fed by :class:`EstimateDelta`
messages pushed up from its children, incrementally re-ranked on arrival.
The Master Agent then answers ``submit`` straight from its table — routing
cost no longer depends on hierarchy size.

Three invariants:

* **Last-writer-wins per row.**  Every row carries the monotone ``seq``
  stamped by the originating SeD; an update or removal older than the
  stored row is discarded, so late wire arrivals and pre-crash leftovers
  can never resurrect stale state.
* **Only changes travel.**  :meth:`AggregationTable.export_diff` compares
  the current top-k view against the last exported one and produces the
  minimal update/removal lists for the parent — a delta cascade, not a
  table dump.
* **Provenance-based invalidation.**  Rows remember the immediate child
  (``via``) they arrived through; when liveness deregisters a child (a dead
  SeD at a leaf LA, a dead LA at the MA) :meth:`drop_via` invalidates that
  child's whole contribution in one sweep and the removals propagate
  upward through the same diff machinery.

Ranking uses the same stateless key as the LA-level ``aggregate_top_k``
sort of the pull path (queue length, then speed, then name); the stateful
ranking — in-flight dispatch counts, history, data locality — stays at the
MA, applied by the scheduler policy over the table rows at admission time.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Tuple

from .requests import EstimateDelta
from .scheduling import EST_NBJOBS, EST_SPEED, EstimationVector

__all__ = ["CandidateRow", "DeltaOutcome", "ServiceTable", "AggregationTable",
           "rank_key"]


def rank_key(vector: EstimationVector, sed_name: str) -> Tuple:
    """Stateless table order: fewest queued jobs, fastest host, name."""
    return (vector.get(EST_NBJOBS, 0.0), -vector.get(EST_SPEED, 0.0), sed_name)


class CandidateRow:
    """One materialized candidate: a SeD's latest pushed estimate."""

    __slots__ = ("sed_name", "vector", "host", "via", "seq")

    def __init__(self, sed_name: str, vector: EstimationVector, host: str,
                 via: str, seq: int):
        self.sed_name = sed_name
        self.vector = vector
        self.host = host
        self.via = via
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CandidateRow({self.sed_name} via {self.via} "
                f"seq={self.seq}: {self.vector})")


class DeltaOutcome:
    """What one :meth:`AggregationTable.apply_delta` call actually did.

    Truthy when any row changed (the cascade condition interior agents
    react to); ``gained`` names the services that received an applied
    *update* row — the only changes that can turn an empty candidate set
    non-empty, which is what the MA's parked-submit rescue must key on.
    Pure removals leave ``gained`` empty: they can only shrink tables, so
    re-examining candidate-less submits for them is wasted admission work.
    """

    __slots__ = ("changed", "gained")

    def __init__(self, changed: bool, gained: frozenset):
        self.changed = changed
        self.gained = gained

    def __bool__(self) -> bool:
        return self.changed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeltaOutcome(changed={self.changed}, gained={set(self.gained)})"


class ServiceTable:
    """The candidate table of one service, kept sorted incrementally.

    ``_order`` is a list of rank keys maintained with bisect on every
    update/removal — O(log n) to locate, O(n) list shift — so reading the
    top-k never re-sorts and two tables fed the same deltas in the same
    order are identical element for element (determinism relies on this).
    """

    __slots__ = ("service", "rows", "_order")

    def __init__(self, service: str):
        self.service = service
        #: sed_name -> CandidateRow
        self.rows: Dict[str, CandidateRow] = {}
        #: rank keys of every row, sorted ascending (best first).
        self._order: List[Tuple] = []

    def __len__(self) -> int:
        return len(self.rows)

    def _discard_key(self, row: CandidateRow) -> None:
        key = rank_key(row.vector, row.sed_name)
        # rank_key ends with the unique sed_name, so the key is unique and
        # list.remove hits exactly this row's entry.
        self._order.remove(key)

    def update(self, sed_name: str, vector: EstimationVector, host: str,
               via: str, seq: int) -> bool:
        """Insert or refresh a row; False if ``seq`` is stale."""
        row = self.rows.get(sed_name)
        if row is not None:
            if seq <= row.seq:
                return False
            self._discard_key(row)
            row.vector, row.host, row.via, row.seq = vector, host, via, seq
        else:
            row = CandidateRow(sed_name, vector, host, via, seq)
            self.rows[sed_name] = row
        insort(self._order, rank_key(vector, sed_name))
        return True

    def remove(self, sed_name: str) -> bool:
        row = self.rows.pop(sed_name, None)
        if row is None:
            return False
        self._discard_key(row)
        return True

    def top(self, k: Optional[int] = None) -> List[CandidateRow]:
        """The best ``k`` rows (all rows when ``k`` is None), best first."""
        keys = self._order if k is None else self._order[:k]
        return [self.rows[key[-1]] for key in keys]


class AggregationTable:
    """All of one agent's service tables plus the export-diff state.

    ``top_k`` bounds what this agent *exposes upward* (and, at the MA, what
    the policy ranks): None exposes every known candidate — the same
    semantics as ``AgentParams.aggregate_top_k`` in the pull path.
    """

    def __init__(self, top_k: Optional[int] = None):
        if top_k is not None and top_k < 1:
            raise ValueError(f"top_k must be >= 1 or None, got {top_k}")
        self.top_k = top_k
        self.services: Dict[str, ServiceTable] = {}
        #: Last exported view: (service, sed_name) -> seq.
        self._exported: Dict[Tuple[str, str], int] = {}
        #: Monotone counters for observability / tests.
        self.deltas_applied = 0
        self.rows_invalidated = 0

    # -- ingest -----------------------------------------------------------------

    def table(self, service: str) -> ServiceTable:
        tbl = self.services.get(service)
        if tbl is None:
            tbl = self.services[service] = ServiceTable(service)
        return tbl

    def apply_delta(self, delta: EstimateDelta) -> DeltaOutcome:
        """Fold one child delta in.

        Returns a :class:`DeltaOutcome`: truthy if any row actually
        changed, with ``gained`` naming the services whose update rows
        applied (stale-seq updates and pure removals gain nothing).
        """
        changed = False
        gained = set()
        for service, vector, host, seq in delta.updates:
            if self.table(service).update(vector.sed_name, vector, host,
                                          delta.source, seq):
                changed = True
                gained.add(service)
        for service, sed_name in delta.removals:
            tbl = self.services.get(service)
            if tbl is not None and tbl.remove(sed_name):
                changed = True
        if changed:
            self.deltas_applied += 1
        return DeltaOutcome(changed, frozenset(gained))

    def drop_via(self, child: str) -> bool:
        """Invalidate every row that arrived through ``child``.

        Called when liveness deregisters a child: a dead SeD's rows at its
        leaf LA, a dead LA's whole subtree contribution at the MA.
        """
        changed = False
        for tbl in self.services.values():
            doomed = [name for name, row in tbl.rows.items()
                      if row.via == child]
            for name in doomed:
                tbl.remove(name)
                self.rows_invalidated += 1
                changed = True
        return changed

    # -- reads ------------------------------------------------------------------

    def candidates(self, service: str) -> List[CandidateRow]:
        """The ranked top-k rows of ``service`` (empty when unknown)."""
        tbl = self.services.get(service)
        return tbl.top(self.top_k) if tbl is not None else []

    @property
    def n_rows(self) -> int:
        return sum(len(tbl) for tbl in self.services.values())

    # -- upward propagation -------------------------------------------------------

    def export_diff(self) -> Tuple[List[Tuple], List[Tuple]]:
        """Changes of the top-k view since the last export.

        Returns ``(updates, removals)`` in :class:`EstimateDelta` row
        format and records the new view as exported.  Rows below the top-k
        cut never travel; a row that merely kept its seq does not re-travel.
        """
        view: Dict[Tuple[str, str], CandidateRow] = {}
        for service in self.services:
            for row in self.candidates(service):
                view[(service, row.sed_name)] = row
        updates = [(service, row.vector, row.host, row.seq)
                   for (service, _sed), row in view.items()
                   if self._exported.get((service, row.sed_name)) != row.seq]
        removals = [key for key in self._exported if key not in view]
        self._exported = {key: row.seq for key, row in view.items()}
        return updates, removals
