"""Gaussian random fields with a prescribed power spectrum.

The key design point is *mode-matched multi-resolution*: one white-noise
realization is drawn at the finest resolution, and any coarser field is
obtained by Fourier truncation of that same realization.  Every level of a
multi-level ("Russian doll", §3) initial condition therefore sees the same
large-scale modes — the property that makes a zoom re-simulation reproduce
the halo of its parent run.

Conventions (periodic box of ``boxsize`` Mpc/h, n^3 grid):

    delta_hat = white_hat * sqrt(P(k) * n^3 / V)

with ``white_hat = rfftn(w)``, ``w ~ N(0, 1)`` per cell, which gives the
grid field variance ``sum_k P(k) / V`` — the discretized
``integral d^3k P(k) / (2 pi)^3``.  A test bins the measured spectrum of a
generated field against the input P(k).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .power_spectrum import PowerSpectrum

__all__ = ["GaussianFieldGenerator", "measure_power_spectrum", "k_grid"]


def k_grid(n: int, boxsize: float) -> np.ndarray:
    """|k| on the rfftn grid, h/Mpc (shape (n, n, n//2 + 1))."""
    k1 = 2.0 * np.pi * np.fft.fftfreq(n, d=boxsize / n)
    kz = 2.0 * np.pi * np.fft.rfftfreq(n, d=boxsize / n)
    return np.sqrt(k1[:, None, None] ** 2 + k1[None, :, None] ** 2
                   + kz[None, None, :] ** 2)


class GaussianFieldGenerator:
    """Mode-matched GRF generator over one white-noise realization.

    ``n_fine`` bounds the finest grid this realization can serve; any
    ``delta(n)`` with even ``n <= n_fine`` shares the same low-k modes.
    """

    def __init__(self, spectrum: PowerSpectrum, boxsize_mpc_h: float,
                 n_fine: int, seed: int = 0):
        if n_fine < 2 or n_fine % 2:
            raise ValueError("n_fine must be even and >= 2")
        if boxsize_mpc_h <= 0:
            raise ValueError("boxsize must be positive")
        self.spectrum = spectrum
        self.boxsize = float(boxsize_mpc_h)
        self.n_fine = int(n_fine)
        self.seed = seed
        rng = np.random.default_rng(seed)
        white = rng.standard_normal((n_fine, n_fine, n_fine))
        #: complex white noise at the finest resolution, <|w_hat|^2> = n^3
        self._white_hat_fine = np.fft.fftn(white)

    # -- noise truncation -------------------------------------------------------

    def _white_hat(self, n: int) -> np.ndarray:
        """White-noise modes on an n-grid (full complex layout)."""
        if n > self.n_fine or n < 2 or n % 2:
            raise ValueError(f"n must be even and <= n_fine={self.n_fine}")
        if n == self.n_fine:
            return self._white_hat_fine
        nf = self.n_fine
        h = n // 2
        idx = np.r_[0:h, nf - h:nf]          # low-|k| rows of the fine grid
        sub = self._white_hat_fine[np.ix_(idx, idx, idx)].copy()
        # Truncation breaks Hermitian symmetry on the coarse Nyquist planes
        # (their +k partners were dropped); zero them so the coarse field is
        # exactly real.  IC generators conventionally null the Nyquist modes.
        sub[h, :, :] = 0.0
        sub[:, h, :] = 0.0
        sub[:, :, h] = 0.0
        # renormalize: coarse white noise needs <|w_hat|^2> = n^3
        return sub * (n / nf) ** 1.5

    # -- fields ----------------------------------------------------------------------

    def delta_hat(self, n: int) -> np.ndarray:
        """Fourier modes of the z=0 density contrast on an n-grid (fftn layout)."""
        k1 = 2.0 * np.pi * np.fft.fftfreq(n, d=self.boxsize / n)
        kk = np.sqrt(k1[:, None, None] ** 2 + k1[None, :, None] ** 2
                     + k1[None, None, :] ** 2)
        volume = self.boxsize ** 3
        amp = np.sqrt(self.spectrum(kk) * n ** 3 / volume)
        amp[0, 0, 0] = 0.0
        return self._white_hat(n) * amp

    def delta(self, n: int) -> np.ndarray:
        """Real-space z=0 density contrast on an n-grid."""
        return np.real(np.fft.ifftn(self.delta_hat(n)))

    def displacement(self, n: int) -> np.ndarray:
        """Zel'dovich displacement field psi (n, n, n, 3), box units.

        psi solves div(psi) = -delta (psi_hat = i k delta_hat / k^2); the
        result is converted from Mpc/h to box units so positions can use it
        directly.
        """
        d_hat = self.delta_hat(n)
        k1 = 2.0 * np.pi * np.fft.fftfreq(n, d=self.boxsize / n)
        kx = k1[:, None, None]
        ky = k1[None, :, None]
        kz = k1[None, None, :]
        k2 = kx ** 2 + ky ** 2 + kz ** 2
        with np.errstate(divide="ignore", invalid="ignore"):
            inv_k2 = np.where(k2 > 0, 1.0 / k2, 0.0)
        psi = np.empty((n, n, n, 3))
        psi[..., 0] = np.real(np.fft.ifftn(1j * kx * inv_k2 * d_hat))
        psi[..., 1] = np.real(np.fft.ifftn(1j * ky * inv_k2 * d_hat))
        psi[..., 2] = np.real(np.fft.ifftn(1j * kz * inv_k2 * d_hat))
        psi /= self.boxsize   # Mpc/h -> box units
        return psi


def measure_power_spectrum(delta: np.ndarray, boxsize: float,
                           n_bins: int = 16) -> Tuple[np.ndarray, np.ndarray]:
    """Binned P(k) estimate of a real grid field (for validation tests)."""
    delta = np.asarray(delta, dtype=np.float64)
    n = delta.shape[0]
    d_hat = np.fft.rfftn(delta)
    kk = k_grid(n, boxsize)
    volume = boxsize ** 3
    power = (np.abs(d_hat) ** 2) * volume / n ** 6
    # rfftn double-counts nothing, but modes with kz in (0, nyquist) appear
    # once while their conjugates are implicit; weight them x2.
    weights = np.full(kk.shape, 2.0)
    weights[..., 0] = 1.0
    if n % 2 == 0:
        weights[..., -1] = 1.0
    k_min = 2.0 * np.pi / boxsize
    k_max = kk.max()
    edges = np.linspace(k_min * 0.999, k_max, n_bins + 1)
    k_flat, p_flat, w_flat = kk.ravel(), power.ravel(), weights.ravel()
    which = np.digitize(k_flat, edges) - 1
    valid = (which >= 0) & (which < n_bins)
    p_sum = np.bincount(which[valid], weights=(p_flat * w_flat)[valid],
                        minlength=n_bins)
    w_sum = np.bincount(which[valid], weights=w_flat[valid], minlength=n_bins)
    k_sum = np.bincount(which[valid], weights=(k_flat * w_flat)[valid],
                        minlength=n_bins)
    good = w_sum > 0
    return k_sum[good] / w_sum[good], p_sum[good] / w_sum[good]
