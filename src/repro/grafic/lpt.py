"""Second-order Lagrangian perturbation theory (2LPT) displacements.

GRAFIC generates Zel'dovich (1LPT) initial conditions; starting late (as
zoom re-simulations often must, to keep the particle load down) makes the
missing second-order terms visible as transients.  This module adds them:

    x(q, a) = q + D1(a) psi1(q) + D2(a) psi2(q)

with ``psi1 = grad(phiA)``, ``laplacian(phiA) = -delta`` (the convention of
:mod:`.gaussian_field`), and the second-order potential solving

    laplacian(phi2) = sum_{i<j} [phiA,ii phiA,jj - (phiA,ij)^2]

with ``psi2 = grad(phi2)`` and the growth-factor ratio

    D2(a) = -3/7 D1(a)^2 Omega_m(a)^(-1/143)

(Bouchet et al. 1995).  The sign conventions were validated numerically:
tests check that 2LPT initial conditions at a late start match the PM
evolution of early Zel'dovich initial conditions better than late
Zel'dovich ones do, and that a 1-d plane wave has exactly zero
second-order displacement (Zel'dovich is exact in 1-d).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..ramses.cosmology import Cosmology
from ..ramses.mesh import cic_interpolate
from ..ramses.particles import ParticleSet
from .gaussian_field import GaussianFieldGenerator
from .ic import InitialConditions
from .power_spectrum import PowerSpectrum

__all__ = ["second_order_displacement", "d2_growth", "d2_growth_rate",
           "make_single_level_ic_2lpt"]


def second_order_displacement(generator: GaussianFieldGenerator,
                              n: int) -> np.ndarray:
    """psi2 on an n-grid, box units (to be scaled by D2(a))."""
    d_hat = generator.delta_hat(n)
    k1 = 2.0 * np.pi * np.fft.fftfreq(n, d=generator.boxsize / n)
    k = [k1[:, None, None], k1[None, :, None], k1[None, None, :]]
    k2 = k[0] ** 2 + k[1] ** 2 + k[2] ** 2
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_k2 = np.where(k2 > 0, 1.0 / k2, 0.0)

    # phiA_hat with laplacian(phiA) = -delta  =>  phiA_hat = delta_hat / k^2
    phiA_hat = d_hat * inv_k2
    # second derivatives phiA,ij = -(k_i k_j) phiA in Fourier space
    dij = {}
    for i in range(3):
        for j in range(i, 3):
            dij[(i, j)] = np.real(np.fft.ifftn(-k[i] * k[j] * phiA_hat))

    source = (dij[(0, 0)] * dij[(1, 1)] - dij[(0, 1)] ** 2
              + dij[(0, 0)] * dij[(2, 2)] - dij[(0, 2)] ** 2
              + dij[(1, 1)] * dij[(2, 2)] - dij[(1, 2)] ** 2)

    # laplacian(phi2) = source  =>  phi2_hat = -source_hat / k^2
    s_hat = np.fft.fftn(source)
    phi2_hat = -s_hat * inv_k2
    phi2_hat[0, 0, 0] = 0.0
    psi2 = np.empty((n, n, n, 3))
    for i in range(3):
        psi2[..., i] = np.real(np.fft.ifftn(1j * k[i] * phi2_hat))
    # source and psi1 are in Mpc/h units squared / Mpc/h; convert the final
    # displacement to box units (one factor: psi2 has units of length)
    psi2 /= generator.boxsize
    return psi2


def d2_growth(cosmology: Cosmology, a: float) -> float:
    """Second-order growth factor D2(a) (negative by convention)."""
    d1 = float(cosmology.growth_factor(a))
    om = float(cosmology.omega_m_a(a))
    return -3.0 / 7.0 * d1 * d1 * om ** (-1.0 / 143.0)


def d2_growth_rate(cosmology: Cosmology, a: float, eps: float = 1e-5) -> float:
    """dD2/da by centred difference."""
    lo = max(a * (1 - eps), 1e-8)
    hi = a * (1 + eps)
    return (d2_growth(cosmology, hi) - d2_growth(cosmology, lo)) / (hi - lo)


def make_single_level_ic_2lpt(n_per_side: int, boxsize_mpc_h: float,
                              cosmology: Cosmology, a_start: float = 0.1,
                              seed: int = 0,
                              transfer: str = "eisenstein_hu",
                              generator: Optional[GaussianFieldGenerator] = None
                              ) -> InitialConditions:
    """Single-level ICs with 2LPT displacements and momenta."""
    level = int(np.log2(n_per_side))
    if 2 ** level != n_per_side:
        raise ValueError("n_per_side must be a power of two")
    if not 0 < a_start < 1:
        raise ValueError("a_start must be in (0, 1)")
    if generator is None:
        spectrum = PowerSpectrum(cosmology, transfer=transfer)
        generator = GaussianFieldGenerator(spectrum, boxsize_mpc_h,
                                           n_fine=n_per_side, seed=seed)
    parts = ParticleSet.uniform_lattice(n_per_side)
    q = parts.x.copy()
    psi1 = cic_interpolate(generator.displacement(n_per_side), q)
    psi2 = cic_interpolate(second_order_displacement(generator, n_per_side), q)

    d1 = float(cosmology.growth_factor(a_start))
    d2 = d2_growth(cosmology, a_start)
    h = float(cosmology.hubble(a_start))
    d1dot = float(cosmology.growth_rate(a_start))
    d2dot = d2_growth_rate(cosmology, a_start)

    parts.x = np.mod(q + d1 * psi1 + d2 * psi2, 1.0)
    parts.p = a_start ** 3 * h * (d1dot * psi1 + d2dot * psi2)
    return InitialConditions(particles=parts, a_start=a_start,
                             boxsize_mpc_h=boxsize_mpc_h, cosmology=cosmology,
                             levelmin=level, levelmax=level, seed=seed)
