"""Zel'dovich approximation: turn displacement fields into particle ICs.

Positions:  x(q, a) = q + D(a) * psi(q)
Momenta:    p(q, a) = a^3 H(a) dD/da * psi(q)      (code momentum a^2 dx/dt)

with D the linear growth factor normalized at z=0 (psi is derived from the
z=0 density field).  For Einstein-de Sitter, D(a) = a and p = a^{3/2} psi —
the analytic relation the Zel'dovich integration test checks.
"""

from __future__ import annotations

import numpy as np

from ..ramses.cosmology import Cosmology
from ..ramses.mesh import cic_interpolate

__all__ = ["displace_lattice", "growing_mode_momentum_factor"]


def growing_mode_momentum_factor(cosmology: Cosmology, a: float) -> float:
    """p = factor * psi for a pure growing mode at expansion factor a."""
    if a <= 0:
        raise ValueError("expansion factor must be positive")
    h = float(cosmology.hubble(a))
    dd_da = float(cosmology.growth_rate(a))
    return a ** 3 * h * dd_da


def displace_lattice(q: np.ndarray, psi_grid: np.ndarray,
                     cosmology: Cosmology, a_start: float):
    """Displace Lagrangian points ``q`` using the displacement grid.

    Parameters
    ----------
    q : (N, 3) Lagrangian positions in [0, 1)
    psi_grid : (n, n, n, 3) displacement field in box units (z=0 amplitude)
    cosmology, a_start : set the growth-factor scaling

    Returns (x, p): displaced positions (wrapped) and code momenta.
    """
    q = np.asarray(q, dtype=np.float64)
    d = float(cosmology.growth_factor(a_start))
    psi = cic_interpolate(psi_grid, q)
    x = np.mod(q + d * psi, 1.0)
    p = growing_mode_momentum_factor(cosmology, a_start) * psi
    return x, p
