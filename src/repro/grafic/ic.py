"""Initial-condition generation: single-level and multi-level (zoom).

§3 of the paper, verbatim requirements:

* **single level** — "the 'standard' way of generating initial conditions.
  The resulting files are used to perform the first, low-resolution
  simulation, from which the halo catalog is extracted."
* **multiple levels** — "used for the 'zoom simulation'.  The resulting
  files consist of multiple, nested boxes of smaller and smaller
  dimensions, as for Russian dolls.  The smallest box is centered around
  the halo region, for which we have locally a very high accuracy thanks
  to a much larger number of particles."

A :class:`ZoomRegion` is a coarse-cell-aligned cube; particles inside the
innermost box come from the finest lattice (smallest masses), each shell
between boxes from the corresponding intermediate level.  All levels share
one mode-matched noise realization (see :mod:`.gaussian_field`), so the
structure that forms in the zoom matches the parent run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..ramses.cosmology import Cosmology
from ..ramses.particles import ParticleSet
from .gaussian_field import GaussianFieldGenerator
from .power_spectrum import PowerSpectrum
from .zeldovich import displace_lattice

__all__ = ["InitialConditions", "ZoomRegion", "make_single_level_ic",
           "make_multi_level_ic"]


@dataclass(frozen=True)
class ZoomRegion:
    """A cube in Lagrangian (unperturbed) coordinates, box units.

    ``center`` is wrapped periodically; ``half_size`` in (0, 0.5].
    """

    center: Tuple[float, float, float]
    half_size: float

    def __post_init__(self):
        if not 0 < self.half_size <= 0.5:
            raise ValueError("half_size must be in (0, 0.5]")

    def contains(self, q: np.ndarray) -> np.ndarray:
        """Periodic-aware membership of Lagrangian points (N, 3) -> bool."""
        q = np.asarray(q, dtype=np.float64)
        d = np.abs(q - np.asarray(self.center))
        d = np.minimum(d, 1.0 - d)
        return np.all(d <= self.half_size + 1e-12, axis=1)

    def shrunk(self, factor: float) -> "ZoomRegion":
        return ZoomRegion(self.center, self.half_size * factor)


@dataclass
class InitialConditions:
    """The output of the GRAFIC substitute."""

    particles: ParticleSet
    a_start: float
    boxsize_mpc_h: float
    cosmology: Cosmology
    levelmin: int                       # log2 of the coarse lattice
    levelmax: int                       # log2 of the finest lattice
    regions: List[ZoomRegion] = field(default_factory=list)
    seed: int = 0

    @property
    def is_zoom(self) -> bool:
        return self.levelmax > self.levelmin

    @property
    def n_levels(self) -> int:
        return self.levelmax - self.levelmin + 1


def _check_power_of_two(n: int, name: str) -> int:
    if n < 2 or (n & (n - 1)) != 0:
        raise ValueError(f"{name} must be a power of two >= 2, got {n}")
    return int(np.log2(n))


def make_single_level_ic(n_per_side: int, boxsize_mpc_h: float,
                         cosmology: Cosmology, a_start: float = 0.02,
                         seed: int = 0, transfer: str = "eisenstein_hu",
                         generator: Optional[GaussianFieldGenerator] = None
                         ) -> InitialConditions:
    """Standard single-level ICs: n^3 equal-mass particles."""
    level = _check_power_of_two(n_per_side, "n_per_side")
    if not 0 < a_start < 1:
        raise ValueError("a_start must be in (0, 1)")
    if generator is None:
        spectrum = PowerSpectrum(cosmology, transfer=transfer)
        generator = GaussianFieldGenerator(spectrum, boxsize_mpc_h,
                                           n_fine=n_per_side, seed=seed)
    parts = ParticleSet.uniform_lattice(n_per_side)
    psi = generator.displacement(n_per_side)
    x, p = displace_lattice(parts.x, psi, cosmology, a_start)
    parts.x[:] = x
    parts.p[:] = p
    return InitialConditions(particles=parts, a_start=a_start,
                             boxsize_mpc_h=boxsize_mpc_h, cosmology=cosmology,
                             levelmin=level, levelmax=level, seed=seed)


def _level_lattice_points(lv: int, n_coarse: int, n_levels: int,
                          regions: Sequence[ZoomRegion]) -> np.ndarray:
    """Lagrangian lattice points carrying level-``lv`` particles.

    Levels form a strict refinement tree: a level-k cell is *refined* when
    it is active and its centre lies inside ``regions[k]``; a cell is
    *active* when every ancestor was refined.  A level-``lv`` particle
    exists where its cell is active but not refined.  Each refinement
    replaces exactly one parent particle by 8 children (membership is
    always evaluated at cell-centre granularity, never by slicing cells
    with the raw region boundary), so the total mass is exactly 1 for any
    region centre, size, or depth — including degenerate regions too small
    to contain any parent cell, which then refine nothing.
    """
    n_l = n_coarse * 2 ** lv
    q1 = (np.arange(n_l) + 0.5) / n_l
    q = np.stack(np.meshgrid(q1, q1, q1, indexing="ij"), axis=-1).reshape(-1, 3)

    active = np.ones(len(q), dtype=bool)
    for k in range(lv):
        n_k = n_coarse * 2 ** k
        ancestor_centers = (np.floor(q * n_k) + 0.5) / n_k
        active &= regions[k].contains(ancestor_centers)
    if lv < n_levels:
        refined = active & regions[lv].contains(q)
    else:
        refined = np.zeros(len(q), dtype=bool)
    return q[active & ~refined]


def make_multi_level_ic(n_coarse: int, boxsize_mpc_h: float,
                        cosmology: Cosmology,
                        center: Sequence[float], n_levels: int,
                        region_half_size: float,
                        a_start: float = 0.02, seed: int = 0,
                        transfer: str = "eisenstein_hu",
                        shrink_per_level: float = 0.5
                        ) -> InitialConditions:
    """Russian-doll multi-level ICs around ``center``.

    ``n_levels`` counts the *additional* refinement levels (the paper's
    "number of zoom levels (number of nested boxes)" profile argument);
    each level doubles the lattice resolution and shrinks the box by
    ``shrink_per_level``.  The returned particle set mixes masses:
    ``1/n_l^3`` for the lattice of level ``l``.
    """
    level0 = _check_power_of_two(n_coarse, "n_coarse")
    if n_levels < 1:
        raise ValueError("need at least one zoom level")
    if not 0 < a_start < 1:
        raise ValueError("a_start must be in (0, 1)")
    center = tuple(float(c) % 1.0 for c in center)
    if len(center) != 3:
        raise ValueError("center must have three coordinates")

    regions = [ZoomRegion(center, region_half_size * shrink_per_level ** lv)
               for lv in range(n_levels)]
    n_finest = n_coarse * 2 ** n_levels
    spectrum = PowerSpectrum(cosmology, transfer=transfer)
    generator = GaussianFieldGenerator(spectrum, boxsize_mpc_h,
                                       n_fine=n_finest, seed=seed)

    pieces: List[ParticleSet] = []
    next_id = 0
    for lv in range(n_levels + 1):
        n_l = n_coarse * 2 ** lv
        q = _level_lattice_points(lv, n_coarse, n_levels, regions)
        if len(q) == 0:
            continue
        psi = generator.displacement(n_l)
        x, p = displace_lattice(q, psi, cosmology, a_start)
        mass = np.full(len(q), 1.0 / n_l ** 3)
        ids = np.arange(next_id, next_id + len(q), dtype=np.int64)
        next_id += len(q)
        pieces.append(ParticleSet(x, p, mass,
                                  ids, np.full(len(q), lv, dtype=np.int16)))
    parts = ParticleSet.concatenate(pieces)
    return InitialConditions(particles=parts, a_start=a_start,
                             boxsize_mpc_h=boxsize_mpc_h, cosmology=cosmology,
                             levelmin=level0, levelmax=level0 + n_levels,
                             regions=regions, seed=seed)
