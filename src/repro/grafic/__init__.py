"""GRAFIC substitute: Gaussian random field initial conditions.

Single-level ICs feed the first low-resolution run; multi-level nested
("Russian doll") ICs feed the zoom re-simulations (paper §3).
"""

from .gaussian_field import GaussianFieldGenerator, k_grid, measure_power_spectrum
from .lpt import (
    d2_growth,
    make_single_level_ic_2lpt,
    second_order_displacement,
)
from .ic import (
    InitialConditions,
    ZoomRegion,
    make_multi_level_ic,
    make_single_level_ic,
)
from .power_spectrum import PowerSpectrum, transfer_bbks, transfer_eisenstein_hu
from .zeldovich import displace_lattice, growing_mode_momentum_factor

__all__ = [
    "GaussianFieldGenerator",
    "InitialConditions",
    "PowerSpectrum",
    "ZoomRegion",
    "d2_growth",
    "displace_lattice",
    "growing_mode_momentum_factor",
    "k_grid",
    "make_multi_level_ic",
    "make_single_level_ic_2lpt",
    "make_single_level_ic",
    "measure_power_spectrum",
    "second_order_displacement",
    "transfer_bbks",
    "transfer_eisenstein_hu",
]
