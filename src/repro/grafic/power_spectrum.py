"""Linear matter power spectra (the GRAFIC input physics).

GRAFIC generates "Gaussian random fields at different resolution levels,
consistent with current observational data obtained by the WMAP satellite"
(§3).  We provide the two standard transfer functions of that era:

* ``bbks`` — Bardeen, Bond, Kaiser & Szalay (1986) with the Sugiyama (1995)
  shape parameter;
* ``eisenstein_hu`` — Eisenstein & Hu (1998), no-wiggle form (the baryonic
  suppression without acoustic oscillations; adequate for IC generation at
  the resolutions exercised here).

``P(k) = A k^n_s T(k)^2`` is normalized to ``sigma8`` via the standard
top-hat integral.  k is in h/Mpc throughout; P in (Mpc/h)^3.
"""

from __future__ import annotations

import numpy as np
from scipy import integrate

from ..ramses.cosmology import Cosmology

__all__ = ["PowerSpectrum", "transfer_bbks", "transfer_eisenstein_hu"]


def transfer_bbks(k: np.ndarray, cosmology: Cosmology) -> np.ndarray:
    """BBKS (1986) CDM transfer function, Sugiyama-corrected Gamma."""
    k = np.asarray(k, dtype=np.float64)
    gamma = (cosmology.omega_m * cosmology.h
             * np.exp(-cosmology.omega_b * (1.0 + np.sqrt(2 * cosmology.h)
                                            / cosmology.omega_m)))
    q = k / gamma
    with np.errstate(divide="ignore", invalid="ignore"):
        t = (np.log(1.0 + 2.34 * q) / (2.34 * q)
             * (1.0 + 3.89 * q + (16.1 * q) ** 2
                + (5.46 * q) ** 3 + (6.71 * q) ** 4) ** -0.25)
    return np.where(q > 0, t, 1.0)


def transfer_eisenstein_hu(k: np.ndarray, cosmology: Cosmology) -> np.ndarray:
    """Eisenstein & Hu (1998) zero-baryon ('no wiggle') transfer function."""
    k = np.asarray(k, dtype=np.float64)
    om, ob, h = cosmology.omega_m, cosmology.omega_b, cosmology.h
    theta = 2.728 / 2.7                      # CMB temperature factor
    # sound horizon (EH98 eq. 26) in Mpc
    s = 44.5 * np.log(9.83 / (om * h * h)) / np.sqrt(
        1.0 + 10.0 * (ob * h * h) ** 0.75)
    alpha = (1.0 - 0.328 * np.log(431.0 * om * h * h) * ob / om
             + 0.38 * np.log(22.3 * om * h * h) * (ob / om) ** 2)
    gamma_eff = om * h * (alpha + (1.0 - alpha)
                          / (1.0 + (0.43 * k * s * h) ** 4))
    q = k * theta ** 2 / gamma_eff
    l0 = np.log(2.0 * np.e + 1.8 * q)
    c0 = 14.2 + 731.0 / (1.0 + 62.5 * q)
    with np.errstate(divide="ignore", invalid="ignore"):
        t = l0 / (l0 + c0 * q * q)
    return np.where(q > 0, t, 1.0)


_TRANSFERS = {"bbks": transfer_bbks, "eisenstein_hu": transfer_eisenstein_hu}


class PowerSpectrum:
    """sigma8-normalized linear P(k) at z = 0."""

    def __init__(self, cosmology: Cosmology, transfer: str = "eisenstein_hu"):
        if transfer not in _TRANSFERS:
            raise ValueError(f"unknown transfer {transfer!r}; "
                             f"known: {sorted(_TRANSFERS)}")
        self.cosmology = cosmology
        self.transfer_name = transfer
        self._transfer = _TRANSFERS[transfer]
        self._amplitude = 1.0
        self._amplitude = (cosmology.sigma8 / self.sigma_r(8.0)) ** 2

    def __call__(self, k) -> np.ndarray:
        """P(k) in (Mpc/h)^3; k in h/Mpc; P(0) == 0."""
        k = np.asarray(k, dtype=np.float64)
        t = self._transfer(k, self.cosmology)
        with np.errstate(invalid="ignore"):
            p = self._amplitude * k ** self.cosmology.n_s * t * t
        return np.where(k > 0, p, 0.0)

    def sigma_r(self, r_mpc_h: float) -> float:
        """RMS density fluctuation in a top-hat of radius r (Mpc/h)."""
        if r_mpc_h <= 0:
            raise ValueError("radius must be positive")

        def window(x: np.ndarray) -> np.ndarray:
            # top-hat in Fourier space, series-expanded near 0 for stability
            small = x < 1e-4
            w = np.empty_like(x)
            xs = x[~small]
            w[~small] = 3.0 * (np.sin(xs) - xs * np.cos(xs)) / xs ** 3
            w[small] = 1.0 - x[small] ** 2 / 10.0
            return w

        def integrand(lnk: float) -> float:
            k = np.exp(lnk)
            w = window(np.atleast_1d(k * r_mpc_h))[0]
            return float(k ** 3 * self(k) * w * w)

        val, _ = integrate.quad(integrand, np.log(1e-5), np.log(1e3),
                                limit=400)
        return float(np.sqrt(val / (2.0 * np.pi ** 2)))

    def sigma8_check(self) -> float:
        """Round-trip check: should equal cosmology.sigma8."""
        return self.sigma_r(8.0)
