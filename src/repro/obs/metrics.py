"""Metrics registry: counters, gauges and histograms over simulated time.

Replaces the ad-hoc tallies that used to be summed out of trace buffers at
report time: components register named instruments once (labelled per SeD /
per cluster / per op) and record into them as the campaign runs.  Every
sample can carry its simulated timestamp, so any instrument supports
**windowing** — "solves finished between t0 and t1", "bytes on the wire
during the zoom phase" — which is what per-node utilization accounting
(the follow-up paper's Figure-4-style analysis) needs.

Instruments are plain Python objects (picklable, no engine reference): a
registry rides inside detached campaign results across process boundaries,
and merging worker registries is just re-recording their samples.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count; timestamped increments optional."""

    __slots__ = ("name", "labels", "value", "samples")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0
        #: ``(t, delta)`` pairs for increments that carried a timestamp.
        self.samples: List[Tuple[float, float]] = []

    def inc(self, n: float = 1.0, t: Optional[float] = None) -> None:
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self.value += n
        if t is not None:
            self.samples.append((t, n))

    def window(self, t0: float, t1: float) -> float:
        """Sum of timestamped increments with ``t0 <= t < t1``."""
        return sum(n for t, n in self.samples if t0 <= t < t1)

    def summary(self) -> Dict[str, float]:
        return {"value": self.value}


class Gauge:
    """Last-write-wins value with a timestamped history."""

    __slots__ = ("name", "labels", "value", "samples")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value: Optional[float] = None
        self.samples: List[Tuple[float, float]] = []

    def set(self, value: float, t: Optional[float] = None) -> None:
        self.value = value
        if t is not None:
            self.samples.append((t, value))

    def at(self, t: float) -> Optional[float]:
        """Value in force at simulated time ``t`` (last set at or before)."""
        out = None
        for ts, v in self.samples:
            if ts <= t:
                out = v
            else:
                break
        return out

    def time_weighted_mean(self, t0: float, t1: float) -> Optional[float]:
        """Mean over ``[t0, t1]`` weighting each value by how long it held."""
        if t1 <= t0:
            raise ValueError("window must be non-empty")
        points = [(max(ts, t0), v) for ts, v in self.samples if ts < t1]
        start_value = self.at(t0)
        if start_value is not None and (not points or points[0][0] > t0):
            points.insert(0, (t0, start_value))
        points = [(ts, v) for ts, v in points if ts >= t0]
        if not points:
            return None
        total = 0.0
        for i, (ts, v) in enumerate(points):
            t_next = points[i + 1][0] if i + 1 < len(points) else t1
            total += v * (t_next - ts)
        return total / (t1 - points[0][0])

    def summary(self) -> Dict[str, Optional[float]]:
        return {"value": self.value}


class Histogram:
    """Distribution of timestamped observations."""

    __slots__ = ("name", "labels", "samples")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        #: ``(t, value)`` pairs in observation order.
        self.samples: List[Tuple[float, float]] = []

    def observe(self, value: float, t: float) -> None:
        self.samples.append((t, value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def sum(self) -> float:
        return sum(v for _t, v in self.samples)

    @property
    def mean(self) -> Optional[float]:
        if not self.samples:
            return None
        return self.sum / len(self.samples)

    def values(self) -> List[float]:
        return [v for _t, v in self.samples]

    def window(self, t0: float, t1: float) -> List[float]:
        """Observations recorded at ``t0 <= t < t1``."""
        return [v for t, v in self.samples if t0 <= t < t1]

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile, ``q`` in [0, 100]."""
        if not self.samples:
            return None
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(v for _t, v in self.samples)
        rank = max(math.ceil(q / 100.0 * len(ordered)), 1)
        return ordered[rank - 1]

    def summary(self) -> Dict[str, Optional[float]]:
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Get-or-create instruments keyed by ``(name, labels)``."""

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self._instruments: Dict[Tuple[str, str, LabelKey], Any] = {}

    def _get(self, kind: str, name: str, labels: Dict[str, Any]) -> Any:
        key = (kind, name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = self._KINDS[kind](name, key[2])
            self._instruments[key] = inst
        return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get("histogram", name, labels)

    def __len__(self) -> int:
        return len(self._instruments)

    def collect(
        self,
        name: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> Iterator[Any]:
        """Instruments matching the filters, in registration order."""
        for (k, n, _labels), inst in self._instruments.items():
            if name is not None and n != name:
                continue
            if kind is not None and k != kind:
                continue
            yield inst

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one (cross-worker
        aggregation): counters add, gauges keep the later history, histograms
        concatenate samples."""
        for (kind, name, labels), inst in other._instruments.items():
            labels_dict = dict(labels)
            if kind == "counter":
                mine = self.counter(name, **labels_dict)
                mine.value += inst.value
                mine.samples.extend(inst.samples)
            elif kind == "gauge":
                mine = self.gauge(name, **labels_dict)
                mine.samples.extend(inst.samples)
                if inst.value is not None:
                    mine.value = inst.value
            else:
                mine = self.histogram(name, **labels_dict)
                mine.samples.extend(inst.samples)

    def render(self) -> str:
        """Text exposition, one instrument per line (stable order)."""
        lines = []
        for (kind, name, labels), inst in sorted(
            self._instruments.items(),
            key=lambda item: (item[0][1], item[0][0], item[0][2]),
        ):
            label_txt = ",".join(f'{k}="{v}"' for k, v in labels)
            head = f"{name}{{{label_txt}}}" if label_txt else name
            pairs = []
            for k, v in inst.summary().items():
                if v is None:
                    continue
                pairs.append(f"{k}={v:.6g}" if isinstance(v, float) else f"{k}={v}")
            lines.append(f"{head} [{kind}] {' '.join(pairs)}")
        return "\n".join(lines)
