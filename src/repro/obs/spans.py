"""Hierarchical spans over *simulated* time.

The paper's whole evaluation is observational — makespan, per-SeD load
balance (the Figure 4 Gantt), finding time, latency, middleware overhead —
so the reproduction records the same raw material the way a modern
telemetry stack would: as **spans**.  A span is a named interval on a
*track* (a request, a SeD, the engine itself) with a start/end stamp in
simulated seconds, a category, free-form attributes and a parent — the
open-span stack of its track at begin time — forming the
campaign → request → phase hierarchy the exporters and the profiler
consume.

Recording never touches the event queue: a span begin/end is pure Python
bookkeeping around timestamps the call site already read from
``engine.now``, so runs with tracing enabled execute the *identical* event
stream as runs without (the kernel determinism suite pins this).

Lifecycle discipline:

* spans on one track close in LIFO order (children before parents);
  :meth:`SpanStore.end` tolerates a violated order by force-closing the
  intervening spans with status ``"interrupted"`` rather than corrupting
  the stack;
* a crash/dead-letter path closes a whole track at once
  (:meth:`SpanStore.unwind`) with an abnormal status, so failure paths
  never leak open spans;
* whatever is still open when a run finishes is closed by
  :meth:`SpanStore.close_all` with status ``"lost"``.

Normal ends carry status ``"ok"``; every query that derives a *duration*
filters on it, while queries that only need a *start* stamp (e.g. the
latency series, which includes attempts that died mid-solve) accept any
status — mirroring exactly which :class:`~repro.core.statistics.RequestTrace`
fields were stamped on the same paths.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["Span", "Mark", "SpanStore"]


class Span:
    """One named interval on a track, in simulated seconds."""

    __slots__ = (
        "span_id",
        "track",
        "name",
        "category",
        "start",
        "end",
        "parent_id",
        "status",
        "attrs",
        "child_time",
    )

    def __init__(
        self,
        span_id: int,
        track: str,
        name: str,
        category: str,
        start: float,
        parent_id: Optional[int],
        attrs: Optional[Dict[str, Any]],
    ):
        self.span_id = span_id
        self.track = track
        self.name = name
        self.category = category
        self.start = start
        #: ``None`` while open; the close stamp afterwards (abnormal closes
        #: stamp the unwind time — ``status`` says whether to trust it).
        self.end: Optional[float] = None
        self.parent_id = parent_id
        #: ``None`` open, ``"ok"`` normal close, ``"error"`` / ``"aborted"``
        #: / ``"interrupted"`` / ``"lost"`` abnormal closes.
        self.status: Optional[str] = None
        self.attrs: Dict[str, Any] = attrs or {}
        #: Summed duration of direct children (maintained at child close),
        #: so ``self_time`` needs no tree walk.
        self.child_time = 0.0

    @property
    def open(self) -> bool:
        return self.status is None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    @property
    def self_time(self) -> Optional[float]:
        """Duration minus time attributed to direct children."""
        d = self.duration
        if d is None:
            return None
        return max(d - self.child_time, 0.0)

    # __slots__ classes pickle fine by default; spans must cross process
    # boundaries inside detached campaign results (the parallel runner).

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self.open else f"{self.status}@{self.end:g}"
        return (
            f"<Span {self.category}:{self.name} track={self.track!r} "
            f"start={self.start:g} {state}>"
        )


class Mark:
    """An instant event on a track (crash, restart, deregistration, ...)."""

    __slots__ = ("track", "name", "time", "attrs")

    def __init__(
        self,
        track: str,
        name: str,
        time: float,
        attrs: Optional[Dict[str, Any]],
    ):
        self.track = track
        self.name = name
        self.time = time
        self.attrs: Dict[str, Any] = attrs or {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Mark {self.name} track={self.track!r} t={self.time:g}>"


class SpanStore:
    """Append-only store of spans + instant marks, with per-track stacks."""

    def __init__(self):
        #: Every span ever begun, in begin order.
        self.spans: List[Span] = []
        #: Instant events, in emit order.
        self.marks: List[Mark] = []
        self._open: Dict[str, List[Span]] = {}
        self._next_id = 0

    # -- recording -----------------------------------------------------------

    def begin(
        self,
        track: str,
        name: str,
        t: float,
        category: str = "phase",
        **attrs: Any,
    ) -> Span:
        """Open a span on ``track`` at simulated time ``t``."""
        stack = self._open.get(track)
        if stack is None:
            stack = self._open[track] = []
        parent_id = stack[-1].span_id if stack else None
        span = Span(self._next_id, track, name, category, t, parent_id, attrs or None)
        self._next_id += 1
        self.spans.append(span)
        stack.append(span)
        return span

    def end(self, span: Span, t: float, status: str = "ok", **attrs: Any) -> Span:
        """Close ``span`` at ``t``.

        LIFO per track: ``span`` is expected to be the top of its track's
        stack.  If children were left open above it they are force-closed
        first with status ``"interrupted"`` — the store never corrupts its
        stacks, and the leak is visible in the data instead of silent.
        """
        if not span.open:
            return span
        stack = self._open.get(span.track, [])
        while stack and stack[-1] is not span:
            self._close(stack.pop(), t, "interrupted")
        if stack:
            stack.pop()
        self._close(span, t, status)
        if attrs:
            span.attrs.update(attrs)
        return span

    def _close(self, span: Span, t: float, status: str) -> None:
        span.end = t
        span.status = status
        if span.parent_id is not None:
            stack = self._open.get(span.track)
            if stack and stack[-1].span_id == span.parent_id:
                stack[-1].child_time += t - span.start

    def unwind(self, track: str, t: float, status: str = "aborted") -> int:
        """Close every open span on ``track`` (innermost first); count them.

        The crash/dead-letter path: a SeD dying mid-solve (or a request
        erroring out) must not leak open spans.
        """
        stack = self._open.get(track)
        if not stack:
            return 0
        n = len(stack)
        while stack:
            self._close(stack.pop(), t, status)
        return n

    def close_all(self, t: float, status: str = "lost") -> int:
        """End-of-run sweep: close whatever is still open, on every track."""
        n = 0
        for track in list(self._open):
            n += self.unwind(track, t, status)
        return n

    def mark(self, track: str, name: str, t: float, **attrs: Any) -> Mark:
        """Record an instant event (crash, restart, deregistration, ...)."""
        mk = Mark(track, name, t, attrs or None)
        self.marks.append(mk)
        return mk

    # -- introspection ---------------------------------------------------------

    @property
    def open_count(self) -> int:
        return sum(len(stack) for stack in self._open.values())

    def open_spans(self, track: Optional[str] = None) -> List[Span]:
        if track is not None:
            return list(self._open.get(track, []))
        return [s for stack in self._open.values() for s in stack]

    def open_span(self, track: str, name: str) -> Optional[Span]:
        """Innermost open span named ``name`` on ``track``, or None.

        How one component closes a span another component opened (the SeD
        ends the ``queue`` span the deliver-phase interceptor began).
        """
        for span in reversed(self._open.get(track, ())):
            if span.name == name:
                return span
        return None

    def tracks(self) -> List[str]:
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.track, None)
        for mk in self.marks:
            seen.setdefault(mk.track, None)
        return list(seen)

    # -- queries ----------------------------------------------------------------

    def find(
        self,
        name: Optional[str] = None,
        category: Optional[str] = None,
        status: Optional[str] = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Spans matching every given filter, in begin order.

        ``attrs`` filters compare against :attr:`Span.attrs` entries
        (a span without the key never matches).
        """
        for span in self.spans:
            if name is not None and span.name != name:
                continue
            if category is not None and span.category != category:
                continue
            if status is not None and span.status != status:
                continue
            if attrs:
                sa = span.attrs
                if any(k not in sa or sa[k] != v for k, v in attrs.items()):
                    continue
            yield span

    def first(self, **kwargs: Any) -> Optional[Span]:
        for span in self.find(**kwargs):
            return span
        return None

    def by_attr(self, key: str, **kwargs: Any) -> Dict[Any, List[Span]]:
        """Group matching spans by an attribute value (e.g. ``"sed"``)."""
        out: Dict[Any, List[Span]] = {}
        for span in self.find(**kwargs):
            value = span.attrs.get(key)
            if value is not None:
                out.setdefault(value, []).append(span)
        return out

    def gantt(
        self,
        category: str = "solve",
        group_by: str = "sed",
        **filters: Any,
    ) -> Dict[str, List[Tuple[float, Optional[float], Any]]]:
        """Per-group ``(start, end, request_id)`` rows for a timeline chart.

        Matches the shape :meth:`CampaignResult.gantt` always had: spans
        that did not close normally contribute ``(start, None, rid)`` —
        their start is a real stamp, their end is not.
        """
        chart: Dict[str, List[Tuple[float, Optional[float], Any]]] = {}
        for span in self.find(category=category, **filters):
            group = span.attrs.get(group_by)
            if group is None:
                continue
            end = span.end if span.ok else None
            chart.setdefault(group, []).append(
                (span.start, end, span.attrs.get("request_id"))
            )
        for rows in chart.values():
            rows.sort(key=lambda r: (r[0], r[2] if r[2] is not None else -1))
        return chart

    def extent(self) -> Tuple[float, float]:
        """(earliest start, latest close) over every span and mark."""
        times = [s.start for s in self.spans] + [m.time for m in self.marks]
        ends = [s.end for s in self.spans if s.end is not None]
        if not times and not ends:
            return (0.0, 0.0)
        lo = min(times) if times else min(ends)
        hi = max(ends) if ends else max(times)
        return (lo, max(hi, lo))
