"""Flat/top profile over span self-times.

``python -m repro <experiment> --profile`` feeds every span store a run
produced (one per campaign; the parallel experiment runner yields one per
worker task) into :func:`profile_report`: spans are grouped by
``category:name``, their **self time** (duration minus direct children)
summed, and the result printed as the classic flat profile — where did the
simulated hours actually go, across all workers at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .spans import SpanStore

__all__ = ["ProfileRow", "aggregate_self_times", "profile_report"]


@dataclass
class ProfileRow:
    """Aggregated timings of one span kind (``category:name``)."""

    key: str
    count: int = 0
    total: float = 0.0
    self_total: float = 0.0
    max_self: float = 0.0

    @property
    def mean_self(self) -> float:
        return self.self_total / self.count if self.count else 0.0


def aggregate_self_times(stores: Iterable[SpanStore]) -> List[ProfileRow]:
    """Fold one or many span stores into per-kind rows, largest self first.

    Only normally-closed spans contribute (an aborted attempt's duration is
    an unwind artifact, not a measurement).
    """
    rows: Dict[str, ProfileRow] = {}
    for store in stores:
        for span in store.spans:
            if not span.ok:
                continue
            key = f"{span.category}:{span.name}"
            row = rows.get(key)
            if row is None:
                row = rows[key] = ProfileRow(key)
            duration = span.duration or 0.0
            self_time = span.self_time or 0.0
            row.count += 1
            row.total += duration
            row.self_total += self_time
            row.max_self = max(row.max_self, self_time)
    return sorted(rows.values(), key=lambda r: (-r.self_total, r.key))


def profile_report(
    stores: Iterable[SpanStore],
    top: Optional[int] = None,
    title: str = "span self-time profile",
) -> str:
    """Render the flat profile as a fixed-width table."""
    stores = list(stores)
    rows = aggregate_self_times(stores)
    if top is not None:
        rows = rows[:top]
    if not rows:
        return f"{title}: no spans recorded (observability disabled?)"
    grand_self = sum(r.self_total for r in rows) or 1.0
    headers = ("span", "count", "self total", "%", "mean self", "max self", "total")
    key_w = max(len(headers[0]), max(len(r.key) for r in rows))
    widths = [key_w, 7, 12, 6, 11, 11, 12]
    lines = [
        f"{title} ({len(stores)} store(s))",
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
    ]
    for r in rows:
        cells = (
            r.key.ljust(widths[0]),
            str(r.count).rjust(widths[1]),
            f"{r.self_total:.3f}s".rjust(widths[2]),
            f"{100.0 * r.self_total / grand_self:.1f}".rjust(widths[3]),
            f"{r.mean_self * 1e3:.2f}ms".rjust(widths[4]),
            f"{r.max_self * 1e3:.2f}ms".rjust(widths[5]),
            f"{r.total:.3f}s".rjust(widths[6]),
        )
        lines.append("  ".join(cells))
    return "\n".join(lines)
