"""Span exporters: Chrome-trace/Perfetto JSON and a matplotlib-free SVG Gantt.

``chrome_trace`` emits the Trace Event Format every Chromium-family
profiler UI (``chrome://tracing``, Perfetto, Speedscope) loads directly:
one complete (``"X"``) event per closed span, one instant (``"i"``) event
per mark, with tracks mapped to named threads.  Simulated seconds become
microseconds, the unit those UIs assume.

``svg_gantt`` renders the paper's Figure 4 (left) — one row per SeD, one
rectangle per solve span — as a standalone SVG string with no plotting
dependency, so ``python -m repro figure4 --gantt-svg out.svg`` works on a
bare CI runner.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .spans import SpanStore

__all__ = ["chrome_trace", "write_chrome_trace", "svg_gantt"]


def chrome_trace(store: SpanStore, process_name: str = "repro") -> dict:
    """Fold a span store into a Chrome Trace Event Format document."""
    tids: Dict[str, int] = {}
    process_meta = {
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "name": "process_name",
        "args": {"name": process_name},
    }
    events: List[dict] = [process_meta]

    def tid(track: str) -> int:
        t = tids.get(track)
        if t is None:
            t = tids[track] = len(tids) + 1
            track_meta = {
                "ph": "M",
                "pid": 0,
                "tid": t,
                "name": "thread_name",
                "args": {"name": track},
            }
            events.append(track_meta)
        return t

    for span in store.spans:
        end = span.end if span.end is not None else span.start
        args = dict(span.attrs)
        if span.status not in (None, "ok"):
            args["status"] = span.status
        event = {
            "ph": "X",
            "pid": 0,
            "tid": tid(span.track),
            "name": span.name,
            "cat": span.category,
            "ts": span.start * 1e6,
            "dur": (end - span.start) * 1e6,
            "args": args,
        }
        events.append(event)
    for mk in store.marks:
        event = {
            "ph": "i",
            "pid": 0,
            "tid": tid(mk.track),
            "s": "t",
            "name": mk.name,
            "cat": "mark",
            "ts": mk.time * 1e6,
            "args": dict(mk.attrs),
        }
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    store: SpanStore,
    path: str,
    process_name: str = "repro",
) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(store, process_name), fh, indent=1)


#: Row height / paddings of the SVG Gantt, in px.
_ROW_H = 22
_PAD_X = 8
_LABEL_W = 170
_AXIS_H = 26

_STATUS_FILL = {"ok": "#4878cf", None: "#4878cf"}
_ABNORMAL_FILL = "#d65f5f"


def _fmt_hours(seconds: float) -> str:
    return f"{seconds / 3600.0:.1f}h"


def svg_gantt(
    chart: Dict[str, List[Tuple[float, Optional[float], object]]],
    width: int = 900,
    title: str = "per-SeD solve timeline",
) -> str:
    """Render ``{row: [(start, end, request_id), ...]}`` as an SVG string.

    Rows with ``end is None`` (attempts that never finished) are drawn as
    thin abnormal markers so a degraded campaign's losses stay visible.
    """
    rows = sorted(chart)
    spans = [(s, e) for bars in chart.values() for s, e, _ in bars]
    t_min = min((s for s, _e in spans), default=0.0)
    t_max = max((e for _s, e in spans if e is not None), default=t_min)
    t_max = max(t_max, max((s for s, _e in spans), default=t_min))
    span_w = max(t_max - t_min, 1e-9)
    plot_w = width - _LABEL_W - 2 * _PAD_X
    height = _AXIS_H + _ROW_H * max(len(rows), 1) + 2 * _PAD_X

    def x(t: float) -> float:
        return _LABEL_W + _PAD_X + (t - t_min) / span_w * plot_w

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="12">',
        f"<title>{title}</title>",
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    for i, row in enumerate(rows):
        y = _PAD_X + i * _ROW_H
        label_y = y + _ROW_H * 0.7
        parts.append(f'<text x="{_PAD_X}" y="{label_y:.1f}" fill="#333">{row}</text>')
        for start, end, rid in chart[row]:
            if end is None:
                parts.append(
                    f'<rect x="{x(start):.2f}" y="{y + 3}" width="2" '
                    f'height="{_ROW_H - 6}" fill="{_ABNORMAL_FILL}">'
                    f"<title>request {rid}: aborted</title></rect>"
                )
                continue
            w = max(x(end) - x(start), 0.5)
            parts.append(
                f'<rect x="{x(start):.2f}" y="{y + 3}" width="{w:.2f}" '
                f'height="{_ROW_H - 6}" fill="{_STATUS_FILL["ok"]}" '
                f'stroke="white" stroke-width="0.5">'
                f"<title>request {rid}: {start:.1f}s - {end:.1f}s</title>"
                f"</rect>"
            )
    axis_y = _PAD_X + len(rows) * _ROW_H + 14
    parts.append(
        f'<line x1="{x(t_min):.1f}" y1="{axis_y - 10}" '
        f'x2="{x(t_max):.1f}" y2="{axis_y - 10}" stroke="#999"/>'
    )
    parts.append(f'<text x="{x(t_min):.1f}" y="{axis_y + 6}" fill="#666">0h</text>')
    parts.append(
        f'<text x="{x(t_max) - 40:.1f}" y="{axis_y + 6}" '
        f'fill="#666">{_fmt_hours(t_max - t_min)}</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts)
