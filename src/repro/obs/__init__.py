"""Unified observability: spans, metrics, exporters, profiling.

One :class:`Observability` object travels with a deployment (reachable as
``tracer.obs`` from every interceptor, agent and SeD): a
:class:`~repro.obs.spans.SpanStore` holding the campaign → request → phase
span hierarchy plus crash/restart marks, and a
:class:`~repro.obs.metrics.MetricsRegistry` of per-SeD/per-cluster
instruments.  Both record pure Python data stamped with simulated time the
call site already read — **never** events — so enabling observability
cannot perturb the simulated execution (the kernel determinism suite pins
the event stream with it on and off).

Zero cost when disabled: every emission site guards on ``obs.enabled``
(one attribute read), and components created without an explicit
Observability share the :data:`NULL_OBS` singleton, which is permanently
disabled.
"""

from __future__ import annotations

from typing import Any, Optional

from .export import chrome_trace, svg_gantt, write_chrome_trace
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiling import ProfileRow, aggregate_self_times, profile_report
from .spans import Mark, Span, SpanStore

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Mark",
    "MetricsRegistry",
    "NULL_OBS",
    "Observability",
    "ProfileRow",
    "Span",
    "SpanStore",
    "aggregate_self_times",
    "chrome_trace",
    "merge_observability",
    "profile_report",
    "svg_gantt",
    "write_chrome_trace",
]


class Observability:
    """Span store + metrics registry behind one enable switch."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.spans = SpanStore()
        self.metrics = MetricsRegistry()

    def finalize(self, t: float) -> int:
        """End-of-run sweep: close any span still open (status ``"lost"``).

        Returns how many were closed — 0 on a healthy run.
        """
        if not self.enabled:
            return 0
        return self.spans.close_all(t)

    def collect_transport(self, fabric: Any, t: float) -> None:
        """Snapshot the transport accounting counters into the registry.

        The per-message counting stays in the pipeline's
        :class:`~repro.core.pipeline.AccountingInterceptor` (the hot path);
        this folds its totals into the registry at report time so transport
        traffic sits beside the span-derived metrics.
        """
        if not self.enabled:
            return
        acct = fabric.accounting
        self.metrics.counter("transport.messages").inc(acct.messages_sent, t)
        self.metrics.counter("transport.bytes").inc(acct.bytes_sent, t)
        for op, n in sorted(acct.messages_by_op.items()):
            self.metrics.counter("transport.messages_by_op", op=op).inc(n, t)
        self.metrics.counter("transport.dropped").inc(acct.messages_dropped, t)
        self.metrics.counter("transport.dead_letters").inc(acct.dead_letters, t)
        self.metrics.counter("transport.replies_suppressed").inc(
            acct.replies_suppressed, t
        )

    def collect_network(self, network: Any, t: float) -> None:
        """Snapshot the network's byte counters (total and WAN-crossing).

        Like :meth:`collect_transport`, the per-transfer counting lives in
        :class:`~repro.sim.network.Network` itself (plain integer adds on
        the transfer path); this folds the totals into the registry.
        """
        if not self.enabled:
            return
        self.metrics.counter("network.bytes_total").inc(network.bytes_total, t)
        self.metrics.counter("network.bytes_wan").inc(network.bytes_wan, t)

    def collect_data(self, grid: Any, t: float) -> None:
        """Snapshot a :class:`~repro.data.manager.DataGrid`'s counters.

        Hits/misses, bytes moved vs saved, evictions, replica and
        coalescing counts all land as ``data.*`` counters beside the
        transfer spans the managers record live.
        """
        if not self.enabled:
            return
        for name, value in sorted(grid.stats.as_dict().items()):
            self.metrics.counter(f"data.{name}").inc(value, t)


#: The shared disabled instance every component defaults to.  Emission
#: sites guard on ``obs.enabled``, so nothing is ever recorded into it.
NULL_OBS = Observability(enabled=False)


def merge_observability(results: Any) -> Optional[Observability]:
    """Fold the Observability of many campaign results into one.

    ``results`` may be campaign results (anything with a reachable
    ``.tracer.obs``), Observability instances, or None entries (skipped).
    Returns None when nothing observable was found.
    """
    merged: Optional[Observability] = None
    for item in results:
        obs = _extract_obs(item)
        if obs is None or not obs.enabled:
            continue
        if merged is None:
            merged = Observability()
        merged.spans.spans.extend(obs.spans.spans)
        merged.spans.marks.extend(obs.spans.marks)
        merged.metrics.merge(obs.metrics)
    return merged


def _extract_obs(item: Any) -> Optional[Observability]:
    if item is None:
        return None
    if isinstance(item, Observability):
        return item
    tracer = getattr(item, "tracer", None)
    if tracer is None:
        deployment = getattr(item, "deployment", None)
        tracer = getattr(deployment, "tracer", None)
    return getattr(tracer, "obs", None)
