"""Shared-resource primitives for the simulation kernel.

Three primitives cover everything the middleware and platform layers need:

* :class:`Resource` — a counted semaphore with a FIFO wait queue (used for
  CPU slots on compute nodes and the one-job-at-a-time constraint of a SeD);
* :class:`Store` — an unbounded FIFO of Python objects with blocking ``get``
  (used for mailboxes in the message transport);
* :class:`Container` — a continuous-quantity tank (used for disk space in
  the NFS model).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from .engine import Engine, Event

__all__ = ["Resource", "Request", "Store", "Container"]


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when granted.

    Use as a context manager inside a process::

        req = resource.request()
        yield req
        try:
            ...
        finally:
            resource.release(req)
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.engine)
        self.resource = resource


class Resource:
    """Counted resource with FIFO granting.

    ``capacity`` claims may be outstanding at once; further requests queue.
    """

    def __init__(self, engine: Engine, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self._users: List[Request] = []
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of granted (active) claims."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of claims waiting to be granted."""
        return len(self._waiting)

    def request(self) -> Request:
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Release a granted claim (or cancel a queued one)."""
        try:
            self._users.remove(request)
        except ValueError:
            # Not granted yet: cancel from the wait queue if present.
            try:
                self._waiting.remove(request)
            except ValueError:
                raise RuntimeError("release() of a request unknown to this resource")
            return
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.append(nxt)
            nxt.succeed(nxt)

    def acquire(self) -> Generator[Event, Any, Request]:
        """Process helper: ``req = yield from resource.acquire()``.

        Interrupt-safe: if the waiting process is interrupted (e.g. its host
        crashes) while the claim is still queued — or just granted — the
        claim is cancelled/released instead of leaking a phantom user.
        """
        req = self.request()
        try:
            yield req
        except BaseException:
            self.release(req)
            raise
        return req


class Store:
    """Unbounded FIFO store of Python objects with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the next
    item; pending getters are served FIFO.
    """

    def __init__(self, engine: Engine):
        self.engine = engine
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.engine)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; None if empty."""
        return self._items.popleft() if self._items else None


class Container:
    """A continuous quantity (e.g. bytes of disk) with blocking ``get``.

    ``put`` adds quantity immediately; ``get(amount)`` fires once the amount
    is available.  Waiters are served FIFO without overtaking (a large
    request at the head blocks smaller ones behind it, which models fair
    disk reservation).
    """

    def __init__(self, engine: Engine, capacity: float = float("inf"),
                 init: float = 0.0):
        if init < 0 or init > capacity:
            raise ValueError("init must satisfy 0 <= init <= capacity")
        self.engine = engine
        self.capacity = capacity
        self._level = float(init)
        self._waiting: Deque[tuple] = deque()  # (amount, event)

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if self._level + amount > self.capacity + 1e-9:
            raise ValueError(
                f"overflow: level {self._level} + {amount} > capacity {self.capacity}")
        self._level += amount
        self._drain()

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = Event(self.engine)
        self._waiting.append((amount, ev))
        self._drain()
        return ev

    def _drain(self) -> None:
        while self._waiting and self._waiting[0][0] <= self._level + 1e-12:
            amount, ev = self._waiting.popleft()
            self._level -= amount
            ev.succeed(amount)
