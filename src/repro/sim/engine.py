"""Discrete-event simulation kernel.

The kernel follows the classic event-queue / generator-process design
(similar in spirit to SimPy, reimplemented here so the middleware stack has
no external runtime dependency):

* an :class:`Engine` owns a priority queue of :class:`Event` objects keyed by
  ``(time, priority, sequence)``;
* a :class:`Process` wraps a Python generator; each ``yield``-ed event
  suspends the process until the event triggers, at which point the process
  is resumed with the event's value.

All simulated time is a ``float`` in **seconds**.  The kernel is fully
deterministic: two runs with the same seed and the same process creation
order produce identical event orderings (ties are broken by a monotonically
increasing sequence number).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
]

#: Scheduling priorities.  Lower value == dispatched earlier at equal time.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

#: Sentinel meaning "event not yet assigned a value".
_PENDING = object()


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double trigger, run with empty queue, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it may be :meth:`succeed`-ed or :meth:`fail`-ed
    exactly once, after which its callbacks run at the current simulation
    time.  Processes subscribe by yielding the event.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_scheduled")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False

    # -- state --------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire (or has fired)."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        self._trigger(True, value, priority)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event with an exception (re-raised in waiters)."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._trigger(False, exception, priority)
        return self

    def _trigger(self, ok: bool, value: Any, priority: int) -> None:
        if self._scheduled:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = ok
        self._value = value
        self._scheduled = True
        self.engine._schedule(self, delay=0.0, priority=priority)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else ("triggered" if self._scheduled else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None,
                 priority: int = PRIORITY_NORMAL):
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        super().__init__(engine)
        self.delay = delay
        self._ok = True
        self._value = value
        self._scheduled = True
        engine._schedule(self, delay=delay, priority=priority)


class _ConditionEvent(Event):
    """Base for AnyOf / AllOf composite events.

    Once the condition settles (succeeds or fails) it *detaches* its
    callback from every sibling event that has not fired yet: a late-failing
    sibling must not touch an already-settled condition, and long campaigns
    would otherwise accumulate dead callbacks on long-lived events (e.g. the
    reply events that deadline races keep re-creating).
    """

    __slots__ = ("events", "_n_fired")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self.events = list(events)
        self._n_fired = 0
        if not self.events:
            # An empty condition is immediately true.
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed:
                self._on_fire(ev)
            else:
                if ev.callbacks is None:
                    self._on_fire(ev)
                else:
                    ev.callbacks.append(self._on_fire)
            if self._scheduled:
                # Settled mid-registration (an already-fired child decided
                # the outcome): later siblings must not be subscribed.
                break

    def _detach(self) -> None:
        """Drop our callback from every still-pending child event."""
        for ev in self.events:
            if ev.callbacks is not None:
                try:
                    ev.callbacks.remove(self._on_fire)
                except ValueError:
                    pass

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events if ev._scheduled and ev.processed}

    def _on_fire(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_ConditionEvent):
    """Fires as soon as any child event fires (value: dict of fired events)."""

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self._scheduled:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed(self._collect())
        self._detach()


class AllOf(_ConditionEvent):
    """Fires once all child events have fired (value: dict of all values)."""

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self._scheduled:
            return
        if not event._ok:
            self.fail(event._value)
            self._detach()
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed({ev: ev._value for ev in self.events})
            self._detach()


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A generator-based simulated process.

    A process is itself an :class:`Event` that fires (with the generator's
    return value) when the generator finishes, so processes can wait on each
    other simply by yielding the other process.
    """

    __slots__ = ("generator", "name", "_target", "_interrupts", "_defused")

    def __init__(self, engine: "Engine", generator: ProcessGenerator,
                 name: Optional[str] = None):
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        self._defused = False
        # Bootstrap: resume once at the current time.
        boot = Timeout(engine, 0.0, priority=PRIORITY_URGENT)
        boot.callbacks.append(self._resume)
        self._target = boot

    @property
    def is_alive(self) -> bool:
        return not self._scheduled

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._scheduled:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        self._interrupts.append(Interrupt(cause))
        # Detach from the current target and resume immediately.
        target, self._target = self._target, None
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        wake = Timeout(self.engine, 0.0, priority=PRIORITY_URGENT)
        wake.callbacks.append(self._resume)
        self._target = wake

    def _resume(self, event: Event) -> None:
        self.engine._active_process = self
        try:
            while True:
                try:
                    if self._interrupts:
                        exc = self._interrupts.pop(0)
                        next_event = self.generator.throw(exc)
                    elif event._ok:
                        next_event = self.generator.send(event._value)
                    else:
                        next_event = self.generator.throw(event._value)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    # Unhandled in-process exception: fail the process event;
                    # if nobody is watching, escalate at dispatch time.
                    self.fail(exc)
                    return
                if not isinstance(next_event, Event):
                    raise SimulationError(
                        f"process {self.name!r} yielded {next_event!r}, not an Event")
                if next_event.processed:
                    # Already fired: loop around synchronously.
                    event = next_event
                    continue
                self._target = next_event
                if next_event.callbacks is None:
                    raise SimulationError("cannot wait on a processed event")
                next_event.callbacks.append(self._resume)
                return
        finally:
            self.engine._active_process = None


class Engine:
    """The simulation engine: clock plus event queue."""

    def __init__(self):
        self._now = 0.0
        self._queue: List[tuple] = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories --------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------------

    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now - 1e-12:
            raise SimulationError("event scheduled in the past")
        self._now = max(self._now, when)
        had_watchers = bool(event.callbacks)
        event._run_callbacks()
        # A failed process with nobody watching it would otherwise vanish
        # silently; escalate unless explicitly defused.
        if (isinstance(event, Process) and not event._ok
                and not had_watchers and not event._defused):
            raise event._value

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns the simulation time when the run stopped.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while self._queue:
            if until is not None and self.peek() > until:
                self._now = until
                return self._now
            self.step()
        return self._now

    def run_process(self, generator: ProcessGenerator, until: Optional[float] = None) -> Any:
        """Convenience: spawn ``generator`` and run until it completes.

        Returns the process return value; re-raises its exception on failure.
        """
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError("process did not finish before the deadline")
        if not proc._ok:
            raise proc._value
        return proc._value

    def run_until_complete(self, generator: ProcessGenerator,
                           max_time: Optional[float] = None) -> Any:
        """Spawn ``generator`` and step until *it* completes (not until the
        queue drains).

        Unlike :meth:`run_process` this tolerates perpetual background
        processes — heartbeat monitors, failure injectors — that keep the
        event queue non-empty forever.  Raises :class:`SimulationError` if
        the queue drains (deadlock) or simulated time would pass
        ``max_time`` before the process finishes.
        """
        proc = self.process(generator)
        while not proc.triggered:
            if not self._queue:
                raise SimulationError(
                    f"process {proc.name!r} cannot complete: event queue drained")
            if max_time is not None and self.peek() > max_time:
                raise SimulationError(
                    f"process {proc.name!r} did not finish by t={max_time}")
            self.step()
        if not proc._ok:
            # The exception surfaces here; don't escalate it a second time
            # when the process event itself is dispatched.
            proc._defused = True
            raise proc._value
        return proc._value

    def defuse(self, process: Process) -> None:
        """Mark a process so its failure is not escalated by the kernel."""
        process._defused = True  # type: ignore[attr-defined]
