"""Discrete-event simulation kernel.

The kernel follows the classic event-queue / generator-process design
(similar in spirit to SimPy, reimplemented here so the middleware stack has
no external runtime dependency):

* an :class:`Engine` owns a priority queue of :class:`Event` objects keyed by
  ``(time, priority, sequence)``;
* a :class:`Process` wraps a Python generator; each ``yield``-ed event
  suspends the process until the event triggers, at which point the process
  is resumed with the event's value.

All simulated time is a ``float`` in **seconds**.  The kernel is fully
deterministic: two runs with the same seed and the same process creation
order produce identical event orderings (ties are broken by a monotonically
increasing sequence number).

Hot-path discipline (PR 3): campaigns dispatch hundreds of thousands of
events, so the create/schedule/dispatch/resume cycle is written for
throughput — ``__slots__`` everywhere, scheduling inlined into the
constructors and trigger paths (no per-push closures or helper frames),
single-callback dispatch without copying, and a ``run()`` loop that keeps
the queue and clock in locals.  The determinism suite
(``tests/property/test_kernel_determinism.py``) pins the exact event
stream these fast paths must preserve.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Generator, Iterable, List, Optional

from .simcore import CTimeout, EventHeap, _C

_INF = float("inf")

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
]

#: Scheduling priorities.  Lower value == dispatched earlier at equal time.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

#: Sentinel meaning "event not yet assigned a value".
_PENDING = object()


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double trigger, run with empty queue, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it may be :meth:`succeed`-ed or :meth:`fail`-ed
    exactly once, after which its callbacks run at the current simulation
    time.  Processes subscribe by yielding the event.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_scheduled")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False

    # -- state --------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire (or has fired)."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._scheduled:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._scheduled = True
        self.engine._queue.pushnow(priority, self)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event with an exception (re-raised in waiters)."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._scheduled:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self._scheduled = True
        self.engine._queue.pushnow(priority, self)
        return self

    def _trigger(self, ok: bool, value: Any, priority: int) -> None:
        # Kept for subclass/test use; succeed()/fail() inline this.
        if self._scheduled:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = ok
        self._value = value
        self._scheduled = True
        self.engine._queue.pushnow(priority, self)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks is None:
            raise SimulationError(f"{self!r} dispatched twice")
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else ("triggered" if self._scheduled else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` simulated seconds.

    Fast path: a Timeout is *born scheduled* — its outcome is decided at
    creation, so the constructor sets the event state directly and pushes
    the heap entry itself instead of going through
    ``Event.__init__`` + ``_trigger`` (three frames saved per event on the
    kernel's single hottest allocation site).
    """

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None,
                 priority: int = PRIORITY_NORMAL):
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self.engine = engine
        self.callbacks = []
        self._value = value
        self._ok = True
        self._scheduled = True
        self.delay = delay
        engine._queue.pushdelay(delay, priority, self)


if CTimeout is not None:
    # The C fast path: same constructor signature, same duck-typed Event
    # surface, same type __name__ (so determinism event logs match), but
    # the whole create-and-schedule cycle runs without a Python frame.
    Timeout = CTimeout  # noqa: F811


class _ConditionEvent(Event):
    """Base for AnyOf / AllOf composite events.

    Once the condition settles (succeeds or fails) it *detaches* its
    callback from every sibling event that has not fired yet: a late-failing
    sibling must not touch an already-settled condition, and long campaigns
    would otherwise accumulate dead callbacks on long-lived events (e.g. the
    reply events that deadline races keep re-creating).
    """

    __slots__ = ("events", "_n_fired", "_n_sub")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        # Event.__init__ inlined: conditions are created once per wait in
        # the deadline-race hot loop.
        self.engine = engine
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._scheduled = False
        self.events = list(events)
        self._n_fired = 0
        #: How many children were actually subscribed (settling
        #: mid-registration stops the subscription loop early); _detach
        #: only visits these, so it never has to probe for membership.
        self._n_sub = 0
        if not self.events:
            # An empty condition is immediately true.
            self.succeed({})
            return
        on_fire = self._on_fire
        for ev in self.events:
            cbs = ev.callbacks
            if cbs is None:
                # Already fired and processed: settle synchronously.
                on_fire(ev)
                if self._scheduled:
                    # Settled mid-registration (an already-fired child
                    # decided the outcome): later siblings must not be
                    # subscribed.
                    break
            else:
                cbs.append(on_fire)
                self._n_sub += 1

    def _detach(self) -> None:
        """Drop our callback from every still-pending subscribed child."""
        on_fire = self._on_fire
        events = self.events
        for i in range(self._n_sub):
            cbs = events[i].callbacks
            if cbs is not None:
                try:
                    cbs.remove(on_fire)
                except ValueError:
                    pass

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events
                if ev._scheduled and ev.callbacks is None}

    def _on_fire(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_ConditionEvent):
    """Fires as soon as any child event fires (value: dict of fired events)."""

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self._scheduled:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed(self._collect())
        self._detach()


class AllOf(_ConditionEvent):
    """Fires once all child events have fired (value: dict of all values)."""

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self._scheduled:
            return
        if not event._ok:
            self.fail(event._value)
            self._detach()
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed({ev: ev._value for ev in self.events})
            self._detach()


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A generator-based simulated process.

    A process is itself an :class:`Event` that fires (with the generator's
    return value) when the generator finishes, so processes can wait on each
    other simply by yielding the other process.
    """

    __slots__ = ("generator", "name", "_target", "_interrupts", "_defused",
                 "_resume_cb")

    def __init__(self, engine: "Engine", generator: ProcessGenerator,
                 name: Optional[str] = None):
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        self._defused = False
        #: The bound resume method, created once.  Every subscription uses
        #: this same object: no bound-method allocation per wake-up, and the
        #: C dispatch loop recognises it by its ``__func__`` to run the
        #: resume fully in C.
        self._resume_cb = self._resume
        # Bootstrap: resume once at the current time.
        boot = Timeout(engine, 0.0, priority=PRIORITY_URGENT)
        boot.callbacks.append(self._resume_cb)
        self._target = boot

    @property
    def is_alive(self) -> bool:
        return not self._scheduled

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._scheduled:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        self._interrupts.append(Interrupt(cause))
        # Detach from the current target and resume immediately.
        target, self._target = self._target, None
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        wake = Timeout(self.engine, 0.0, priority=PRIORITY_URGENT)
        wake.callbacks.append(self._resume_cb)
        self._target = wake

    def _resume(self, event: Event) -> None:
        # The kernel's hottest frame: runs once per process wake-up.  The
        # generator, interrupt queue and engine are pinned in locals; the
        # "already fired" shortcut reads ``callbacks is None`` directly
        # instead of the ``processed`` property.
        engine = self.engine
        engine._active_process = self
        generator = self.generator
        interrupts = self._interrupts
        try:
            while True:
                try:
                    if interrupts:
                        next_event = generator.throw(interrupts.pop(0))
                    elif event._ok:
                        next_event = generator.send(event._value)
                    else:
                        next_event = generator.throw(event._value)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    # Unhandled in-process exception: fail the process event;
                    # if nobody is watching, escalate at dispatch time.
                    self.fail(exc)
                    return
                try:
                    cbs = next_event.callbacks
                except AttributeError:
                    raise SimulationError(
                        f"process {self.name!r} yielded {next_event!r}, "
                        f"not an Event") from None
                if cbs is None:
                    # Already fired: loop around synchronously.
                    event = next_event
                    continue
                self._target = next_event
                cbs.append(self._resume_cb)
                return
        finally:
            engine._active_process = None


class Engine:
    """The simulation engine: clock plus event queue."""

    __slots__ = ("_queue", "_active_process", "event_log", "timeout", "obs")

    #: Class-wide default for :attr:`event_log`.  Tests set this to a list
    #: before building a stack whose engines they cannot reach (e.g. the
    #: campaign workflow creates its own Engine) to capture the full
    #: dispatch stream; ``None`` (the default) costs one pointer check per
    #: event.
    default_event_log: Optional[List[tuple]] = None

    def __init__(self):
        self._queue = EventHeap()
        self._active_process: Optional[Process] = None
        #: When a list, every dispatched event appends
        #: ``(time, priority, seq, kind, name)`` — the exact total order the
        #: kernel executed.  The determinism suite diffs these streams.
        self.event_log: Optional[List[tuple]] = Engine.default_event_log
        #: ``timeout(delay[, value[, priority]])`` — the Timeout factory,
        #: pre-bound so the hottest allocation site skips the method frame.
        #: The C Timeout takes the heap directly (its constructor reads the
        #: clock from the queue); the Python fallback takes the engine.
        self.timeout = partial(
            Timeout, self._queue if CTimeout is not None else self)
        #: Observability hub (spans/metrics over simulated time).  Defaults
        #: to the shared disabled singleton; deployments install theirs.
        #: Recording is pure bookkeeping — never events — so the dispatch
        #: stream is identical with it enabled or disabled.
        from ..obs import NULL_OBS

        self.obs = NULL_OBS

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds (owned by the event queue)."""
        return self._queue.now

    @property
    def _now(self) -> float:
        # Kept as an alias: pre-PR-3 kernel code and tests read engine._now;
        # the queue owns the clock now so dispatch never boxes it.
        return self._queue.now

    @_now.setter
    def _now(self, value: float) -> None:
        self._queue.now = value

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    @property
    def events_scheduled(self) -> int:
        """Total events ever pushed onto the queue (the seq counter)."""
        return self._queue.count

    # -- event factories --------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    # ``timeout`` is an instance attribute (a pre-bound partial) — see
    # __init__.  It keeps the historical ``engine.timeout(delay, value)``
    # call shape.

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------------

    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        self._queue.pushdelay(delay, priority, event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue.peektime()

    def _dispatch(self, when: float, prio: int, seq: int, event: Event) -> None:
        """Advance the clock to ``when`` and run ``event``'s callbacks.

        Shared tail of :meth:`step` and the logging :meth:`run` loop — the
        heap pop happens at the call sites (and already advanced the
        queue-owned clock); the sync below only matters for direct calls
        with a hand-made entry.
        """
        if when > self._queue.now:
            self._queue.now = when
        if self.event_log is not None:
            self.event_log.append((when, prio, seq, type(event).__name__,
                                   getattr(event, "name", None)))
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks is None:
            raise SimulationError(f"{event!r} dispatched twice")
        if callbacks:
            if len(callbacks) == 1:
                # The overwhelmingly common case: exactly one waiter
                # (a process resume).  Skip the loop setup.
                callbacks[0](event)
            else:
                for cb in callbacks:
                    cb(event)
        elif (event._ok is False and isinstance(event, Process)
                and not event._defused):
            # A failed process with nobody watching it would otherwise
            # vanish silently; escalate unless explicitly defused.
            raise event._value

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, prio, seq, event = self._queue.pop()
        self._dispatch(when, prio, seq, event)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns the simulation time when the run stopped.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        obs = self.obs
        if obs.enabled:
            span = obs.spans.begin("engine", "run", self._now, "engine")
            try:
                return self._run_inner(until)
            finally:
                obs.spans.end(span, self._queue.now,
                              events=self._queue.count)
        return self._run_inner(until)

    def _run_inner(self, until: Optional[float]) -> float:
        queue = self._queue
        if self.event_log is not None:
            # Logging path: full (when, prio, seq) per event, through the
            # shared _dispatch so the record format lives in one place.
            dispatch = self._dispatch
            peektime = queue.peektime
            while queue:
                if until is not None and peektime() > until:
                    self._now = until
                    return until
                when, prio, seq, event = queue.pop()
                dispatch(when, prio, seq, event)
            return self._now
        # Fast path: hand the whole pop/dispatch/callback loop to _drain
        # (the C dispatch loop when the extension is loaded, the Python
        # mirror below otherwise).  clamp=True pins the clock to `until`
        # when the next event lies beyond it, matching the logging path.
        _drain(self, queue, _INF if until is None else until, True, None)
        return self._queue.now

    def run_process(self, generator: ProcessGenerator, until: Optional[float] = None) -> Any:
        """Convenience: spawn ``generator`` and run until it completes.

        Returns the process return value; re-raises its exception on failure.
        """
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError("process did not finish before the deadline")
        if not proc._ok:
            raise proc._value
        return proc._value

    def run_until_complete(self, generator: ProcessGenerator,
                           max_time: Optional[float] = None) -> Any:
        """Spawn ``generator`` and step until *it* completes (not until the
        queue drains).

        Unlike :meth:`run_process` this tolerates perpetual background
        processes — heartbeat monitors, failure injectors — that keep the
        event queue non-empty forever.  Raises :class:`SimulationError` if
        the queue drains (deadlock) or simulated time would pass
        ``max_time`` before the process finishes.
        """
        proc = self.process(generator)
        queue = self._queue
        obs = self.obs
        span = None
        if obs.enabled:
            span = obs.spans.begin("engine", "run", self._now, "engine")
        try:
            self._run_until_complete_inner(proc, queue, max_time)
        finally:
            if span is not None:
                obs.spans.end(span, queue.now, events=queue.count)
        if not proc._ok:
            # The exception surfaces here; don't escalate it a second time
            # when the process event itself is dispatched.
            proc._defused = True
            raise proc._value
        return proc._value

    def _run_until_complete_inner(self, proc: Process, queue,
                                  max_time: Optional[float]) -> None:
        if self.event_log is not None:
            dispatch = self._dispatch
            while not proc._scheduled:
                if not queue:
                    raise SimulationError(
                        f"process {proc.name!r} cannot complete: event queue drained")
                if max_time is not None and queue.peektime() > max_time:
                    raise SimulationError(
                        f"process {proc.name!r} did not finish by t={max_time}")
                when, prio, seq, event = queue.pop()
                dispatch(when, prio, seq, event)
        else:
            # Fast path: _drain stops at whichever comes first — the
            # process finishing (2), the queue draining (0), or the next
            # event lying beyond max_time (1, clock left untouched).
            code = _drain(self, queue,
                          _INF if max_time is None else max_time, False, proc)
            if code == 0:
                raise SimulationError(
                    f"process {proc.name!r} cannot complete: event queue drained")
            if code == 1:
                raise SimulationError(
                    f"process {proc.name!r} did not finish by t={max_time}")

    def defuse(self, process: Process) -> None:
        """Mark a process so its failure is not escalated by the kernel."""
        process._defused = True  # type: ignore[attr-defined]


def _py_drain(engine: Engine, queue, until: float, clamp: bool,
              stopproc: Optional[Process]) -> int:
    """Pure-Python dispatch loop — the exact mirror of ``_simcore.drain``.

    Returns 0 when the queue drained, 1 when the next event lies beyond
    ``until`` (clock clamped to ``until`` if ``clamp``), 2 when
    ``stopproc`` finished.  Keep in sync with :meth:`Engine._dispatch` and
    the C loop; the determinism suite runs against both.
    """
    pop2 = queue.pop2
    peektime = queue.peektime
    while True:
        if stopproc is not None and stopproc._scheduled:
            return 2
        if not queue:
            return 0
        if peektime() > until:
            if clamp:
                queue.now = until
            return 1
        when, event = pop2()
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            if len(callbacks) == 1:
                # The overwhelmingly common case: exactly one waiter
                # (a process resume).  Skip the loop setup.
                callbacks[0](event)
            else:
                for cb in callbacks:
                    cb(event)
        elif callbacks is None:
            raise SimulationError(f"{event!r} dispatched twice")
        elif (event._ok is False and isinstance(event, Process)
                and not event._defused):
            # A failed process with nobody watching it would otherwise
            # vanish silently; escalate unless explicitly defused.
            raise event._value


if _C is not None:
    # Let the C dispatch loop recognise process-resume callbacks (by their
    # __func__) and raise the kernel's own error type.
    _C.configure(Process._resume, Process, SimulationError)
    _drain = _C.drain
else:
    _drain = _py_drain
