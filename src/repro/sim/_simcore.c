/* Simulation kernel hot core: event heap, Timeout and dispatch loop, in C.
 *
 * A campaign is hundreds of thousands of iterations of the same cycle:
 * create a Timeout, push it on the event queue, pop the minimum, run its
 * callbacks, resume a generator.  This module keeps that whole cycle on
 * the C side of the interpreter:
 *
 * EventHeap
 *   Binary heap of (when, priority, seq, event) entries with the three
 *   ordering keys stored *unboxed* (C double / long / long long) beside
 *   the event pointer — sift comparisons are machine compares instead of
 *   Python tuple comparisons.  The heap owns both the sequence counter
 *   (``push`` stamps the next seq itself; seq makes the key total, so pop
 *   order is bit-identical to heapq over equivalent tuples) and the
 *   simulation clock (``now`` advances to each popped entry's time, so
 *   the dispatch paths never box the clock).
 *
 * Timeout
 *   A born-scheduled event: the constructor stamps the fields and sifts
 *   the object into the C heap in one call — no Python ``__init__``
 *   frame.  ``callbacks`` materialises lazily: a watcherless timeout (the
 *   transfer/churn case) never allocates its waiter list, stays invisible
 *   to the cyclic GC (it holds no references that can form a cycle until
 *   a waiter subscribes), and costs one object allocation total.  It
 *   duck-types the Python Event surface the kernel reads (``callbacks``,
 *   ``_ok``, ``_value``, ``_scheduled``, ``triggered``, ``processed``,
 *   ``ok``, ``value``, ``delay``) and its type ``__name__`` is "Timeout"
 *   so determinism event logs match the pure-Python kernel's exactly.
 *
 * drain(engine, heap, until, clamp, stopproc)
 *   The non-logging dispatch loop: pop, advance the clock, run callbacks.
 *   When an event's single waiter is a Process._resume bound method (the
 *   overwhelmingly common case — registered via ``configure()``), the
 *   resume itself runs in C: interrupt check, generator send/throw,
 *   StopIteration -> succeed, subscribe to the yielded event.  Every
 *   branch mirrors the pure-Python ``Process._resume`` line for line; the
 *   determinism suite pins the equivalence.
 *
 * Built on first import by repro.sim.simcore; that module falls back to a
 * pure-Python implementation when no C toolchain is available, and the
 * kernel test suite runs against both.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <math.h>

/* ------------------------------------------------------------------ */
/* Module state (set once by configure(); NULL-safe before that)       */
/* ------------------------------------------------------------------ */

static PyObject *g_resume_func;   /* Process._resume (plain function) */
static PyObject *g_process_type;  /* Process class */
static PyObject *g_simerror;      /* SimulationError class */

static PyObject *str_callbacks, *str__ok, *str__value, *str__scheduled,
    *str__defused, *str__active_process, *str_generator, *str__interrupts,
    *str__target, *str_send, *str_throw, *str_succeed, *str_fail,
    *str__resume_cb, *str__queue, *str_pushdelay, *str_name, *str_pop;

/* ------------------------------------------------------------------ */
/* EventHeap                                                          */
/* ------------------------------------------------------------------ */

typedef struct {
    double when;
    long prio;
    long long seq;
    PyObject *item; /* owned reference to the scheduled event object */
} Entry;

typedef struct {
    PyObject_HEAD
    Entry *arr;
    Py_ssize_t size;
    Py_ssize_t cap;
    long long count; /* total pushes ever == next seq to hand out */
    double now;      /* simulation clock: time of the last popped entry */
} Heap;

static PyTypeObject HeapType;    /* forward */
static PyTypeObject TimeoutType; /* forward */

static inline int
entry_lt(const Entry *a, const Entry *b)
{
    /* Same ordering as Python's tuple compare on (when, prio, seq):
     * simulated times are never NaN, and seq is unique, so a fourth
     * tuple element would never be reached. */
    if (a->when < b->when)
        return 1;
    if (a->when > b->when)
        return 0;
    if (a->prio != b->prio)
        return a->prio < b->prio;
    return a->seq < b->seq;
}

/* Core insert: stamps the next seq, takes its own reference to item. */
static int
heap_insert(Heap *self, double when, long prio, PyObject *item)
{
    if (self->size == self->cap) {
        Py_ssize_t newcap = self->cap ? self->cap * 2 : 64;
        Entry *newarr = PyMem_Realloc(self->arr, newcap * sizeof(Entry));
        if (newarr == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        self->arr = newarr;
        self->cap = newcap;
    }
    Entry e = {when, prio, self->count++, item};
    Py_INCREF(item);
    Py_ssize_t pos = self->size++;
    Entry *arr = self->arr;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (entry_lt(&e, &arr[parent])) {
            arr[pos] = arr[parent];
            pos = parent;
        } else
            break;
    }
    arr[pos] = e;
    return 0;
}

/* Core extract-min into *out; caller owns out->item.  size must be > 0.
 * Advances the heap's clock to the popped entry's time. */
static void
heap_extract(Heap *self, Entry *out)
{
    *out = self->arr[0];
    self->now = out->when;
    Entry last = self->arr[--self->size];
    Py_ssize_t n = self->size;
    if (n > 0) {
        Entry *arr = self->arr;
        Py_ssize_t pos = 0;
        for (;;) {
            Py_ssize_t child = 2 * pos + 1;
            if (child >= n)
                break;
            if (child + 1 < n && entry_lt(&arr[child + 1], &arr[child]))
                child++;
            if (entry_lt(&arr[child], &last)) {
                arr[pos] = arr[child];
                pos = child;
            } else
                break;
        }
        arr[pos] = last;
    }
}

static PyObject *
heap_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    Heap *self = (Heap *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->arr = NULL;
    self->size = 0;
    self->cap = 0;
    self->count = 0;
    self->now = 0.0;
    return (PyObject *)self;
}

static int
heap_traverse(Heap *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->size; i++)
        Py_VISIT(self->arr[i].item);
    return 0;
}

static int
heap_clear_impl(Heap *self)
{
    Py_ssize_t n = self->size;
    self->size = 0;
    for (Py_ssize_t i = 0; i < n; i++)
        Py_CLEAR(self->arr[i].item);
    return 0;
}

static void
heap_dealloc(Heap *self)
{
    PyObject_GC_UnTrack(self);
    heap_clear_impl(self);
    PyMem_Free(self->arr);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
heap_push(Heap *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "push() needs (when, prio, obj)");
        return NULL;
    }
    double when = PyFloat_AsDouble(args[0]);
    if (when == -1.0 && PyErr_Occurred())
        return NULL;
    long prio = PyLong_AsLong(args[1]);
    if (prio == -1 && PyErr_Occurred())
        return NULL;
    if (heap_insert(self, when, prio, args[2]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
heap_pushnow(Heap *self, PyObject *const *args, Py_ssize_t nargs)
{
    /* Schedule at the current clock — the succeed()/fail() hot path. */
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "pushnow() needs (prio, obj)");
        return NULL;
    }
    long prio = PyLong_AsLong(args[0]);
    if (prio == -1 && PyErr_Occurred())
        return NULL;
    if (heap_insert(self, self->now, prio, args[1]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
heap_pushdelay(Heap *self, PyObject *const *args, Py_ssize_t nargs)
{
    /* Schedule at now + delay without boxing the clock. */
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "pushdelay() needs (delay, prio, obj)");
        return NULL;
    }
    double delay = PyFloat_AsDouble(args[0]);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    long prio = PyLong_AsLong(args[1]);
    if (prio == -1 && PyErr_Occurred())
        return NULL;
    if (heap_insert(self, self->now + delay, prio, args[2]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
heap_pop(Heap *self, PyObject *Py_UNUSED(ignored))
{
    if (self->size == 0) {
        PyErr_SetString(PyExc_IndexError, "pop from an empty event heap");
        return NULL;
    }
    Entry e;
    heap_extract(self, &e);
    PyObject *ret = PyTuple_New(4);
    PyObject *when = PyFloat_FromDouble(e.when);
    PyObject *prio = PyLong_FromLong(e.prio);
    PyObject *seq = PyLong_FromLongLong(e.seq);
    if (ret == NULL || when == NULL || prio == NULL || seq == NULL) {
        Py_XDECREF(ret);
        Py_XDECREF(when);
        Py_XDECREF(prio);
        Py_XDECREF(seq);
        Py_DECREF(e.item);
        return NULL;
    }
    PyTuple_SET_ITEM(ret, 0, when);
    PyTuple_SET_ITEM(ret, 1, prio);
    PyTuple_SET_ITEM(ret, 2, seq);
    PyTuple_SET_ITEM(ret, 3, e.item); /* ref transferred */
    return ret;
}

static PyObject *
heap_pop2(Heap *self, PyObject *Py_UNUSED(ignored))
{
    /* (when, event) only — for dispatch loops that don't log. */
    if (self->size == 0) {
        PyErr_SetString(PyExc_IndexError, "pop from an empty event heap");
        return NULL;
    }
    Entry e;
    heap_extract(self, &e);
    PyObject *ret = PyTuple_New(2);
    PyObject *when = PyFloat_FromDouble(e.when);
    if (ret == NULL || when == NULL) {
        Py_XDECREF(ret);
        Py_XDECREF(when);
        Py_DECREF(e.item);
        return NULL;
    }
    PyTuple_SET_ITEM(ret, 0, when);
    PyTuple_SET_ITEM(ret, 1, e.item); /* ref transferred */
    return ret;
}

static PyObject *
heap_peektime(Heap *self, PyObject *Py_UNUSED(ignored))
{
    return PyFloat_FromDouble(self->size ? self->arr[0].when : INFINITY);
}

static Py_ssize_t
heap_len(Heap *self)
{
    return self->size;
}

static int
heap_bool(Heap *self)
{
    return self->size > 0;
}

static PyMethodDef heap_methods[] = {
    {"push", (PyCFunction)(void (*)(void))heap_push, METH_FASTCALL,
     "push(when, prio, obj) -> None  (seq is stamped by the heap)"},
    {"pushnow", (PyCFunction)(void (*)(void))heap_pushnow, METH_FASTCALL,
     "pushnow(prio, obj) -> None  (schedule at the current clock)"},
    {"pushdelay", (PyCFunction)(void (*)(void))heap_pushdelay, METH_FASTCALL,
     "pushdelay(delay, prio, obj) -> None  (schedule at now + delay)"},
    {"pop", (PyCFunction)heap_pop, METH_NOARGS,
     "pop() -> smallest (when, prio, seq, obj) tuple; advances the clock"},
    {"pop2", (PyCFunction)heap_pop2, METH_NOARGS,
     "pop2() -> smallest (when, obj) pair; advances the clock"},
    {"peektime", (PyCFunction)heap_peektime, METH_NOARGS,
     "peektime() -> time of the next entry, or inf when empty"},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef heap_members[] = {
    {"count", T_LONGLONG, offsetof(Heap, count), READONLY,
     "total entries ever pushed (== the next sequence number)"},
    {"now", T_DOUBLE, offsetof(Heap, now), 0,
     "simulation clock: time of the last popped entry"},
    {NULL},
};

static PySequenceMethods heap_as_sequence = {
    .sq_length = (lenfunc)heap_len,
};

static PyNumberMethods heap_as_number = {
    .nb_bool = (inquiry)heap_bool,
};

static PyTypeObject HeapType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "_simcore.EventHeap",
    .tp_doc = "C-accelerated (when, prio, seq, obj) priority queue + clock",
    .tp_basicsize = sizeof(Heap),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = heap_new,
    .tp_dealloc = (destructor)heap_dealloc,
    .tp_traverse = (traverseproc)heap_traverse,
    .tp_clear = (inquiry)heap_clear_impl,
    .tp_methods = heap_methods,
    .tp_members = heap_members,
    .tp_as_sequence = &heap_as_sequence,
    .tp_as_number = &heap_as_number,
};

/* ------------------------------------------------------------------ */
/* Timeout                                                            */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *callbacks; /* NULL = fresh (no waiters yet, untracked);
                          * list while pending; Py_None once dispatched */
    PyObject *value;     /* NULL means None */
    double delay;
} TimeoutObj;

static int
timeout_traverse(TimeoutObj *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callbacks);
    Py_VISIT(self->value);
    return 0;
}

static int
timeout_clear_gc(TimeoutObj *self)
{
    Py_CLEAR(self->callbacks);
    Py_CLEAR(self->value);
    return 0;
}

static void
timeout_dealloc(TimeoutObj *self)
{
    PyObject_GC_UnTrack(self); /* no-op if never tracked */
    Py_XDECREF(self->callbacks);
    Py_XDECREF(self->value);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* Shared constructor body.  ``owner`` may be the Engine (we read its
 * ``_queue``) or the EventHeap itself (the Engine's ``timeout`` factory
 * binds the heap directly to skip one attribute lookup per event). */
static PyObject *
timeout_create(PyObject *owner, double delay, PyObject *value, long prio)
{
    if (delay < 0.0) {
        PyObject *d = PyFloat_FromDouble(delay);
        if (d != NULL) {
            PyErr_Format(PyExc_ValueError, "negative delay: %R", d);
            Py_DECREF(d);
        }
        return NULL;
    }
    PyObject *queue;
    if (Py_TYPE(owner) == &HeapType) {
        queue = owner;
        Py_INCREF(queue);
    } else {
        queue = PyObject_GetAttr(owner, str__queue);
        if (queue == NULL)
            return NULL;
    }

    TimeoutObj *self = PyObject_GC_New(TimeoutObj, &TimeoutType);
    if (self == NULL) {
        Py_DECREF(queue);
        return NULL;
    }
    self->callbacks = NULL;
    if (value == Py_None) {
        self->value = NULL;
    } else {
        Py_INCREF(value);
        self->value = value;
        /* A container value could close a reference cycle through us. */
        if (PyObject_IS_GC(value))
            PyObject_GC_Track(self);
    }
    self->delay = delay;
    /* Otherwise stay untracked: with no callbacks and an atomic value a
     * queued Timeout cannot participate in a cycle.  The callbacks getter
     * tracks us the moment a waiter can subscribe. */

    int rc;
    if (Py_TYPE(queue) == &HeapType) {
        Heap *h = (Heap *)queue;
        rc = heap_insert(h, h->now + delay, prio, (PyObject *)self);
    } else {
        /* Foreign queue (pure-Python fallback objects): generic push. */
        PyObject *d = PyFloat_FromDouble(delay);
        PyObject *p = d ? PyLong_FromLong(prio) : NULL;
        PyObject *r = p ? PyObject_CallMethodObjArgs(
                              queue, str_pushdelay, d, p, self, NULL)
                        : NULL;
        rc = (r == NULL) ? -1 : 0;
        Py_XDECREF(r);
        Py_XDECREF(p);
        Py_XDECREF(d);
    }
    Py_DECREF(queue);
    if (rc < 0) {
        Py_DECREF(self);
        return NULL;
    }
    return (PyObject *)self;
}

/* Fast instantiation path: Timeout(owner, delay[, value[, priority]]). */
static PyObject *
timeout_type_vectorcall(PyObject *type, PyObject *const *args,
                        size_t nargsf, PyObject *kwnames)
{
    Py_ssize_t nargs = PyVectorcall_NARGS(nargsf);
    if (nargs < 2 || nargs > 4) {
        PyErr_SetString(PyExc_TypeError,
                        "Timeout(engine, delay[, value[, priority]])");
        return NULL;
    }
    double delay = PyFloat_AsDouble(args[1]);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    PyObject *value = nargs > 2 ? args[2] : Py_None;
    long prio = 1; /* PRIORITY_NORMAL */
    if (nargs > 3) {
        prio = PyLong_AsLong(args[3]);
        if (prio == -1 && PyErr_Occurred())
            return NULL;
    }
    if (kwnames != NULL) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            PyObject *v = args[nargs + i];
            if (PyUnicode_CompareWithASCIIString(name, "value") == 0) {
                value = v;
            } else if (PyUnicode_CompareWithASCIIString(name, "priority") == 0) {
                prio = PyLong_AsLong(v);
                if (prio == -1 && PyErr_Occurred())
                    return NULL;
            } else {
                PyErr_Format(PyExc_TypeError,
                             "Timeout() got an unexpected keyword argument %R",
                             name);
                return NULL;
            }
        }
    }
    return timeout_create(args[0], delay, value, prio);
}

/* Slow path kept for odd call shapes (e.g. type() tricks). */
static PyObject *
timeout_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"engine", "delay", "value", "priority", NULL};
    PyObject *engine, *value = Py_None;
    double delay;
    long prio = 1;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "Od|Ol", kwlist,
                                     &engine, &delay, &value, &prio))
        return NULL;
    return timeout_create(engine, delay, value, prio);
}

static PyObject *
timeout_get_callbacks(TimeoutObj *self, void *closure)
{
    if (self->callbacks == NULL) {
        /* First access: materialise the waiter list and become visible
         * to the cyclic GC (a subscriber may close a cycle through us). */
        self->callbacks = PyList_New(0);
        if (self->callbacks == NULL)
            return NULL;
        if (!PyObject_GC_IsTracked((PyObject *)self))
            PyObject_GC_Track(self);
    }
    Py_INCREF(self->callbacks);
    return self->callbacks;
}

static int
timeout_set_callbacks(TimeoutObj *self, PyObject *v, void *closure)
{
    if (v == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete callbacks");
        return -1;
    }
    Py_INCREF(v);
    Py_XSETREF(self->callbacks, v);
    if (v != Py_None && !PyObject_GC_IsTracked((PyObject *)self))
        PyObject_GC_Track(self);
    return 0;
}

static PyObject *
timeout_get_true(TimeoutObj *self, void *closure)
{
    /* _ok / _scheduled / triggered / ok: a Timeout is born triggered-ok. */
    Py_RETURN_TRUE;
}

static PyObject *
timeout_get_processed(TimeoutObj *self, void *closure)
{
    return PyBool_FromLong(self->callbacks == Py_None);
}

static PyObject *
timeout_get_value(TimeoutObj *self, void *closure)
{
    PyObject *v = self->value ? self->value : Py_None;
    Py_INCREF(v);
    return v;
}

static PyObject *
timeout_repr(TimeoutObj *self)
{
    PyObject *d = PyFloat_FromDouble(self->delay);
    if (d == NULL)
        return NULL;
    PyObject *r = PyUnicode_FromFormat(
        "<Timeout %s delay=%R at %p>",
        self->callbacks == Py_None ? "processed" : "triggered", d, self);
    Py_DECREF(d);
    return r;
}

static PyGetSetDef timeout_getset[] = {
    {"callbacks", (getter)timeout_get_callbacks,
     (setter)timeout_set_callbacks,
     "pending waiter list; None once dispatched", NULL},
    {"_ok", (getter)timeout_get_true, NULL, "always True", NULL},
    {"_scheduled", (getter)timeout_get_true, NULL, "always True", NULL},
    {"triggered", (getter)timeout_get_true, NULL, "always True", NULL},
    {"ok", (getter)timeout_get_true, NULL, "always True", NULL},
    {"processed", (getter)timeout_get_processed, NULL,
     "True once callbacks have run", NULL},
    {"value", (getter)timeout_get_value, NULL, "the timeout's value", NULL},
    {"_value", (getter)timeout_get_value, NULL, "the timeout's value", NULL},
    {NULL},
};

static PyMemberDef timeout_members[] = {
    {"delay", T_DOUBLE, offsetof(TimeoutObj, delay), READONLY,
     "delay in simulated seconds"},
    {NULL},
};

static PyTypeObject TimeoutType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    /* __name__ must be "Timeout": determinism event logs record the type
     * name and must match the pure-Python kernel's exactly. */
    .tp_name = "_simcore.Timeout",
    .tp_doc = "Born-scheduled delay event (C fast path)",
    .tp_basicsize = sizeof(TimeoutObj),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = timeout_new,
    .tp_vectorcall = timeout_type_vectorcall,
    .tp_dealloc = (destructor)timeout_dealloc,
    .tp_traverse = (traverseproc)timeout_traverse,
    .tp_clear = (inquiry)timeout_clear_gc,
    .tp_repr = (reprfunc)timeout_repr,
    .tp_getset = timeout_getset,
    .tp_members = timeout_members,
};

/* ------------------------------------------------------------------ */
/* C resume: the fused Process._resume fast path                       */
/* ------------------------------------------------------------------ */

/* Raise SimulationError (falls back to RuntimeError pre-configure). */
static void
raise_simerror(const char *fmt, PyObject *obj)
{
    PyErr_Format(g_simerror ? g_simerror : PyExc_RuntimeError, fmt, obj);
}

/* Mirror of Process._resume.  Returns 0 on success, -1 with an exception
 * set on failure.  Every branch corresponds to a line of the Python
 * implementation in engine.py — keep them in sync. */
static int
c_resume(PyObject *engine, PyObject *process, PyObject *event)
{
    int result = -1;
    PyObject *gen = NULL, *interrupts = NULL, *next = NULL;
    Py_INCREF(event); /* we re-bind `event` while chaining */

    if (PyObject_SetAttr(engine, str__active_process, process) < 0)
        goto done;
    gen = PyObject_GetAttr(process, str_generator);
    if (gen == NULL)
        goto reset;
    interrupts = PyObject_GetAttr(process, str__interrupts);
    if (interrupts == NULL || !PyList_Check(interrupts))
        goto reset;

    for (;;) {
        /* -- advance the generator ---------------------------------- */
        if (PyList_GET_SIZE(interrupts) > 0) {
            PyObject *intr = PyList_GetItem(interrupts, 0); /* borrowed */
            Py_XINCREF(intr);
            if (intr == NULL || PySequence_DelItem(interrupts, 0) < 0) {
                Py_XDECREF(intr);
                goto reset;
            }
            next = PyObject_CallMethodOneArg(gen, str_throw, intr);
            Py_DECREF(intr);
        } else {
            int ok;
            PyObject *value;
            if (Py_TYPE(event) == &TimeoutType) {
                ok = 1;
                value = ((TimeoutObj *)event)->value;
                value = value ? value : Py_None;
                Py_INCREF(value);
            } else {
                PyObject *okobj = PyObject_GetAttr(event, str__ok);
                if (okobj == NULL)
                    goto reset;
                ok = PyObject_IsTrue(okobj);
                Py_DECREF(okobj);
                if (ok < 0)
                    goto reset;
                value = PyObject_GetAttr(event, str__value);
                if (value == NULL)
                    goto reset;
            }
            next = PyObject_CallMethodOneArg(gen, ok ? str_send : str_throw,
                                             value);
            Py_DECREF(value);
        }

        if (next == NULL) {
            /* -- generator finished or raised ------------------------ */
            if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
                PyObject *etype, *evalue, *etb, *stopval, *r;
                PyErr_Fetch(&etype, &evalue, &etb);
                PyErr_NormalizeException(&etype, &evalue, &etb);
                stopval = evalue ? PyObject_GetAttrString(evalue, "value")
                                 : Py_NewRef(Py_None);
                Py_XDECREF(etype);
                Py_XDECREF(evalue);
                Py_XDECREF(etb);
                if (stopval == NULL)
                    goto reset;
                r = PyObject_CallMethodOneArg(process, str_succeed, stopval);
                Py_DECREF(stopval);
                if (r == NULL)
                    goto reset;
                Py_DECREF(r);
                result = 0;
                goto reset;
            }
            if (PyErr_ExceptionMatches(PyExc_KeyboardInterrupt) ||
                PyErr_ExceptionMatches(PyExc_SystemExit))
                goto reset; /* propagate */
            {
                /* Unhandled in-process exception: fail the process event;
                 * escalation happens at dispatch time if nobody watches. */
                PyObject *etype, *evalue, *etb, *r;
                PyErr_Fetch(&etype, &evalue, &etb);
                PyErr_NormalizeException(&etype, &evalue, &etb);
                if (etb != NULL)
                    PyException_SetTraceback(evalue, etb);
                Py_XDECREF(etype);
                Py_XDECREF(etb);
                if (evalue == NULL)
                    goto reset;
                r = PyObject_CallMethodOneArg(process, str_fail, evalue);
                Py_DECREF(evalue);
                if (r == NULL)
                    goto reset;
                Py_DECREF(r);
                result = 0;
                goto reset;
            }
        }

        /* -- the generator yielded `next` --------------------------- */
        if (Py_TYPE(next) == &TimeoutType) {
            TimeoutObj *t = (TimeoutObj *)next;
            if (t->callbacks == Py_None) {
                /* Already fired: loop around synchronously. */
                Py_SETREF(event, next);
                next = NULL;
                continue;
            }
            if (t->callbacks == NULL) {
                t->callbacks = PyList_New(0);
                if (t->callbacks == NULL)
                    goto reset;
                if (!PyObject_GC_IsTracked(next))
                    PyObject_GC_Track(next);
            }
            PyObject *cb = PyObject_GetAttr(process, str__resume_cb);
            if (cb == NULL)
                goto reset;
            int rc = PyList_Append(t->callbacks, cb);
            Py_DECREF(cb);
            if (rc < 0)
                goto reset;
        } else {
            PyObject *cbs = PyObject_GetAttr(next, str_callbacks);
            if (cbs == NULL) {
                if (!PyErr_ExceptionMatches(PyExc_AttributeError))
                    goto reset;
                PyErr_Clear();
                raise_simerror("process yielded %R, not an Event", next);
                goto reset;
            }
            if (cbs == Py_None) {
                Py_DECREF(cbs);
                Py_SETREF(event, next);
                next = NULL;
                continue;
            }
            PyObject *cb = PyObject_GetAttr(process, str__resume_cb);
            if (cb == NULL) {
                Py_DECREF(cbs);
                goto reset;
            }
            int rc = PyList_Check(cbs)
                         ? PyList_Append(cbs, cb)
                         : -2;
            if (rc == -2) {
                PyObject *r = PyObject_CallMethod(cbs, "append", "O", cb);
                rc = (r == NULL) ? -1 : 0;
                Py_XDECREF(r);
            }
            Py_DECREF(cb);
            Py_DECREF(cbs);
            if (rc < 0)
                goto reset;
        }
        if (PyObject_SetAttr(process, str__target, next) < 0)
            goto reset;
        Py_CLEAR(next);
        result = 0;
        goto reset;
    }

reset:
    /* finally: engine._active_process = None (preserve any live error) */
    {
        PyObject *etype, *evalue, *etb;
        PyErr_Fetch(&etype, &evalue, &etb);
        if (PyObject_SetAttr(engine, str__active_process, Py_None) < 0) {
            if (etype == NULL) {
                result = -1;
            } else {
                PyErr_Clear();
            }
            if (etype != NULL)
                PyErr_Restore(etype, evalue, etb);
        } else if (etype != NULL) {
            PyErr_Restore(etype, evalue, etb);
        }
    }
done:
    Py_XDECREF(next);
    Py_XDECREF(interrupts);
    Py_XDECREF(gen);
    Py_DECREF(event);
    return result;
}

/* Invoke one dispatched event's callback list (already detached). */
static int
run_callbacks(PyObject *engine, PyObject *cbs, PyObject *event)
{
    if (PyList_GET_SIZE(cbs) == 1) {
        PyObject *cb = PyList_GET_ITEM(cbs, 0); /* borrowed; cbs keeps it */
        if (g_resume_func != NULL && PyMethod_Check(cb) &&
            PyMethod_GET_FUNCTION(cb) == g_resume_func)
            return c_resume(engine, PyMethod_GET_SELF(cb), event);
        PyObject *r = PyObject_CallOneArg(cb, event);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(cbs); i++) {
        PyObject *cb = PyList_GET_ITEM(cbs, i);
        Py_INCREF(cb);
        PyObject *r = PyObject_CallOneArg(cb, event);
        Py_DECREF(cb);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* drain(): the non-logging dispatch loop                              */
/* ------------------------------------------------------------------ */

/* drain(engine, heap, until, clamp, stopproc) -> int
 *   0: queue drained empty
 *   1: next event lies beyond `until` (clock clamped to until if clamp)
 *   2: stopproc._scheduled became true
 * Mirrors Engine.run / Engine.run_until_complete fast paths. */
static PyObject *
simcore_drain(PyObject *mod, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 5) {
        PyErr_SetString(PyExc_TypeError,
                        "drain(engine, heap, until, clamp, stopproc)");
        return NULL;
    }
    PyObject *engine = args[0];
    if (Py_TYPE(args[1]) != &HeapType) {
        PyErr_SetString(PyExc_TypeError, "drain() needs a C EventHeap");
        return NULL;
    }
    Heap *heap = (Heap *)args[1];
    double until = PyFloat_AsDouble(args[2]);
    if (until == -1.0 && PyErr_Occurred())
        return NULL;
    int clamp = PyObject_IsTrue(args[3]);
    if (clamp < 0)
        return NULL;
    PyObject *stopproc = args[4] == Py_None ? NULL : args[4];

    for (;;) {
        if (stopproc != NULL) {
            PyObject *sched = PyObject_GetAttr(stopproc, str__scheduled);
            if (sched == NULL)
                return NULL;
            int done = PyObject_IsTrue(sched);
            Py_DECREF(sched);
            if (done < 0)
                return NULL;
            if (done)
                return PyLong_FromLong(2);
        }
        if (heap->size == 0)
            return PyLong_FromLong(0);
        if (heap->arr[0].when > until) {
            if (clamp)
                heap->now = until;
            return PyLong_FromLong(1);
        }
        Entry e;
        heap_extract(heap, &e);
        PyObject *event = e.item; /* we own this ref */

        if (Py_TYPE(event) == &TimeoutType) {
            TimeoutObj *t = (TimeoutObj *)event;
            PyObject *cbs = t->callbacks;
            if (cbs == NULL) {
                /* Watcherless timeout: mark processed, nothing to run. */
                t->callbacks = Py_NewRef(Py_None);
                Py_DECREF(event);
                continue;
            }
            if (cbs == Py_None) {
                raise_simerror("%R dispatched twice", event);
                Py_DECREF(event);
                return NULL;
            }
            t->callbacks = Py_NewRef(Py_None); /* we own old cbs ref */
            if (PyList_GET_SIZE(cbs) > 0) {
                int rc = run_callbacks(engine, cbs, event);
                Py_DECREF(cbs);
                Py_DECREF(event);
                if (rc < 0)
                    return NULL;
            } else {
                /* Empty waiter list; a Timeout is always ok, so no
                 * escalation check is needed. */
                Py_DECREF(cbs);
                Py_DECREF(event);
            }
            continue;
        }

        /* Generic event (Event / Process / conditions). */
        PyObject *cbs = PyObject_GetAttr(event, str_callbacks);
        if (cbs == NULL) {
            Py_DECREF(event);
            return NULL;
        }
        if (cbs == Py_None) {
            raise_simerror("%R dispatched twice", event);
            Py_DECREF(cbs);
            Py_DECREF(event);
            return NULL;
        }
        if (PyObject_SetAttr(event, str_callbacks, Py_None) < 0) {
            Py_DECREF(cbs);
            Py_DECREF(event);
            return NULL;
        }
        Py_ssize_t ncbs = PyList_Check(cbs) ? PyList_GET_SIZE(cbs)
                                            : PyObject_Length(cbs);
        if (ncbs < 0) {
            Py_DECREF(cbs);
            Py_DECREF(event);
            return NULL;
        }
        if (ncbs > 0) {
            int rc;
            if (PyList_Check(cbs)) {
                rc = run_callbacks(engine, cbs, event);
            } else {
                PyObject *it = PyObject_GetIter(cbs);
                rc = it == NULL ? -1 : 0;
                if (it != NULL) {
                    PyObject *cb;
                    while ((cb = PyIter_Next(it)) != NULL) {
                        PyObject *r = PyObject_CallOneArg(cb, event);
                        Py_DECREF(cb);
                        if (r == NULL) {
                            rc = -1;
                            break;
                        }
                        Py_DECREF(r);
                    }
                    if (PyErr_Occurred())
                        rc = -1;
                    Py_DECREF(it);
                }
            }
            Py_DECREF(cbs);
            Py_DECREF(event);
            if (rc < 0)
                return NULL;
            continue;
        }
        Py_DECREF(cbs);

        /* Failed process with nobody watching: escalate unless defused. */
        {
            PyObject *okobj = PyObject_GetAttr(event, str__ok);
            if (okobj == NULL) {
                Py_DECREF(event);
                return NULL;
            }
            int is_false = (okobj == Py_False);
            Py_DECREF(okobj);
            if (is_false && g_process_type != NULL) {
                int isproc = PyObject_IsInstance(event, g_process_type);
                if (isproc < 0) {
                    Py_DECREF(event);
                    return NULL;
                }
                if (isproc) {
                    PyObject *defused = PyObject_GetAttr(event, str__defused);
                    if (defused == NULL) {
                        Py_DECREF(event);
                        return NULL;
                    }
                    int skip = PyObject_IsTrue(defused);
                    Py_DECREF(defused);
                    if (skip < 0) {
                        Py_DECREF(event);
                        return NULL;
                    }
                    if (!skip) {
                        PyObject *exc = PyObject_GetAttr(event, str__value);
                        Py_DECREF(event);
                        if (exc == NULL)
                            return NULL;
                        PyErr_SetObject((PyObject *)Py_TYPE(exc), exc);
                        Py_DECREF(exc);
                        return NULL;
                    }
                }
            }
            Py_DECREF(event);
        }
    }
}

/* ------------------------------------------------------------------ */
/* configure()                                                         */
/* ------------------------------------------------------------------ */

static PyObject *
simcore_configure(PyObject *mod, PyObject *args)
{
    PyObject *resume, *process, *simerror;
    if (!PyArg_ParseTuple(args, "OOO", &resume, &process, &simerror))
        return NULL;
    Py_XSETREF(g_resume_func, Py_NewRef(resume));
    Py_XSETREF(g_process_type, Py_NewRef(process));
    Py_XSETREF(g_simerror, Py_NewRef(simerror));
    Py_RETURN_NONE;
}

static PyMethodDef simcore_methods[] = {
    {"drain", (PyCFunction)(void (*)(void))simcore_drain, METH_FASTCALL,
     "drain(engine, heap, until, clamp, stopproc) -> int stop code"},
    {"configure", simcore_configure, METH_VARARGS,
     "configure(resume_func, process_type, simerror_type)"},
    {NULL, NULL, 0, NULL},
};

static PyModuleDef simcore_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_simcore",
    .m_doc = "C hot core (event heap + Timeout + dispatch) for repro.sim",
    .m_size = -1,
    .m_methods = simcore_methods,
};

PyMODINIT_FUNC
PyInit__simcore(void)
{
#define INTERN(var, s)                              \
    do {                                            \
        var = PyUnicode_InternFromString(s);        \
        if (var == NULL)                            \
            return NULL;                            \
    } while (0)
    INTERN(str_callbacks, "callbacks");
    INTERN(str__ok, "_ok");
    INTERN(str__value, "_value");
    INTERN(str__scheduled, "_scheduled");
    INTERN(str__defused, "_defused");
    INTERN(str__active_process, "_active_process");
    INTERN(str_generator, "generator");
    INTERN(str__interrupts, "_interrupts");
    INTERN(str__target, "_target");
    INTERN(str_send, "send");
    INTERN(str_throw, "throw");
    INTERN(str_succeed, "succeed");
    INTERN(str_fail, "fail");
    INTERN(str__resume_cb, "_resume_cb");
    INTERN(str__queue, "_queue");
    INTERN(str_pushdelay, "pushdelay");
    INTERN(str_name, "name");
    INTERN(str_pop, "pop");
#undef INTERN
    if (PyType_Ready(&HeapType) < 0 || PyType_Ready(&TimeoutType) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&simcore_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&HeapType);
    if (PyModule_AddObject(m, "EventHeap", (PyObject *)&HeapType) < 0) {
        Py_DECREF(&HeapType);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&TimeoutType);
    if (PyModule_AddObject(m, "Timeout", (PyObject *)&TimeoutType) < 0) {
        Py_DECREF(&TimeoutType);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
