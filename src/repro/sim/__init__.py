"""Discrete-event simulation kernel (the Grid'5000 substitute's substrate).

Public surface:

- :class:`Engine`, :class:`Event`, :class:`Process`, :class:`Timeout`,
  :class:`AnyOf`, :class:`AllOf`, :class:`Interrupt` — the event kernel;
- :class:`Resource`, :class:`Store`, :class:`Container` — shared resources;
- :class:`Host`, :class:`Link`, :class:`Network` — the platform graph;
- :class:`RandomStreams` — deterministic named random streams.
"""

from .engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
)
from .network import Host, Link, Network, NetworkError
from .resources import Container, Request, Resource, Store
from .rng import RandomStreams, stable_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Engine",
    "Event",
    "Host",
    "Interrupt",
    "Link",
    "Network",
    "NetworkError",
    "Process",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "RandomStreams",
    "Request",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "stable_seed",
]
