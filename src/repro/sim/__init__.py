"""Discrete-event simulation kernel (the Grid'5000 substitute's substrate).

Public surface:

- :class:`Engine`, :class:`Event`, :class:`Process`, :class:`Timeout`,
  :class:`AnyOf`, :class:`AllOf`, :class:`Interrupt` — the event kernel;
- :class:`Resource`, :class:`Store`, :class:`Container` — shared resources;
- :class:`Host`, :class:`Link`, :class:`Network` — the platform graph;
- :class:`Outage`, :class:`FailureInjector` — crash/restart outage driver;
- :class:`RandomStreams` — deterministic named random streams.
"""

from .engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
)
from .failures import FailureInjector, Outage, OutageRecord
from .network import Host, Link, Network, NetworkError
from .resources import Container, Request, Resource, Store
from .rng import RandomStreams, stable_seed
from .traffic import (
    DEFAULT_MIX,
    Arrival,
    RequestClass,
    TrafficConfig,
    generate_arrivals,
    zipf_weights,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Arrival",
    "Container",
    "DEFAULT_MIX",
    "Engine",
    "Event",
    "FailureInjector",
    "Host",
    "Interrupt",
    "Link",
    "Network",
    "NetworkError",
    "Outage",
    "OutageRecord",
    "Process",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "RandomStreams",
    "Request",
    "RequestClass",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "TrafficConfig",
    "generate_arrivals",
    "stable_seed",
    "zipf_weights",
]
