"""Crash-and-restart process model for hosts and servers.

The grid experience behind the paper (Grid'5000 best-effort nodes, the CMS
testbeds) is that nodes *disappear* — they do not drain gracefully.  This
module models that as timed outages driven against any *victim* object
exposing ``crash()`` and ``restart()`` (the SeD implements both): at the
scheduled instant the injector calls ``crash()``, which is expected to
interrupt every in-flight activity (``execute()`` claims, transfers, RPC
handlers), and after the outage duration it calls ``restart()``, after
which the victim is expected to re-join the system on its own (the SeD
re-registers with its LA).

Outages can be written down explicitly (:class:`Outage`) for unit tests, or
drawn from seeded random streams by higher layers (the services workflow
does this) — the injector itself is deliberately deterministic: given the
same outage list it produces the same interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Sequence

from .engine import Engine, Event

__all__ = ["Outage", "OutageRecord", "FailureInjector"]


@dataclass(frozen=True)
class Outage:
    """One planned outage: crash at ``at``, restart ``duration`` later."""

    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"outage time must be non-negative, got {self.at}")
        if self.duration <= 0:
            raise ValueError(
                f"outage duration must be positive, got {self.duration}")


@dataclass
class OutageRecord:
    """What actually happened: one executed crash/restart cycle."""

    name: str
    down_at: float
    up_at: float

    @property
    def downtime(self) -> float:
        return self.up_at - self.down_at


class FailureInjector:
    """Drives scheduled outages against crash/restart-capable victims."""

    def __init__(self, engine: Engine):
        self.engine = engine
        #: Completed crash/restart cycles, in restart order.
        self.history: List[OutageRecord] = []
        self._pending = 0

    @property
    def pending(self) -> int:
        """Outages scheduled but not yet completed (restart still ahead)."""
        return self._pending

    def schedule(self, victim: Any, outages: Sequence[Outage]) -> None:
        """Spawn one driver process per outage of ``victim``.

        ``victim`` needs ``crash()``/``restart()`` methods and a ``name``
        attribute; overlapping outages of the same victim are a caller bug
        (``crash()`` on an already-crashed victim may raise).
        """
        name = getattr(victim, "name", repr(victim))
        for outage in sorted(outages, key=lambda o: o.at):
            self._pending += 1
            self.engine.process(self._drive(victim, name, outage),
                                name=f"outage:{name}@{outage.at:g}")

    def _drive(self, victim: Any, name: str,
               outage: Outage) -> Generator[Event, Any, None]:
        yield self.engine.timeout(outage.at)
        down_at = self.engine.now
        victim.crash()
        yield self.engine.timeout(outage.duration)
        victim.restart()
        self.history.append(OutageRecord(name, down_at, self.engine.now))
        self._pending -= 1
