"""Network model: hosts, links, routes and timed data transfers.

The model is the standard latency + bandwidth one used by grid simulators
(SimGrid's simple LV08-style model without cross-traffic):

    transfer_time(route, size) = sum(link.latency) + size / min(link.bandwidth)

Optionally each link can enforce *serialization* (``Link(shared=True)``): a
link then processes at most ``max_concurrent`` flows at a time and further
flows queue FIFO.  The Grid'5000 reproduction uses non-shared links — the
paper's transfers (namelists, tarballs) are small compared to RENATER
capacity — but tests exercise both modes.

The topology is a graph of :class:`Host` objects; routing is shortest-path
by latency, computed once and cached (the reproduction topologies are small
and static).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Dict, Generator, List, Optional, Tuple

from .engine import Engine, Event
from .resources import Resource

__all__ = ["Host", "Link", "Network", "NetworkError"]


class NetworkError(RuntimeError):
    """Raised for routing errors (unknown host, unreachable destination)."""


class Host:
    """A machine (or an entry point of a cluster) attached to the network.

    ``speed`` is the relative compute speed used by cost models: a workload
    of ``w`` normalized operations takes ``w / speed`` seconds of CPU time.
    ``cores`` bounds concurrent compute tasks via the ``cpu`` resource.
    """

    def __init__(self, engine: Engine, name: str, speed: float = 1.0,
                 cores: int = 1, properties: Optional[Dict[str, Any]] = None):
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        self.engine = engine
        self.name = name
        self.speed = float(speed)
        self.cores = cores
        self.cpu = Resource(engine, capacity=cores)
        self.properties: Dict[str, Any] = dict(properties or {})

    def compute_time(self, work: float) -> float:
        """Seconds needed for ``work`` normalized operations on this host."""
        if work < 0:
            raise ValueError("work must be non-negative")
        return work / self.speed

    def execute(self, work: float) -> Generator[Event, Any, None]:
        """Process helper: occupy one core for the duration of ``work``."""
        req = yield from self.cpu.acquire()
        try:
            yield self.engine.timeout(self.compute_time(work))
        finally:
            self.cpu.release(req)

    def __repr__(self) -> str:
        return f"Host({self.name!r}, speed={self.speed})"


class Link:
    """A network link with latency (s) and bandwidth (bytes/s)."""

    #: Global creation order — the deterministic total order in which
    #: :meth:`Network.transfer` acquires shared-link slots (lock ordering
    #: prevents two crossing transfers from deadlocking on each other).
    _uids = itertools.count()

    def __init__(self, engine: Engine, name: str, latency: float,
                 bandwidth: float, shared: bool = False, max_concurrent: int = 1,
                 wan: bool = False):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.engine = engine
        self.name = name
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.shared = shared
        #: Wide-area link (site uplink): transfers crossing it count toward
        #: :attr:`Network.bytes_wan`, the quantity data placement minimizes.
        self.wan = wan
        self._uid = next(Link._uids)
        self._slot = Resource(engine, capacity=max_concurrent) if shared else None

    def __repr__(self) -> str:
        return (f"Link({self.name!r}, lat={self.latency * 1e3:.3f}ms, "
                f"bw={self.bandwidth / 1e6:.1f}MB/s)")


class Network:
    """A static topology of hosts and links with cached shortest-path routes."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self._hosts: Dict[str, Host] = {}
        self._adj: Dict[str, List[Tuple[str, Link]]] = {}
        self._route_cache: Dict[Tuple[str, str], List[Link]] = {}
        #: Per-pair derived route metrics: (latency_sum, bottleneck_bw,
        #: shared_links_in_lock_order, crosses_wan).  Lets transfer_time()
        #: and transfer() skip the per-call sum/min/sort on the RPC hot path.
        self._route_info: Dict[Tuple[str, str],
                               Tuple[float, float, Tuple[Link, ...], bool]] = {}
        #: Plain traffic totals (no events, no obs dependency): every byte
        #: moved by :meth:`transfer`, and the subset that crossed a WAN link.
        self.bytes_total = 0
        self.bytes_wan = 0

    # -- topology construction ------------------------------------------------

    def add_host(self, host: Host) -> Host:
        if host.name in self._hosts:
            raise NetworkError(f"duplicate host {host.name!r}")
        self._hosts[host.name] = host
        self._adj[host.name] = []
        return host

    def host(self, engine_name: str) -> Host:
        try:
            return self._hosts[engine_name]
        except KeyError:
            raise NetworkError(f"unknown host {engine_name!r}") from None

    @property
    def hosts(self) -> List[Host]:
        return list(self._hosts.values())

    def connect(self, a: str, b: str, link: Link) -> Link:
        """Attach a bidirectional link between hosts ``a`` and ``b``."""
        for name in (a, b):
            if name not in self._hosts:
                raise NetworkError(f"unknown host {name!r}")
        self._adj[a].append((b, link))
        self._adj[b].append((a, link))
        self._route_cache.clear()
        self._route_info.clear()
        return link

    # -- routing ----------------------------------------------------------------

    def route(self, src: str, dst: str) -> List[Link]:
        """Latency-shortest path between two hosts (cached).

        A cache miss runs one full Dijkstra from ``src`` and caches the
        route to *every* reachable host (plus the symmetric ``(dst, src)``
        reverses) — all-pairs precompute amortized behind the existing
        cache, so a fabric of N endpoints pays N single-source expansions
        instead of N² pairwise searches.
        """
        if src == dst:
            return []
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return cached
        if src not in self._hosts or dst not in self._hosts:
            raise NetworkError(f"unknown endpoint in route {src!r} -> {dst!r}")
        self._expand_source(src)
        cached = self._route_cache.get((src, dst))
        if cached is None:
            raise NetworkError(f"no route from {src!r} to {dst!r}")
        return cached

    def _expand_source(self, src: str) -> None:
        """Dijkstra from ``src`` (by cumulative latency) over the whole
        component; fills the route cache for every reachable target."""
        dist: Dict[str, float] = {src: 0.0}
        prev: Dict[str, Tuple[str, Link]] = {}
        heap: List[Tuple[float, str]] = [(0.0, src)]
        visited = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for neigh, link in self._adj[node]:
                nd = d + link.latency
                if nd < dist.get(neigh, math.inf):
                    dist[neigh] = nd
                    prev[neigh] = (node, link)
                    heapq.heappush(heap, (nd, neigh))
        cache = self._route_cache
        for node in visited:
            if node == src or (src, node) in cache:
                continue
            path: List[Link] = []
            cur = node
            while cur != src:
                pnode, link = prev[cur]
                path.append(link)
                cur = pnode
            path.reverse()
            cache[(src, node)] = path
            # Symmetric topology: cache the reverse too (first write wins,
            # matching the pre-existing pairwise behaviour on latency ties).
            cache.setdefault((node, src), list(reversed(path)))

    def precompute_routes(self) -> int:
        """Warm the route cache for every host pair; returns #cached routes.

        Deployments with a static topology call this once so no simulation
        process ever pays a Dijkstra mid-run.
        """
        for name in self._hosts:
            self._expand_source(name)
        return len(self._route_cache)

    def _route_metrics(self, src: str, dst: str) -> Tuple[float, float, Tuple[Link, ...], bool]:
        """Cached ``(latency_sum, bottleneck_bw, shared_links, crosses_wan)``
        per pair.

        ``shared_links`` is deduped and sorted by ``Link._uid`` — the global
        lock order :meth:`transfer` acquires slots in.  ``bottleneck_bw`` is
        0.0 for the empty self-route.
        """
        info = self._route_info.get((src, dst))
        if info is None:
            links = self.route(src, dst)
            if links:
                shared: Dict[int, Link] = {}
                for link in links:
                    if link._slot is not None:
                        shared[link._uid] = link
                info = (sum(l.latency for l in links),
                        min(l.bandwidth for l in links),
                        tuple(shared[uid] for uid in sorted(shared)),
                        any(l.wan for l in links))
            else:
                info = (0.0, 0.0, (), False)
            self._route_info[(src, dst)] = info
        return info

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        """Analytic transfer duration (ignores link sharing queues).

        Contract with :meth:`transfer`: on a route with **no contended
        shared link** the two agree *exactly* — both evaluate the same
        ``sum(latency) + nbytes / min(bandwidth)`` expression, so cost
        models built on ``transfer_time`` predict the slotted transfer to
        the bit.  On shared links :meth:`transfer` additionally waits for a
        slot, so it is always ``>= transfer_time``; the analytic value is a
        lower bound, never an unrelated number.  (A property test pins this
        contract.)
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        latency, bottleneck, _, _ = self._route_metrics(src, dst)
        if bottleneck == 0.0:  # empty self-route
            return 0.0
        return latency + nbytes / bottleneck

    def transfer(self, src: str, dst: str, nbytes: int) -> Generator[Event, Any, float]:
        """Process helper: perform a timed transfer, honouring shared links.

        Shared-link slots are claimed in the links' global creation order
        (``Link._uid``), not in path order: two crossing transfers that
        traverse the same shared links in opposite directions would
        otherwise each grab its first link and deadlock waiting for the
        other's.  With a total lock order the second transfer queues on the
        first contended link and both complete.

        Returns the transfer duration actually experienced (equal to
        :meth:`transfer_time` when no shared link on the route is
        contended — see the contract there).
        """
        start = self.engine.now
        latency, bottleneck, shared, wan = self._route_metrics(src, dst)
        if bottleneck == 0.0:  # empty self-route
            return 0.0
        self.bytes_total += nbytes
        if wan:
            self.bytes_wan += nbytes
        if not shared:
            # Fast path: no shared link on the route, so the duration is the
            # analytic one — a single timeout, no slot bookkeeping.
            yield self.engine.timeout(latency + nbytes / bottleneck)
            self._observe_transfer(nbytes, start)
            return self.engine.now - start
        claims = []
        try:
            for link in shared:
                req = yield from link._slot.acquire()
                claims.append((link, req))
            yield self.engine.timeout(latency + nbytes / bottleneck)
        finally:
            for link, req in claims:
                link._slot.release(req)
        self._observe_transfer(nbytes, start)
        return self.engine.now - start

    def _observe_transfer(self, nbytes: int, start: float) -> None:
        """Record one completed transfer into the engine's metrics registry
        (bytes distribution + wall seconds spent on the wire)."""
        obs = self.engine.obs
        if obs.enabled:
            now = self.engine.now
            obs.metrics.histogram("network.transfer_bytes").observe(
                float(nbytes), start)
            obs.metrics.histogram("network.transfer_seconds").observe(
                now - start, now)
