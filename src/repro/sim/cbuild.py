"""Shared build-on-first-import machinery for the repo's C hot cores.

Both compiled extensions (`sim/_simcore.c` — the event heap, and
`ramses/_physcore.c` — the physics kernels) follow the same contract: a
single C source file shipped in the package, compiled with whatever ``cc``
the box has the first time it is imported, cached under a ``_build``
directory next to the source (or the system temp dir when the package
tree is read-only), keyed by a sha1 of the source so edits rebuild and
stale caches are never loaded.  Anything going wrong — no compiler, no
Python headers, sandboxed filesystem, a failed smoke test — degrades
silently to the caller's pure-Python mirror.

``REPRO_PURE_PY=1`` is honoured by the *callers* (they skip the build
entirely), so one switch forces every compiled path in the package onto
its Python mirror at once.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import subprocess
import sysconfig
import tempfile
from typing import Callable, Optional

__all__ = ["build_and_load"]


def build_and_load(src: str, name: str,
                   smoke: Optional[Callable[[object], bool]] = None):
    """Compile ``src`` into an extension named ``name`` and import it.

    Parameters
    ----------
    src : path to the single-file C source (its ``PyInit_<name>`` must
        match ``name``)
    name : module name of the extension
    smoke : optional validator run on the freshly loaded module; return
        False (or raise) to reject the build and fall back

    Returns the loaded module, or None when anything prevents using the
    compiled implementation.
    """
    if not os.path.exists(src):
        return None
    with open(src, "rb") as fh:
        tag = hashlib.sha1(fh.read()).hexdigest()[:12]
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    soname = f"{name}_{tag}{suffix}"

    so_path = None
    for cache_dir in (os.path.join(os.path.dirname(src), "_build"),
                      os.path.join(tempfile.gettempdir(), f"repro{name}")):
        candidate = os.path.join(cache_dir, soname)
        if os.path.exists(candidate):
            so_path = candidate
            break
        try:
            os.makedirs(cache_dir, exist_ok=True)
            include = sysconfig.get_paths()["include"]
            fd, tmp = tempfile.mkstemp(suffix=suffix, dir=cache_dir)
            os.close(fd)
            cmd = [os.environ.get("CC", "cc"), "-O2", "-fPIC", "-shared",
                   f"-I{include}", src, "-o", tmp]
            proc = subprocess.run(cmd, capture_output=True, timeout=120)
            if proc.returncode != 0:
                os.unlink(tmp)
                continue
            os.replace(tmp, candidate)  # atomic: concurrent builders race safely
            so_path = candidate
            break
        except (OSError, subprocess.SubprocessError):
            continue
    if so_path is None:
        return None

    spec = importlib.util.spec_from_file_location(name, so_path)
    if spec is None or spec.loader is None:
        return None
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)

    if smoke is not None and not smoke(mod):
        return None
    return mod
