"""Open-loop traffic generation: Poisson arrivals over a Zipf population.

Production grids (the CMS testbeds of PAPERS.md) are not driven by one
patient client submitting 100 zooms — they see an *open-loop* stream of
requests from a large, skewed client population: arrivals do not wait for
earlier requests to finish, so offered load is an independent knob and the
system genuinely saturates.  This module generates that stream
deterministically:

* **Poisson arrivals** — exponential inter-arrival gaps at a configured
  aggregate rate, truncated to the experiment duration;
* **Zipf-skewed population** — each arrival is attributed to one of
  ``n_clients`` logical clients with probability ∝ 1/rank^s (a handful of
  heavy hitters, a long tail of occasional users), scaling to 10^5–10^6
  clients because the attribution is a single vectorized searchsorted;
* **heterogeneous mix** — each arrival draws a :class:`RequestClass`
  (service name + normalized work) by weight, so interactive probes and
  long survey jobs share the same queues.

Everything is drawn from named :class:`~repro.sim.rng.RandomStreams`, so a
given (seed, config) pair yields the same arrival list on every run and in
every worker process — the determinism the load experiments pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .rng import RandomStreams

__all__ = ["RequestClass", "DEFAULT_MIX", "TrafficConfig", "Arrival",
           "zipf_weights", "generate_arrivals", "percentile", "summarize"]


@dataclass(frozen=True)
class RequestClass:
    """One kind of request in the offered mix."""

    #: Service name the request targets (each class is its own service).
    name: str
    #: Relative share of arrivals drawing this class.
    weight: float
    #: Normalized operations one solve charges (seconds on a speed-1 host).
    work: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.work <= 0:
            raise ValueError(f"work must be positive, got {self.work}")


#: A production-flavoured default: mostly short interactive probes, some
#: medium analyses, a trickle of long survey jobs (the heavy tail that
#: dominates queueing once the system approaches saturation).
DEFAULT_MIX: Tuple[RequestClass, ...] = (
    RequestClass("interactive", weight=8.0, work=0.5),
    RequestClass("analysis", weight=3.0, work=3.0),
    RequestClass("survey", weight=1.0, work=15.0),
)


@dataclass(frozen=True)
class TrafficConfig:
    """One open-loop load point."""

    #: Aggregate offered load across the whole population (requests/s).
    rate: float
    #: Seconds of arrivals to generate (the system may drain longer).
    duration: float
    #: Logical client population size (Zipf-ranked).
    n_clients: int = 1000
    #: Zipf skew exponent; larger concentrates load on fewer clients.
    zipf_s: float = 1.1
    #: The request classes arrivals draw from, by weight.
    mix: Tuple[RequestClass, ...] = DEFAULT_MIX

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {self.n_clients}")
        if not self.mix:
            raise ValueError("mix must name at least one request class")


@dataclass(frozen=True)
class Arrival:
    """One generated request arrival."""

    at: float
    client: int
    request_class: RequestClass


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized Zipf probabilities over ranks 1..n (rank 1 heaviest)."""
    if n < 1:
        raise ValueError(f"population must be >= 1, got {n}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** -float(s)
    return weights / weights.sum()


def generate_arrivals(config: TrafficConfig,
                      streams: RandomStreams) -> List[Arrival]:
    """The full arrival list of one load point, sorted by time.

    Vectorized end to end (gap cumsum, searchsorted client attribution),
    so a 10^6-client, 10^5-arrival point generates in milliseconds.
    """
    rng = streams.get("traffic", "arrivals")
    # Exponential gaps in chunks until the horizon is crossed; chunked
    # over-draw keeps the draw count deterministic per (seed, config).
    chunk_size = max(64, int(config.rate * config.duration / 4) + 1)
    parts: List[np.ndarray] = []
    t = 0.0
    while t < config.duration:
        gaps = rng.exponential(1.0 / config.rate, size=chunk_size)
        chunk = t + np.cumsum(gaps)
        parts.append(chunk)
        t = float(chunk[-1])
    times = np.concatenate(parts)
    times = times[times < config.duration]
    n = len(times)

    cdf = np.cumsum(zipf_weights(config.n_clients, config.zipf_s))
    clients = np.searchsorted(
        cdf, streams.get("traffic", "clients").random(n), side="right")

    mix_w = np.array([cls.weight for cls in config.mix], dtype=np.float64)
    classes = streams.get("traffic", "mix").choice(
        len(config.mix), size=n, p=mix_w / mix_w.sum())

    return [Arrival(float(at), int(client), config.mix[int(k)])
            for at, client, k in zip(times, clients, classes)]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (P50, P99, ...); NaN on an empty sample."""
    if not 0 < q <= 100:
        raise ValueError(f"q must be in (0, 100], got {q}")
    ordered = sorted(values)
    if not ordered:
        return float("nan")
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """The tail summary the load reports print: n, mean, P50, P99, max."""
    if not values:
        return {"n": 0, "mean": float("nan"), "p50": float("nan"),
                "p99": float("nan"), "max": float("nan")}
    return {"n": float(len(values)),
            "mean": float(sum(values)) / len(values),
            "p50": percentile(values, 50.0),
            "p99": percentile(values, 99.0),
            "max": max(values)}
