"""The kernel's C hot core: event heap + Timeout, with a pure-Python fallback.

``_simcore.c`` keeps the event queue's three ordering keys unboxed beside
each event pointer (sift comparisons become C double/long compares instead
of Python tuple comparisons) and provides a C ``Timeout`` whose constructor
schedules itself into that heap in a single call — the kernel's hottest
allocation site with no Python frame at all.  The heap owns the sequence
counter: ``push(when, prio, obj)`` stamps the next seq itself, so pop order
is bit-identical to ``heapq`` over ``(when, prio, seq, obj)`` tuples.

The extension is built on first import with whatever ``cc`` the box has and
cached next to the source (or under the system temp dir when the package
directory is read-only).  Anything going wrong — no compiler, no headers,
sandboxed filesystem — silently degrades to :class:`PyEventHeap` (plain
``heapq`` behind the same API) and the pure-Python ``Timeout`` defined in
``engine.py``.  ``REPRO_PURE_PY=1`` forces the fallback; the determinism
suite runs against both implementations.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Optional

from .cbuild import build_and_load

__all__ = ["EventHeap", "PyEventHeap", "CTimeout", "HEAP_IMPL"]

_INF = float("inf")


class PyEventHeap:
    """Pure-Python fallback: a heapq-managed list behind the C heap's API.

    Entries are ``(when, prio, seq, obj)`` tuples; ``seq`` is stamped at
    push from :attr:`count`, exactly like the C heap, so the two pop in the
    same total order.
    """

    __slots__ = ("_entries", "count", "now")

    def __init__(self):
        self._entries: list = []
        #: Total entries ever pushed (== the next sequence number).
        self.count = 0
        #: Simulation clock: time of the last popped entry.
        self.now = 0.0

    def push(self, when: float, prio: int, obj: object) -> None:
        seq = self.count
        self.count = seq + 1
        heappush(self._entries, (when, prio, seq, obj))

    def pushnow(self, prio: int, obj: object) -> None:
        seq = self.count
        self.count = seq + 1
        heappush(self._entries, (self.now, prio, seq, obj))

    def pushdelay(self, delay: float, prio: int, obj: object) -> None:
        seq = self.count
        self.count = seq + 1
        heappush(self._entries, (self.now + delay, prio, seq, obj))

    def pop(self) -> tuple:
        entry = heappop(self._entries)
        self.now = entry[0]
        return entry

    def pop2(self) -> tuple:
        entry = heappop(self._entries)
        self.now = entry[0]
        return entry[0], entry[3]

    def peektime(self) -> float:
        entries = self._entries
        return entries[0][0] if entries else _INF

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)


def _smoke(mod) -> bool:
    # Smoke-test ordering and the Timeout fast path before trusting the
    # extension for every simulation.
    heap = mod.EventHeap()
    for when, prio in [(2.0, 1), (1.0, 1), (1.0, 0), (1.0, 1)]:
        heap.push(when, prio, object())
    keys = [heap.pop()[:3] for _ in range(len(heap))]
    if keys != sorted(keys) or keys != [(1.0, 0, 2), (1.0, 1, 1),
                                        (1.0, 1, 3), (2.0, 1, 0)]:
        return False
    if heap.peektime() != _INF or heap.count != 4 or heap.now != 2.0:
        return False

    # Timeout fast path: the heap owns the clock, so the constructor
    # schedules relative to queue.now.  It accepts the heap directly (the
    # Engine's bound ``timeout`` factory) or any object with a ``_queue``.
    queue = mod.EventHeap()
    queue.now = 1.5
    t = mod.Timeout(queue, 2.5, value="v", priority=0)
    if not (t.delay == 2.5 and t._ok and t._scheduled and t.value == "v"
            and not t.processed and t.callbacks == []
            and type(t).__name__ == "Timeout"):
        return False
    if queue.pop2() != (4.0, t) or queue.now != 4.0:
        return False

    # drain(): watcherless timeouts are consumed without callbacks and the
    # clock clamps to `until` when the next event lies beyond it.
    queue = mod.EventHeap()
    mod.Timeout(queue, 1.0)
    far = mod.Timeout(queue, 9.0)
    code = mod.drain(object(), queue, 5.0, True, None)
    if code != 1 or queue.now != 5.0 or len(queue) != 1:
        return False
    if mod.drain(object(), queue, float("inf"), False, None) != 0:
        return False
    if not far.processed:
        return False
    return True


_mod = None
if not os.environ.get("REPRO_PURE_PY"):
    try:
        _mod = build_and_load(
            os.path.join(os.path.dirname(__file__), "_simcore.c"),
            "_simcore", smoke=_smoke)
    except Exception:  # pragma: no cover - any build breakage means fallback
        _mod = None

#: C Timeout type, or None when running on the pure-Python fallback.
CTimeout: Optional[type] = _mod.Timeout if _mod is not None else None
EventHeap = _mod.EventHeap if _mod is not None else PyEventHeap
#: Raw extension module (exposes drain()/configure()); None on fallback.
_C = _mod
#: "c" or "python" — surfaced in benchmark exports so regression numbers
#: are never compared across implementations by accident.
HEAP_IMPL = "c" if _mod is not None else "python"
