"""Deterministic random-stream helpers.

Every stochastic component in the reproduction draws from a named child
stream of one root seed, so that adding a new consumer never perturbs the
draws seen by existing ones (the classic "stream splitting" discipline used
in parallel discrete-event simulation).
"""

from __future__ import annotations

import hashlib
from typing import Iterator

import numpy as np

__all__ = ["RandomStreams", "stable_seed"]


def stable_seed(*parts: object) -> int:
    """A 63-bit seed derived stably (across runs/platforms) from ``parts``."""
    digest = hashlib.sha256("\x1f".join(map(repr, parts)).encode()).digest()
    return int.from_bytes(digest[:8], "little") >> 1


class RandomStreams:
    """A tree of named, reproducible numpy Generators.

    >>> streams = RandomStreams(42)
    >>> a = streams.get("service-noise")
    >>> b = streams.get("workload", 3)   # per-index streams
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._cache: dict = {}

    def get(self, *name_parts: object) -> np.random.Generator:
        key = tuple(name_parts)
        gen = self._cache.get(key)
        if gen is None:
            gen = np.random.default_rng(stable_seed(self.root_seed, *key))
            self._cache[key] = gen
        return gen

    def spawn(self, *name_parts: object) -> "RandomStreams":
        """A child stream tree, itself deterministic."""
        return RandomStreams(stable_seed(self.root_seed, "spawn", *name_parts))

    def uniform_stream(self, name: str) -> Iterator[float]:
        gen = self.get(name)
        while True:
            yield float(gen.random())
