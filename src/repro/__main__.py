"""Command-line interface: ``python -m repro <experiment>``.

Runs one experiment reproduction and prints its report — the same modules
the benchmark suite drives, without pytest in the way.

    python -m repro list                 # what can I run?
    python -m repro timings              # E1, the §5.2 headline numbers
    python -m repro figure4              # E2/E3
    python -m repro figure4 --trace out.json --gantt-svg gantt.svg
    python -m repro campaign --policy mct --n-sub 50 --profile

Every campaign-backed experiment accepts the observability flags:
``--trace PATH`` writes a Chrome-trace/Perfetto JSON of the span store,
``--gantt-svg PATH`` renders the per-SeD solve timeline (Figure 4's chart)
as a standalone SVG, and ``--profile`` prints a flat self-time report
aggregated across every campaign the experiment ran — including campaigns
computed in parallel worker processes (their span stores travel home inside
the detached results).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Callable, Dict, List, Optional, Tuple

from .experiments import (
    ablation_scheduler,
    data_locality,
    degraded_campaign,
    figure1_architecture,
    figure2_density,
    figure3_zoom,
    figure4,
    figure5,
    load_federation,
    overhead,
    scaling_nodes,
    survey_campaign,
    table_timings,
)

#: name -> (description, run(args) -> result, render(result) -> str).
#: Runners take the parsed args namespace; the sweep experiments read
#: ``args.jobs`` (see ``repro.experiments.runner``), the rest ignore it.
#: Keeping run and render separate lets :func:`main` hold on to the result
#: object for the observability exports after printing the report.
_EXPERIMENTS: Dict[str, Tuple[str, Callable[..., Any], Callable[[Any], str]]] = {
    "architecture": ("Figure 1: the deployed DIET hierarchy",
                     lambda args: figure1_architecture.run(),
                     figure1_architecture.render),
    "timings": ("E1: §5.2 campaign timings vs the paper",
                lambda args: table_timings.run(), table_timings.render),
    "figure4": ("E2/E3: request distribution + per-SeD execution time",
                lambda args: figure4.run(), figure4.render),
    "figure5": ("E4/E5: finding time + latency",
                lambda args: figure5.run(), figure5.render),
    "overhead": ("E6: middleware overhead",
                 lambda args: overhead.run(), overhead.render),
    "ablation": ("E7: plug-in scheduler ablation",
                 lambda args: ablation_scheduler.run(jobs=args.jobs),
                 ablation_scheduler.render),
    "routing": ("E7b: pull vs push estimate routing at growing widths",
                lambda args: ablation_scheduler.run_routing(jobs=args.jobs),
                ablation_scheduler.render_routing),
    "figure2": ("E8: projected density through cosmic time (real run)",
                lambda args: figure2_density.run(), figure2_density.render),
    "figure3": ("E9: zoom re-simulation of a halo (real run)",
                lambda args: figure3_zoom.run(), figure3_zoom.render),
    "scaling": ("E10: nodes-per-SeD scaling ablation",
                lambda args: scaling_nodes.run(jobs=args.jobs),
                scaling_nodes.render),
    "degraded": ("E11: the campaign under injected SeD failures",
                 lambda args: degraded_campaign.run(jobs=args.jobs),
                 degraded_campaign.render),
    "data-locality": ("E12: data-locality ablation "
                      "(volatile vs persistent vs replicated)",
                      lambda args: data_locality.run(
                          n_sub_simulations=args.n_sub, jobs=args.jobs),
                      data_locality.render),
    "load": ("E13: federated load sweep (multi-MA, open-loop traffic, "
             "SeD churn; pull vs push)",
             lambda args: load_federation.run(
                 loads=tuple(float(x) for x in args.loads.split(",")),
                 duration=args.duration, n_clients=args.clients,
                 n_grids=args.grids,
                 clusters_per_grid=args.clusters_per_grid,
                 churn=args.churn, seed=args.seed, jobs=args.jobs,
                 observe=bool(args.trace or args.gantt_svg or args.profile),
                 zipf=tuple(float(x) for x in args.zipf.split(",")),
                 memo=args.memo),
             load_federation.render),
    "survey": ("E14: survey campaign (cosmology-grid DAGs + zoom mix; "
               "scheduler and data-policy ablations)",
               lambda args: survey_campaign.run(
                   routings=tuple(args.routings.split(",")),
                   policies=tuple(args.policies.split(",")),
                   data_policies=tuple(args.data_policies.split(",")),
                   shape=tuple(int(x) for x in args.points.split("x")),
                   resolution=args.resolution, n_planes=args.planes,
                   z_source=args.z_source, zooms=args.zooms,
                   n_grids=args.grids,
                   clusters_per_grid=args.clusters_per_grid,
                   seed=args.seed, jobs=args.jobs,
                   observe=bool(args.trace or args.gantt_svg
                                or args.profile)),
               survey_campaign.render),
}

#: Experiments that sweep independent runs and accept ``--jobs``.
_PARALLEL = ("ablation", "routing", "scaling", "degraded", "data-locality",
             "load", "survey")


def _campaigns_of(result: Any) -> List[Any]:
    """Every campaign result reachable from an experiment result.

    Walks the known wrapper shapes — ``.campaign`` (figure4/figure5/
    overhead/timings), ``.campaigns`` dict (ablation), ``.baseline`` +
    ``.runs[].result`` (degraded) — plus bare campaign results, so the
    observability exports work uniformly across every subcommand.
    """
    found: List[Any] = []

    def visit(obj: Any) -> None:
        if obj is None:
            return
        if hasattr(obj, "span_store"):  # a CampaignResult (live or detached)
            found.append(obj)
            return
        for attr in ("campaign", "baseline"):
            visit(getattr(obj, attr, None))
        campaigns = getattr(obj, "campaigns", None)
        if isinstance(campaigns, dict):
            for sub in campaigns.values():
                visit(sub)
        runs = getattr(obj, "runs", None)
        if isinstance(runs, (list, tuple)):
            for run in runs:
                visit(getattr(run, "result", run))

    visit(result)
    return found


def _export_observability(args, result: Any) -> List[str]:
    """Handle ``--trace`` / ``--gantt-svg`` / ``--profile``; returns the
    status lines to print after the experiment report."""
    want_trace = getattr(args, "trace", None)
    want_gantt = getattr(args, "gantt_svg", None)
    want_profile = getattr(args, "profile", False)
    if not (want_trace or want_gantt or want_profile):
        return []

    from .experiments.runner import collect_span_stores
    from .obs import profile_report, svg_gantt, write_chrome_trace

    campaigns = _campaigns_of(result)
    stores = collect_span_stores(campaigns)
    if not stores:
        return ["observability: no span stores recorded "
                "(campaign ran with observe=False?)"]

    lines: List[str] = []
    if want_trace:
        if len(stores) == 1:
            merged = stores[0]
        else:
            # Multi-campaign sweeps share track names (req:1 exists in every
            # campaign); a merged store is still a valid Chrome trace — the
            # viewer groups by thread name, and all spans are closed.
            from .obs import SpanStore
            merged = SpanStore()
            for store in stores:
                merged.spans.extend(store.spans)
                merged.marks.extend(store.marks)
        write_chrome_trace(merged, want_trace)
        n = sum(len(s.spans) for s in stores)
        lines.append(f"trace: {n} spans from {len(stores)} campaign(s) "
                     f"written to {want_trace}")
    if want_gantt:
        chart = stores[0].gantt(category="solve", group_by="sed")
        with open(want_gantt, "w", encoding="utf-8") as fh:
            fh.write(svg_gantt(chart))
        lines.append(f"gantt: {sum(len(v) for v in chart.values())} solves "
                     f"across {len(chart)} SeDs written to {want_gantt}")
    if want_profile:
        lines.append("")
        lines.append(profile_report(
            stores, title=f"profile: {args.command} "
                          f"({len(stores)} campaign(s))"))
    return lines


def _run_campaign(args) -> Tuple[str, Any]:
    from .experiments.report import hms
    from .services import CampaignConfig, run_campaign

    config = CampaignConfig(n_sub_simulations=args.n_sub, policy=args.policy,
                            with_predictor=args.policy == "mct",
                            seed=args.seed, data_policy=args.data_policy,
                            routing=args.routing)
    result = run_campaign(config)
    lines = [
        f"campaign: {args.n_sub} zoom requests, policy={args.policy}, "
        f"seed={args.seed}"
        + (f", routing={args.routing}" if args.routing != "pull" else "")
        + (f", data-policy={args.data_policy}" if args.data_policy else ""),
        f"  part 1:          {hms(result.part1_duration)}",
        f"  part 2 mean:     {hms(result.part2_mean_duration)}",
        f"  total elapsed:   {hms(result.total_elapsed)}",
        f"  sequential:      {result.sequential_estimate / 3600:.1f} h",
        f"  speedup:         {result.speedup:.2f}x",
        f"  requests/SeD:    {sorted(result.requests_per_sed().values())}",
    ]
    if args.data_policy is not None:
        mib = 2 ** 20
        lines.append(f"  network bytes:   "
                     f"{result.net_bytes_total / mib:.1f} MiB total, "
                     f"{result.net_bytes_wan / mib:.1f} MiB over WAN")
    if args.trace_csv:
        result.tracer.write_csv(args.trace_csv)
        lines.append(f"  trace written to {args.trace_csv}")
    return "\n".join(lines), result


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="write the span store as Chrome-trace/Perfetto JSON")
    p.add_argument("--gantt-svg", metavar="PATH", default=None,
                   help="render the per-SeD solve timeline as an SVG")
    p.add_argument("--profile", action="store_true",
                   help="print a flat self-time profile aggregated over "
                        "all campaigns (including parallel workers)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'Cosmological Simulations using Grid "
                    "Middleware' experiments.")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")
    for name, (desc, _, _) in _EXPERIMENTS.items():
        p = sub.add_parser(name, help=desc)
        if name in _PARALLEL:
            p.add_argument(
                "--jobs", "-j", type=int, default=None,
                help="worker processes for the sweep (default: serial; "
                     "0 = one per CPU core)")
        if name == "data-locality":
            p.add_argument("--n-sub", type=int, default=100,
                           help="zoom sub-simulations per arm (default 100)")
        if name == "load":
            p.add_argument("--loads", default="2,4,8,16",
                           help="comma-separated offered loads in requests/s "
                                "(default 2,4,8,16)")
            p.add_argument("--duration", type=float, default=60.0,
                           help="seconds of open-loop arrivals per point "
                                "(default 60)")
            p.add_argument("--clients", type=int, default=1000,
                           help="Zipf-ranked logical client population "
                                "(default 1000; scales to 10^6)")
            p.add_argument("--grids", type=int, default=2,
                           help="MA hierarchies in the federation (default 2)")
            p.add_argument("--clusters-per-grid", type=int, default=2,
                           help="clusters per grid from the paper catalogue "
                                "(default 2)")
            p.add_argument("--churn", type=int, default=2,
                           help="SeD outages injected per point (default 2; "
                                "0 disables churn)")
            p.add_argument("--seed", type=int, default=2007)
            p.add_argument("--zipf", default="1.1",
                           help="comma-separated Zipf skew values for the "
                                "client population (default 1.1)")
            p.add_argument("--memo", choices=["on", "off"], default="off",
                           help="grid-wide result memoization keyed on "
                                "canonical request descriptors (default off)")
        if name == "survey":
            p.add_argument("--points", default="3x3",
                           help="cosmology grid shape as NXxNY over the "
                                "(omega_m, sigma8) plane (default 3x3)")
            p.add_argument("--resolution", type=int, default=64,
                           help="survey box resolution per dimension "
                                "(default 64)")
            p.add_argument("--planes", type=int, default=8,
                           help="lens planes per convergence map (default 8)")
            p.add_argument("--z-source", type=float, default=1.0,
                           help="source redshift of the lensing stage "
                                "(default 1.0)")
            p.add_argument("--zooms", type=int, default=4,
                           help="background ramsesZoom2 requests sharing "
                                "the SeDs (default 4; 0 disables)")
            p.add_argument("--routings", default="pull,push",
                           help="comma-separated routing modes "
                                "(default pull,push)")
            p.add_argument("--policies", default="default,mct",
                           help="comma-separated scheduler policies "
                                "(default default,mct)")
            p.add_argument("--data-policies",
                           default="volatile,persistent,replicated",
                           help="comma-separated data policies "
                                "(default volatile,persistent,replicated)")
            p.add_argument("--grids", type=int, default=2,
                           help="MA hierarchies in the federation (default 2)")
            p.add_argument("--clusters-per-grid", type=int, default=3,
                           help="clusters per grid from the paper catalogue "
                                "(default 3: Lyon x2 + Lille, so survey "
                                "traffic crosses priced WAN uplinks)")
            p.add_argument("--seed", type=int, default=2007)
            p.add_argument("--batch-dir", metavar="PATH", default=None,
                           help="materialize each arm's products as a "
                                "LensTools-style home/storage batch tree")
        _add_obs_flags(p)

    campaign = sub.add_parser("campaign",
                              help="run a custom campaign configuration")
    campaign.add_argument("--n-sub", type=int, default=100,
                          help="number of zoom sub-simulations (default 100)")
    campaign.add_argument("--policy", default="default",
                          choices=["default", "mct", "min-queue", "fastest"],
                          help="scheduler policy")
    campaign.add_argument("--seed", type=int, default=2007)
    campaign.add_argument("--routing", default="pull",
                          choices=["pull", "push"],
                          help="estimate flow: per-request pull fan-out "
                               "(the paper's protocol, default) or push "
                               "deltas into materialized top-k tables")
    campaign.add_argument("--data-policy", default=None,
                          choices=["volatile", "persistent", "replicated",
                                   "broadcast"],
                          help="DAGDA-style data management policy "
                               "(default: no data grid)")
    campaign.add_argument("--trace-csv", default=None,
                          help="dump the request trace table as CSV")
    _add_obs_flags(campaign)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("available experiments:")
        width = max(len(n) for n in _EXPERIMENTS) + 2
        for name, (desc, _, _) in _EXPERIMENTS.items():
            print(f"  {name.ljust(width)} {desc}")
        print(f"  {'campaign'.ljust(width)} custom campaign "
              "(--n-sub, --policy, --seed, --routing, --data-policy, "
              "--trace-csv)")
        return 0
    if args.command == "campaign":
        text, result = _run_campaign(args)
        print(text)
    else:
        _desc, run, render = _EXPERIMENTS[args.command]
        result = run(args)
        print(render(result))
        if getattr(args, "batch_dir", None):
            for path in survey_campaign.write_batches(result,
                                                      args.batch_dir):
                print(f"batch manifest: {path}")
    for line in _export_observability(args, result):
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
