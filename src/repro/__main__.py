"""Command-line interface: ``python -m repro <experiment>``.

Runs one experiment reproduction and prints its report — the same modules
the benchmark suite drives, without pytest in the way.

    python -m repro list                 # what can I run?
    python -m repro timings              # E1, the §5.2 headline numbers
    python -m repro figure4              # E2/E3
    python -m repro campaign --policy mct --n-sub 50
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Tuple

from .experiments import (
    ablation_scheduler,
    degraded_campaign,
    figure1_architecture,
    figure2_density,
    figure3_zoom,
    figure4,
    figure5,
    overhead,
    scaling_nodes,
    table_timings,
)

#: Runners take the parsed args namespace; the sweep experiments read
#: ``args.jobs`` (see ``repro.experiments.runner``), the rest ignore it.
_EXPERIMENTS: Dict[str, Tuple[str, Callable[..., str]]] = {
    "architecture": ("Figure 1: the deployed DIET hierarchy",
                     lambda args: figure1_architecture.render(
                         figure1_architecture.run())),
    "timings": ("E1: §5.2 campaign timings vs the paper",
                lambda args: table_timings.render(table_timings.run())),
    "figure4": ("E2/E3: request distribution + per-SeD execution time",
                lambda args: figure4.render(figure4.run())),
    "figure5": ("E4/E5: finding time + latency",
                lambda args: figure5.render(figure5.run())),
    "overhead": ("E6: middleware overhead",
                 lambda args: overhead.render(overhead.run())),
    "ablation": ("E7: plug-in scheduler ablation",
                 lambda args: ablation_scheduler.render(
                     ablation_scheduler.run(jobs=args.jobs))),
    "figure2": ("E8: projected density through cosmic time (real run)",
                lambda args: figure2_density.render(figure2_density.run())),
    "figure3": ("E9: zoom re-simulation of a halo (real run)",
                lambda args: figure3_zoom.render(figure3_zoom.run())),
    "scaling": ("E10: nodes-per-SeD scaling ablation",
                lambda args: scaling_nodes.render(
                    scaling_nodes.run(jobs=args.jobs))),
    "degraded": ("E11: the campaign under injected SeD failures",
                 lambda args: degraded_campaign.render(
                     degraded_campaign.run(jobs=args.jobs))),
}

#: Experiments that sweep independent runs and accept ``--jobs``.
_PARALLEL = ("ablation", "scaling", "degraded")


def _run_campaign(args) -> str:
    from .experiments.report import hms
    from .services import CampaignConfig, run_campaign

    config = CampaignConfig(n_sub_simulations=args.n_sub, policy=args.policy,
                            with_predictor=args.policy == "mct",
                            seed=args.seed)
    result = run_campaign(config)
    lines = [
        f"campaign: {args.n_sub} zoom requests, policy={args.policy}, "
        f"seed={args.seed}",
        f"  part 1:          {hms(result.part1_duration)}",
        f"  part 2 mean:     {hms(result.part2_mean_duration)}",
        f"  total elapsed:   {hms(result.total_elapsed)}",
        f"  sequential:      {result.sequential_estimate / 3600:.1f} h",
        f"  speedup:         {result.speedup:.2f}x",
        f"  requests/SeD:    {sorted(result.requests_per_sed().values())}",
    ]
    if args.trace_csv:
        result.tracer.write_csv(args.trace_csv)
        lines.append(f"  trace written to {args.trace_csv}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'Cosmological Simulations using Grid "
                    "Middleware' experiments.")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")
    for name, (desc, _) in _EXPERIMENTS.items():
        p = sub.add_parser(name, help=desc)
        if name in _PARALLEL:
            p.add_argument(
                "--jobs", "-j", type=int, default=None,
                help="worker processes for the sweep (default: serial; "
                     "0 = one per CPU core)")

    campaign = sub.add_parser("campaign",
                              help="run a custom campaign configuration")
    campaign.add_argument("--n-sub", type=int, default=100,
                          help="number of zoom sub-simulations (default 100)")
    campaign.add_argument("--policy", default="default",
                          choices=["default", "mct", "min-queue", "fastest"],
                          help="scheduler policy")
    campaign.add_argument("--seed", type=int, default=2007)
    campaign.add_argument("--trace-csv", default=None,
                          help="dump the request trace table as CSV")
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("available experiments:")
        width = max(len(n) for n in _EXPERIMENTS) + 2
        for name, (desc, _) in _EXPERIMENTS.items():
            print(f"  {name.ljust(width)} {desc}")
        print(f"  {'campaign'.ljust(width)} custom campaign "
              "(--n-sub, --policy, --seed, --trace-csv)")
        return 0
    if args.command == "campaign":
        print(_run_campaign(args))
        return 0
    _desc, runner = _EXPERIMENTS[args.command]
    print(runner(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
