"""Per-SeD data managers and the grid-wide DataGrid that connects them.

This is the DTM/DAGDA substitute: every SeD owns a :class:`DataManager`
(standalone by default — byte-for-byte the legacy ``data_store`` dict
behaviour).  Deployments that opt in build one :class:`DataGrid` and
``attach()`` each manager to it, which upgrades the manager in place with
a capacity-bounded store, the hierarchical replica catalog, pull
transfers, and a replication policy.

Everything here that is not an explicit transfer is synchronous
bookkeeping: attaching the grid, registering replicas, and counting stats
schedule **zero** events, so a campaign whose arguments are all volatile
replays the exact recorded kernel event stream of a grid-less deployment
(pinned by the determinism suite).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, Iterable, List, Optional

from ..core.data import DataHandle, HANDLE_WIRE_BYTES, PersistenceMode
from ..core.exceptions import CommunicationError, DataError
from ..sim.engine import Event
from .catalog import CatalogNode, Replica
from .policy import NoReplication, ReplicationPolicy, make_replication_policy
from .store import DataStore, StoreFullError, content_digest, make_eviction
from .transfer import TransferManager

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..core.sed import SeD
    from ..platform.nfs import NfsVolume
    from ..sim.network import Network

__all__ = ["DataManagerConfig", "DataGridStats", "DataManager", "DataGrid"]

_PINNED_MODES = (PersistenceMode.STICKY, PersistenceMode.STICKY_RETURN)


@dataclass(frozen=True)
class DataManagerConfig:
    """Per-SeD data-manager knobs, applied by :meth:`DataGrid.attach`."""

    #: Store capacity in bytes (None = unbounded, the DAGDA default when
    #: no memory limit is configured).
    capacity_bytes: Optional[float] = None
    #: Eviction policy name ("lru" or "cost").
    eviction: str = "lru"
    #: Replication policy name ("none", "per-cluster", "eager-broadcast").
    replication: str = "none"
    #: Serve cluster-local replicas through the shared NFS volume instead
    #: of SeD-to-SeD transfers.
    nfs_fastpath: bool = True


@dataclass
class DataGridStats:
    """Plain-int data traffic accounting (picklable, works with obs off)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    coalesced: int = 0
    replicas: int = 0
    dedup: int = 0
    #: Bytes pulled SeD-to-SeD (including eager replication pushes).
    bytes_moved: int = 0
    #: Bytes served through a cluster-local NFS fast path.
    bytes_nfs: int = 0
    #: Bytes that did *not* travel thanks to cache hits, handle replies,
    #: coalesced pulls, and content dedup.
    bytes_saved: int = 0
    checkpoint_pulls: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


class DataManager:
    """The DAGDA agent of one SeD.

    Standalone (no grid) it reproduces the legacy DTM behaviour exactly:
    unbounded store, owner-or-origin handle resolution over ``fetch_data``.
    :meth:`join_grid` upgrades it in place.
    """

    def __init__(self, sed: "SeD"):
        self.sed = sed
        self.engine = sed.engine
        self.store = DataStore()
        self.grid: Optional["DataGrid"] = None
        self.catalog: Optional[CatalogNode] = None
        #: Endpoint name of the parent LA's catalog ("dm_locate" target).
        self.parent: Optional[str] = None
        self.replication: ReplicationPolicy = NoReplication()
        self.nfs_fastpath = True
        self.stats = DataGridStats()
        self.transfers = TransferManager(self)
        #: Grid-wide result memo (:class:`repro.data.memo.MemoIndex`), set
        #: by deployments that opt into memoization; this manager drops its
        #: SeD's entries on crash and per-datum entries on eviction.
        self.memo = None
        #: Checkpoint registrations survive a crash of this SeD: the bytes
        #: live on the cluster NFS volume, not in the SeD process.
        self._checkpoints: Dict[str, Replica] = {}

    @property
    def obs(self):
        return self.sed.tracer.obs

    def join_grid(
        self, grid: "DataGrid", catalog: CatalogNode, config: DataManagerConfig
    ) -> None:
        self.grid = grid
        self.catalog = catalog
        self.parent = self.sed.parent
        self.store = DataStore(
            capacity_bytes=config.capacity_bytes,
            eviction=make_eviction(config.eviction),
        )
        self.replication = make_replication_policy(config.replication)
        self.nfs_fastpath = config.nfs_fastpath
        self.stats = grid.stats

    # -- store side ---------------------------------------------------------------

    def put(
        self, data_id: str, value: Any, nbytes: int, mode: PersistenceMode
    ) -> str:
        """Keep a server copy of a produced argument; returns the canonical
        data id (an existing one when content dedup aliases the value)."""
        now = self.engine.now
        pinned = mode in _PINNED_MODES
        digest = content_digest(value)
        existing = self.store.find_digest(digest)
        if existing is not None and existing != data_id:
            entry = self.store.entry(existing)
            entry.last_used = now
            entry.pinned = entry.pinned or pinned
            self.stats.dedup += 1
            self.stats.bytes_saved += nbytes
            return existing
        # Own produced data is irreplaceable (no other copy exists yet):
        # infinite refetch cost keeps cost-aware eviction away from it while
        # cheap replicas remain.
        evicted = self.store.put(
            data_id,
            value,
            nbytes,
            now=now,
            pinned=pinned,
            cost=float("inf"),
            digest=digest,
        )
        for entry in evicted:
            self._unregister(entry.data_id)
            self._memo_evict(entry.data_id)
            self.stats.evictions += 1
        self._register(data_id, nbytes)
        self.replication.on_store(self, data_id, nbytes)
        return data_id

    def admit_replica(self, data_id: str, value: Any, nbytes: int) -> bool:
        """Best-effort: keep a fetched copy and advertise it."""
        now = self.engine.now
        entry = self.store.entry(data_id)
        if entry is not None:
            entry.last_used = now
            return True
        try:
            evicted = self.store.put(
                data_id,
                value,
                nbytes,
                now=now,
                pinned=False,
                cost=0.0,
                digest=content_digest(value),
            )
        except StoreFullError:
            return False
        for old in evicted:
            self._unregister(old.data_id)
            self._memo_evict(old.data_id)
            self.stats.evictions += 1
        self._register(data_id, nbytes)
        self.stats.replicas += 1
        return True

    def _register(self, data_id: str, nbytes: int) -> None:
        if self.catalog is not None:
            # Advertise the cluster volume the bytes live on (§4.1: solves
            # write their outputs to the cluster NFS working directory), so
            # same-volume consumers can take the NFS fast path.
            volume = self.sed.nfs.name if self.sed.nfs is not None else ""
            self.catalog.register(
                Replica(
                    data_id=data_id,
                    sed_name=self.sed.name,
                    host_name=self.sed.host.name,
                    nbytes=nbytes,
                    volume=volume,
                )
            )

    def _unregister(self, data_id: str) -> None:
        if self.catalog is not None:
            self.catalog.unregister(data_id, self.sed.name)

    def _memo_evict(self, data_id: str) -> None:
        """Eviction made a memoized result unservable: drop its entries.

        STICKY pins are never evicted, so sticky memo entries survive by
        construction — only unpinned persistent data reaches this.
        """
        if self.memo is not None:
            self.memo.invalidate_data(data_id, self.engine.now)

    def note_reply_handle(self, nbytes: int) -> None:
        """A reply shipped a 64-byte handle instead of ``nbytes`` of data."""
        self.stats.bytes_saved += max(0, nbytes - HANDLE_WIRE_BYTES)

    # -- wire side ----------------------------------------------------------------

    def serve(self, data_id: str, allow_pinned: bool = False) -> tuple:
        """Look up a datum for a peer fetch; raises :class:`DataError` on a
        miss or a pinned (STICKY — never moves) entry.

        ``allow_pinned`` serves pinned entries anyway — the memo-hit
        return path: stickiness forbids SeD-to-SeD replication, not
        returning result bytes to a client.
        """
        entry = self.store.entry(data_id)
        if entry is None:
            raise DataError(f"no persistent data {data_id!r} on {self.sed.name}")
        if entry.pinned and not allow_pinned:
            raise DataError(f"data {data_id!r} is sticky on {self.sed.name}")
        entry.last_used = self.engine.now
        return entry.value, entry.nbytes

    def resolve(self, handle: DataHandle) -> Generator[Event, Any, Any]:
        """Materialize a handle on this SeD ("Data downloading")."""
        entry = self.store.entry(handle.data_id)
        if entry is not None:
            entry.last_used = self.engine.now
            self.stats.hits += 1
            self.stats.bytes_saved += entry.nbytes
            return entry.value
        self.stats.misses += 1
        if self.grid is None:
            # Legacy DTM path: the handle names its owner; anything else is
            # one origin fetch away.
            if handle.sed_name == self.sed.name:
                raise DataError(f"stale handle {handle.data_id!r}")
            value = yield from self.sed.endpoint.rpc(
                handle.sed_name, "fetch_data", handle.data_id
            )
            return value
        value = yield from self.transfers.pull(handle)
        return value

    # -- checkpoints --------------------------------------------------------------

    def register_checkpoint(
        self, path: str, nbytes: int, volume: "NfsVolume"
    ) -> None:
        """Advertise an NFS-resident checkpoint dump through the catalog."""
        replica = Replica(
            data_id=f"ckpt:{path}",
            sed_name=self.sed.name,
            host_name=self.sed.host.name,
            nbytes=nbytes,
            volume=volume.name,
        )
        self._checkpoints[path] = replica
        if self.catalog is not None:
            self.catalog.register(replica)

    def unregister_checkpoint(self, path: str) -> None:
        replica = self._checkpoints.pop(path, None)
        if replica is not None and self.catalog is not None:
            self.catalog.unregister(replica.data_id, self.sed.name)

    def pull_checkpoint(self, path: str) -> Generator[Event, Any, bool]:
        """Stage a remote cluster's checkpoint dump onto the local volume.

        The §4.1 resume gate required the dump on *this* cluster's NFS; with
        the catalog a restarted job can locate the dump wherever it was
        written, stream it volume-to-volume, and resume.  Returns True when
        ``path`` now exists locally.
        """
        if self.grid is None or self.parent is None or self.sed.nfs is None:
            return False
        data_id = f"ckpt:{path}"
        try:
            raw = yield from self.sed.endpoint.rpc(self.parent, "dm_locate", data_id)
        except CommunicationError:
            return False
        remote = [r for r in raw if r.volume and r.volume != self.sed.nfs.name]
        if not remote:
            return False
        source = min(remote, key=lambda r: r.sed_name)
        volume = self.grid.volumes.get(source.volume)
        if volume is None or not volume.exists(path):
            return False
        hosts = volume.mounts()
        if not hosts:
            return False
        src_host = hosts[0]
        try:
            nbytes = yield from volume.read(src_host, path)
            yield from self.sed.fabric.network.transfer(
                src_host, self.sed.host.name, nbytes
            )
            yield from self.sed.nfs.write(self.sed.host.name, path, nbytes)
        except Exception:
            return False
        self.stats.checkpoint_pulls += 1
        self.stats.bytes_moved += nbytes
        self.register_checkpoint(path, nbytes, self.sed.nfs)
        return True

    # -- failure model ------------------------------------------------------------

    def on_crash(self) -> None:
        """Volatile state dies with the process; NFS checkpoints survive."""
        if self.catalog is not None:
            for data_id in self.store.data_ids():
                self.catalog.unregister(data_id, self.sed.name)
        if self.memo is not None:
            # Memoized results owned by this SeD died with its store; a
            # client already holding a hit falls back to a re-solve.
            self.memo.invalidate_owner(self.sed.name, self.engine.now)
        self.store.clear()


class DataGrid:
    """The deployment-wide data fabric: catalog root + all managers."""

    def __init__(self, network: "Network"):
        self.network = network
        self.engine = network.engine
        self.root = CatalogNode("MA")
        self._nodes: Dict[str, CatalogNode] = {}
        self.managers: Dict[str, DataManager] = {}
        self.volumes: Dict[str, "NfsVolume"] = {}
        self.stats = DataGridStats()

    def node(self, name: str) -> CatalogNode:
        """The catalog node of one LA (created on first use)."""
        existing = self._nodes.get(name)
        if existing is None:
            existing = self._nodes[name] = CatalogNode(name, parent=self.root)
        return existing

    def attach(
        self, sed: "SeD", node: CatalogNode, config: DataManagerConfig
    ) -> DataManager:
        sed.data_manager.join_grid(self, node, config)
        self.managers[sed.name] = sed.data_manager
        return sed.data_manager

    # -- scheduling hook ----------------------------------------------------------

    def transfer_cost(
        self, handles: Iterable[DataHandle], candidates: Iterable[str]
    ) -> Dict[str, float]:
        """Estimated seconds each candidate SeD would spend pulling the
        non-resident handles — the data-locality term MCT adds to its
        completion estimate.  Pure computation over the analytic
        ``transfer_time`` model; no events."""
        costs = {name: 0.0 for name in candidates}
        for handle in handles:
            replicas = self.root.locate(handle.data_id)
            for name in costs:
                mgr = self.managers.get(name)
                if mgr is None:
                    continue
                if handle.data_id in mgr.store:
                    continue  # resident: free
                dst = mgr.sed.host.name
                options = []
                for r in replicas:
                    if r.host_name == dst:
                        options.append(0.0)
                    else:
                        options.append(
                            self.network.transfer_time(
                                r.host_name, dst, r.nbytes or handle.nbytes
                            )
                        )
                if not options:
                    origin = self.managers.get(handle.sed_name)
                    src = origin.sed.host.name if origin else handle.sed_name
                    options = [self.network.transfer_time(src, dst, handle.nbytes)]
                costs[name] += min(options)
        return costs

    # -- replication mechanics ----------------------------------------------------

    def sibling_targets(self, owner: DataManager) -> List[DataManager]:
        """The first (by name) other SeD in the owner's own cluster, if any
        — the per-cluster policy's intra-cluster redundancy target."""
        for name in sorted(self.managers):
            mgr = self.managers[name]
            if mgr is not owner and mgr.sed.cluster == owner.sed.cluster:
                return [mgr]
        return []

    def broadcast_targets(self, owner: DataManager) -> List[DataManager]:
        """One SeD (first by name) per cluster other than the owner's."""
        by_cluster: Dict[str, DataManager] = {}
        for name in sorted(self.managers):
            mgr = self.managers[name]
            cluster = mgr.sed.cluster
            if cluster == owner.sed.cluster:
                continue
            by_cluster.setdefault(cluster, mgr)
        return [by_cluster[c] for c in sorted(by_cluster)]

    def spawn_replication(
        self, owner: DataManager, target: DataManager, data_id: str, nbytes: int
    ) -> None:
        """Background best-effort push of one replica (policy-initiated)."""

        def _replicate() -> Generator[Event, Any, None]:
            try:
                value = yield from target.sed.endpoint.rpc(
                    owner.sed.name, "dm_fetch", data_id
                )
            except Exception:
                return  # owner gone or data evicted meanwhile: never fatal
            self.stats.bytes_moved += nbytes
            target.admit_replica(data_id, value, nbytes)

        self.engine.process(
            _replicate(), name=f"replicate:{data_id}->{target.sed.name}"
        )
