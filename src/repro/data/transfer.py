"""Peer-to-peer pull transfers of persistent data.

When a SeD resolves a non-resident handle it *pulls* the bytes from the
best replica rather than having the producer push them: the consumer knows
it needs the data now, the producer does not.  Two DAGDA-ish refinements
on top of a plain RPC fetch:

* **in-flight coalescing** — concurrent pulls of the same ``data_id`` on
  one SeD share a single wire transfer; late requesters park on the same
  :class:`~repro.sim.engine.Event` and wake with the value;
* **NFS fast path** — if a replica lives on the same NFS volume this SeD
  mounts (cluster-local data, e.g. a checkpoint written by a sibling), the
  bytes come off the volume at NFS throughput instead of crossing the
  network SeD-to-SeD.

Replica ranking uses :meth:`sim.network.Network.transfer_time` — the same
latency/bandwidth model the actual transfer will pay — so "nearest" means
nearest in simulated seconds, with ``sed_name`` as the deterministic tie
break.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Tuple

from ..core.exceptions import CommunicationError, DataError
from ..sim.engine import Event
from .catalog import Replica

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..core.data import DataHandle
    from .manager import DataManager

__all__ = ["TransferManager"]


class TransferManager:
    """Pull-side transfer logic of one SeD's data manager."""

    def __init__(self, manager: "DataManager"):
        self.manager = manager
        self._inflight: Dict[str, Event] = {}

    def pull(self, handle: "DataHandle") -> Generator[Event, Any, Any]:
        """Materialize ``handle`` locally; returns the value.

        Concurrent pulls of the same id coalesce onto the first one's
        transfer.  Raises :class:`DataError` when no replica can serve it.
        """
        mgr = self.manager
        waiter = self._inflight.get(handle.data_id)
        if waiter is not None:
            mgr.stats.coalesced += 1
            mgr.stats.bytes_saved += handle.nbytes
            value = yield waiter  # re-raises if the leading pull failed
            return value
        done = Event(mgr.engine)
        self._inflight[handle.data_id] = done
        try:
            value = yield from self._pull_once(handle)
        except BaseException as exc:
            self._inflight.pop(handle.data_id, None)
            done.fail(exc)
            raise
        self._inflight.pop(handle.data_id, None)
        done.succeed(value)
        return value

    def _pull_once(self, handle: "DataHandle") -> Generator[Event, Any, Any]:
        mgr = self.manager
        obs = mgr.obs
        span = None
        if obs.enabled:
            span = obs.spans.begin(
                f"data:{mgr.sed.name}",
                "pull",
                mgr.engine.now,
                "data",
                data_id=handle.data_id,
                nbytes=handle.nbytes,
                sed=mgr.sed.name,
            )
        try:
            replicas = yield from self._locate(handle)
            value, via = yield from self._fetch(handle, replicas)
        except BaseException:
            if span is not None:
                obs.spans.end(span, mgr.engine.now, "error")
            raise
        if span is not None:
            span.attrs["via"] = via
            obs.spans.end(span, mgr.engine.now)
        # DTM's DIET_PERSISTENT semantic: the data follows the computation
        # and stays on the SeD that pulled it (best-effort under capacity).
        mgr.admit_replica(handle.data_id, value, handle.nbytes)
        return value

    def _locate(self, handle: "DataHandle") -> Generator[Event, Any, List[Replica]]:
        """Ask the agent hierarchy for replicas (LA first, MA on miss —
        the catalog side of service ``find``'s hop accounting)."""
        mgr = self.manager
        replicas: List[Replica] = []
        if mgr.parent is not None:
            raw = yield from mgr.sed.endpoint.rpc(
                mgr.parent, "dm_locate", handle.data_id
            )
            replicas = [r for r in raw if r.sed_name != mgr.sed.name]
        if not replicas:
            # Catalog knows nothing (e.g. legacy handle minted before the
            # grid was wired): trust the handle's origin SeD.
            origin = mgr.grid.managers.get(handle.sed_name) if mgr.grid else None
            host = origin.sed.host.name if origin else handle.sed_name
            replicas = [
                Replica(
                    data_id=handle.data_id,
                    sed_name=handle.sed_name,
                    host_name=host,
                    nbytes=handle.nbytes,
                )
            ]
        return replicas

    def _fetch(
        self, handle: "DataHandle", replicas: List[Replica]
    ) -> Generator[Event, Any, Tuple[Any, str]]:
        """Try replicas nearest-first; returns ``(value, via)`` where via
        is ``"nfs"`` or ``"net"``."""
        mgr = self.manager
        my_host = mgr.sed.host.name
        network = mgr.sed.fabric.network

        def _rank(r: Replica) -> Tuple[float, str]:
            cost = network.transfer_time(
                r.host_name, my_host, r.nbytes or handle.nbytes
            )
            return cost, r.sed_name

        ranked = sorted(replicas, key=_rank)
        last_error: Exception = DataError(f"no replica of {handle.data_id!r} reachable")
        for rep in ranked:
            try:
                if (
                    mgr.nfs_fastpath
                    and mgr.sed.nfs is not None
                    and rep.volume == mgr.sed.nfs.name
                ):
                    # Same volume: a sibling already staged the bytes here.
                    nbytes = rep.nbytes or handle.nbytes
                    yield from mgr.sed.nfs.read_bytes(my_host, nbytes)
                    value = yield from self._peer_value(rep, handle)
                    mgr.stats.bytes_nfs += nbytes
                    return value, "nfs"
                value = yield from mgr.sed.endpoint.rpc(
                    rep.sed_name, "dm_fetch", handle.data_id
                )
                mgr.stats.bytes_moved += rep.nbytes or handle.nbytes
                return value, "net"
            except (DataError, CommunicationError) as exc:
                last_error = exc
        raise DataError(f"all replicas of {handle.data_id!r} failed: {last_error}")

    def _peer_value(
        self, rep: Replica, handle: "DataHandle"
    ) -> Generator[Event, Any, Any]:
        """Value for an NFS fast-path read: from the peer's local store if
        this process can see it, else a zero-cost control RPC."""
        mgr = self.manager
        peer = mgr.grid.managers.get(rep.sed_name) if mgr.grid else None
        if peer is not None:
            entry = peer.store.entry(handle.data_id)
            if entry is not None and not entry.pinned:  # sticky never moves
                return entry.value
        value = yield from mgr.sed.endpoint.rpc(
            rep.sed_name, "dm_fetch", handle.data_id
        )
        return value
