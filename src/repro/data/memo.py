"""Grid-wide result memoization keyed on canonical request descriptors.

At millions of Zipf-distributed clients many requests are byte-identical —
same IC seed, same zoom target, same cosmology — yet each one walks the
full schedule-and-solve path.  The stores are already content-addressed
(sha256); this module adds the missing request→result index in front of
the solve (ROADMAP item 5):

* :func:`request_descriptor` / :func:`descriptor_digest` canonicalize a
  client profile into a key: the service signature plus every IN/INOUT
  value, normalized (arrays to raw bytes, files to path+content, handles
  to their identity) and settled through
  :func:`~repro.experiments.runner.canonical_pickle` so the same logical
  request always hashes to the same key, on any worker, in any process;
* :class:`MemoIndex` is the federation-wide index mapping keys to
  :class:`~repro.core.requests.MemoHit` entries (persistent OUT/INOUT
  handles on the owning SeD).  Master Agents consult it before scheduling
  (both routing modes) and SeDs populate it on successful solves whose
  outputs all kept a server copy — a VOLATILE output leaves nothing to
  point at, so such requests are never memoized;
* invalidation rides the existing crash cascade: a SeD crash drops every
  entry it owned (:meth:`MemoIndex.invalidate_owner`, called from the
  data manager's crash cleanup and the agents' ``remove_child``), and an
  eviction drops the entries referencing the evicted datum
  (:meth:`MemoIndex.invalidate_data`).  A client that pulled a hit whose
  owner died mid-fetch falls back to a normal re-solve, which repopulates
  the index.

Everything here is synchronous bookkeeping — lookups and population
schedule **zero** events — so a deployment with memoization disabled is
byte-identical to one where this module does not exist.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Set, Tuple

from ..core.data import DataHandle, Direction, FileRef

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..core.profile import Profile
    from ..core.requests import MemoHit
    from ..obs import Observability

__all__ = ["MemoIndex", "MemoStats", "descriptor_digest", "request_descriptor"]


def _normalize(value: Any) -> Any:
    """A stable, picklable stand-in for one argument value.

    Arrays hash by dtype/shape/raw bytes (object identity and memory
    layout must not matter), files by logical path + size + inline
    content, handles by their frozen identity triple.  Scalars and
    strings pass through — ``canonical_pickle`` settles those.
    """
    import numpy as np

    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        return ("ndarray", arr.dtype.str, arr.shape, arr.tobytes())
    if isinstance(value, FileRef):
        return ("file", value.path, value.nbytes, value.content)
    if isinstance(value, DataHandle):
        return ("handle", value.data_id, value.sed_name, value.nbytes)
    return value


def request_descriptor(profile: "Profile") -> Tuple:
    """The canonical descriptor of one request: what must match for two
    submits to be the same computation.

    Covers the service path, the full argument signature (direction,
    composite/base type, persistence mode — a PERSISTENT result is not
    interchangeable with a STICKY one) and every IN/INOUT *value*.  OUT
    slots contribute their declaration only: their values are client-side
    placeholders (or a previous call's results) and must not fragment the
    key space.
    """
    args = []
    for arg in profile.arguments:
        desc = arg.desc
        shape = (
            arg.direction.value,
            desc.composite.value,
            desc.base.cname,
            desc.persistence.value,
        )
        if arg.direction is Direction.OUT:
            args.append(shape)
        else:
            args.append(shape + (_normalize(arg.value),))
    return ("diet-request", profile.path, tuple(args))


def descriptor_digest(profile: "Profile") -> str:
    """sha256 of the canonically pickled descriptor — the memo key."""
    # Imported lazily: experiments imports the core deployment modules at
    # package level, so a module-level import here would cycle.
    from ..experiments.runner import canonical_pickle

    raw = canonical_pickle(request_descriptor(profile))
    return hashlib.sha256(raw).hexdigest()


@dataclass
class MemoStats:
    """Plain-int memo accounting (picklable, works with obs off)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    populated: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 before the first lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class MemoIndex:
    """The grid-wide request→result index, shared by every agent and SeD.

    Pure synchronous bookkeeping over plain dicts — safe to consult from
    inside a scheduling decision.  Counters mirror into the ``memo.hits``
    / ``memo.misses`` / ``memo.invalidations`` obs metrics when an
    enabled :class:`~repro.obs.Observability` is attached.
    """

    def __init__(self, obs: Optional["Observability"] = None):
        self.obs = obs
        self.stats = MemoStats()
        self._entries: Dict[str, "MemoHit"] = {}
        self._by_owner: Dict[str, Set[str]] = {}
        self._by_data: Dict[str, Set[str]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def _count(self, metric: str, now: float, n: int = 1) -> None:
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.counter(metric).inc(n, now)

    # -- population (SeD side) ---------------------------------------------------

    def put(self, hit: "MemoHit", now: float) -> bool:
        """Register a solved result; first writer wins (a concurrent solve
        of the same key on another SeD produced equivalent data — keeping
        the incumbent avoids churning the owner index).  True if stored.
        """
        if hit.key in self._entries:
            return False
        self._entries[hit.key] = hit
        self._by_owner.setdefault(hit.owner, set()).add(hit.key)
        for handle in hit.out_values.values():
            self._by_data.setdefault(handle.data_id, set()).add(hit.key)
        self.stats.populated += 1
        return True

    # -- lookup (MA side) --------------------------------------------------------

    def lookup(self, key: str, now: float) -> Optional["MemoHit"]:
        """Consult the index for one submit, counting hit or miss."""
        hit = self._entries.get(key)
        if hit is None:
            self.stats.misses += 1
            self._count("memo.misses", now)
            return None
        self.stats.hits += 1
        self._count("memo.hits", now)
        return hit

    def peek(self, key: str) -> Optional["MemoHit"]:
        """Like :meth:`lookup` but without touching the counters."""
        return self._entries.get(key)

    # -- invalidation ------------------------------------------------------------

    def _drop(self, key: str) -> None:
        hit = self._entries.pop(key, None)
        if hit is None:
            return
        owned = self._by_owner.get(hit.owner)
        if owned is not None:
            owned.discard(key)
            if not owned:
                del self._by_owner[hit.owner]
        for handle in hit.out_values.values():
            keys = self._by_data.get(handle.data_id)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_data[handle.data_id]

    def invalidate_owner(self, owner: str, now: float) -> int:
        """Drop every entry owned by a crashed/deregistered SeD."""
        keys = self._by_owner.get(owner)
        if not keys:
            return 0
        n = len(keys)
        for key in sorted(keys):
            self._drop(key)
        self.stats.invalidations += n
        self._count("memo.invalidations", now, n)
        return n

    def invalidate_data(self, data_id: str, now: float) -> int:
        """Drop every entry whose result references an evicted datum."""
        keys = self._by_data.get(data_id)
        if not keys:
            return 0
        n = len(keys)
        for key in sorted(keys):
            self._drop(key)
        self.stats.invalidations += n
        self._count("memo.invalidations", now, n)
        return n
