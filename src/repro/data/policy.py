"""Replication / placement policies for persistent data.

Pulled data always stays on the pulling SeD — that is DTM's
``DIET_PERSISTENT`` semantic (the data follows the computation and remains
where it was last used), not a policy choice.  Policies decide what happens
*proactively*, the moment a dataset is stored:

* ``none`` — nothing; consumers pull on demand;
* ``per-cluster`` — push one replica to a sibling SeD in the producer's
  cluster (crash resilience at NFS-fast-path cost, no WAN traffic);
* ``eager-broadcast`` — push a replica to one SeD in every *other* cluster
  (WAN cost up front, every cluster local afterwards).

Policies only *decide*; the mechanics (catalog registration, transfers)
live in ``manager``/``transfer``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .manager import DataManager

__all__ = [
    "ReplicationPolicy",
    "NoReplication",
    "PerClusterReplication",
    "EagerBroadcast",
    "REPLICATION_POLICIES",
    "make_replication_policy",
]


class ReplicationPolicy:
    name = "base"

    def on_store(self, manager: "DataManager", data_id: str, nbytes: int) -> None:
        """Hook fired after ``data_id`` lands in ``manager``'s store."""


class NoReplication(ReplicationPolicy):
    name = "none"


class PerClusterReplication(ReplicationPolicy):
    """Push one replica to a sibling SeD in the producer's own cluster."""

    name = "per-cluster"

    def on_store(self, manager: "DataManager", data_id: str, nbytes: int) -> None:
        grid = manager.grid
        if grid is None:
            return
        for target in grid.sibling_targets(manager):
            grid.spawn_replication(manager, target, data_id, nbytes)


class EagerBroadcast(ReplicationPolicy):
    """Push a replica to one SeD in every other cluster on store."""

    name = "eager-broadcast"

    def on_store(self, manager: "DataManager", data_id: str, nbytes: int) -> None:
        grid = manager.grid
        if grid is None:
            return
        for target in grid.broadcast_targets(manager):
            grid.spawn_replication(manager, target, data_id, nbytes)


REPLICATION_POLICIES = {
    NoReplication.name: NoReplication,
    PerClusterReplication.name: PerClusterReplication,
    EagerBroadcast.name: EagerBroadcast,
}


def make_replication_policy(name: str) -> ReplicationPolicy:
    try:
        return REPLICATION_POLICIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown replication policy {name!r}; "
            f"known: {sorted(REPLICATION_POLICIES)}"
        ) from None
