"""Hierarchical replica catalog (the DAGDA view of the MA/LA tree).

Each agent in the DIET hierarchy owns a :class:`CatalogNode`.  SeD data
managers register replicas at their LA's node; registrations bubble up to
the MA's root node so the whole hierarchy can answer "who holds data X?".
Lookups mirror service ``find``: a SeD asks its LA first (one hop) and the
LA forwards a miss to the MA (second hop) — the RPC side of that lives in
``core.agent`` ("dm_locate"); this module is the synchronous bookkeeping
underneath, which schedules no events of its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Replica", "CatalogNode"]


@dataclass(frozen=True)
class Replica:
    """One resident copy of a dataset, as seen by the catalog.

    Plain frozen data so replica lists can cross the simulated wire (and
    real pickles in the parallel runner) unchanged.
    """

    data_id: str
    sed_name: str
    host_name: str
    nbytes: int
    #: Name of the NFS volume the bytes live on ("" for in-memory store
    #: entries).  Lets same-volume readers skip the network entirely.
    volume: str = ""


class CatalogNode:
    """Replica index of one agent; registrations bubble to the parent."""

    def __init__(self, name: str, parent: Optional["CatalogNode"] = None):
        self.name = name
        self.parent = parent
        self._entries: Dict[str, Dict[str, Replica]] = {}

    def register(self, replica: Replica) -> None:
        self._entries.setdefault(replica.data_id, {})[replica.sed_name] = replica
        if self.parent is not None:
            self.parent.register(replica)

    def unregister(self, data_id: str, sed_name: str) -> None:
        copies = self._entries.get(data_id)
        if copies is not None:
            copies.pop(sed_name, None)
            if not copies:
                del self._entries[data_id]
        if self.parent is not None:
            self.parent.unregister(data_id, sed_name)

    def unregister_all(self, sed_name: str) -> List[Replica]:
        """Drop every replica hosted by ``sed_name`` (SeD crash)."""
        dropped = [
            r
            for copies in self._entries.values()
            for r in copies.values()
            if r.sed_name == sed_name
        ]
        for replica in dropped:
            self.unregister(replica.data_id, sed_name)
        return dropped

    def locate(self, data_id: str) -> List[Replica]:
        """All known replicas, in deterministic (sed_name) order."""
        copies = self._entries.get(data_id, {})
        return [copies[k] for k in sorted(copies)]

    def __contains__(self, data_id: str) -> bool:
        return data_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        n = sum(len(c) for c in self._entries.values())
        return f"CatalogNode({self.name!r}, {len(self._entries)} ids, {n} replicas)"
