"""Per-host content-addressed data stores (the DAGDA cache of one SeD).

Each SeD owns one :class:`DataStore`: a byte-capacity-bounded map of
``data_id -> StoreEntry`` holding the persisted argument values of past
solves plus any replicas pulled from peers.  DAGDA semantics (Caron et al.,
"DAGDA: Data Arrangement for Grid and Distributed Applications"):

* entries are *content-addressed* — a digest over the value lets the store
  recognize a dataset it already holds under another id and alias it
  instead of storing the bytes twice;
* ``DIET_STICKY`` entries are *pinned*: never evicted, never shipped to a
  peer;
* when capacity runs out, unpinned entries are evicted by a pluggable
  policy (LRU by default; a cost-aware policy keeps the entries that are
  expensive to refetch).

The store is pure bookkeeping over simulated timestamps its callers already
read — it never schedules events, so an idle data manager cannot perturb
the kernel determinism suite's recorded streams.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.exceptions import DataError

__all__ = [
    "StoreEntry",
    "DataStore",
    "StoreFullError",
    "EvictionPolicy",
    "LRUEviction",
    "CostAwareEviction",
    "EVICTION_POLICIES",
    "make_eviction",
    "content_digest",
]


class StoreFullError(DataError):
    """Capacity exhausted and nothing evictable (everything is pinned)."""


def content_digest(value: Any) -> str:
    """Stable digest of a stored value (the content address).

    Values are simulation payloads (FileRefs, numpy arrays, scalars); the
    digest only has to be deterministic within one process, so a canonical
    repr is hashed rather than a full serialization.
    """
    h = hashlib.sha256()
    tobytes = getattr(value, "tobytes", None)
    if tobytes is not None:  # numpy arrays and friends
        h.update(b"nd:")
        h.update(tobytes())
    else:
        h.update(repr(value).encode())
    return h.hexdigest()


@dataclass
class StoreEntry:
    """One resident dataset."""

    data_id: str
    value: Any
    nbytes: int
    #: DIET_STICKY: pinned entries are never evicted and never move.
    pinned: bool
    #: Estimated seconds to refetch this entry from its nearest replica
    #: (consumed by cost-aware eviction).
    cost: float
    created: float
    last_used: float
    #: Monotone insertion counter — the deterministic tie-break every
    #: eviction ranking ends with.
    seq: int
    digest: str = ""


class EvictionPolicy:
    """Ranks unpinned entries; the lowest-ranked is evicted first."""

    name = "base"

    def rank(self, entry: StoreEntry) -> tuple:
        raise NotImplementedError


class LRUEviction(EvictionPolicy):
    """Evict the least-recently-used entry first."""

    name = "lru"

    def rank(self, entry: StoreEntry) -> tuple:
        return (entry.last_used, entry.seq)


class CostAwareEviction(EvictionPolicy):
    """Evict the entry that is cheapest to refetch first.

    DAGDA's cost-based replacement: losing a dataset that a peer can
    restream in milliseconds is almost free; losing the only copy of a
    multi-GB restart dump costs a WAN transfer.  Ties fall back to LRU.
    """

    name = "cost"

    def rank(self, entry: StoreEntry) -> tuple:
        return (entry.cost, entry.last_used, entry.seq)


EVICTION_POLICIES = {
    LRUEviction.name: LRUEviction,
    CostAwareEviction.name: CostAwareEviction,
}


def make_eviction(name: str) -> EvictionPolicy:
    try:
        return EVICTION_POLICIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown eviction policy {name!r}; known: {sorted(EVICTION_POLICIES)}"
        ) from None


class DataStore:
    """A capacity-bounded, content-addressed entry map.

    Also implements the minimal mapping surface (``len``, ``in``, ``get``
    returning ``(value, nbytes)`` tuples, ``clear``) the pre-DAGDA SeD
    exposed as its raw ``data_store`` dict, so existing consumers keep
    working unchanged.
    """

    _seqs = itertools.count()

    def __init__(
        self,
        capacity_bytes: Optional[float] = None,
        eviction: Optional[EvictionPolicy] = None,
    ):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive (or None)")
        self.capacity_bytes = capacity_bytes
        self.eviction = eviction or LRUEviction()
        self._entries: Dict[str, StoreEntry] = {}
        self._by_digest: Dict[str, str] = {}
        self.used_bytes = 0

    # -- legacy dict surface -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, data_id: str) -> bool:
        return data_id in self._entries

    def get(self, data_id: str) -> Optional[Tuple[Any, int]]:
        entry = self._entries.get(data_id)
        return None if entry is None else (entry.value, entry.nbytes)

    def clear(self) -> None:
        self._entries.clear()
        self._by_digest.clear()
        self.used_bytes = 0

    # -- entry access -------------------------------------------------------------

    def entry(self, data_id: str) -> Optional[StoreEntry]:
        return self._entries.get(data_id)

    def data_ids(self) -> List[str]:
        return list(self._entries)

    def entries(self) -> List[StoreEntry]:
        return list(self._entries.values())

    def find_digest(self, digest: str) -> Optional[str]:
        """data_id of the resident entry with this content address."""
        return self._by_digest.get(digest)

    @property
    def pinned_bytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values() if e.pinned)

    # -- mutation -----------------------------------------------------------------

    def put(
        self,
        data_id: str,
        value: Any,
        nbytes: int,
        *,
        now: float,
        pinned: bool = False,
        cost: float = 0.0,
        digest: str = "",
    ) -> List[StoreEntry]:
        """Insert (or overwrite) an entry; returns the entries evicted to
        make room.  Raises :class:`StoreFullError` when the capacity cannot
        be met by evicting unpinned entries."""
        if nbytes < 0:
            raise DataError("data size must be non-negative")
        evicted = []
        old = self._entries.get(data_id)
        free_after = self.used_bytes - (old.nbytes if old else 0)
        if self.capacity_bytes is not None:
            if nbytes > self.capacity_bytes:
                raise StoreFullError(
                    f"{data_id!r} ({nbytes} B) exceeds store capacity "
                    f"{self.capacity_bytes:.0f} B"
                )
            while free_after + nbytes > self.capacity_bytes:
                victim = self._pick_victim(exclude=data_id)
                if victim is None:
                    raise StoreFullError(
                        f"cannot fit {data_id!r} ({nbytes} B): "
                        f"{self.pinned_bytes} B pinned of "
                        f"{self.capacity_bytes:.0f} B capacity"
                    )
                self.remove(victim.data_id)
                evicted.append(victim)
                free_after = self.used_bytes - (
                    old.nbytes if old and old.data_id in self._entries else 0
                )
        if old is not None:
            self.remove(data_id)
        entry = StoreEntry(
            data_id=data_id,
            value=value,
            nbytes=nbytes,
            pinned=pinned,
            cost=cost,
            created=now,
            last_used=now,
            seq=next(DataStore._seqs),
            digest=digest,
        )
        self._entries[data_id] = entry
        if digest:
            self._by_digest[digest] = data_id
        self.used_bytes += nbytes
        return evicted

    def _pick_victim(self, exclude: str) -> Optional[StoreEntry]:
        candidates = [
            e for e in self._entries.values() if not e.pinned and e.data_id != exclude
        ]
        if not candidates:
            return None
        return min(candidates, key=self.eviction.rank)

    def remove(self, data_id: str) -> Optional[StoreEntry]:
        entry = self._entries.pop(data_id, None)
        if entry is None:
            return None
        self.used_bytes -= entry.nbytes
        if entry.digest and self._by_digest.get(entry.digest) == data_id:
            del self._by_digest[entry.digest]
        return entry

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "inf" if self.capacity_bytes is None else f"{self.capacity_bytes:.0f}"
        return f"DataStore({len(self._entries)} entries, {self.used_bytes}/{cap} B)"
