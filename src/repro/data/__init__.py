"""DAGDA-style distributed data management for the DIET reproduction.

The paper's campaign ships the same initial conditions and restart dumps
over and over because nothing honoured DIET's persistence modes.  This
package is the DTM/DAGDA substitute that does:

* :mod:`~repro.data.store` — per-SeD content-addressed stores with byte
  capacity, STICKY pinning, and pluggable eviction;
* :mod:`~repro.data.catalog` — the hierarchical replica catalog threaded
  through the MA/LA tree;
* :mod:`~repro.data.transfer` — coalescing peer-to-peer pulls with
  cluster-local NFS fast paths;
* :mod:`~repro.data.policy` — replication policies (none, per-cluster,
  eager-broadcast);
* :mod:`~repro.data.manager` — the per-SeD manager + deployment-wide
  :class:`~repro.data.manager.DataGrid`, including the transfer-cost hook
  MCT scheduling uses for data locality;
* :mod:`~repro.data.memo` — the grid-wide result memo keyed on canonical
  request descriptors, short-circuiting a submit to a replica hit.
"""

from __future__ import annotations

from typing import Optional

from .catalog import CatalogNode, Replica
from .manager import DataGrid, DataGridStats, DataManager, DataManagerConfig
from .memo import MemoIndex, MemoStats, descriptor_digest, request_descriptor
from .policy import (
    EagerBroadcast,
    NoReplication,
    PerClusterReplication,
    ReplicationPolicy,
    make_replication_policy,
)
from .store import (
    CostAwareEviction,
    DataStore,
    EvictionPolicy,
    LRUEviction,
    StoreEntry,
    StoreFullError,
    content_digest,
    make_eviction,
)
from .transfer import TransferManager

__all__ = [
    "CatalogNode",
    "CostAwareEviction",
    "DataGrid",
    "DataGridStats",
    "DataManager",
    "DataManagerConfig",
    "DataStore",
    "EagerBroadcast",
    "EvictionPolicy",
    "LRUEviction",
    "MemoIndex",
    "MemoStats",
    "NoReplication",
    "PerClusterReplication",
    "Replica",
    "ReplicationPolicy",
    "StoreEntry",
    "StoreFullError",
    "TransferManager",
    "campaign_data_config",
    "content_digest",
    "descriptor_digest",
    "make_eviction",
    "make_replication_policy",
    "policy_keeps_results",
    "request_descriptor",
]

#: Campaign-level ``--data-policy`` values and the manager configuration
#: each one deploys.  ``None``/missing means "no data grid at all" — the
#: deployment is wired exactly as before this subsystem existed.
DATA_POLICIES = ("volatile", "persistent", "replicated", "broadcast")


def campaign_data_config(policy: Optional[str]) -> Optional[DataManagerConfig]:
    """Map a campaign ``--data-policy`` name to a manager config.

    ``"volatile"`` wires the grid but keeps every argument volatile — the
    determinism control arm: all bookkeeping attached, zero behaviour
    change.
    """
    if policy is None:
        return None
    if policy in ("volatile", "persistent"):
        return DataManagerConfig()
    if policy == "replicated":
        return DataManagerConfig(replication="per-cluster")
    if policy == "broadcast":
        return DataManagerConfig(replication="eager-broadcast")
    raise ValueError(f"unknown data policy {policy!r}; known: {DATA_POLICIES}")


def policy_keeps_results(policy: Optional[str]) -> bool:
    """Does this campaign policy persist zoom2 result tarballs on SeDs?"""
    return policy in ("persistent", "replicated", "broadcast")
