"""Model of the Grid'5000 deployment used in the paper (§5.1).

The paper deploys DIET over 5 sites / 6 clusters of Grid'5000:

* 1 Master Agent on a single node (together with omniORB, monitoring tools
  and the client) — we place it in Lyon;
* 6 Local Agents, one per cluster (2 clusters in Lyon; 1 each in Lille,
  Nancy, Toulouse, Sophia);
* 11 SeDs — two per cluster, except one Lyon cluster that could only host
  one SeD "due to reservation restrictions"; each SeD controls 16 machines
  (AMD Opteron 246/248/250/252/275).

The topology is a star of site routers around a RENATER core, with
1 Gb/s site uplinks (10 Gb/s core), LAN links inside each site and an NFS
volume per cluster.  Node models and per-cluster I/O efficiency come from
the calibration discussed in DESIGN.md (they set the Figure 4-right
spread: Toulouse ≈ 15 h vs Nancy ≈ 10.5 h of busy time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.engine import Engine
from ..sim.network import Host, Link, Network
from .batch import BatchScheduler
from .machines import MachineSpec, machine
from .nfs import NfsVolume

__all__ = ["ClusterSpec", "Cluster", "Site", "Grid5000Platform",
           "build_grid5000", "PAPER_CLUSTERS", "NODES_PER_SED"]

#: Each SeD controls this many machines (§4.1: "typically 32 machines to run
#: a 256^3 particules simulation"; §5.1 uses 16 per SeD for the 128^3 runs).
NODES_PER_SED = 16


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of one Grid'5000 cluster as used in the paper."""

    site: str
    name: str
    machine_key: str
    total_nodes: int
    n_seds: int = 2
    #: Effective efficiency of the cluster for the RAMSES workload relative
    #: to pure clock scaling (captures NFS throughput and memory differences;
    #: calibrated so the Figure 4 busy-time spread matches the paper).
    efficiency: float = 1.0
    #: WAN one-way latency from the site router to the RENATER core (s).
    wan_latency: float = 4.0e-3

    @property
    def full_name(self) -> str:
        return f"{self.site}-{self.name}"


#: The six clusters of §5.1.  Lyon hosted the MA and client; its sagittaire
#: cluster had a single SeD because of reservation restrictions.
PAPER_CLUSTERS: List[ClusterSpec] = [
    ClusterSpec("lyon", "capricorne", "opteron-246", 56, n_seds=2,
                efficiency=1.00, wan_latency=1.0e-3),
    ClusterSpec("lyon", "sagittaire", "opteron-250", 70, n_seds=1,
                efficiency=1.00, wan_latency=1.0e-3),
    ClusterSpec("lille", "chti", "opteron-248", 53, n_seds=2,
                efficiency=1.00, wan_latency=4.5e-3),
    ClusterSpec("nancy", "grillon", "opteron-252", 47, n_seds=2,
                efficiency=1.00, wan_latency=4.0e-3),
    ClusterSpec("toulouse", "violette", "opteron-246", 57, n_seds=2,
                efficiency=0.91, wan_latency=5.0e-3),
    ClusterSpec("sophia", "helios", "opteron-275", 56, n_seds=2,
                efficiency=1.00, wan_latency=5.5e-3),
]


@dataclass
class Cluster:
    """A built cluster: frontend host, SeD hosts, NFS volume, reservations."""

    spec: ClusterSpec
    frontend: Host
    sed_hosts: List[Host]
    nfs: NfsVolume
    node_spec: MachineSpec

    @property
    def full_name(self) -> str:
        return self.spec.full_name

    @property
    def sed_speed(self) -> float:
        """Effective normalized speed seen by one SeD's 16-node job."""
        return self.node_spec.speed * self.spec.efficiency


@dataclass
class Site:
    name: str
    router: Host
    clusters: List[Cluster] = field(default_factory=list)


@dataclass
class Grid5000Platform:
    """Everything the middleware deployment needs to know about the testbed."""

    engine: Engine
    network: Network
    sites: Dict[str, Site]
    clusters: Dict[str, Cluster]
    batch: BatchScheduler
    client_host: Host
    ma_host: Host

    @property
    def sed_hosts(self) -> List[Host]:
        # clusters is insertion-ordered (build order == spec order), which
        # keeps SeD enumeration deterministic for the schedulers.
        out: List[Host] = []
        for cluster in self.clusters.values():
            out.extend(cluster.sed_hosts)
        return out

    def cluster_of_host(self, host_name: str) -> Optional[Cluster]:
        for cluster in self.clusters.values():
            if (host_name == cluster.frontend.name
                    or any(h.name == host_name for h in cluster.sed_hosts)):
                return cluster
        return None


# -- link parameters (RENATER, circa 2006) -------------------------------------

_CORE_BW = 10e9 / 8          # 10 Gb/s RENATER core, bytes/s
_SITE_UPLINK_BW = 1e9 / 8    # 1 Gb/s site uplink
_LAN_BW = 1e9 / 8            # GigE inside a site
_LAN_LATENCY = 0.05e-3       # 50 us switch hop


def build_grid5000(engine: Engine,
                   cluster_specs: Optional[List[ClusterSpec]] = None,
                   nodes_per_sed: int = NODES_PER_SED) -> Grid5000Platform:
    """Build the §5.1 testbed model on ``engine``.

    The builder goes through the batch scheduler for every block of nodes a
    SeD controls, so reservation caps genuinely produce the 11-SeD layout
    (sagittaire's cap admits a single 16-node block).
    """
    specs = list(PAPER_CLUSTERS) if cluster_specs is None else list(cluster_specs)
    network = Network(engine)
    batch = BatchScheduler()

    core = network.add_host(Host(engine, "renater-core"))
    sites: Dict[str, Site] = {}
    clusters: Dict[str, Cluster] = {}

    for spec in specs:
        site = sites.get(spec.site)
        if site is None:
            router = network.add_host(Host(engine, f"{spec.site}-router"))
            network.connect(router.name, core.name,
                            Link(engine, f"wan-{spec.site}", spec.wan_latency,
                                 _SITE_UPLINK_BW, wan=True))
            site = Site(spec.site, router)
            sites[spec.site] = site

        node_spec = machine(spec.machine_key)
        # Reservation cap reproduces the "one SeD only" restriction when the
        # admissible nodes cannot fit two SeD blocks.
        user_cap = nodes_per_sed if spec.n_seds == 1 else None
        batch.add_cluster(spec.full_name, spec.total_nodes, user_cap=user_cap)

        frontend = network.add_host(
            Host(engine, f"{spec.full_name}-frontend", speed=node_spec.speed))
        network.connect(frontend.name, site.router.name,
                        Link(engine, f"lan-{spec.full_name}", _LAN_LATENCY, _LAN_BW))

        nfs = NfsVolume(engine, f"nfs-{spec.full_name}")
        nfs.export_to(frontend.name)

        sed_hosts: List[Host] = []
        for i in range(spec.n_seds + 1):  # attempt one extra to exercise the cap
            if len(sed_hosts) >= spec.n_seds:
                break
            try:
                batch.reserve(spec.full_name, nodes_per_sed,
                              walltime_s=24 * 3600.0, owner="diet")
            except Exception:
                break
            sed = network.add_host(Host(
                engine, f"{spec.full_name}-sed{len(sed_hosts)}",
                speed=node_spec.speed * spec.efficiency,
                cores=1,
                properties={
                    "cluster": spec.full_name,
                    "n_nodes": nodes_per_sed,
                    "node_model": node_spec.model,
                    "memory_gib": node_spec.memory_gib * nodes_per_sed,
                }))
            network.connect(sed.name, frontend.name,
                            Link(engine, f"lan-{sed.name}", _LAN_LATENCY, _LAN_BW))
            nfs.export_to(sed.name)
            sed_hosts.append(sed)

        cluster = Cluster(spec, frontend, sed_hosts, nfs, node_spec)
        site.clusters.append(cluster)
        clusters[spec.full_name] = cluster

    # Client + MA share a Lyon node (paper: MA, omniORB, monitoring and the
    # client all on a single node).
    lyon_router = sites["lyon"].router if "lyon" in sites else core
    ma_host = network.add_host(Host(engine, "lyon-ma", speed=2.4))
    network.connect(ma_host.name, lyon_router.name,
                    Link(engine, "lan-lyon-ma", _LAN_LATENCY, _LAN_BW))

    return Grid5000Platform(engine=engine, network=network, sites=sites,
                            clusters=clusters, batch=batch,
                            client_host=ma_host, ma_host=ma_host)
