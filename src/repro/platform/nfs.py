"""Per-cluster NFS working-directory model.

§4.1 of the paper: *"The current version of RAMSES requires a NFS working
directory in order to write the output files, hence restricting the possible
types of solving architectures."*  Consequently every stage of one
simulation (IC generation, solve, post-processing) must run on machines
that mount the same NFS volume — in the paper, one cluster.

This module models that constraint: an :class:`NfsVolume` knows which hosts
mount it, tracks used capacity, and charges simulated time for reads and
writes at the NFS server's effective throughput.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Set

from ..sim.engine import Engine, Event
from ..sim.resources import Resource

__all__ = ["NfsVolume", "NfsError"]


class NfsError(RuntimeError):
    """Raised on capacity overflow or access from a non-mounting host."""


class NfsVolume:
    """A shared filesystem exported to a fixed set of hosts.

    ``throughput`` is effective bytes/second for sequential access;
    ``max_concurrent`` models NFS daemon threads — beyond it, accesses
    queue, which is the mechanism behind per-cluster I/O efficiency
    differences in the timing reproduction.
    """

    def __init__(self, engine: Engine, name: str, capacity_bytes: float = 1e12,
                 throughput: float = 60e6, max_concurrent: int = 4):
        if capacity_bytes <= 0 or throughput <= 0:
            raise ValueError("capacity and throughput must be positive")
        self.engine = engine
        self.name = name
        self.capacity_bytes = float(capacity_bytes)
        self.throughput = float(throughput)
        self._mounts: Set[str] = set()
        self._files: Dict[str, int] = {}
        self._daemons = Resource(engine, capacity=max_concurrent)

    # -- mounting ---------------------------------------------------------------

    def export_to(self, host_name: str) -> None:
        self._mounts.add(host_name)

    def is_mounted_on(self, host_name: str) -> bool:
        return host_name in self._mounts

    def _check_mount(self, host_name: str) -> None:
        if host_name not in self._mounts:
            raise NfsError(f"host {host_name!r} does not mount NFS volume {self.name!r}")

    # -- contents ---------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return sum(self._files.values())

    def exists(self, path: str) -> bool:
        return path in self._files

    def size_of(self, path: str) -> int:
        try:
            return self._files[path]
        except KeyError:
            raise NfsError(f"no such file on {self.name!r}: {path!r}") from None

    def unlink(self, path: str) -> None:
        self._files.pop(path, None)

    def listing(self) -> Dict[str, int]:
        return dict(self._files)

    # -- timed access -------------------------------------------------------------

    def write(self, host_name: str, path: str,
              nbytes: int) -> Generator[Event, Any, None]:
        """Process helper: write ``nbytes`` to ``path`` from ``host_name``."""
        self._check_mount(host_name)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        new_used = self.used_bytes - self._files.get(path, 0) + nbytes
        if new_used > self.capacity_bytes:
            raise NfsError(
                f"volume {self.name!r} full: need {new_used}, capacity {self.capacity_bytes}")
        req = yield from self._daemons.acquire()
        try:
            yield self.engine.timeout(nbytes / self.throughput)
        finally:
            self._daemons.release(req)
        self._files[path] = nbytes

    def read(self, host_name: str, path: str) -> Generator[Event, Any, int]:
        """Process helper: read ``path``; returns its size in bytes."""
        self._check_mount(host_name)
        nbytes = self.size_of(path)
        req = yield from self._daemons.acquire()
        try:
            yield self.engine.timeout(nbytes / self.throughput)
        finally:
            self._daemons.release(req)
        return nbytes

    def __repr__(self) -> str:
        return f"NfsVolume({self.name!r}, mounts={len(self._mounts)}, files={len(self._files)})"
