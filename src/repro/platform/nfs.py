"""Per-cluster NFS working-directory model.

§4.1 of the paper: *"The current version of RAMSES requires a NFS working
directory in order to write the output files, hence restricting the possible
types of solving architectures."*  Consequently every stage of one
simulation (IC generation, solve, post-processing) must run on machines
that mount the same NFS volume — in the paper, one cluster.

This module models that constraint: an :class:`NfsVolume` knows which hosts
mount it, tracks used capacity, and charges simulated time for reads and
writes at the NFS server's effective throughput.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List, Set, Tuple

from ..sim.engine import Engine, Event
from ..sim.resources import Resource

__all__ = ["NfsVolume", "NfsError"]


class NfsError(RuntimeError):
    """Raised on capacity overflow or access from a non-mounting host."""


class NfsVolume:
    """A shared filesystem exported to a fixed set of hosts.

    ``throughput`` is effective bytes/second for sequential access;
    ``max_concurrent`` models NFS daemon threads — beyond it, accesses
    queue, which is the mechanism behind per-cluster I/O efficiency
    differences in the timing reproduction.
    """

    def __init__(self, engine: Engine, name: str, capacity_bytes: float = 1e12,
                 throughput: float = 60e6, max_concurrent: int = 4):
        if capacity_bytes <= 0 or throughput <= 0:
            raise ValueError("capacity and throughput must be positive")
        self.engine = engine
        self.name = name
        self.capacity_bytes = float(capacity_bytes)
        self.throughput = float(throughput)
        self._mounts: Set[str] = set()
        self._files: Dict[str, int] = {}
        self._daemons = Resource(engine, capacity=max_concurrent)
        #: In-progress write reservations: token -> (host, nbytes).  Counted
        #: against capacity so two concurrent writes cannot jointly
        #: oversubscribe the volume; released when the write lands — or via
        #: :meth:`release_host` when the writing host crashes mid-write.
        self._reservations: Dict[int, Tuple[str, int]] = {}
        self._resv_tokens = itertools.count()

    # -- mounting ---------------------------------------------------------------

    def export_to(self, host_name: str) -> None:
        self._mounts.add(host_name)

    def is_mounted_on(self, host_name: str) -> bool:
        return host_name in self._mounts

    def mounts(self) -> List[str]:
        """Mounting hosts in deterministic (sorted) order."""
        return sorted(self._mounts)

    def _check_mount(self, host_name: str) -> None:
        if host_name not in self._mounts:
            raise NfsError(f"host {host_name!r} does not mount NFS volume {self.name!r}")

    # -- contents ---------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return sum(self._files.values())

    @property
    def reserved_bytes(self) -> int:
        """Bytes claimed by writes still in flight."""
        return sum(n for _, n in self._reservations.values())

    def exists(self, path: str) -> bool:
        return path in self._files

    def size_of(self, path: str) -> int:
        try:
            return self._files[path]
        except KeyError:
            raise NfsError(f"no such file on {self.name!r}: {path!r}") from None

    def unlink(self, path: str) -> None:
        self._files.pop(path, None)

    def listing(self) -> Dict[str, int]:
        return dict(self._files)

    # -- timed access -------------------------------------------------------------

    def write(self, host_name: str, path: str,
              nbytes: int) -> Generator[Event, Any, None]:
        """Process helper: write ``nbytes`` to ``path`` from ``host_name``."""
        self._check_mount(host_name)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        new_used = (self.used_bytes + self.reserved_bytes
                    - self._files.get(path, 0) + nbytes)
        if new_used > self.capacity_bytes:
            raise NfsError(
                f"volume {self.name!r} full: need {new_used}, capacity {self.capacity_bytes}")
        token = next(self._resv_tokens)
        self._reservations[token] = (host_name, nbytes)
        try:
            req = yield from self._daemons.acquire()
            try:
                yield self.engine.timeout(nbytes / self.throughput)
            finally:
                self._daemons.release(req)
            if token in self._reservations:
                # Reservation still live (the host did not crash under us):
                # the write lands.
                self._files[path] = nbytes
        finally:
            self._reservations.pop(token, None)

    def release_host(self, host_name: str) -> int:
        """Drop every in-flight write reservation held by ``host_name``.

        Called when the host crashes mid-write: the partial file never
        lands, so its reserved capacity must not leak.  Idempotent; returns
        how many reservations were released.
        """
        stale = [t for t, (h, _) in self._reservations.items() if h == host_name]
        for token in stale:
            del self._reservations[token]
        return len(stale)

    def read(self, host_name: str, path: str) -> Generator[Event, Any, int]:
        """Process helper: read ``path``; returns its size in bytes."""
        self._check_mount(host_name)
        nbytes = self.size_of(path)
        yield from self.read_bytes(host_name, nbytes)
        return nbytes

    def read_bytes(self, host_name: str,
                   nbytes: int) -> Generator[Event, Any, None]:
        """Charge a timed read of ``nbytes`` without naming a file (used by
        the data manager's cluster-local fast path, where the dataset is a
        sibling's staged copy rather than an entry in ``_files``)."""
        self._check_mount(host_name)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        req = yield from self._daemons.acquire()
        try:
            yield self.engine.timeout(nbytes / self.throughput)
        finally:
            self._daemons.release(req)

    def __repr__(self) -> str:
        return f"NfsVolume({self.name!r}, mounts={len(self._mounts)}, files={len(self._files)})"
