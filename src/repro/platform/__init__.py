"""Grid'5000 platform model: machines, topology, NFS volumes, reservations."""

from .batch import BatchScheduler, Reservation, ReservationError
from .grid5000 import (
    Cluster,
    ClusterSpec,
    Grid5000Platform,
    NODES_PER_SED,
    PAPER_CLUSTERS,
    Site,
    build_grid5000,
)
from .machines import MachineSpec, OPTERON_CATALOGUE, machine
from .nfs import NfsError, NfsVolume

__all__ = [
    "BatchScheduler",
    "Cluster",
    "ClusterSpec",
    "Grid5000Platform",
    "MachineSpec",
    "NfsError",
    "NfsVolume",
    "NODES_PER_SED",
    "OPTERON_CATALOGUE",
    "PAPER_CLUSTERS",
    "Reservation",
    "ReservationError",
    "Site",
    "build_grid5000",
    "machine",
]
