"""Catalogue of the machine types used in the paper's experiment.

The paper (§5.1) reports that each SeD controlled 16 machines drawn from
AMD Opteron 246, 248, 250, 252 and 275 nodes.  Speeds are expressed in
normalized GFlop-like units proportional to clock rate (the Opteron 2xx
series scales nearly linearly with clock for the RAMSES workload, which is
memory-bandwidth friendly thanks to its sweep structure); the 275 is a
dual-core part at 2.2 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["MachineSpec", "OPTERON_CATALOGUE", "machine"]


@dataclass(frozen=True)
class MachineSpec:
    """A compute-node model.

    ``speed`` is in normalized work units per second (1.0 == 1 GHz Opteron
    core); cost models express workloads in the same normalized units.
    """

    model: str
    clock_ghz: float
    cores: int
    memory_gib: float

    @property
    def speed(self) -> float:
        return self.clock_ghz

    @property
    def node_speed(self) -> float:
        """Aggregate per-node speed over all cores."""
        return self.clock_ghz * self.cores


#: The Opteron parts named in §5.1.
OPTERON_CATALOGUE: Dict[str, MachineSpec] = {
    "opteron-246": MachineSpec("AMD Opteron 246", 2.0, 1, 2.0),
    "opteron-248": MachineSpec("AMD Opteron 248", 2.2, 1, 2.0),
    "opteron-250": MachineSpec("AMD Opteron 250", 2.4, 1, 4.0),
    "opteron-252": MachineSpec("AMD Opteron 252", 2.6, 1, 4.0),
    "opteron-275": MachineSpec("AMD Opteron 275", 2.2, 2, 4.0),
}


def machine(key: str) -> MachineSpec:
    """Look up a machine spec by catalogue key."""
    try:
        return OPTERON_CATALOGUE[key]
    except KeyError:
        raise KeyError(
            f"unknown machine {key!r}; known: {sorted(OPTERON_CATALOGUE)}") from None
