"""OAR-like batch reservation ledger.

Grid'5000 nodes are obtained through advance reservations (OAR).  The paper
inherits one visible consequence: *"one cluster of Lyon had only one SED due
to reservation restrictions"* — 11 SeDs instead of 12.  This module models
the reservation book-keeping so the topology builder can express exactly
that situation (and tests can exercise rejection paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Reservation", "BatchScheduler", "ReservationError"]


class ReservationError(RuntimeError):
    """Raised when a reservation cannot be granted."""


@dataclass
class Reservation:
    """A granted block of nodes on one cluster."""

    job_id: int
    cluster: str
    n_nodes: int
    walltime_s: float
    owner: str


@dataclass
class _ClusterState:
    total_nodes: int
    free_nodes: int
    #: Administrative cap on nodes grantable to one user (None == no cap).
    user_cap: Optional[int] = None
    reservations: List[Reservation] = field(default_factory=list)


class BatchScheduler:
    """Tracks node availability per cluster and grants reservations."""

    def __init__(self):
        self._clusters: Dict[str, _ClusterState] = {}
        self._next_job_id = 1

    def add_cluster(self, name: str, total_nodes: int,
                    user_cap: Optional[int] = None) -> None:
        if total_nodes < 1:
            raise ValueError("total_nodes must be >= 1")
        if name in self._clusters:
            raise ValueError(f"duplicate cluster {name!r}")
        self._clusters[name] = _ClusterState(total_nodes, total_nodes, user_cap)

    def free_nodes(self, cluster: str) -> int:
        return self._state(cluster).free_nodes

    def _state(self, cluster: str) -> _ClusterState:
        try:
            return self._clusters[cluster]
        except KeyError:
            raise ReservationError(f"unknown cluster {cluster!r}") from None

    def reserve(self, cluster: str, n_nodes: int, walltime_s: float,
                owner: str = "user") -> Reservation:
        """Grant ``n_nodes`` on ``cluster`` or raise :class:`ReservationError`."""
        state = self._state(cluster)
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if n_nodes > state.free_nodes:
            raise ReservationError(
                f"cluster {cluster!r}: requested {n_nodes} nodes, only "
                f"{state.free_nodes} free")
        if state.user_cap is not None:
            already = sum(r.n_nodes for r in state.reservations if r.owner == owner)
            if already + n_nodes > state.user_cap:
                raise ReservationError(
                    f"cluster {cluster!r}: user cap {state.user_cap} nodes "
                    f"(owner {owner!r} holds {already}, wants {n_nodes} more)")
        res = Reservation(self._next_job_id, cluster, n_nodes, walltime_s, owner)
        self._next_job_id += 1
        state.free_nodes -= n_nodes
        state.reservations.append(res)
        return res

    def release(self, reservation: Reservation) -> None:
        state = self._state(reservation.cluster)
        try:
            state.reservations.remove(reservation)
        except ValueError:
            raise ReservationError("reservation not active") from None
        state.free_nodes += reservation.n_nodes

    def reservations(self, cluster: str) -> List[Reservation]:
        return list(self._state(cluster).reservations)
