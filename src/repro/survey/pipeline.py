"""The survey pipeline as a :class:`~repro.survey.dag.SurveyDAG`.

Per cosmology point an IC→run→lensing chain, then a pairwise reduction
tree folding every point's convergence map into one survey-mean map (the
fan-in stage; with four or more points the tree contains diamonds, which
is exactly the dependency shape the executor's tests pin).

Inter-node data follows the campaign data policy
(:func:`~repro.services.lensing_service.survey_result_modes`): the
persisting policies pass PERSISTENT ``DataHandle``\\ s between stages —
bytes stay on the SeDs and move peer-to-peer through ``repro.data`` —
while the volatile policy round-trips every product through the client.
Profiles are built fresh per attempt from the dependency results, so
retries after an upstream refresh automatically pick up new handles.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Union

from ..core.data import FileRef, PersistenceMode
from ..core.profile import Profile
from ..services.lensing_service import (
    Z_SOURCE_SCALE,
    lensing_convergence_desc,
    survey_ic_desc,
    survey_reduce_desc,
    survey_run_desc,
    survey_result_modes,
)
from .dag import NodeResult, SurveyDAG
from .grid import CosmologyPoint, ParameterGrid

__all__ = ["build_survey_dag"]

Results = Mapping[str, NodeResult]


def _cosmology_ref(point: CosmologyPoint) -> FileRef:
    return FileRef.from_text(f"{point.label}.ini", point.cosmology_text())


def _ic_builder(
    point: CosmologyPoint, resolution: int, seed: int, mode: PersistenceMode
):
    def build(results: Results) -> Profile:
        profile = survey_ic_desc(mode).instantiate()
        profile.parameter(0).set(_cosmology_ref(point))
        profile.parameter(1).set(int(resolution))
        profile.parameter(2).set(int(seed))
        profile.parameter(3).set(None)
        profile.parameter(4).set(None)
        return profile

    return build


def _run_builder(ic_id: str, resolution: int, n_planes: int, mode: PersistenceMode):
    def build(results: Results) -> Profile:
        profile = survey_run_desc(mode).instantiate()
        profile.parameter(0).set(results[ic_id].output(3))
        profile.parameter(1).set(int(resolution))
        profile.parameter(2).set(int(n_planes))
        profile.parameter(3).set(None)
        profile.parameter(4).set(None)
        return profile

    return build


def _lensing_builder(
    run_id: str,
    point: CosmologyPoint,
    resolution: int,
    n_planes: int,
    z_source: float,
    mode: PersistenceMode,
):
    def build(results: Results) -> Profile:
        profile = lensing_convergence_desc(mode).instantiate()
        profile.parameter(0).set(results[run_id].output(3))
        profile.parameter(1).set(_cosmology_ref(point))
        profile.parameter(2).set(int(resolution))
        profile.parameter(3).set(int(n_planes))
        profile.parameter(4).set(int(round(z_source * Z_SOURCE_SCALE)))
        profile.parameter(5).set(None)
        profile.parameter(6).set(None)
        return profile

    return build


def _reduce_builder(
    a_id: str,
    b_id: str,
    weight_a: int,
    weight_b: int,
    resolution: int,
    mode: PersistenceMode,
):
    def build(results: Results) -> Profile:
        profile = survey_reduce_desc(mode).instantiate()
        profile.parameter(0).set(results[a_id].output(5))
        profile.parameter(1).set(results[b_id].output(5))
        profile.parameter(2).set(int(weight_a))
        profile.parameter(3).set(int(weight_b))
        profile.parameter(4).set(int(resolution))
        profile.parameter(5).set(None)
        profile.parameter(6).set(None)
        return profile

    return build


def build_survey_dag(
    points: Union[ParameterGrid, Iterable[CosmologyPoint]],
    resolution: int = 64,
    n_planes: int = 8,
    z_source: float = 1.0,
    data_policy: Optional[str] = "persistent",
    realization_seed: int = 1,
    name: str = "survey",
    prefix: str = "",
    with_reduce: bool = True,
    dag: Optional[SurveyDAG] = None,
) -> SurveyDAG:
    """Build the IC→run→lensing(+reduce) DAG over ``points``.

    ``realization_seed`` is part of every IC request, so two clients
    building DAGs over the same grid with the same seed submit
    byte-identical requests — the duplicated-cosmology leg that should
    memo-hit.  Pass ``prefix`` to namespace node ids when several DAGs
    share bookkeeping, and ``dag`` to extend an existing one.
    """
    point_list = list(points)
    if not point_list:
        raise ValueError("survey needs at least one cosmology point")
    dag = dag if dag is not None else SurveyDAG(name=name)
    inter_mode, final_mode = survey_result_modes(data_policy)

    # (node id producing a map at arg 5, number of maps folded into it)
    maps = []
    for index, point in enumerate(point_list):
        pid = f"{prefix}p{index:03d}"
        map_mode = (
            final_mode if (len(point_list) == 1 or not with_reduce) else inter_mode
        )
        ic_id = dag.add_node(
            f"{pid}:ic",
            "surveyIC",
            _ic_builder(point, resolution, realization_seed, inter_mode),
            stage="ic",
            point=point.label,
        )
        run_id = dag.add_node(
            f"{pid}:run",
            "surveyRun",
            _run_builder(ic_id, resolution, n_planes, inter_mode),
            deps=(ic_id,),
            stage="run",
            point=point.label,
        )
        lens_id = dag.add_node(
            f"{pid}:lens",
            "lensingConvergence",
            _lensing_builder(run_id, point, resolution, n_planes, z_source, map_mode),
            deps=(run_id,),
            stage="lensing",
            point=point.label,
        )
        maps.append((lens_id, 1))

    if with_reduce:
        level = 0
        while len(maps) > 1:
            folded = []
            for pair in range(0, len(maps) - 1, 2):
                (a_id, wa), (b_id, wb) = maps[pair], maps[pair + 1]
                mode = final_mode if len(maps) <= 2 else inter_mode
                rid = dag.add_node(
                    f"{prefix}reduce-L{level}-{pair // 2}",
                    "surveyReduce",
                    _reduce_builder(a_id, b_id, wa, wb, resolution, mode),
                    deps=(a_id, b_id),
                    stage="reduce",
                )
                folded.append((rid, wa + wb))
            if len(maps) % 2:
                folded.append(maps[-1])
            maps = folded
            level += 1
    return dag
