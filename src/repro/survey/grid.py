"""Cosmological parameter grids for survey campaigns.

A survey sweeps a handful of background-cosmology parameters (the
LensTools set: H0, Ωm, Ωb, σ8, ns, w0) over a grid and runs the same
IC→run→lensing chain at every point.  Points are value objects: frozen,
hashable, and digested through
:func:`~repro.experiments.runner.canonical_pickle` so the same cosmology
always hashes to the same key on any worker in any process — which is
what lets identical points memo-hit across clients.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, replace
from itertools import product
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "PARAMETER_NAMES",
    "CosmologyPoint",
    "ParameterGrid",
    "parse_cosmology_text",
]

#: The sweep-able parameters, in canonical order.
PARAMETER_NAMES = ("h0", "omega_m", "omega_b", "sigma8", "ns", "w0")


@dataclass(frozen=True)
class CosmologyPoint:
    """One point of the survey: a flat w0CDM background cosmology.

    Defaults are the LensTools fiducial model (Om0.260, si0.800).
    """

    #: Hubble constant, km/s/Mpc.
    h0: float = 72.0
    #: total matter density parameter today.
    omega_m: float = 0.26
    #: baryon density parameter today.
    omega_b: float = 0.046
    #: amplitude of matter fluctuations in 8 Mpc/h spheres.
    sigma8: float = 0.8
    #: scalar spectral index.
    ns: float = 0.96
    #: dark-energy equation-of-state parameter.
    w0: float = -1.0

    def __post_init__(self) -> None:
        for name in PARAMETER_NAMES:
            value = float(getattr(self, name))
            if not math.isfinite(value):
                raise ValueError(f"{name} must be finite, got {value!r}")
            object.__setattr__(self, name, value)
        if self.h0 <= 0:
            raise ValueError("h0 must be positive")
        if not 0.0 < self.omega_m <= 1.0:
            raise ValueError("omega_m must be in (0, 1]")
        if not 0.0 <= self.omega_b <= self.omega_m:
            raise ValueError("omega_b must be in [0, omega_m]")
        if self.sigma8 <= 0:
            raise ValueError("sigma8 must be positive")

    @property
    def label(self) -> str:
        """LensTools-style directory label, unique per point."""
        return (
            f"Om{self.omega_m:.3f}_si{self.sigma8:.3f}_h{self.h0:.1f}"
            f"_ns{self.ns:.3f}_Ob{self.omega_b:.3f}_w{self.w0:+.2f}"
        )

    @property
    def digest(self) -> str:
        """Stable short content digest of the point (canonical pickle)."""
        from ..experiments.runner import canonical_pickle

        values = tuple((name, getattr(self, name)) for name in PARAMETER_NAMES)
        payload = ("cosmology-point",) + values
        return hashlib.sha256(canonical_pickle(payload)).hexdigest()[:16]

    def cosmology_text(self) -> str:
        """The parameter file the IC service consumes (round-trips
        through :func:`parse_cosmology_text`)."""
        lines = ["[cosmology]"]
        lines += [f"{name} = {getattr(self, name)!r}" for name in PARAMETER_NAMES]
        return "\n".join(lines) + "\n"

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in PARAMETER_NAMES}


def parse_cosmology_text(text: str) -> CosmologyPoint:
    """Inverse of :meth:`CosmologyPoint.cosmology_text`."""
    values: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith(("[", "#", ";")):
            continue
        name, _, raw = line.partition("=")
        name = name.strip()
        if name not in PARAMETER_NAMES:
            raise ValueError(f"unknown cosmology parameter {name!r}")
        values[name] = float(raw.strip())
    missing = [name for name in PARAMETER_NAMES if name not in values]
    if missing:
        raise ValueError(f"cosmology file missing parameters: {missing}")
    return CosmologyPoint(**values)


PointSpec = Union[CosmologyPoint, Mapping[str, float]]


class ParameterGrid:
    """An ordered, immutable collection of survey points.

    Construction order is part of the contract — it is the DAG build
    order, hence part of the determinism pin.
    """

    def __init__(self, points: Iterable[PointSpec]):
        resolved = []
        for spec in points:
            resolved.append(self._coerce(spec))
        if not resolved:
            raise ValueError("a ParameterGrid needs at least one point")
        self._points: Tuple[CosmologyPoint, ...] = tuple(resolved)

    @staticmethod
    def _coerce(
        spec: PointSpec, base: Optional[CosmologyPoint] = None
    ) -> CosmologyPoint:
        if isinstance(spec, CosmologyPoint):
            return spec
        if isinstance(spec, Mapping):
            unknown = [k for k in spec if k not in PARAMETER_NAMES]
            if unknown:
                raise ValueError(f"unknown cosmology parameters: {unknown}")
            if base is not None:
                return replace(base, **{k: float(v) for k, v in spec.items()})
            return CosmologyPoint(**{k: float(v) for k, v in spec.items()})
        raise TypeError(f"not a cosmology point spec: {spec!r}")

    @classmethod
    def cartesian(
        cls,
        axes: Mapping[str, Sequence[float]],
        base: Optional[CosmologyPoint] = None,
    ) -> "ParameterGrid":
        """Cartesian product over ``axes`` (given order defines the sweep
        order: last axis varies fastest), other parameters from ``base``.
        """
        base = base if base is not None else CosmologyPoint()
        names = list(axes)
        unknown = [n for n in names if n not in PARAMETER_NAMES]
        if unknown:
            raise ValueError(f"unknown cosmology parameters: {unknown}")
        for name in names:
            if not len(axes[name]):
                raise ValueError(f"axis {name!r} is empty")
        points = []
        for values in product(*(axes[n] for n in names)):
            overrides = {n: float(v) for n, v in zip(names, values)}
            points.append(replace(base, **overrides))
        return cls(points)

    @classmethod
    def from_points(
        cls,
        specs: Iterable[PointSpec],
        base: Optional[CosmologyPoint] = None,
    ) -> "ParameterGrid":
        """Explicit-point construction: each spec is a ``CosmologyPoint``
        or a mapping of overrides applied to ``base``."""
        base = base if base is not None else CosmologyPoint()
        return cls([cls._coerce(spec, base) for spec in specs])

    @property
    def points(self) -> Tuple[CosmologyPoint, ...]:
        return self._points

    def digests(self) -> Tuple[str, ...]:
        return tuple(p.digest for p in self._points)

    def labels(self) -> Tuple[str, ...]:
        return tuple(p.label for p in self._points)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[CosmologyPoint]:
        return iter(self._points)

    def __getitem__(self, index: int) -> CosmologyPoint:
        return self._points[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParameterGrid):
            return NotImplemented
        return self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    def __repr__(self) -> str:
        return f"ParameterGrid({len(self._points)} points)"
