"""LensTools-style batch bookkeeping: the home/storage directory tree.

A survey batch separates what LensTools calls "home" (small bookkeeping:
parameter files, digests, the manifest) from "storage" (large simulation
products).  In this reproduction the large products normally *stay on the
grid* as catalog-registered ``DataHandle``\\ s — storage records then point
at the owning SeD instead of holding bytes — while volatile products
(inline :class:`~repro.core.data.FileRef`\\ s) small enough for bookkeeping
land in home and bigger ones get a placeholder in storage.

The tree is deterministic for a given sequence of
:meth:`SurveyBatch.record_product` calls: the manifest is sorted and
timestamps are simulated, never wall-clock.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Union

from ..core.data import DataHandle, FileRef
from .grid import CosmologyPoint

__all__ = ["ProductRecord", "SurveyBatch"]

#: Inline products at most this big count as bookkeeping and live in home.
HOME_BYTES_LIMIT = 1 << 16


@dataclass(frozen=True)
class ProductRecord:
    """One manifest entry: where a pipeline product ended up."""

    point: str
    stage: str
    name: str
    nbytes: int
    #: "home" (small inline file), "storage" (large inline file staged to
    #: the storage tree) or "grid" (catalog-registered handle; the bytes
    #: live on ``sed``).
    location: str
    sed: str = ""
    data_id: str = ""


class SurveyBatch:
    """One survey campaign's on-disk layout.

    ::

        <root>/<name>/home/<point label>/     cosmology.ini, digest.txt
        <root>/<name>/home/manifest.json      sorted product index
        <root>/<name>/storage/<point label>/<stage>/   large inline products
    """

    def __init__(self, root: str, name: str = "survey"):
        self.root = os.path.join(root, name)
        self.home = os.path.join(self.root, "home")
        self.storage = os.path.join(self.root, "storage")
        os.makedirs(self.home, exist_ok=True)
        os.makedirs(self.storage, exist_ok=True)
        self._records: List[ProductRecord] = []

    # -- per-point bookkeeping ---------------------------------------------

    def point_home(self, point: CosmologyPoint) -> str:
        return os.path.join(self.home, point.label)

    def point_storage(self, point: CosmologyPoint, stage: str) -> str:
        return os.path.join(self.storage, point.label, stage)

    def init_point(self, point: CosmologyPoint) -> str:
        """Create the point's home dir with its parameter file + digest."""
        directory = self.point_home(point)
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, "cosmology.ini"), "w") as fh:
            fh.write(point.cosmology_text())
        with open(os.path.join(directory, "digest.txt"), "w") as fh:
            fh.write(point.digest + "\n")
        return directory

    # -- products ----------------------------------------------------------

    def record_product(
        self,
        point: Union[CosmologyPoint, str],
        stage: str,
        product: Union[FileRef, DataHandle],
    ) -> ProductRecord:
        """File a pipeline product under the batch layout.

        Handles are recorded, not copied — their bytes live on the grid.
        Inline files small enough for bookkeeping are written (when they
        carry content) into home; large ones get a metadata placeholder in
        storage.
        """
        label = point if isinstance(point, str) else point.label
        if isinstance(product, DataHandle):
            record = ProductRecord(
                point=label,
                stage=stage,
                name=product.data_id.rsplit("/", 1)[-1],
                nbytes=product.nbytes,
                location="grid",
                sed=product.sed_name,
                data_id=product.data_id,
            )
        elif isinstance(product, FileRef):
            if product.nbytes <= HOME_BYTES_LIMIT:
                directory = os.path.join(self.home, label)
                os.makedirs(directory, exist_ok=True)
                if product.content is not None:
                    with open(os.path.join(directory, product.path), "w") as fh:
                        fh.write(product.content)
                record = ProductRecord(
                    point=label,
                    stage=stage,
                    name=product.path,
                    nbytes=product.nbytes,
                    location="home",
                )
            else:
                directory = os.path.join(self.storage, label, stage)
                os.makedirs(directory, exist_ok=True)
                meta = {
                    "path": product.path,
                    "nbytes": product.nbytes,
                    "local_path": product.local_path,
                }
                meta_path = os.path.join(directory, product.path + ".meta.json")
                with open(meta_path, "w") as fh:
                    json.dump(meta, fh, indent=2, sort_keys=True)
                record = ProductRecord(
                    point=label,
                    stage=stage,
                    name=product.path,
                    nbytes=product.nbytes,
                    location="storage",
                )
        else:
            raise TypeError(f"not a survey product: {product!r}")
        self._records.append(record)
        return record

    @property
    def records(self) -> List[ProductRecord]:
        return list(self._records)

    def manifest(self) -> List[Dict[str, Any]]:
        """Sorted, JSON-ready view of every recorded product."""
        rows = [asdict(r) for r in self._records]
        return sorted(rows, key=lambda r: (r["point"], r["stage"], r["name"]))

    def write_manifest(self) -> str:
        path = os.path.join(self.home, "manifest.json")
        with open(path, "w") as fh:
            json.dump(self.manifest(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def summary(self) -> Dict[str, int]:
        """Product counts by location (deterministic key order)."""
        out = {"grid": 0, "home": 0, "storage": 0}
        for record in self._records:
            out[record.location] += 1
        return out
