"""Parameter-survey campaigns: grids of cosmologies run as DAGs of DIET
requests (ROADMAP item 4, the LensTools pipeline shape).

* :mod:`~repro.survey.grid` — :class:`~repro.survey.grid.CosmologyPoint`
  and :class:`~repro.survey.grid.ParameterGrid` (cartesian + explicit
  construction, stable per-point digests over ``canonical_pickle``);
* :mod:`~repro.survey.lensing` — numpy-only multi-lens-plane Born
  convergence maps (flat w0CDM distances, equal-Δχ planes, deterministic
  density slabs);
* :mod:`~repro.survey.dag` — :class:`~repro.survey.dag.SurveyDAG` +
  :class:`~repro.survey.dag.DagExecutor`: a client-side executor that
  submits ready nodes through ``DietClient``/``FederatedClient`` with
  bounded in-flight width, dead-letter retry, and dependency-aware
  upstream refresh when a persistent input died with its SeD;
* :mod:`~repro.survey.pipeline` — the IC→run→lensing chain per cosmology
  point plus the pairwise map-reduction fan-in, with inter-node data
  passed as ``PERSISTENT`` handles under the campaign data policies;
* :mod:`~repro.survey.batch` — the LensTools-style home/storage tree
  (small bookkeeping files to "home", large products to
  catalog-registered storage).
"""

from __future__ import annotations

from .batch import ProductRecord, SurveyBatch
from .dag import (
    DagError,
    DagExecutor,
    DagNode,
    DagNodeFailed,
    DagStats,
    NodeResult,
    SurveyDAG,
)
from .grid import PARAMETER_NAMES, CosmologyPoint, ParameterGrid, parse_cosmology_text
from .lensing import (
    born_convergence,
    comoving_distance,
    density_slabs,
    hubble_e,
    lens_planes,
    lensing_weights,
    stack_maps,
)
from .pipeline import build_survey_dag

__all__ = [
    "PARAMETER_NAMES",
    "CosmologyPoint",
    "DagError",
    "DagExecutor",
    "DagNode",
    "DagNodeFailed",
    "DagStats",
    "NodeResult",
    "ParameterGrid",
    "ProductRecord",
    "SurveyBatch",
    "SurveyDAG",
    "born_convergence",
    "build_survey_dag",
    "comoving_distance",
    "density_slabs",
    "hubble_e",
    "lens_planes",
    "lensing_weights",
    "parse_cosmology_text",
    "stack_maps",
]
