"""Multi-lens-plane convergence maps via the Born approximation.

Numpy-only and fully deterministic: the REAL-mode lensing service and its
tests call straight into these functions.  The model is the standard
weak-lensing plane stack (LensTools shape): the line of sight to a source
at redshift ``z_source`` is cut into ``n_planes`` slices of equal
comoving thickness, each slice contributes its projected matter
overdensity weighted by the lensing efficiency

    W_k = (3/2) Ωm (H0/c)^2 (1 + z_k) χ_k (χ_s - χ_k) / χ_s · Δχ

and the convergence map is the weighted sum κ = Σ_k W_k δ_k (no ray
deflection between planes — first order in the deflection angle).
Distances assume a flat w0CDM background,

    E(z) = sqrt(Ωm (1+z)^3 + (1-Ωm) (1+z)^{3(1+w0)}).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "C_LIGHT_KM_S",
    "born_convergence",
    "comoving_distance",
    "density_slabs",
    "hubble_e",
    "lens_planes",
    "lensing_weights",
    "stack_maps",
]

#: Speed of light, km/s — pairs with H0 in km/s/Mpc to give distances in Mpc.
C_LIGHT_KM_S = 299792.458


def hubble_e(z, omega_m: float, w0: float = -1.0):
    """Dimensionless Hubble rate E(z) = H(z)/H0 for flat w0CDM."""
    z = np.asarray(z, dtype=float)
    if not 0.0 < omega_m <= 1.0:
        raise ValueError("omega_m must be in (0, 1]")
    omega_de = 1.0 - omega_m
    return np.sqrt(
        omega_m * (1.0 + z) ** 3 + omega_de * (1.0 + z) ** (3.0 * (1.0 + w0))
    )


def _distance_table(
    z_max: float, h0: float, omega_m: float, w0: float, n_samples: int = 1024
) -> Tuple[np.ndarray, np.ndarray]:
    """(z_grid, χ_grid) over [0, z_max] by cumulative trapezoid."""
    z_grid = np.linspace(0.0, float(z_max), n_samples + 1)
    inv_e = 1.0 / hubble_e(z_grid, omega_m, w0)
    dz = z_grid[1] - z_grid[0] if n_samples else 0.0
    steps = 0.5 * (inv_e[:-1] + inv_e[1:]) * dz
    chi_grid = np.concatenate([[0.0], np.cumsum(steps)]) * (C_LIGHT_KM_S / h0)
    return z_grid, chi_grid


def comoving_distance(
    z: float, h0: float, omega_m: float, w0: float = -1.0, n_samples: int = 1024
) -> float:
    """Line-of-sight comoving distance to redshift ``z`` in Mpc (flat)."""
    if z < 0:
        raise ValueError("z must be >= 0")
    if z == 0:
        return 0.0
    _, chi_grid = _distance_table(z, h0, omega_m, w0, n_samples)
    return float(chi_grid[-1])


def lens_planes(
    n_planes: int, z_source: float, h0: float, omega_m: float, w0: float = -1.0
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Equal-Δχ lens planes between the observer and the source.

    Returns ``(z_planes, chi_planes, dchi)``: plane redshifts (χ→z by
    interpolation on the distance table), plane comoving distances at the
    slice centres, and the slice thickness, all in Mpc.
    """
    if n_planes < 1:
        raise ValueError("n_planes must be >= 1")
    if z_source <= 0:
        raise ValueError("z_source must be positive")
    z_grid, chi_grid = _distance_table(z_source, h0, omega_m, w0)
    chi_s = chi_grid[-1]
    dchi = chi_s / n_planes
    chi_planes = (np.arange(n_planes) + 0.5) * dchi
    z_planes = np.interp(chi_planes, chi_grid, z_grid)
    return z_planes, chi_planes, float(dchi)


def lensing_weights(
    n_planes: int, z_source: float, h0: float, omega_m: float, w0: float = -1.0
) -> np.ndarray:
    """Born efficiency weight W_k of each plane's overdensity δ_k."""
    z_planes, chi_planes, dchi = lens_planes(n_planes, z_source, h0, omega_m, w0)
    chi_s = chi_planes[-1] + 0.5 * dchi
    prefactor = 1.5 * omega_m * (h0 / C_LIGHT_KM_S) ** 2
    geometry = (1.0 + z_planes) * chi_planes * (chi_s - chi_planes) / chi_s
    return prefactor * geometry * dchi


def born_convergence(
    slabs: np.ndarray, z_source: float, h0: float, omega_m: float, w0: float = -1.0
) -> np.ndarray:
    """Stack density slabs into one convergence map, κ = Σ_k W_k δ_k.

    ``slabs`` has shape ``(n_planes, ny, nx)``: projected overdensity of
    each equal-Δχ slice, observer-to-source order.
    """
    slabs = np.asarray(slabs, dtype=float)
    if slabs.ndim != 3:
        raise ValueError("slabs must have shape (n_planes, ny, nx)")
    weights = lensing_weights(slabs.shape[0], z_source, h0, omega_m, w0)
    return np.tensordot(weights, slabs, axes=1)


def density_slabs(
    resolution: int, n_planes: int, seed: int, sigma8: float = 0.8, ns: float = 0.96
) -> np.ndarray:
    """Deterministic Gaussian overdensity slabs with a power-law spectrum.

    The survey run stage's REAL-mode product: ``n_planes`` independent
    Gaussian random fields of shape ``(resolution, resolution)`` with a
    2-d power spectrum P(k) ∝ k^(ns-3), each normalized to rms
    ``sigma8``.  Fully pinned by ``seed`` (PCG64 + numpy FFTs).
    """
    if resolution < 2:
        raise ValueError("resolution must be >= 2")
    if n_planes < 1:
        raise ValueError("n_planes must be >= 1")
    rng = np.random.default_rng(seed)
    kx = np.fft.fftfreq(resolution)
    k = np.sqrt(kx[np.newaxis, :] ** 2 + kx[:, np.newaxis] ** 2)
    amplitude = np.zeros_like(k)
    nonzero = k > 0
    amplitude[nonzero] = k[nonzero] ** (0.5 * (ns - 3.0))
    slabs = np.empty((n_planes, resolution, resolution))
    for plane in range(n_planes):
        white = rng.standard_normal((resolution, resolution))
        field = np.real(np.fft.ifft2(np.fft.fft2(white) * amplitude))
        rms = float(field.std())
        slabs[plane] = field * (sigma8 / rms) if rms > 0 else field
    return slabs


def stack_maps(maps: Sequence[np.ndarray], weights: Sequence[float]) -> np.ndarray:
    """Weighted mean of convergence maps (the survey fan-in reduction)."""
    if len(maps) != len(weights) or not maps:
        raise ValueError("need equally many maps and weights, at least one")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    out = np.zeros_like(np.asarray(maps[0], dtype=float))
    for m, w in zip(maps, weights):
        out += np.asarray(m, dtype=float) * (float(w) / total)
    return out
