"""Survey DAGs of DIET requests and their client-side executor.

A :class:`SurveyDAG` is an insertion-ordered set of nodes, each naming a
DIET service and a *profile builder* — a callable that constructs a fresh
call profile from the results of the node's dependencies.  Building the
profile per attempt (instead of once) is what makes retries correct: when
an upstream result died with its SeD and had to be recomputed, the next
attempt reads the *new* handles.

:class:`DagExecutor` runs the DAG through an existing
:class:`~repro.core.client.DietClient` or
:class:`~repro.core.federation.FederatedClient`:

* ready nodes are submitted in insertion order with a bounded in-flight
  width (``max_in_flight``) — the client-side DAG engine the follow-up
  paper's many-campaign workload needs;
* dead-letter retry: ``ServerNotFoundError`` / ``CommunicationError``
  (crashed SeD, deregistered hierarchy) back off and resubmit up to
  ``max_attempts`` times;
* dependency-aware resubmission: a failed solve whose inputs are
  PERSISTENT :class:`~repro.core.data.DataHandle`\\ s re-runs the
  producing upstream nodes first (their server-side data died with the
  SeD), then retries — the DAG analogue of the client falling back from
  a stale memo hit;
* every node execution opens an obs span on the ``dag:<name>`` track
  (category ``dag-node``) when observability is enabled, and per-stage
  durations accumulate for P50/P99 reporting.

Everything is deterministic: node launch order, retry order and the
``any_of`` wake-ups are all pinned by insertion order and simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..core.client import DietClient, FunctionHandle
from ..core.data import DataHandle, Direction
from ..core.exceptions import CommunicationError, DietError, ServerNotFoundError
from ..core.profile import Profile

__all__ = [
    "DagError",
    "DagExecutor",
    "DagNode",
    "DagNodeFailed",
    "DagStats",
    "NodeResult",
    "SurveyDAG",
]


class DagError(DietError):
    """Malformed DAG: duplicate node, unknown dependency, bad width."""


class DagNodeFailed(DietError):
    """A node exhausted its attempts (dead-lettered) or failed for good."""

    def __init__(self, node_id: str, reason: str):
        super().__init__(f"DAG node {node_id!r} failed: {reason}")
        self.node_id = node_id
        self.reason = reason


#: Builds one attempt's profile from the dependency results so far.
ProfileBuilder = Callable[[Mapping[str, "NodeResult"]], Profile]


@dataclass
class DagNode:
    """One DIET request in the DAG."""

    node_id: str
    service: str
    builder: ProfileBuilder
    deps: Tuple[str, ...] = ()
    #: Reporting stage (P50/P99 buckets); defaults to the service name.
    stage: str = ""
    #: Cosmology-point label, for spans and batch bookkeeping.
    point: str = ""


@dataclass
class NodeResult:
    """What one node's accepted execution produced."""

    node_id: str
    status: int
    sed_name: str
    attempts: int
    started: float
    found_at: float
    finished: float
    #: OUT/INOUT argument index -> produced value (FileRef, DataHandle, int).
    outputs: Dict[int, Any] = field(default_factory=dict)

    def output(self, index: int) -> Any:
        return self.outputs[index]

    @property
    def duration(self) -> float:
        return self.finished - self.started


@dataclass
class DagStats:
    """Executor-level accounting (plain ints, picklable)."""

    nodes: int = 0
    #: Node executions launched, including retries and upstream refreshes.
    launched: int = 0
    completed: int = 0
    #: Dead-letter resubmissions after ServerNotFound/Communication errors.
    retries: int = 0
    #: Submits that dead-lettered (each may or may not have been retried).
    dead_letters: int = 0
    #: Upstream re-runs forced by handle-valued inputs lost to a crash.
    dep_refreshes: int = 0


class SurveyDAG:
    """An insertion-ordered DAG of DIET requests.

    Nodes must be added parents-first (a dependency has to exist already)
    — which makes cycles unrepresentable and the insertion order a
    topological order.
    """

    def __init__(self, name: str = "survey"):
        self.name = name
        self.nodes: Dict[str, DagNode] = {}

    def add_node(
        self,
        node_id: str,
        service: str,
        builder: ProfileBuilder,
        deps: Tuple[str, ...] = (),
        stage: Optional[str] = None,
        point: str = "",
    ) -> str:
        if node_id in self.nodes:
            raise DagError(f"duplicate DAG node {node_id!r}")
        deps = tuple(deps)
        for dep in deps:
            if dep not in self.nodes:
                raise DagError(
                    f"node {node_id!r} depends on unknown node {dep!r} "
                    "(add dependencies first)"
                )
        self.nodes[node_id] = DagNode(
            node_id=node_id,
            service=service,
            builder=builder,
            deps=deps,
            stage=stage or service,
            point=point,
        )
        return node_id

    def node(self, node_id: str) -> DagNode:
        return self.nodes[node_id]

    def roots(self) -> List[str]:
        return [nid for nid, node in self.nodes.items() if not node.deps]

    def leaves(self) -> List[str]:
        consumed = {dep for node in self.nodes.values() for dep in node.deps}
        return [nid for nid in self.nodes if nid not in consumed]

    def children(self) -> Dict[str, List[str]]:
        """node id -> dependents, insertion-ordered on both levels."""
        out: Dict[str, List[str]] = {nid: [] for nid in self.nodes}
        for nid, node in self.nodes.items():
            for dep in node.deps:
                out[dep].append(nid)
        return out

    def stages(self) -> List[str]:
        seen: List[str] = []
        for node in self.nodes.values():
            if node.stage not in seen:
                seen.append(node.stage)
        return seen

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[DagNode]:
        return iter(self.nodes.values())

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.nodes


class DagExecutor:
    """Run a :class:`SurveyDAG` through a DIET client, bounded-width."""

    def __init__(
        self,
        client: Any,
        dag: SurveyDAG,
        max_in_flight: int = 4,
        max_attempts: int = 3,
        backoff: float = 0.5,
    ):
        if max_in_flight < 1:
            raise DagError("max_in_flight must be >= 1")
        if max_attempts < 1:
            raise DagError("max_attempts must be >= 1")
        self.client = client
        self.dag = dag
        self.engine = client.engine
        self.obs = client.tracer.obs
        self.max_in_flight = max_in_flight
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.results: Dict[str, NodeResult] = {}
        self.stats = DagStats(nodes=len(dag))
        #: stage name -> accepted execution durations (simulated seconds).
        self.stage_durations: Dict[str, List[float]] = {}

    # -- driving -----------------------------------------------------------

    def run(self) -> Generator[Any, Any, Dict[str, NodeResult]]:
        """Execute the whole DAG (``yield from`` inside a process)."""
        children = self.dag.children()
        waiting = {nid: len(node.deps) for nid, node in self.dag.nodes.items()}
        ready = [nid for nid, n in waiting.items() if n == 0]
        running: Dict[Any, str] = {}
        while ready or running:
            while ready and len(running) < self.max_in_flight:
                nid = ready.pop(0)
                proc = self.engine.process(
                    self._node_process(nid),
                    name=f"dag:{self.dag.name}:{nid}",
                )
                running[proc] = nid
            yield self.engine.any_of(list(running))
            for proc in [p for p in running if p.triggered]:
                nid = running.pop(proc)
                if not proc.ok:
                    raise proc.value
                for child in children[nid]:
                    waiting[child] -= 1
                    if waiting[child] == 0:
                        ready.append(child)
        return dict(self.results)

    def _node_process(self, nid: str) -> Generator[Any, Any, None]:
        node = self.dag.nodes[nid]
        result = yield from self._execute(node)
        self.results[nid] = result

    # -- one node ----------------------------------------------------------

    def _execute(self, node: DagNode) -> Generator[Any, Any, NodeResult]:
        attempts = 0
        refreshes = 0
        while True:
            attempts += 1
            self.stats.launched += 1
            profile = node.builder(self.results)
            started = self.engine.now
            span = None
            if self.obs.enabled:
                span = self.obs.spans.begin(
                    f"dag:{self.dag.name}",
                    node.node_id,
                    started,
                    category="dag-node",
                    service=node.service,
                    stage=node.stage,
                    point=node.point,
                    attempt=attempts,
                )
            try:
                status, sed_name, found_at = yield from self._submit(profile)
            except (ServerNotFoundError, CommunicationError) as exc:
                if span is not None:
                    self.obs.spans.end(
                        span,
                        self.engine.now,
                        status="dead-letter",
                        error=type(exc).__name__,
                    )
                self.stats.dead_letters += 1
                if attempts >= self.max_attempts:
                    raise DagNodeFailed(
                        node.node_id, f"{type(exc).__name__} after {attempts} attempts"
                    ) from exc
                self.stats.retries += 1
                if self.backoff > 0:
                    yield self.engine.timeout(self.backoff * attempts)
                continue
            if status != 0:
                if span is not None:
                    self.obs.spans.end(
                        span, self.engine.now, status="failed", status_code=status
                    )
                stale = [dep for dep in node.deps if self._handle_outputs(dep)]
                if stale and refreshes < self.max_attempts:
                    # A handle-consuming solve failed: the likeliest cause
                    # is that a producer's SeD crashed and took the data
                    # (and any memo entry) with it.  Recompute those
                    # producers, then rebuild this node's profile against
                    # the fresh handles.
                    refreshes += 1
                    self.stats.dep_refreshes += len(stale)
                    for dep in stale:
                        yield from self._refresh(dep)
                    continue
                raise DagNodeFailed(node.node_id, f"solve status {status}")
            finished = self.engine.now
            outputs = {
                i: arg.value
                for i, arg in enumerate(profile.arguments)
                if arg.direction is not Direction.IN and arg.is_set
            }
            if span is not None:
                self.obs.spans.end(span, finished, status="ok", sed=sed_name)
            result = NodeResult(
                node_id=node.node_id,
                status=status,
                sed_name=sed_name,
                attempts=attempts,
                started=started,
                found_at=found_at,
                finished=finished,
                outputs=outputs,
            )
            self.stage_durations.setdefault(node.stage, []).append(result.duration)
            self.stats.completed += 1
            return result

    def _handle_outputs(self, dep_id: str) -> bool:
        """Did ``dep_id`` hand its consumers server-side handles?"""
        result = self.results.get(dep_id)
        if result is None:
            return False
        return any(isinstance(v, DataHandle) for v in result.outputs.values())

    def _refresh(self, dep_id: str) -> Generator[Any, Any, None]:
        """Recompute one upstream node whose persistent data went stale."""
        result = yield from self._execute(self.dag.nodes[dep_id])
        self.results[dep_id] = result

    def _submit(self, profile: Profile) -> Generator[Any, Any, Tuple[int, str, float]]:
        """Uniform (status, sed_name, found_at) over both client kinds."""
        if isinstance(self.client, DietClient):
            handle = FunctionHandle(profile.path)
            status = yield from self.client.call(profile, handle)
            return status, handle.server or "", self.engine.now
        return (yield from self.client.call(profile))
