"""The RAMSES DIET services: ``ramsesZoom1`` and ``ramsesZoom2`` (paper §4).

"The cosmological simulation is divided in two services: ramsesZoom1 and
ramsesZoom2 [...].  The first one is used to determine interesting parts of
the universe, while the second is used to study these parts in details."

``ramsesZoom2`` uses the paper's exact nine-argument profile
(``diet_profile_desc_alloc("ramsesZoom2", 6, 6, 8)``):

====  ====  =============================================================
 #    dir   content
====  ====  =============================================================
 0    IN    namelist file (RAMSES parameters)
 1    IN    resolution (particles per side)
 2    IN    size of the initial conditions box (Mpc/h)
 3-5  IN    centre coordinates cx, cy, cz (DIET_INT fixed point, x 1e6)
 6    IN    number of zoom levels (nested boxes)
 7    OUT   result file (tarball of post-processed GALICS products)
 8    OUT   error-control integer (0 == success)
====  ====  =============================================================

Each service supports two execution modes:

* ``MODELED`` — charge the calibrated §5 durations (benchmarks);
* ``REAL`` — actually run the Python GRAFIC -> RAMSES -> GALICS pipeline at
  the profile's (toy) parameters, producing genuine files and a genuine
  ``.tar.gz``, while simulated time still comes from the cost model at
  those parameters (examples, integration tests).

Both modes execute the same DIET code path end to end.
"""

from __future__ import annotations

import enum
import math
import os
import tarfile
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional

from ..core.data import BaseType, FileRef, file_desc, scalar_desc
from ..core.deployment import Deployment
from ..core.profile import Profile, ProfileDesc
from ..core.sed import SolveContext
from ..galics.catalogs import write_halo_catalog
from ..platform.nfs import NfsVolume
from ..galics.halomaker import find_halos
from ..grafic.ic import make_multi_level_ic, make_single_level_ic
from ..ramses.cosmology import LCDM_WMAP, Cosmology
from ..ramses.namelist import parse_namelist
from ..ramses.simulation import RamsesRun, RunConfig
from .perfmodel import RamsesPerfModel

__all__ = ["ExecutionMode", "RamsesServiceConfig", "RamsesService",
           "FaultStats", "zoom1_profile_desc", "zoom2_profile_desc",
           "COORD_SCALE", "register_ramses_services"]

#: Fixed-point scale for the DIET_INT centre coordinates (box units x 1e6).
COORD_SCALE = 1_000_000


def zoom1_profile_desc() -> ProfileDesc:
    """ramsesZoom1: (namelist, resolution, size) -> (halo catalog, error)."""
    desc = ProfileDesc("ramsesZoom1", 2, 2, 4)
    desc.set_arg(0, file_desc())
    desc.set_arg(1, scalar_desc(BaseType.INT))
    desc.set_arg(2, scalar_desc(BaseType.INT))
    desc.set_arg(3, file_desc())
    desc.set_arg(4, scalar_desc(BaseType.INT))
    return desc


def zoom2_profile_desc() -> ProfileDesc:
    """ramsesZoom2 with the paper's argument layout (§4.2.1/§4.3.2)."""
    desc = ProfileDesc("ramsesZoom2", 6, 6, 8)
    desc.set_arg(0, file_desc())                      # namelist
    for i in range(1, 7):
        desc.set_arg(i, scalar_desc(BaseType.INT))    # resol, size, cx..cz, nbBox
    desc.set_arg(7, file_desc())                      # result tarball
    desc.set_arg(8, scalar_desc(BaseType.INT))        # error control
    return desc


class ExecutionMode(enum.Enum):
    MODELED = "modeled"
    REAL = "real"


@dataclass
class RamsesServiceConfig:
    """Configuration shared by every SeD's RAMSES services."""

    mode: ExecutionMode = ExecutionMode.MODELED
    perf: RamsesPerfModel = field(default_factory=RamsesPerfModel)
    cosmology: Cosmology = LCDM_WMAP
    #: REAL mode: directory for genuine output files (one subdir per job).
    workdir: Optional[str] = None
    #: REAL mode: toy-run integration steps and end time.
    real_n_steps: int = 16
    real_a_end: float = 1.0
    real_zoom_half_size: float = 0.2
    seed: int = 42
    #: Checkpoint the ramsesZoom2 main phase every this many normalized work
    #: units (RAMSES's own restart dumps: amr/hydro state written to the NFS
    #: working directory).  None — the default — disables checkpointing
    #: entirely and the solve path is byte-for-byte the happy-path one.
    checkpoint_interval_work: Optional[float] = None
    #: Advertise restart dumps through the data manager's replica catalog,
    #: and let a resumed attempt on a *different* cluster pull the dump
    #: volume-to-volume instead of restarting from scratch (needs a
    #: deployment with a data grid; a no-op without one).
    checkpoint_catalog: bool = False

    def __post_init__(self):
        if self.mode is ExecutionMode.REAL and not self.workdir:
            raise ValueError("REAL mode needs a workdir for output files")
        if (self.checkpoint_interval_work is not None
                and self.checkpoint_interval_work <= 0):
            raise ValueError("checkpoint_interval_work must be positive")


@dataclass
class FaultStats:
    """What fault tolerance did (and cost) across a service's lifetime."""

    checkpoints_written: int = 0
    restarts_from_checkpoint: int = 0
    restarts_from_scratch: int = 0
    #: Normalized work executed by dead attempts and never recovered
    #: (counted at segment granularity — a partially executed segment
    #: counts as entirely lost).
    work_lost: float = 0.0
    #: Normalized work a resumed attempt did NOT redo thanks to a checkpoint.
    work_recovered: float = 0.0


@dataclass
class _JobProgress:
    """Durable identity of one zoom2 job across solve attempts.

    ``total_work`` pins the job's noise draw at first attempt: a resubmitted
    job must cost the same work wherever it lands, not redraw from the
    shared job counter.  ``volume``/``path`` locate the newest checkpoint;
    §4.1 makes it readable only from hosts mounting that same volume.
    """

    key: str
    total_work: float
    path: str
    volume: Optional[NfsVolume] = None
    #: Main-phase segments durably checkpointed so far.
    segments_done: int = 0
    #: Work executed since the last durable checkpoint (the amount a crash
    #: right now would lose).
    unsaved: float = 0.0
    attempts: int = 0


class RamsesService:
    """Solve-function factory for one deployment-wide configuration."""

    def __init__(self, config: RamsesServiceConfig):
        self.config = config
        self._job_counter = 0
        #: Shared across every SeD the service is registered on, so a
        #: resubmitted job finds its record wherever it lands.
        self._progress: Dict[str, _JobProgress] = {}
        self.fault_stats = FaultStats()

    def _run_config_from_profile(self, profile: Profile) -> RunConfig:
        """REAL mode: honour the shipped namelist (the paper's "file
        containing parameters for RAMSES") when it carries run parameters;
        fall back to the service defaults otherwise."""
        n_steps = self.config.real_n_steps
        a_end = self.config.real_a_end
        namelist_ref = profile.parameter(0).get()
        if isinstance(namelist_ref, FileRef) and namelist_ref.content:
            try:
                nml = parse_namelist(namelist_ref.content)
            except ValueError:
                nml = None
            if nml is not None:
                n_steps = int(nml.get_param("RUN_PARAMS", "nstepmax", n_steps))
                a_end = float(nml.get_param("RUN_PARAMS", "aexp_end", a_end))
        return RunConfig(a_end=a_end, n_steps=n_steps, output_aexp=(a_end,))

    # -- shared plumbing ---------------------------------------------------------------

    def _charge_phases(self, ctx: SolveContext, work: float, resolution: int,
                       job_id: int) -> Generator[Any, Any, None]:
        """Charge IC generation + solve + post-processing, with NFS traffic.

        §4.1: "For each simulation the generation of the initial conditions
        files, the processing and the post-processing are done on the same
        cluster" — all three phases run under this SeD, touching its NFS
        volume.
        """
        perf = self.config.perf
        denom = 1.0 + perf.ic_fraction + perf.postproc_fraction
        solve_work = work / denom
        yield from ctx.execute(solve_work * perf.ic_fraction)      # GRAFIC
        if ctx.nfs is not None:
            yield from ctx.nfs.write(ctx.host.name, f"ic-{job_id}",
                                     perf.snapshot_bytes(resolution, 1))
        yield from ctx.execute(solve_work)                          # RAMSES
        if ctx.nfs is not None:
            yield from ctx.nfs.write(ctx.host.name, f"snapshots-{job_id}",
                                     perf.snapshot_bytes(resolution))
        yield from ctx.execute(solve_work * perf.postproc_fraction)  # GALICS

    def _charge_phases_checkpointed(self, ctx: SolveContext,
                                    progress: _JobProgress, resolution: int,
                                    job_id: int) -> Generator[Any, Any, None]:
        """Fault-tolerant variant of :meth:`_charge_phases` for zoom2.

        The RAMSES main phase runs in segments of
        ``checkpoint_interval_work``; after each one a restart dump goes to
        the cluster's NFS volume.  A later attempt resumes from the dump —
        but only when it runs on a host mounting the *same* volume (§4.1:
        the working directory does not cross clusters); otherwise it starts
        from scratch and the checkpointed work is lost with the cluster.
        """
        perf = self.config.perf
        stats = self.fault_stats
        denom = 1.0 + perf.ic_fraction + perf.postproc_fraction
        solve_work = progress.total_work / denom
        ic_work = solve_work * perf.ic_fraction
        interval = self.config.checkpoint_interval_work
        assert interval is not None
        n_segments = max(1, math.ceil(solve_work / interval))
        seg_work = solve_work / n_segments
        ckpt_bytes = perf.snapshot_bytes(resolution, 1)

        resumable = (progress.segments_done > 0 and ctx.nfs is not None
                     and progress.volume is ctx.nfs
                     and ctx.nfs.exists(progress.path))
        if (not resumable and progress.attempts > 1
                and progress.segments_done > 0
                and self.config.checkpoint_catalog and ctx.nfs is not None):
            # The dump lives on another cluster's volume: locate it through
            # the replica catalog and stage it onto the local volume, lifting
            # the §4.1 same-cluster restriction on resume.
            pulled = yield from ctx.sed.data_manager.pull_checkpoint(
                progress.path)
            if pulled:
                progress.volume = ctx.nfs
                resumable = True
        if progress.attempts > 1:
            # The previous attempt died: everything it ran past the last
            # durable checkpoint is gone.
            stats.work_lost += progress.unsaved
            progress.unsaved = 0.0
            durable = ic_work + progress.segments_done * seg_work
            if resumable:
                stats.restarts_from_checkpoint += 1
                stats.work_recovered += durable
            else:
                stats.restarts_from_scratch += 1
                if progress.segments_done > 0:
                    # Checkpoints exist but on a volume this host does not
                    # mount: unreachable, so that work is lost too.
                    stats.work_lost += durable
                progress.segments_done = 0
                progress.volume = None

        if resumable:
            # Load the restart dump instead of regenerating ICs.
            yield from ctx.nfs.read(ctx.host.name, progress.path)
        else:
            yield from ctx.execute(ic_work)                         # GRAFIC
            progress.unsaved += ic_work
            if ctx.nfs is not None:
                yield from ctx.nfs.write(ctx.host.name, f"ic-{job_id}",
                                         ckpt_bytes)

        for _seg in range(progress.segments_done, n_segments):      # RAMSES
            yield from ctx.execute(seg_work)
            progress.unsaved += seg_work
            if ctx.nfs is not None:
                yield from ctx.nfs.write(ctx.host.name, progress.path,
                                         ckpt_bytes)
                progress.volume = ctx.nfs
                progress.segments_done = _seg + 1
                progress.unsaved = 0.0
                stats.checkpoints_written += 1
                if self.config.checkpoint_catalog:
                    ctx.sed.data_manager.register_checkpoint(
                        progress.path, ckpt_bytes, ctx.nfs)

        if ctx.nfs is not None:
            yield from ctx.nfs.write(ctx.host.name, f"snapshots-{job_id}",
                                     perf.snapshot_bytes(resolution))
        yield from ctx.execute(solve_work * perf.postproc_fraction)  # GALICS
        progress.unsaved += solve_work * perf.postproc_fraction

    def _job_dir(self, service: str, job_id: int) -> str:
        assert self.config.workdir is not None
        path = os.path.join(self.config.workdir, f"{service}-{job_id:04d}")
        os.makedirs(path, exist_ok=True)
        return path

    # -- ramsesZoom1 ----------------------------------------------------------------------

    def solve_zoom1(self, profile: Profile, ctx: SolveContext
                    ) -> Generator[Any, Any, int]:
        """Low-resolution full-box run -> halo catalog (§3 step one)."""
        resolution = int(profile.parameter(1).get())
        boxsize = int(profile.parameter(2).get())
        work = self.config.perf.part1_work(resolution)
        self._job_counter += 1
        job_id = self._job_counter
        yield from self._charge_phases(ctx, work, resolution, job_id)

        if self.config.mode is ExecutionMode.REAL:
            catalog_path = self._run_real_zoom1(
                resolution, boxsize, job_id,
                self._run_config_from_profile(profile))
            nbytes = os.path.getsize(catalog_path)
            profile.parameter(3).set(FileRef(
                path=os.path.basename(catalog_path), nbytes=nbytes,
                local_path=catalog_path))
        else:
            profile.parameter(3).set(FileRef(
                path="halo_catalog.dat",
                nbytes=self.config.perf.result_tarball_bytes(resolution) // 4))
        profile.parameter(4).set(0)
        return 0

    def _run_real_zoom1(self, resolution: int, boxsize: int, job_id: int,
                        run_cfg: RunConfig) -> str:
        cfg = self.config
        ic = make_single_level_ic(resolution, float(boxsize),
                                  cfg.cosmology, a_start=0.05, seed=cfg.seed)
        result = RamsesRun(ic, run_cfg).run()
        snap = result.final
        catalog = find_halos(snap.particles, snap.aexp)
        job_dir = self._job_dir("zoom1", job_id)
        catalog_path = os.path.join(job_dir, "halo_catalog.dat")
        write_halo_catalog(catalog_path, catalog)
        return catalog_path

    # -- ramsesZoom2 ----------------------------------------------------------------------

    def solve_zoom2(self, profile: Profile, ctx: SolveContext
                    ) -> Generator[Any, Any, int]:
        """One zoom re-simulation (§3 step two; the paper's code example)."""
        resolution = int(profile.parameter(1).get())
        boxsize = int(profile.parameter(2).get())
        cx = int(profile.parameter(3).get())
        cy = int(profile.parameter(4).get())
        cz = int(profile.parameter(5).get())
        n_levels = int(profile.parameter(6).get())
        self._job_counter += 1
        job_id = self._job_counter
        if self.config.checkpoint_interval_work is None:
            # Deterministic per-job work scatter: the job counter is shared
            # across the deployment, so the canonical campaign always consumes
            # the same multiset of draws (indices 2..101) whatever the policy —
            # keeping scheduler ablations workload-identical.
            work = self.config.perf.part2_work(resolution, n_levels, job_id)
            yield from self._charge_phases(ctx, work, resolution, job_id)
        else:
            # Job identity, not attempt identity: a resubmission of the same
            # zoom (same centre/resolution/depth) reuses the first attempt's
            # work draw and may resume from its checkpoint.
            job_key = f"zoom2/{resolution}/{cx}-{cy}-{cz}/{n_levels}"
            progress = self._progress.get(job_key)
            if progress is None:
                work = self.config.perf.part2_work(resolution, n_levels, job_id)
                progress = _JobProgress(key=job_key, total_work=work,
                                        path=f"ckpt/{job_key}")
                self._progress[job_key] = progress
            progress.attempts += 1
            yield from self._charge_phases_checkpointed(
                ctx, progress, resolution, job_id)
            # Completed: retire the record and the restart dump.
            self._progress.pop(job_key, None)
            if progress.volume is not None:
                progress.volume.unlink(progress.path)
            if self.config.checkpoint_catalog:
                ctx.sed.data_manager.unregister_checkpoint(progress.path)

        if self.config.mode is ExecutionMode.REAL:
            tar_path = self._run_real_zoom2(
                resolution, boxsize, cx, cy, cz, n_levels, job_id,
                self._run_config_from_profile(profile))
            profile.parameter(7).set(FileRef(
                path=os.path.basename(tar_path),
                nbytes=os.path.getsize(tar_path), local_path=tar_path))
        else:
            profile.parameter(7).set(FileRef(
                path=f"results-{cx}-{cy}-{cz}.tar.gz",
                nbytes=self.config.perf.result_tarball_bytes(resolution)))
        profile.parameter(8).set(0)
        return 0

    def _run_real_zoom2(self, resolution: int, boxsize: int, cx: int, cy: int,
                        cz: int, n_levels: int, job_id: int,
                        run_cfg: RunConfig) -> str:
        cfg = self.config
        center = (cx / COORD_SCALE, cy / COORD_SCALE, cz / COORD_SCALE)
        ic = make_multi_level_ic(
            n_coarse=resolution, boxsize_mpc_h=float(boxsize),
            cosmology=cfg.cosmology, center=center, n_levels=n_levels,
            region_half_size=cfg.real_zoom_half_size,
            a_start=0.05, seed=cfg.seed)
        result = RamsesRun(ic, run_cfg).run()
        snap = result.final
        catalog = find_halos(snap.particles, snap.aexp, min_particles=8)

        job_dir = self._job_dir("zoom2", job_id)
        catalog_path = os.path.join(job_dir, "halo_catalog.dat")
        write_halo_catalog(catalog_path, catalog)
        from ..ramses.io import SnapshotHeader, write_snapshot
        header = SnapshotHeader(
            ncpu=1, ndim=3, npart=len(snap.particles), aexp=snap.aexp,
            omega_m=cfg.cosmology.omega_m, omega_l=cfg.cosmology.omega_l,
            h0=100.0 * cfg.cosmology.h, boxlen_mpc_h=float(boxsize),
            levelmin=ic.levelmin, levelmax=ic.levelmax)
        write_snapshot(os.path.join(job_dir, "output_00001"), header,
                       snap.particles)
        tar_path = os.path.join(job_dir, "results.tar.gz")
        with tarfile.open(tar_path, "w:gz") as tar:
            tar.add(catalog_path, arcname="halo_catalog.dat")
            tar.add(os.path.join(job_dir, "output_00001"),
                    arcname="output_00001")
        return tar_path


#: Default box size (Mpc/h) used by REAL-mode runs (the paper's 100).
PAPER_BOX_DEFAULT = 100


def register_ramses_services(deployment: Deployment,
                             config: Optional[RamsesServiceConfig] = None,
                             with_predictor: bool = False) -> RamsesService:
    """Register both services on every SeD of a deployment.

    ``with_predictor=True`` also registers a performance predictor (the
    SeD-side half of a plug-in scheduler): the SeD then advertises its
    predicted solve time in ``EST_TCOMP``, which MCT-style policies consume.
    The paper's deployment had none — that is why its schedule was
    suboptimal.
    """
    config = config or RamsesServiceConfig()
    service = RamsesService(config)
    z1, z2 = zoom1_profile_desc(), zoom2_profile_desc()
    for sed in deployment.seds:
        predictor1 = predictor2 = None
        if with_predictor:
            speed = sed.host.speed
            predictor1 = lambda desc, s=speed: config.perf.part1_work(
                PAPER_RESOLUTION_DEFAULT) / s
            predictor2 = lambda desc, s=speed: (
                config.perf.part1_work(PAPER_RESOLUTION_DEFAULT)
                * config.perf.zoom_overhead_factor / s)
        sed.add_service(z1, service.solve_zoom1, predictor=predictor1)
        sed.add_service(z2, service.solve_zoom2, predictor=predictor2)
    return service


PAPER_RESOLUTION_DEFAULT = 128
