"""Client-side helpers for the RAMSES services (the paper's §4.3 code).

Builds the nine-argument ramsesZoom2 profiles exactly as the paper's client
does (``diet_file_set`` for the namelist, ``diet_scalar_set`` for the
integers, a declared-but-NULL OUT file), and decodes results the same way
(check the error-control integer before touching the tarball).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..core.data import FileRef, PersistenceMode, file_desc
from ..core.profile import Profile
from ..ramses.namelist import format_namelist
from .ramses_service import (
    COORD_SCALE,
    zoom1_profile_desc,
    zoom2_profile_desc,
)

__all__ = ["default_namelist_text", "build_zoom1_profile",
           "build_zoom2_profile", "Zoom2Result", "decode_zoom1",
           "decode_zoom2", "encode_center", "decode_center"]


def default_namelist_text(resolution: int = 128, boxsize: int = 100,
                          a_end: float = 1.0, n_steps: int = 80) -> str:
    """A RAMSES-style namelist for the campaign runs."""
    return format_namelist({
        "RUN_PARAMS": {"cosmo": True, "pic": True, "poisson": True,
                       "nstepmax": n_steps, "aexp_end": a_end},
        "AMR_PARAMS": {"levelmin": int.bit_length(resolution - 1),
                       "levelmax": int.bit_length(resolution - 1) + 6,
                       "ngridmax": 0},
        "OUTPUT_PARAMS": {"aout": [0.3, 0.5, 0.7, 1.0]},
        "REFINE_PARAMS": {"m_refine": 8.0},
    })


def encode_center(center: Sequence[float]) -> Tuple[int, int, int]:
    """Box-unit coordinates -> the profile's DIET_INT fixed point."""
    if len(center) != 3:
        raise ValueError("center must have three coordinates")
    return tuple(int(round((c % 1.0) * COORD_SCALE)) for c in center)  # type: ignore


def decode_center(cx: int, cy: int, cz: int) -> Tuple[float, float, float]:
    return (cx / COORD_SCALE, cy / COORD_SCALE, cz / COORD_SCALE)


def build_zoom1_profile(namelist_text: str, resolution: int,
                        boxsize_mpc_h: int) -> Profile:
    """Allocate + fill a ramsesZoom1 profile."""
    profile = zoom1_profile_desc().instantiate()
    profile.parameter(0).set(FileRef.from_text("namelist.nml", namelist_text))
    profile.parameter(1).set(int(resolution))
    profile.parameter(2).set(int(boxsize_mpc_h))
    profile.parameter(3).set(None)   # OUT: declared, value NULL (§4.3.1)
    profile.parameter(4).set(None)
    return profile


def build_zoom2_profile(namelist_text: str, resolution: int,
                        boxsize_mpc_h: int, center: Sequence[float],
                        n_levels: int,
                        result_persistence: Optional[PersistenceMode] = None
                        ) -> Profile:
    """Allocate + fill the paper's ramsesZoom2 profile (§4.3.2 listing).

    ``result_persistence`` overrides the OUT tarball's persistence mode
    (e.g. ``DIET_PERSISTENT`` keeps the result on the producing SeD and the
    client receives a :class:`~repro.core.data.DataHandle` instead of the
    bytes).  Service matching ignores persistence, so the same registered
    service solves both variants.
    """
    cx, cy, cz = encode_center(center)
    desc = zoom2_profile_desc()
    if result_persistence is not None:
        desc.set_arg(7, file_desc(result_persistence))
    profile = desc.instantiate()
    profile.parameter(0).set(FileRef.from_text("namelist.nml", namelist_text))
    profile.parameter(1).set(int(resolution))
    profile.parameter(2).set(int(boxsize_mpc_h))
    profile.parameter(3).set(cx)
    profile.parameter(4).set(cy)
    profile.parameter(5).set(cz)
    profile.parameter(6).set(int(n_levels))
    profile.parameter(7).set(None)   # OUT file, "even if their values is
    profile.parameter(8).set(None)   # set to NULL" (§4.3.1)
    return profile


@dataclass
class Zoom2Result:
    """Decoded OUT arguments of one ramsesZoom2 call.

    ``tarball`` is a :class:`FileRef` for volatile results, or a
    :class:`~repro.core.data.DataHandle` when the profile asked for a
    persistent (non-RETURN) result — the bytes then stayed on the SeD.
    """

    error: int
    tarball: Optional[object]

    @property
    def succeeded(self) -> bool:
        return self.error == 0 and self.tarball is not None


def decode_zoom1(profile: Profile) -> Tuple[int, Optional[FileRef]]:
    """(error, halo-catalog file) from a completed ramsesZoom1 profile."""
    error = profile.parameter(4).get()
    catalog = profile.parameter(3).get() if error == 0 else None
    return int(error), catalog


def decode_zoom2(profile: Profile) -> Zoom2Result:
    """Mirror of the paper's result handling: read the 9th parameter (error
    code), and only fetch the 8th (the file) when the code is 0."""
    error = int(profile.parameter(8).get())
    tarball = None
    if error == 0:
        tarball = profile.parameter(7).get()
    return Zoom2Result(error=error, tarball=tarball)
