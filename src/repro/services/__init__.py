"""RAMSES-DIET integration (paper §4) and the §5 campaign workflow."""

from .perfmodel import (
    PAPER_BOX_MPC_H,
    PAPER_PART1_SECONDS,
    PAPER_PART2_MEAN_SECONDS,
    PAPER_RESOLUTION,
    PAPER_TOTAL_SECONDS,
    RamsesPerfModel,
)
from .ramses_client import (
    Zoom2Result,
    build_zoom1_profile,
    build_zoom2_profile,
    decode_center,
    decode_zoom1,
    decode_zoom2,
    default_namelist_text,
    encode_center,
)
from .ramses_service import (
    COORD_SCALE,
    ExecutionMode,
    FaultStats,
    RamsesService,
    RamsesServiceConfig,
    register_ramses_services,
    zoom1_profile_desc,
    zoom2_profile_desc,
)
from .workflow import (
    CampaignConfig,
    CampaignResult,
    FailurePlan,
    FailureReport,
    run_campaign,
    synthetic_zoom_centers,
)

__all__ = [
    "COORD_SCALE",
    "CampaignConfig",
    "CampaignResult",
    "ExecutionMode",
    "FailurePlan",
    "FailureReport",
    "FaultStats",
    "PAPER_BOX_MPC_H",
    "PAPER_PART1_SECONDS",
    "PAPER_PART2_MEAN_SECONDS",
    "PAPER_RESOLUTION",
    "PAPER_TOTAL_SECONDS",
    "RamsesPerfModel",
    "RamsesService",
    "RamsesServiceConfig",
    "Zoom2Result",
    "build_zoom1_profile",
    "build_zoom2_profile",
    "decode_center",
    "decode_zoom1",
    "decode_zoom2",
    "default_namelist_text",
    "encode_center",
    "register_ramses_services",
    "run_campaign",
    "synthetic_zoom_centers",
    "zoom1_profile_desc",
    "zoom2_profile_desc",
]
