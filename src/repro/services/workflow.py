"""The full two-part campaign of §5: one low-resolution run, then 100
simultaneous zoom sub-simulations.

"We studied the possibility of computing a lot of low-resolution
simulations.  The client requests a 128^3 particles 100 Mpc/h simulation
(first part).  When he receives the results, he requests simultaneously 100
sub-simulations (second part).  As each server cannot compute more than one
simulation at the same time, we won't be able to have more than 11 parallel
computations at the same time."

:func:`run_campaign` builds the whole stack (platform, hierarchy, services)
and produces a :class:`CampaignResult` from which every §5 figure/number is
derived.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.agent import AgentParams
from ..core.client import AsyncRequest
from ..core.data import PersistenceMode
from ..core.deployment import Deployment, deploy_paper_hierarchy
from ..core.scheduling import SchedulerPolicy, make_policy
from ..core.statistics import RequestTrace
from ..data import campaign_data_config, policy_keeps_results
from ..obs import Observability, SpanStore
from ..platform.grid5000 import ClusterSpec, build_grid5000
from ..sim.engine import Engine
from ..sim.failures import FailureInjector, Outage, OutageRecord
from ..sim.rng import RandomStreams
from .perfmodel import RamsesPerfModel
from .ramses_client import (
    build_zoom1_profile,
    build_zoom2_profile,
    decode_zoom1,
    decode_zoom2,
    default_namelist_text,
)
from .ramses_service import (
    ExecutionMode,
    RamsesServiceConfig,
    register_ramses_services,
)

__all__ = ["CampaignConfig", "CampaignResult", "DetachedDeployment",
           "FailurePlan", "FailureReport", "run_campaign",
           "run_campaign_detached", "synthetic_zoom_centers"]


@dataclass(frozen=True)
class FailurePlan:
    """Degraded-mode campaign: seeded SeD outages + the recovery machinery.

    Victims, crash times and downtimes are drawn from the campaign seed's
    ``"outages"`` stream, so a degraded run is as bit-deterministic as the
    happy-path one.  The remaining knobs size the recovery machinery the
    plan switches on: LA->SeD heartbeats, zoom2 checkpointing, client-side
    resubmission.
    """

    #: Distinct SeDs to crash (capped at the deployment size).
    n_crashes: int = 2
    #: Simulated-seconds window the crash instants are drawn from
    #: (uniform); the default covers the middle of the §5.2 zoom phase.
    crash_window: Tuple[float, float] = (6000.0, 30000.0)
    #: Mean outage duration, seconds (exponential draw, floored at 60 s).
    mean_downtime: float = 3600.0
    heartbeat_interval: float = 60.0
    heartbeat_timeout: float = 5.0
    heartbeat_miss_threshold: int = 2
    #: Checkpoint the zoom2 main phase every this many work units
    #: (~5000 work units per zoom at the paper's parameters).
    checkpoint_interval_work: float = 600.0
    #: Client-side resubmission budget per zoom job.
    max_solve_attempts: int = 8
    #: Seconds between resubmissions (multiplied by the attempt number).
    retry_backoff: float = 30.0

    def __post_init__(self):
        if self.n_crashes < 0:
            raise ValueError("n_crashes must be non-negative")
        if self.crash_window[0] >= self.crash_window[1]:
            raise ValueError("crash_window must be a non-empty interval")


@dataclass
class FailureReport:
    """What the failures cost and how the stack absorbed them."""

    #: Completed crash/restart cycles (a victim whose restart falls beyond
    #: the campaign's end never reaches the history).
    outages: List[OutageRecord]
    #: Jobs the client re-pushed through the MA finding path.
    resubmissions: int
    #: Normalized work executed by dead attempts and never recovered.
    work_lost: float
    #: Normalized work skipped on resume thanks to checkpoints.
    work_recovered: float
    checkpoints_written: int
    restarts_from_checkpoint: int
    restarts_from_scratch: int
    #: SeDs deregistered by LA heartbeat monitors, in event order.
    deregistrations: List[str]
    #: SeDs that re-registered after a restart, in event order.
    recoveries: List[str]


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that parameterizes one campaign run."""

    n_sub_simulations: int = 100
    resolution: int = 128
    boxsize_mpc_h: int = 100
    n_zoom_levels: int = 2
    mode: ExecutionMode = ExecutionMode.MODELED
    #: scheduler policy name (see repro.core.scheduling.POLICIES).
    policy: str = "default"
    #: register SeD-side performance predictors (plug-in scheduler half).
    with_predictor: bool = False
    seed: int = 2007
    #: REAL mode knobs (toy scales).
    workdir: Optional[str] = None
    real_n_steps: int = 12
    real_a_end: float = 0.6
    #: optional platform override (None == the paper's 6 clusters / 11 SeDs).
    cluster_specs: Optional[Tuple[ClusterSpec, ...]] = None
    #: None (default) is the paper's happy path; a FailurePlan switches on
    #: seeded SeD outages plus the whole recovery machinery.
    failures: Optional[FailurePlan] = None
    #: Record spans + metrics (the repro.obs subsystem).  Recording is pure
    #: bookkeeping over timestamps already read — the event stream is
    #: bit-identical either way (the determinism suite pins both settings);
    #: False skips even that bookkeeping for benchmark runs.
    observe: bool = True
    #: DAGDA-style data management policy (see repro.data.DATA_POLICIES):
    #: None keeps the deployment exactly as before the data subsystem
    #: existed; "volatile" wires the data grid but every argument still
    #: travels by value; "persistent" keeps zoom2 tarballs on the producing
    #: SeD (the client gets a handle); "replicated"/"broadcast" add replica
    #: creation on top of persistence.
    data_policy: Optional[str] = None
    #: Estimate flow: "pull" (the paper's per-request MA→LA→SeD fan-out,
    #: kept byte-identical for every figure) or "push" (SeDs push deltas,
    #: agents materialize top-k tables, the MA batches admission).
    routing: str = "pull"


@dataclass(frozen=True)
class _DetachedSeD:
    """Name + timing knobs of a SeD, without the live serving machinery."""

    name: str
    params: "object"  # SeDParams — frozen dataclass of plain numbers


class DetachedDeployment:
    """Picklable stand-in for :class:`Deployment` on a finished campaign.

    A live deployment holds the engine, the transport fabric and every
    agent's generator state — none of which can cross a process boundary.
    Result *consumers* only ever read the tracer, the SeD roster and the
    cluster mapping, so :meth:`CampaignResult.detach` swaps the live stack
    for this snapshot; worker processes in the parallel experiment runner
    return detached results to the parent.
    """

    __slots__ = ("tracer", "seds", "sed_names", "_clusters")

    def __init__(self, deployment: Deployment):
        self.tracer = deployment.tracer
        self.seds = [_DetachedSeD(name=sed.name, params=sed.params)
                     for sed in deployment.seds]
        self.sed_names = [sed.name for sed in deployment.seds]
        self._clusters = {sed.name: deployment.cluster_of_sed(sed.name)
                          for sed in deployment.seds}

    def cluster_of_sed(self, sed_name: str) -> str:
        return self._clusters[sed_name]

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)


@dataclass
class CampaignResult:
    """Outcome + every series the §5 evaluation reports."""

    config: CampaignConfig
    #: The live stack, or its picklable snapshot after :meth:`detach`.
    deployment: "Deployment | DetachedDeployment"
    part1_trace: RequestTrace
    part2_traces: List[RequestTrace]
    statuses: List[int]
    zoom_centers: List[Tuple[float, float, float]]
    #: Populated when the campaign ran with a FailurePlan.
    failure_report: Optional[FailureReport] = None
    #: Total application bytes that entered the network, and the subset
    #: that crossed a WAN (site-uplink) link — the e12 ablation's currency.
    net_bytes_total: int = 0
    net_bytes_wan: int = 0
    #: Snapshot of the data grid's counters (hits, misses, bytes moved /
    #: saved, evictions, ...); None when the campaign ran without a data
    #: policy.  A plain dict so detached results stay picklable.
    data_report: Optional[Dict[str, int]] = None

    # -- §5.2 headline numbers ---------------------------------------------------------

    @property
    def tracer(self):
        return self.deployment.tracer

    @property
    def part1_duration(self) -> float:
        return self.part1_trace.total_time or 0.0

    @property
    def completed_part2_traces(self) -> List[RequestTrace]:
        """Traces of attempts that ran to completion (in a degraded run,
        ``part2_traces`` also carries the aborted attempts)."""
        return [t for t in self.part2_traces if t.completed_at is not None]

    @property
    def part2_durations(self) -> List[float]:
        return [t.solve_duration for t in self.part2_traces
                if t.solve_duration is not None]

    @property
    def part2_mean_duration(self) -> float:
        d = self.part2_durations
        return float(np.mean(d)) if d else 0.0

    @property
    def total_elapsed(self) -> float:
        """Submit of part 1 to completion of the last sub-simulation."""
        ends = [t.completed_at for t in self.part2_traces
                if t.completed_at is not None]
        start = self.part1_trace.submitted_at or 0.0
        return (max(ends) - start) if ends else self.part1_duration

    @property
    def sequential_estimate(self) -> float:
        """What the 101 simulations would cost run back to back (>141 h)."""
        part1 = self.part1_trace.solve_duration or 0.0
        return part1 + sum(self.part2_durations)

    @property
    def speedup(self) -> float:
        return self.sequential_estimate / self.total_elapsed

    # -- figure series --------------------------------------------------------------------
    #
    # Primary source: the span store (requests leave finding/init/solve
    # spans stamped with the *same* ``engine.now`` reads as the trace
    # fields, so the two derivations agree to the bit — an equality test
    # pins this).  Campaigns run with ``observe=False`` fall back to the
    # original trace-buffer derivation.

    _ZOOM2 = "ramsesZoom2"

    @property
    def obs(self) -> Optional[Observability]:
        """The campaign's observability hub (None on pre-obs results)."""
        return getattr(self.tracer, "obs", None)

    def span_store(self) -> Optional[SpanStore]:
        """The campaign's span store, or None when tracing was disabled."""
        obs = self.obs
        if obs is not None and obs.enabled and obs.spans.spans:
            return obs.spans
        return None

    def _finding_spans(self, store: SpanStore):
        """Finding spans of the evaluation's requests, in submission order:
        every part-2 attempt that got a SeD, plus the completed part-1 run."""
        part1_rid = self.part1_trace.request_id
        for span in store.find(name="finding", status="ok"):
            if (span.attrs.get("service") == self._ZOOM2
                    or span.attrs.get("request_id") == part1_rid):
                yield span

    def finding_times(self) -> List[float]:
        store = self.span_store()
        if store is not None:
            return [s.duration for s in self._finding_spans(store)]
        out = []
        for t in [self.part1_trace] + self.part2_traces:
            if t.finding_time is not None:
                out.append(t.finding_time)
        return out

    def latencies(self) -> List[float]:
        store = self.span_store()
        if store is not None:
            solve_start = {s.attrs.get("request_id"): s.start
                           for s in store.find(name="solve",
                                               service=self._ZOOM2)}
            out = []
            for f in store.find(name="finding", status="ok",
                                service=self._ZOOM2):
                start = solve_start.get(f.attrs.get("request_id"))
                if start is not None:
                    out.append(start - f.end)
            return out
        return [t.latency for t in self.part2_traces if t.latency is not None]

    def requests_per_sed(self) -> Dict[str, int]:
        store = self.span_store()
        counts: Dict[str, int] = {}
        if store is not None:
            for f in store.find(name="finding", status="ok",
                                service=self._ZOOM2):
                sed = f.attrs.get("sed")
                if sed:
                    counts[sed] = counts.get(sed, 0) + 1
            return counts
        for t in self.part2_traces:
            if t.sed_name:
                counts[t.sed_name] = counts.get(t.sed_name, 0) + 1
        return counts

    def busy_time_per_sed(self) -> Dict[str, float]:
        busy: Dict[str, float] = {}
        store = self.span_store()
        if store is not None:
            # Accumulate in request-id order — the same order the trace
            # derivation sums in, so the floating-point totals are
            # bit-identical, not merely close.
            entries = sorted(
                (s.attrs.get("request_id"), s.attrs.get("sed"), s.duration)
                for s in store.find(name="solve", status="ok",
                                    service=self._ZOOM2))
            for _rid, sed, duration in entries:
                if sed:
                    busy[sed] = busy.get(sed, 0.0) + duration
            return busy
        for t in self.part2_traces:
            if t.sed_name and t.solve_duration is not None:
                busy[t.sed_name] = busy.get(t.sed_name, 0.0) + t.solve_duration
        return busy

    def gantt(self) -> Dict[str, List[Tuple[float, float, int]]]:
        store = self.span_store()
        if store is not None:
            return store.gantt(category="solve", group_by="sed",
                               service=self._ZOOM2)
        chart: Dict[str, List[Tuple[float, float, int]]] = {}
        for t in self.part2_traces:
            if t.sed_name and t.solve_started_at is not None:
                chart.setdefault(t.sed_name, []).append(
                    (t.solve_started_at, t.solve_ended_at, t.request_id))
        for spans in chart.values():
            spans.sort()
        return chart

    @property
    def overhead_per_request(self) -> List[float]:
        """Finding time + service initiation, §5.2's ~70.6 ms figure.

        Span-store derivation: the finding span's duration plus the init
        span's (the SeD's job-slot-grant → solve-start interval, queue wait
        excluded, as the paper does); attempts whose initiation never
        finished fall back to the configured ``service_init_time`` — the
        same semantics the trace fields encode.
        """
        default_init = self.deployment.seds[0].params.service_init_time
        store = self.span_store()
        if store is not None:
            init_by_rid = {s.attrs.get("request_id"): s
                           for s in store.find(name="init",
                                               service=self._ZOOM2)}
            out = []
            for f in store.find(name="finding", status="ok",
                                service=self._ZOOM2):
                init_span = init_by_rid.get(f.attrs.get("request_id"))
                init = (init_span.duration
                        if init_span is not None and init_span.ok
                        else default_init)
                out.append(f.duration + init)
            return out
        out = []
        for t in self.part2_traces:
            if t.finding_time is None:
                continue
            init = t.initiation_time
            if init is None:
                init = default_init
            out.append(t.finding_time + init)
        return out

    # -- process-boundary support ------------------------------------------------------

    def detach(self) -> "CampaignResult":
        """Replace the live deployment with a picklable snapshot (in place).

        The engine, fabric and agent generators cannot be pickled (nor is
        there any reason to ship them between processes); everything the
        result accessors read — tracer, SeD roster, cluster mapping —
        survives in the :class:`DetachedDeployment`.  Returns ``self`` so
        worker functions can ``return run_campaign(cfg).detach()``.
        Idempotent: detaching a detached result is a no-op.
        """
        if not isinstance(self.deployment, DetachedDeployment):
            self.deployment = DetachedDeployment(self.deployment)
        return self


def synthetic_zoom_centers(n: int, seed: int) -> List[Tuple[float, float, float]]:
    """Deterministic halo-like centres for MODELED campaigns."""
    rng = RandomStreams(seed).get("halo-centers")
    pts = rng.random((n, 3))
    return [tuple(p) for p in pts]


def run_campaign(config: Optional[CampaignConfig] = None) -> CampaignResult:
    """Build the §5.1 stack and execute the two-part campaign."""
    config = config or CampaignConfig()
    engine = Engine()
    platform = build_grid5000(
        engine,
        cluster_specs=list(config.cluster_specs) if config.cluster_specs else None)

    policy: SchedulerPolicy
    if config.policy == "random":
        policy = make_policy("random",
                             rng=RandomStreams(config.seed).get("policy"))
    else:
        policy = make_policy(config.policy)

    plan = config.failures
    agent_params = None
    if plan is not None:
        agent_params = AgentParams(
            heartbeat_interval=plan.heartbeat_interval,
            heartbeat_timeout=plan.heartbeat_timeout,
            heartbeat_miss_threshold=plan.heartbeat_miss_threshold)
    obs = Observability(enabled=config.observe)
    # None -> the pre-data-subsystem deployment, byte for byte.
    data_config = campaign_data_config(config.data_policy)
    keep_results = policy_keeps_results(config.data_policy)
    deployment = deploy_paper_hierarchy(platform, policy=policy,
                                        agent_params=agent_params, obs=obs,
                                        data=data_config,
                                        routing=config.routing)

    workdir = config.workdir
    cleanup_dir = None
    if config.mode is ExecutionMode.REAL and workdir is None:
        cleanup_dir = tempfile.TemporaryDirectory(prefix="ramses-campaign-")
        workdir = cleanup_dir.name
    service_config = RamsesServiceConfig(
        mode=config.mode, perf=RamsesPerfModel(seed=config.seed),
        workdir=workdir, real_n_steps=config.real_n_steps,
        real_a_end=config.real_a_end, seed=config.seed,
        checkpoint_interval_work=(
            plan.checkpoint_interval_work if plan is not None else None),
        # Degraded campaigns under a persistence-keeping policy publish
        # checkpoints to the replica catalog so a resumed attempt on another
        # cluster can pull them across the WAN instead of restarting.
        checkpoint_catalog=(plan is not None and keep_results))
    service = register_ramses_services(deployment, service_config,
                                       with_predictor=config.with_predictor)
    deployment.launch_all()

    injector: Optional[FailureInjector] = None
    if plan is not None and plan.n_crashes > 0:
        rng = RandomStreams(config.seed).get("outages")
        injector = FailureInjector(engine)
        n = min(plan.n_crashes, len(deployment.seds))
        lo, hi = plan.crash_window
        victims = rng.choice(len(deployment.seds), size=n, replace=False)
        for idx in victims:
            at = float(rng.uniform(lo, hi))
            downtime = max(60.0, float(rng.exponential(plan.mean_downtime)))
            injector.schedule(deployment.seds[int(idx)],
                              [Outage(at=at, duration=downtime)])

    client = deployment.client
    assert client is not None
    # The namelist shipped with every request carries the run parameters the
    # SeDs honour in REAL mode; MODELED mode keeps the production-scale ones.
    if config.mode is ExecutionMode.REAL:
        namelist = default_namelist_text(config.resolution,
                                         config.boxsize_mpc_h,
                                         a_end=config.real_a_end,
                                         n_steps=config.real_n_steps)
    else:
        namelist = default_namelist_text(config.resolution,
                                         config.boxsize_mpc_h)

    part1_profile = build_zoom1_profile(namelist, config.resolution,
                                        config.boxsize_mpc_h)
    part2_profiles = []
    outcome: Dict[str, object] = {}

    def campaign():
        client.initialize({"MA_name": deployment.ma.name})
        camp_span = part_span = None
        if obs.enabled:
            camp_span = obs.spans.begin(
                "campaign", "campaign", engine.now, "campaign",
                seed=config.seed, policy=config.policy,
                n_sub_simulations=config.n_sub_simulations)
            part_span = obs.spans.begin("campaign", "part1", engine.now,
                                        "part")
        # ---- part 1: the low-resolution full box --------------------------------
        if plan is not None:
            status1 = yield from client.call_retry(
                part1_profile, max_attempts=plan.max_solve_attempts,
                backoff=plan.retry_backoff)
        else:
            status1 = yield from client.call(part1_profile)
        error1, catalog_ref = decode_zoom1(part1_profile)
        if status1 != 0 or error1 != 0:
            raise RuntimeError(f"part 1 failed: status={status1} error={error1}")
        if obs.enabled:
            obs.spans.end(part_span, engine.now)
            part_span = obs.spans.begin("campaign", "part2", engine.now,
                                        "part")

        # ---- choose zoom targets from the halo catalog ---------------------------
        centers: List[Tuple[float, float, float]]
        if (config.mode is ExecutionMode.REAL and catalog_ref is not None
                and catalog_ref.local_path):
            from ..galics.catalogs import read_halo_catalog
            catalog = read_halo_catalog(catalog_ref.local_path)
            halo_centers = [tuple(h.center) for h in catalog]
            if not halo_centers:
                raise RuntimeError("part 1 found no halos to re-simulate")
            centers = [halo_centers[i % len(halo_centers)]
                       for i in range(config.n_sub_simulations)]
        else:
            centers = synthetic_zoom_centers(config.n_sub_simulations,
                                             config.seed)
        outcome["centers"] = centers

        # ---- part 2: the simultaneous sub-simulations ------------------------------
        requests: List[AsyncRequest] = []
        for center in centers:
            profile = build_zoom2_profile(
                namelist, config.resolution, config.boxsize_mpc_h, center,
                config.n_zoom_levels,
                result_persistence=(PersistenceMode.PERSISTENT
                                    if keep_results else None))
            part2_profiles.append(profile)
            if plan is not None:
                requests.append(client.call_async(
                    profile, max_attempts=plan.max_solve_attempts,
                    backoff=plan.retry_backoff))
            else:
                requests.append(client.call_async(profile))
        yield from client.wait_all()
        outcome["statuses"] = [r.process.value for r in requests]
        if obs.enabled:
            obs.spans.end(part_span, engine.now)
            obs.spans.end(camp_span, engine.now)

    if plan is not None:
        # Heartbeat monitors (and any still-pending restart) keep the event
        # queue alive forever; run until the campaign itself completes.
        engine.run_until_complete(campaign())
    else:
        engine.run_process(campaign())
    if cleanup_dir is not None:
        cleanup_dir.cleanup()
    # End-of-run sweep: close anything a failure path left open (status
    # "lost"), then fold the transport counters into the metrics registry.
    obs.finalize(engine.now)
    obs.collect_transport(deployment.fabric, engine.now)
    obs.collect_network(platform.network, engine.now)
    if deployment.data_grid is not None:
        obs.collect_data(deployment.data_grid, engine.now)

    # Collect traces: part 1 is the first trace, part 2 the rest.  Under a
    # FailurePlan a resubmitted call leaves one trace per attempt; the
    # completed one carries the part-1 numbers.
    all_traces = deployment.tracer.all_traces()
    zoom1_traces = [t for t in all_traces if t.service == "ramsesZoom1"]
    part1_trace = next((t for t in zoom1_traces if t.completed_at is not None),
                       zoom1_traces[0])
    part2_traces = [t for t in all_traces if t.service == "ramsesZoom2"]
    statuses = list(outcome.get("statuses", []))
    for profile in part2_profiles:
        result = decode_zoom2(profile)
        if not result.succeeded:
            raise RuntimeError(f"sub-simulation failed: error={result.error}")

    failure_report = None
    if plan is not None:
        stats = service.fault_stats
        deregs = [name for la in deployment.local_agents
                  for name in la.deregistrations]
        recoveries = [child for la in deployment.local_agents
                      if la.heartbeat is not None
                      for child, _t in la.heartbeat.recoveries]
        failure_report = FailureReport(
            outages=list(injector.history) if injector is not None else [],
            resubmissions=client.resubmissions,
            work_lost=stats.work_lost,
            work_recovered=stats.work_recovered,
            checkpoints_written=stats.checkpoints_written,
            restarts_from_checkpoint=stats.restarts_from_checkpoint,
            restarts_from_scratch=stats.restarts_from_scratch,
            deregistrations=deregs,
            recoveries=recoveries)
    data_report = None
    if deployment.data_grid is not None:
        data_report = deployment.data_grid.stats.as_dict()
    return CampaignResult(config=config, deployment=deployment,
                          part1_trace=part1_trace, part2_traces=part2_traces,
                          statuses=statuses,
                          zoom_centers=list(outcome.get("centers", [])),
                          failure_report=failure_report,
                          net_bytes_total=platform.network.bytes_total,
                          net_bytes_wan=platform.network.bytes_wan,
                          data_report=data_report)


def run_campaign_detached(config: Optional[CampaignConfig] = None) -> CampaignResult:
    """Run a campaign and detach the result — the worker-process entry point
    the parallel experiment runner maps over (module-level, so picklable)."""
    return run_campaign(config).detach()
