"""The survey pipeline DIET services: surveyIC, surveyRun,
lensingConvergence and surveyReduce.

The paper's follow-up ("Cosmological Simulations on a Grid of Computers",
Depardon et al. 2010) runs production surveys on DIET by wrapping each
pipeline step as its own service; the post-processing here is the
LensTools chain — density slabs from a survey box stacked into a Born
convergence map (:mod:`repro.survey.lensing`), then maps combined across
realizations by a pairwise reduction.

Profiles (all IN args first, then OUT result file + OUT error int):

========================  ==========================================================
 service                   arguments
========================  ==========================================================
 ``surveyIC``              (cosmology file, resolution, seed | IC file, err)
 ``surveyRun``             (IC file, resolution, n_planes | slab stack, err)
 ``lensingConvergence``    (slab stack, cosmology file, resolution, n_planes,
                            z_source x 1e6 | κ map, err)
 ``surveyReduce``          (map a, map b, weight a, weight b, resolution | map, err)
========================  ==========================================================

Persistence is chosen by the *client* per campaign data policy
(``ProfileDesc.matches`` ignores it): the desc factories take the result
mode, and :func:`survey_result_modes` maps a policy name to the
(intermediate, final) modes.  Like the RAMSES services each solve runs in
``MODELED`` mode (charge the :class:`~repro.services.perfmodel.SurveyPerfModel`
costs) or ``REAL`` mode (additionally compute genuine slabs/maps with the
numpy lensing kernels), and registration can attach a per-SeD performance
predictor so the service advertises its own ``EST_TCOMP`` through CoRI.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Generator, Iterable, Optional, Tuple

from ..core.data import BaseType, FileRef, PersistenceMode, file_desc, scalar_desc
from ..core.profile import Profile, ProfileDesc
from ..core.sed import SeD, SolveContext
from .perfmodel import SurveyPerfModel
from .ramses_service import ExecutionMode

# The survey math (repro.survey.lensing / .grid) is imported lazily inside
# the REAL-mode branches: repro.survey.pipeline imports this module for the
# profile descs, so a module-level import here would cycle.

__all__ = [
    "Z_SOURCE_SCALE",
    "LensingServiceConfig",
    "LensingService",
    "survey_ic_desc",
    "survey_run_desc",
    "lensing_convergence_desc",
    "survey_reduce_desc",
    "survey_result_modes",
    "register_survey_services",
]

#: Fixed-point scale for the DIET_INT source redshift (z x 1e6).
Z_SOURCE_SCALE = 1_000_000


def _error_mode(result_mode: PersistenceMode) -> PersistenceMode:
    """Persistence of the error-control integer.

    Memoization requires *every* OUT argument to keep a server copy, so
    when the results persist the tiny error int rides along as
    PERSISTENT_RETURN; volatile campaigns keep it volatile.
    """
    if result_mode.keeps_server_copy:
        return PersistenceMode.PERSISTENT_RETURN
    return PersistenceMode.VOLATILE


def survey_ic_desc(result_mode: PersistenceMode = PersistenceMode.VOLATILE
                   ) -> ProfileDesc:
    """surveyIC: (cosmology, resolution, seed) -> (IC file, error)."""
    desc = ProfileDesc("surveyIC", 2, 2, 4)
    desc.set_arg(0, file_desc())                       # cosmology parameters
    desc.set_arg(1, scalar_desc(BaseType.INT))         # resolution
    desc.set_arg(2, scalar_desc(BaseType.INT))         # realization seed
    desc.set_arg(3, file_desc(result_mode))            # displacement field
    desc.set_arg(4, scalar_desc(BaseType.INT, _error_mode(result_mode)))
    return desc


def survey_run_desc(result_mode: PersistenceMode = PersistenceMode.VOLATILE
                    ) -> ProfileDesc:
    """surveyRun: (IC file, resolution, n_planes) -> (slab stack, error)."""
    desc = ProfileDesc("surveyRun", 2, 2, 4)
    desc.set_arg(0, file_desc())                       # IC displacement field
    desc.set_arg(1, scalar_desc(BaseType.INT))         # resolution
    desc.set_arg(2, scalar_desc(BaseType.INT))         # number of lens planes
    desc.set_arg(3, file_desc(result_mode))            # projected density slabs
    desc.set_arg(4, scalar_desc(BaseType.INT, _error_mode(result_mode)))
    return desc


def lensing_convergence_desc(result_mode: PersistenceMode = PersistenceMode.VOLATILE
                             ) -> ProfileDesc:
    """lensingConvergence: (slabs, cosmology, resolution, n_planes,
    z_source x 1e6) -> (κ map, error)."""
    desc = ProfileDesc("lensingConvergence", 4, 4, 6)
    desc.set_arg(0, file_desc())                       # slab stack
    desc.set_arg(1, file_desc())                       # cosmology parameters
    desc.set_arg(2, scalar_desc(BaseType.INT))         # resolution
    desc.set_arg(3, scalar_desc(BaseType.INT))         # number of lens planes
    desc.set_arg(4, scalar_desc(BaseType.INT))         # z_source fixed point
    desc.set_arg(5, file_desc(result_mode))            # convergence map
    desc.set_arg(6, scalar_desc(BaseType.INT, _error_mode(result_mode)))
    return desc


def survey_reduce_desc(result_mode: PersistenceMode = PersistenceMode.VOLATILE
                       ) -> ProfileDesc:
    """surveyReduce: (map a, map b, weight a, weight b, resolution) ->
    (stacked map, error)."""
    desc = ProfileDesc("surveyReduce", 4, 4, 6)
    desc.set_arg(0, file_desc())                       # map a
    desc.set_arg(1, file_desc())                       # map b
    desc.set_arg(2, scalar_desc(BaseType.INT))         # weight a (#maps folded)
    desc.set_arg(3, scalar_desc(BaseType.INT))         # weight b
    desc.set_arg(4, scalar_desc(BaseType.INT))         # resolution
    desc.set_arg(5, file_desc(result_mode))            # stacked map
    desc.set_arg(6, scalar_desc(BaseType.INT, _error_mode(result_mode)))
    return desc


def survey_result_modes(data_policy: Optional[str]
                        ) -> Tuple[PersistenceMode, PersistenceMode]:
    """(intermediate, final) result persistence for a campaign policy.

    Volatile ships every product through the client; the persisting
    policies keep intermediates as server-side PERSISTENT handles (the
    DAG passes handles between stages) and return the final map while
    also keeping a copy (PERSISTENT_RETURN — required for memoization).
    """
    from ..data import policy_keeps_results

    if policy_keeps_results(data_policy):
        return PersistenceMode.PERSISTENT, PersistenceMode.PERSISTENT_RETURN
    return PersistenceMode.VOLATILE, PersistenceMode.VOLATILE


def _stamp(*parts: Any) -> str:
    """Deterministic short tag tying a product file to its inputs.

    The memo normalizes a FileRef to (path, nbytes, content), so product
    paths must be unique per logical computation or distinct requests
    downstream would alias in the memo key space.
    """
    raw = "|".join(str(p) for p in parts).encode()
    return hashlib.sha256(raw).hexdigest()[:12]


@dataclass
class LensingServiceConfig:
    """Configuration shared by every SeD's survey services."""

    mode: ExecutionMode = ExecutionMode.MODELED
    perf: SurveyPerfModel = field(default_factory=SurveyPerfModel)
    #: REAL mode: directory for genuine .npy products (one subdir per job).
    workdir: Optional[str] = None
    #: Parameters the performance predictor quotes EST_TCOMP at.
    predict_resolution: int = 64
    predict_n_planes: int = 8
    seed: int = 2007

    def __post_init__(self):
        if self.mode is ExecutionMode.REAL and not self.workdir:
            raise ValueError("REAL mode needs a workdir for output files")


class LensingService:
    """Solve functions for the survey pipeline stages."""

    def __init__(self, config: Optional[LensingServiceConfig] = None):
        self.config = config or LensingServiceConfig()
        self._job_counter = 0

    # -- shared plumbing ---------------------------------------------------------------

    def _next_job(self) -> int:
        self._job_counter += 1
        return self._job_counter

    def _charge(self, ctx: SolveContext, work: float, product_bytes: int,
                tag: str) -> Generator[Any, Any, None]:
        """CPU work then the NFS staging write of the stage's product."""
        yield from ctx.execute(work)
        if ctx.nfs is not None:
            yield from ctx.nfs.write(ctx.host.name, tag, product_bytes)

    def _job_dir(self, service: str, job_id: int) -> str:
        assert self.config.workdir is not None
        path = os.path.join(self.config.workdir, f"{service}-{job_id:04d}")
        os.makedirs(path, exist_ok=True)
        return path

    @property
    def _real(self) -> bool:
        return self.config.mode is ExecutionMode.REAL

    @staticmethod
    def _file_arg(profile: Profile, index: int, what: str) -> FileRef:
        value = profile.parameter(index).get()
        if not isinstance(value, FileRef):
            raise ValueError(f"{what} argument must resolve to a file, "
                             f"got {type(value).__name__}")
        return value

    def _save_array(self, service: str, job_id: int, name: str,
                    array: Any) -> str:
        import numpy as np

        path = os.path.join(self._job_dir(service, job_id), name)
        np.save(path, array)
        return path + ".npy" if not path.endswith(".npy") else path

    # -- surveyIC ----------------------------------------------------------------------

    def solve_ic(self, profile: Profile, ctx: SolveContext
                 ) -> Generator[Any, Any, int]:
        """Initial conditions for one cosmology point."""
        cosmo_ref = self._file_arg(profile, 0, "cosmology")
        resolution = int(profile.parameter(1).get())
        seed = int(profile.parameter(2).get())
        perf = self.config.perf
        job_id = self._next_job()
        nbytes = perf.ic_bytes(resolution)
        stamp = _stamp("ic", cosmo_ref.content or cosmo_ref.path,
                       resolution, seed)
        yield from self._charge(ctx, perf.ic_work(resolution), nbytes,
                                f"survey-ic-{job_id}")

        content = None
        if self._real:
            from ..survey.grid import parse_cosmology_text

            cosmo = parse_cosmology_text(cosmo_ref.content or "")
            realization = int.from_bytes(hashlib.sha256(
                f"{self.config.seed}:{stamp}".encode()).digest()[:8], "big")
            content = (f"realization = {realization}\n"
                       f"resolution = {resolution}\n"
                       f"sigma8 = {cosmo.sigma8!r}\n"
                       f"ns = {cosmo.ns!r}\n")
        profile.parameter(3).set(FileRef(path=f"ic-{stamp}.dat",
                                         nbytes=nbytes, content=content))
        profile.parameter(4).set(0)
        return 0

    # -- surveyRun ---------------------------------------------------------------------

    def solve_run(self, profile: Profile, ctx: SolveContext
                  ) -> Generator[Any, Any, int]:
        """Full-box survey run -> projected density slab stack."""
        ic_ref = self._file_arg(profile, 0, "IC")
        resolution = int(profile.parameter(1).get())
        n_planes = int(profile.parameter(2).get())
        perf = self.config.perf
        job_id = self._next_job()
        nbytes = perf.slab_bytes(resolution, n_planes)
        stamp = _stamp("run", ic_ref.path, resolution, n_planes)
        yield from self._charge(ctx, perf.run_work(resolution), nbytes,
                                f"survey-run-{job_id}")

        local_path = None
        if self._real:
            from ..survey.lensing import density_slabs

            params = {}
            for line in (ic_ref.content or "").splitlines():
                key, sep, raw = line.partition("=")
                if sep:
                    params[key.strip()] = raw.strip()
            slabs = density_slabs(
                resolution, n_planes,
                seed=int(params["realization"]),
                sigma8=float(params.get("sigma8", "0.8")),
                ns=float(params.get("ns", "0.96")))
            local_path = self._save_array("run", job_id, "slabs", slabs)
        profile.parameter(3).set(FileRef(path=f"slabs-{stamp}.npy",
                                         nbytes=nbytes,
                                         local_path=local_path))
        profile.parameter(4).set(0)
        return 0

    # -- lensingConvergence ------------------------------------------------------------

    def solve_lensing(self, profile: Profile, ctx: SolveContext
                      ) -> Generator[Any, Any, int]:
        """Born-stack the slab stack into one convergence map."""
        slab_ref = self._file_arg(profile, 0, "slab stack")
        cosmo_ref = self._file_arg(profile, 1, "cosmology")
        resolution = int(profile.parameter(2).get())
        n_planes = int(profile.parameter(3).get())
        z_source = int(profile.parameter(4).get()) / Z_SOURCE_SCALE
        perf = self.config.perf
        job_id = self._next_job()
        nbytes = perf.map_bytes(resolution)
        stamp = _stamp("lens", slab_ref.path,
                       cosmo_ref.content or cosmo_ref.path,
                       profile.parameter(4).get())
        yield from self._charge(ctx, perf.lensing_work(resolution, n_planes),
                                nbytes, f"survey-lens-{job_id}")

        local_path = None
        if self._real:
            import numpy as np

            from ..survey.grid import parse_cosmology_text
            from ..survey.lensing import born_convergence

            if not slab_ref.local_path:
                raise ValueError("REAL lensing needs slabs with a local_path")
            slabs = np.load(slab_ref.local_path)
            cosmo = parse_cosmology_text(cosmo_ref.content or "")
            kappa = born_convergence(slabs, z_source, cosmo.h0,
                                     cosmo.omega_m, cosmo.w0)
            local_path = self._save_array("lens", job_id, "kappa", kappa)
        profile.parameter(5).set(FileRef(path=f"kappa-{stamp}.npy",
                                         nbytes=nbytes,
                                         local_path=local_path))
        profile.parameter(6).set(0)
        return 0

    # -- surveyReduce ------------------------------------------------------------------

    def solve_reduce(self, profile: Profile, ctx: SolveContext
                     ) -> Generator[Any, Any, int]:
        """Weighted pairwise stack of two convergence maps (fan-in)."""
        ref_a = self._file_arg(profile, 0, "map a")
        ref_b = self._file_arg(profile, 1, "map b")
        weight_a = int(profile.parameter(2).get())
        weight_b = int(profile.parameter(3).get())
        resolution = int(profile.parameter(4).get())
        perf = self.config.perf
        job_id = self._next_job()
        nbytes = perf.map_bytes(resolution)
        stamp = _stamp("reduce", ref_a.path, ref_b.path, weight_a, weight_b)
        yield from self._charge(ctx, perf.reduce_work(resolution), nbytes,
                                f"survey-reduce-{job_id}")

        local_path = None
        if self._real:
            import numpy as np

            from ..survey.lensing import stack_maps

            if not (ref_a.local_path and ref_b.local_path):
                raise ValueError("REAL reduce needs maps with a local_path")
            stacked = stack_maps(
                [np.load(ref_a.local_path), np.load(ref_b.local_path)],
                [weight_a, weight_b])
            local_path = self._save_array("reduce", job_id, "kappa", stacked)
        profile.parameter(5).set(FileRef(path=f"stack-{stamp}.npy",
                                         nbytes=nbytes,
                                         local_path=local_path))
        profile.parameter(6).set(0)
        return 0


def register_survey_services(seds: Iterable[SeD],
                             config: Optional[LensingServiceConfig] = None,
                             with_predictor: bool = False) -> LensingService:
    """Register the four survey services on the given SeDs.

    Takes the SeD iterable directly so it works for both a
    ``Deployment`` and a ``Federation`` (pass ``deployment.seds`` /
    ``federation.seds``).  With ``with_predictor=True`` each service
    also registers a per-SeD performance predictor, so CoRI stamps
    ``EST_TCOMP`` into the estimates MCT-style policies consume.
    """
    config = config or LensingServiceConfig()
    service = LensingService(config)
    perf = config.perf
    res, planes = config.predict_resolution, config.predict_n_planes
    for sed in seds:
        p_ic = p_run = p_lens = p_reduce = None
        if with_predictor:
            speed = sed.host.speed
            p_ic = lambda desc, s=speed: perf.ic_work(res) / s
            p_run = lambda desc, s=speed: perf.run_work(res) / s
            p_lens = lambda desc, s=speed: perf.lensing_work(res, planes) / s
            p_reduce = lambda desc, s=speed: perf.reduce_work(res) / s
        sed.add_service(survey_ic_desc(), service.solve_ic, predictor=p_ic)
        sed.add_service(survey_run_desc(), service.solve_run, predictor=p_run)
        sed.add_service(lensing_convergence_desc(), service.solve_lensing,
                        predictor=p_lens)
        sed.add_service(survey_reduce_desc(), service.solve_reduce,
                        predictor=p_reduce)
    return service
