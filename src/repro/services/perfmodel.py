"""Execution-time model for the RAMSES services.

The §5 experiment ran on hardware we do not have, so wall-clock costs come
from this model (DESIGN.md substitution table).  Work is expressed in
normalized GHz-seconds: a job of work ``W`` takes ``W / host.speed`` seconds
on a host of speed ``speed`` (GHz-equivalent), which is how the simulated
SeDs charge time.  On top of the CPU work every job pays NFS time for its
IC files and snapshots (speed-independent), which the calibration accounts
for.

Calibration targets (§5.2):

* part 1 (single 128^3, 100 Mpc/h run) lasted **1 h 15 min 11 s = 4511 s**
  on the SeD the default policy picks first (a 2.0 GHz Opteron 246 —
  lyon-capricorne);
* the 100 zoom sub-simulations averaged **1 h 24 min 1 s = 5041 s**; with
  the §5.1 SeD speed mix, that pins the mean zoom work.  The paper reports
  a *sample* average, so the calibration divides out the realized mean of
  the noise draws the canonical campaign consumes (job indices 2..101 —
  part 1 takes index 1);
* per-SeD busy time then spans ~10.5 h (Nancy) to ~15 h (Toulouse),
  Figure 4 right.

The work formulas scale physically (particles x steps, with zoom-level
subcycling), so REAL-mode toy runs use the *same* model at their own
parameters; only the constants are calibrated.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..sim.rng import RandomStreams

__all__ = ["RamsesPerfModel", "SurveyPerfModel", "PAPER_PART1_SECONDS",
           "PAPER_PART2_MEAN_SECONDS", "PAPER_TOTAL_SECONDS",
           "PAPER_RESOLUTION", "PAPER_BOX_MPC_H"]

#: §5.2 headline numbers (seconds).
PAPER_PART1_SECONDS = 1 * 3600 + 15 * 60 + 11      # 4511
PAPER_PART2_MEAN_SECONDS = 1 * 3600 + 24 * 60 + 1  # 5041
PAPER_TOTAL_SECONDS = 16 * 3600 + 18 * 60 + 43     # 58723
PAPER_RESOLUTION = 128
PAPER_BOX_MPC_H = 100

#: Speed of the SeD that receives the first (part-1) request under the
#: default policy on the paper deployment: lyon-capricorne, Opteron 246.
_FIRST_SED_SPEED = 2.0

#: Mean inverse speed of the 11 paper SeDs (see grid5000.py):
#: 2 x 2.0, 1 x 2.4, 2 x 2.2, 2 x 2.6, 2 x 1.82(violette), 2 x 2.2.
_MEAN_INV_SPEED = (2 / 2.0 + 1 / 2.4 + 2 / 2.2 + 2 / 2.6
                   + 2 / 1.82 + 2 / 2.2) / 11.0

#: Job indices the canonical campaign's 100 zoom requests consume.
_CANONICAL_INDICES = (2, 102)


@lru_cache(maxsize=64)
def _noise_draw(seed: int, sigma: float, index: int) -> float:
    """The (mean-one) lognormal work factor of job ``index``."""
    rng = RandomStreams(seed).get("zoom-work", index)
    return float(np.exp(rng.normal(-0.5 * sigma ** 2, sigma)))


@lru_cache(maxsize=16)
def _realized_noise_mean(seed: int, sigma: float, lo: int, hi: int) -> float:
    return float(np.mean([_noise_draw(seed, sigma, i) for i in range(lo, hi)]))


@dataclass(frozen=True)
class RamsesPerfModel:
    """Work model for both services.

    ``kappa`` is GHz-seconds per particle-step of the PM/AMR solver;
    ``n_steps`` the canonical number of coarse steps per run; both derive
    from the calibration targets above.
    """

    #: coarse time steps of a production run (RAMSES nstepmax scale).
    n_steps: int = 80
    #: relative per-request scatter of the zoom work (region-dependent
    #: clustering => different AMR depth per target halo).
    sigma: float = 0.08
    #: GALICS post-processing cost as a fraction of the solve cost.
    postproc_fraction: float = 0.06
    #: IC generation (GRAFIC) cost as a fraction of the solve cost.
    ic_fraction: float = 0.04
    #: effective NFS throughput for the I/O charge, bytes/s (matches the
    #: platform's NfsVolume default).
    nfs_throughput: float = 60e6
    seed: int = 2007

    # -- NFS charge --------------------------------------------------------------------

    def snapshot_bytes(self, resolution: int, n_outputs: int = 10) -> int:
        """On-NFS snapshot volume of one run (8 doubles per particle)."""
        return int(resolution ** 3 * 8 * 8 * n_outputs)

    def nfs_seconds(self, resolution: int) -> float:
        """I/O time a job spends on its cluster's NFS volume (uncontended):
        IC files (one output worth) plus the full snapshot series."""
        total_bytes = (self.snapshot_bytes(resolution, 1)
                       + self.snapshot_bytes(resolution, 10))
        return total_bytes / self.nfs_throughput

    # -- derived calibration constants ------------------------------------------------

    @property
    def kappa(self) -> float:
        """GHz-seconds per particle-step, from the part-1 target."""
        n_particles = PAPER_RESOLUTION ** 3
        cpu_seconds = PAPER_PART1_SECONDS - self.nfs_seconds(PAPER_RESOLUTION)
        total = cpu_seconds * _FIRST_SED_SPEED
        solve = total / (1.0 + self.postproc_fraction + self.ic_fraction)
        return solve / (n_particles * self.n_steps)

    @property
    def zoom_overhead_factor(self) -> float:
        """Extra work of a zoom run relative to a single-level run of the
        same coarse resolution, from the part-2 sample-mean target."""
        single = self.part1_work(PAPER_RESOLUTION)
        cpu_target = PAPER_PART2_MEAN_SECONDS - self.nfs_seconds(PAPER_RESOLUTION)
        noise_mean = _realized_noise_mean(self.seed, self.sigma,
                                          *_CANONICAL_INDICES)
        return cpu_target / (_MEAN_INV_SPEED * noise_mean) / single

    # -- work (GHz-seconds); divide by host speed for seconds ----------------------------

    def _with_overheads(self, solve_work: float) -> float:
        return solve_work * (1.0 + self.postproc_fraction + self.ic_fraction)

    def part1_work(self, resolution: int) -> float:
        """Full-box single-level run at ``resolution``^3 particles."""
        if resolution < 2:
            raise ValueError("resolution must be >= 2")
        return self._with_overheads(self.kappa * resolution ** 3 * self.n_steps)

    def part2_work(self, resolution: int, n_levels: int,
                   request_index: int = 0) -> float:
        """One zoom re-simulation.

        The coarse box costs like part 1; nested levels add subcycled work
        on their (shrinking) subvolumes.  The calibrated
        ``zoom_overhead_factor`` absorbs the level bookkeeping for the
        canonical 2-level request; other depths scale by the subcycling
        series.  ``request_index`` selects the deterministic per-request
        scatter draw (the SeD uses its job counter, so the canonical
        campaign consumes draws 2..101 in arrival order).
        """
        if n_levels < 0:
            raise ValueError("n_levels must be >= 0")
        base = self.part1_work(resolution) * self.zoom_overhead_factor

        def level_sum(nl: int) -> float:
            return 1.0 + sum(2.0 ** l / 8.0 ** l * 4.0 for l in range(1, nl + 1))

        base *= level_sum(n_levels) / level_sum(2)
        return base * _noise_draw(self.seed, self.sigma, request_index)

    # -- data sizes ----------------------------------------------------------------------

    def result_tarball_bytes(self, resolution: int) -> int:
        """Size of the packed GALICS products shipped back to the client."""
        return int(4e6 + 64.0 * resolution ** 2)


@dataclass(frozen=True)
class SurveyPerfModel:
    """Work model for the survey pipeline services (IC -> run -> lensing).

    Survey boxes are modest full-box runs swept over many cosmologies
    (LensTools shape), not deep zooms: the work is noise-free and scales
    with particles x steps for the N-body stages and with plane pixels
    for the lensing stages.  Same unit convention as
    :class:`RamsesPerfModel`: work is GHz-seconds, a host of speed ``s``
    takes ``work / s`` seconds.
    """

    #: GHz-seconds per particle-step of the survey solver (single-level
    #: full box, no AMR subcycling — cheaper per particle than a zoom).
    kappa: float = 2.0e-6
    #: coarse steps of one survey box.
    n_steps: int = 40
    #: IC generation (CAMB + GRAFIC pass) relative to a run.
    ic_fraction: float = 0.05
    #: GHz-seconds per lens-plane pixel of the Born ray bookkeeping.
    kappa_lens: float = 2.0e-4
    #: effective NFS throughput for staging products, bytes/s.
    nfs_throughput: float = 60e6

    # -- work (GHz-seconds) --------------------------------------------------------------

    def ic_work(self, resolution: int) -> float:
        """Initial-conditions generation for one cosmology point."""
        if resolution < 2:
            raise ValueError("resolution must be >= 2")
        return self.kappa * resolution ** 3 * self.n_steps * self.ic_fraction

    def run_work(self, resolution: int) -> float:
        """One full-box survey run at ``resolution``^3 particles."""
        if resolution < 2:
            raise ValueError("resolution must be >= 2")
        return self.kappa * resolution ** 3 * self.n_steps

    def lensing_work(self, resolution: int, n_planes: int) -> float:
        """Born stacking of ``n_planes`` density slabs into one map."""
        if n_planes < 1:
            raise ValueError("n_planes must be >= 1")
        return self.kappa_lens * n_planes * resolution ** 2

    def reduce_work(self, resolution: int) -> float:
        """Pairwise weighted stack of two convergence maps."""
        return self.kappa_lens * resolution ** 2

    # -- data sizes ----------------------------------------------------------------------

    def ic_bytes(self, resolution: int) -> int:
        """Displacement field: 3 doubles per particle."""
        return int(resolution ** 3 * 3 * 8)

    def slab_bytes(self, resolution: int, n_planes: int) -> int:
        """Projected density slabs: ``n_planes`` single-precision planes."""
        return int(n_planes * resolution ** 2 * 4)

    def map_bytes(self, resolution: int) -> int:
        """One convergence map, single precision."""
        return int(resolution ** 2 * 4)

    def nfs_seconds(self, nbytes: int) -> float:
        """Uncontended NFS time for staging ``nbytes`` of products."""
        return nbytes / self.nfs_throughput
