"""E14 — survey campaign: parameter-survey DAGs over a federation.

The campaign the follow-up work runs on the paper's platform: a cartesian
grid of cosmologies (:mod:`repro.survey.grid`), each point an IC→run→
lensing chain folded by a pairwise reduction tree
(:mod:`repro.survey.pipeline`), executed as a client-side DAG of DIET
requests (:mod:`repro.survey.dag`) against a two-grid federation — while
a stream of interactive ``ramsesZoom2`` requests shares the SeDs, the
paper's §4.3 workload riding along as background load.

Two clients (one per grid, placed on the priced per-grid client hosts)
run the *same* cosmology grid back to back: the second client's DAG is
the duplicated-cosmology leg, and under the persisting data policies the
federation-wide memo short-circuits its whole subtree — nonzero hit rate
is an acceptance criterion, not an accident.

Three ablations cross to form the arms:

* routing: ``pull`` vs ``push`` (E12's protocol choice, now under DAGs);
* scheduler: ``default`` herd vs ``mct`` with per-service CoRI
  predictors registered by the lensing and RAMSES services;
* data policy: ``volatile`` (every product round-trips through the
  client) vs ``persistent`` (PERSISTENT handles, bytes move SeD-to-SeD)
  vs ``replicated`` (persistent + per-cluster replicas).

Each arm reports makespan, per-stage P50/P99 durations, WAN bytes (the
quantity the data policies exist to minimize), memo hits and DAG
executor accounting.  Every arm is a pure function of its arguments:
``--jobs`` fan-out, reruns and observe-on/off are byte-identical.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import CommunicationError, ServerNotFoundError
from ..core.federation import FederatedClient, FederationConfig, build_federation
from ..data import campaign_data_config
from ..obs import Observability
from ..services.lensing_service import LensingServiceConfig, register_survey_services
from ..services.ramses_client import build_zoom2_profile, default_namelist_text
from ..services.ramses_service import RamsesServiceConfig, register_ramses_services
from ..sim.engine import Engine
from ..sim.traffic import percentile
from ..survey.batch import SurveyBatch
from ..survey.dag import DagExecutor
from ..survey.grid import ParameterGrid
from ..survey.pipeline import build_survey_dag
from .report import ascii_table
from .runner import Task, derive_seed, run_tasks

__all__ = [
    "DEFAULT_DATA_POLICIES",
    "DEFAULT_POLICIES",
    "DEFAULT_ROUTINGS",
    "SurveyArm",
    "SurveyResult",
    "render",
    "run",
    "write_batches",
]

DEFAULT_ROUTINGS: Tuple[str, ...] = ("pull", "push")
#: ``default`` is the paper's herd scheduler; ``mct`` consumes the CoRI
#: ``EST_TCOMP`` predictors the survey services register.
DEFAULT_POLICIES: Tuple[str, ...] = ("default", "mct")
DEFAULT_DATA_POLICIES: Tuple[str, ...] = ("volatile", "persistent",
                                          "replicated")

#: Background-load zoom requests run at a smaller resolution than the
#: paper's 128^3 so they load the SeDs without dwarfing the survey.
_ZOOM_RESOLUTION = 32
_ZOOM_BOXSIZE = 100
_ZOOM_LEVELS = 2
#: Seconds between zoom submissions (each runs concurrently).
_ZOOM_INTERVAL = 20.0

#: The swept axes: matter density and clustering amplitude, the classic
#: lensing-degeneracy plane; the other four parameters stay at the base.
_OMEGA_M_BASE = 0.24
_OMEGA_M_STEP = 0.02
_SIGMA8_BASE = 0.75
_SIGMA8_STEP = 0.05


@dataclass(frozen=True)
class SurveyArm:
    """One (routing, policy, data policy) campaign measurement."""

    routing: str
    policy: str
    data: str
    points: int
    nodes: int
    completed: int
    launched: int
    retries: int
    dead_letters: int
    dep_refreshes: int
    zooms_done: int
    makespan: float
    #: (stage, samples, p50 seconds, p99 seconds) per pipeline stage.
    stage_stats: Tuple[Tuple[str, int, float, float], ...]
    memo_hits: int
    memo_misses: int
    memo_invalidations: int
    redirects: int
    rejections: int
    bytes_wan: int
    bytes_total: int
    data_moved: int
    data_saved: int
    events: int
    #: (point label, stage, node id, product) for client 0's DAG in
    #: insertion order — what ``write_batches`` files under the
    #: LensTools-style home/storage tree.
    products: Tuple[Tuple[str, str, str, Any], ...] = ()
    #: Span store when the arm ran with observability (None otherwise);
    #: excluded from equality so observe on/off results compare equal.
    span_store: Any = field(default=None, compare=False)

    @property
    def hit_rate(self) -> float:
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0


@dataclass
class SurveyResult:
    """The full campaign: every ablation arm plus its shape."""

    routings: Tuple[str, ...]
    policies: Tuple[str, ...]
    data_policies: Tuple[str, ...]
    shape: Tuple[int, int]
    resolution: int
    n_planes: int
    z_source: float
    zooms: int
    n_grids: int
    clusters_per_grid: int
    seed: int
    runs: List[SurveyArm] = field(default_factory=list)

    def arm(self, routing: str, policy: str, data: str
            ) -> Optional[SurveyArm]:
        for run_ in self.runs:
            if (run_.routing, run_.policy, run_.data) == (routing, policy,
                                                          data):
                return run_
        return None


def _survey_grid(shape: Tuple[int, int]) -> ParameterGrid:
    """The campaign's cosmology grid: ``shape[0] x shape[1]`` points in
    the (omega_m, sigma8) plane, derived deterministically from shape."""
    nx, ny = shape
    return ParameterGrid.cartesian({
        "omega_m": tuple(round(_OMEGA_M_BASE + _OMEGA_M_STEP * i, 6)
                         for i in range(nx)),
        "sigma8": tuple(round(_SIGMA8_BASE + _SIGMA8_STEP * j, 6)
                        for j in range(ny)),
    })


def _zoom_center(index: int) -> Tuple[float, float, float]:
    """Deterministic distinct zoom centres (Mpc/h inside the 100 box)."""
    return (float(5 + (17 * index) % 90),
            float(5 + (29 * index) % 90),
            float(5 + (41 * index) % 90))


def _node_product(result) -> Any:
    """A node's primary product: its first OUT argument (the last OUT is
    the GridRPC error integer)."""
    return result.outputs[min(result.outputs)]


def _run_arm(routing: str, policy: str, data_policy: str,
             shape: Tuple[int, int], resolution: int, n_planes: int,
             z_source: float, zooms: int, n_grids: int,
             clusters_per_grid: int, seed: int, observe: bool = False,
             max_in_flight: int = 4) -> SurveyArm:
    """One campaign arm, a pure function of its arguments (worker-safe)."""
    engine = Engine()
    obs = Observability() if observe else None
    federation = build_federation(
        engine,
        FederationConfig(n_grids=n_grids,
                         clusters_per_grid=clusters_per_grid,
                         routing=routing,
                         policy=None if policy == "default" else policy,
                         memo=True,
                         data=campaign_data_config(data_policy),
                         client_placement="per-grid"),
        obs=obs)
    with_predictor = policy == "mct"
    register_survey_services(
        federation.seds,
        LensingServiceConfig(predict_resolution=resolution,
                             predict_n_planes=n_planes),
        with_predictor=with_predictor)
    # Federation quacks like a Deployment here (both expose .seds).
    register_ramses_services(federation, RamsesServiceConfig(),
                             with_predictor=with_predictor)
    federation.launch_all()

    grid = _survey_grid(shape)
    clients = [FederatedClient(federation.fabric,
                               federation.client_host_for(g),
                               name=f"surveycli{g}",
                               ma_names=federation.ma_names, home=g,
                               tracer=federation.tracer, memo_enabled=True)
               for g in range(n_grids)]
    # Both clients run the same grid with the same realization seed: the
    # later clients' chains are the duplicated-cosmology leg that should
    # answer from the federation-wide memo under persisting policies.
    executors = [
        DagExecutor(client,
                    build_survey_dag(grid, resolution=resolution,
                                     n_planes=n_planes, z_source=z_source,
                                     data_policy=data_policy,
                                     realization_seed=seed,
                                     name=f"survey-c{g}"),
                    max_in_flight=max_in_flight)
        for g, client in enumerate(clients)]

    zoom_client = FederatedClient(federation.fabric,
                                  federation.client_host_for(0),
                                  name="zoomcli",
                                  ma_names=federation.ma_names, home=0,
                                  tracer=federation.tracer)
    stats: Dict[str, int] = {"zooms": 0}

    def one_zoom(index: int):
        profile = build_zoom2_profile(
            default_namelist_text(_ZOOM_RESOLUTION, _ZOOM_BOXSIZE),
            _ZOOM_RESOLUTION, _ZOOM_BOXSIZE, _zoom_center(index),
            _ZOOM_LEVELS)
        try:
            status, _sed, _found = yield from zoom_client.call(profile)
        except (ServerNotFoundError, CommunicationError):
            return
        if status == 0:
            stats["zooms"] += 1

    def zoom_stream():
        procs = []
        for index in range(zooms):
            procs.append(engine.process(one_zoom(index),
                                        name=f"zoom:{index}"))
            if index + 1 < zooms:
                yield engine.timeout(_ZOOM_INTERVAL)
        if procs:
            yield engine.all_of(procs)

    def survey_stream():
        # Sequential clients pin the memo-hit pattern: client 0 populates,
        # client 1 replays the identical grid.
        for executor in executors:
            yield from executor.run()

    def drive():
        procs = [engine.process(survey_stream(), name="surveys")]
        if zooms > 0:
            procs.append(engine.process(zoom_stream(), name="zooms"))
        yield engine.all_of(procs)

    # run_until_complete: agent heartbeats never finish.
    engine.run_until_complete(drive())
    makespan = engine.now

    durations: Dict[str, List[float]] = {}
    for executor in executors:
        for stage, values in executor.stage_durations.items():
            durations.setdefault(stage, []).extend(values)
    stage_stats = tuple(
        (stage, len(values), percentile(values, 50.0),
         percentile(values, 99.0))
        for stage, values in durations.items())

    dag0 = executors[0].dag
    products = tuple(
        (node.point or "survey", node.stage, node.node_id,
         _node_product(executors[0].results[node.node_id]))
        for node in dag0 if node.node_id in executors[0].results)

    memo_stats = federation.memo.stats if federation.memo is not None else None
    grid_stats = (federation.data_grid.stats
                  if federation.data_grid is not None else None)
    network = federation.platform.network
    return SurveyArm(
        routing=routing, policy=policy, data=data_policy,
        points=len(grid),
        nodes=sum(executor.stats.nodes for executor in executors),
        completed=sum(executor.stats.completed for executor in executors),
        launched=sum(executor.stats.launched for executor in executors),
        retries=sum(executor.stats.retries for executor in executors),
        dead_letters=sum(e.stats.dead_letters for e in executors),
        dep_refreshes=sum(e.stats.dep_refreshes for e in executors),
        zooms_done=stats["zooms"], makespan=makespan,
        stage_stats=stage_stats,
        memo_hits=memo_stats.hits if memo_stats else 0,
        memo_misses=memo_stats.misses if memo_stats else 0,
        memo_invalidations=memo_stats.invalidations if memo_stats else 0,
        redirects=sum(c.redirects for c in clients) + zoom_client.redirects,
        rejections=(sum(c.rejections for c in clients)
                    + zoom_client.rejections),
        bytes_wan=network.bytes_wan, bytes_total=network.bytes_total,
        data_moved=grid_stats.bytes_moved if grid_stats else 0,
        data_saved=grid_stats.bytes_saved if grid_stats else 0,
        events=engine.events_scheduled,
        products=products,
        span_store=obs.spans if obs is not None else None)


def run(routings: Sequence[str] = DEFAULT_ROUTINGS,
        policies: Sequence[str] = DEFAULT_POLICIES,
        data_policies: Sequence[str] = DEFAULT_DATA_POLICIES,
        shape: Tuple[int, int] = (3, 3), resolution: int = 64,
        n_planes: int = 8, z_source: float = 1.0, zooms: int = 4,
        n_grids: int = 2, clusters_per_grid: int = 3, seed: int = 2007,
        jobs: Optional[int] = None, observe: bool = False,
        max_in_flight: int = 4) -> SurveyResult:
    """Run every (routing, policy, data policy) arm; parallel == serial.

    ``jobs`` fans the arms over worker processes; each arm is a pure
    function of its arguments, so results are identical in task order.
    ``clusters_per_grid`` defaults to 3 (not E13's 2) so each grid spans
    two sites — the catalogue's first two clusters are both at Lyon, and
    without the Lille cluster no survey transfer would ever cross a WAN
    uplink, flattening the data-policy ablation.
    """
    for data_policy in data_policies:
        # Fail fast on typos before any worker spins up.
        campaign_data_config(data_policy)
    tasks = [Task(key=f"{routing}/{policy}/{data_policy}",
                  func=_run_arm,
                  args=(routing, policy, data_policy,
                        (int(shape[0]), int(shape[1])), int(resolution),
                        int(n_planes), float(z_source), int(zooms),
                        int(n_grids), int(clusters_per_grid), int(seed),
                        observe, int(max_in_flight)),
                  seed=derive_seed(seed, i))
             for i, (routing, policy, data_policy) in enumerate(
                 (r, p, d) for r in routings for p in policies
                 for d in data_policies)]
    # Detach each arm through a pickle round trip: worker results arrive
    # detached (their strings/floats share nothing with this process), so
    # serial arms must shed their shared references too or the two runs
    # pickle to different bytes despite equal values.
    arms = [pickle.loads(pickle.dumps(arm)) for arm in run_tasks(tasks,
                                                                 jobs=jobs)]
    return SurveyResult(routings=tuple(routings), policies=tuple(policies),
                        data_policies=tuple(data_policies),
                        shape=(int(shape[0]), int(shape[1])),
                        resolution=int(resolution), n_planes=int(n_planes),
                        z_source=float(z_source), zooms=int(zooms),
                        n_grids=int(n_grids),
                        clusters_per_grid=int(clusters_per_grid),
                        seed=int(seed), runs=list(arms))


def write_batches(result: SurveyResult, root: str) -> List[str]:
    """Materialize each arm's client-0 products as a survey batch tree.

    Returns the manifest paths, one per arm.
    """
    grid = _survey_grid(result.shape)
    by_label = {point.label: point for point in grid}
    manifests = []
    for arm in result.runs:
        batch = SurveyBatch(root,
                            name=f"{arm.routing}-{arm.policy}-{arm.data}")
        for point in grid:
            batch.init_point(point)
        for label, stage, _node_id, product in arm.products:
            batch.record_product(by_label.get(label, label), stage, product)
        manifests.append(batch.write_manifest())
    return manifests


def _mib(nbytes: int) -> str:
    return f"{nbytes / (1 << 20):.2f}"


def _stage(arm: SurveyArm, stage: str) -> Tuple[float, float]:
    for name, _count, p50, p99 in arm.stage_stats:
        if name == stage:
            return p50, p99
    return float("nan"), float("nan")


def _sec(v: float) -> str:
    return f"{v:.2f}s" if v == v else "-"  # NaN-safe


def render(result: SurveyResult) -> str:
    nx, ny = result.shape
    lines = [
        f"E14 - survey campaign: {nx}x{ny} cosmology grid "
        f"(omega_m x sigma8), {result.resolution}^3 IC->run->lensing + "
        f"reduce, {result.zooms} background zooms, "
        f"{result.n_grids} grids x {result.clusters_per_grid} clusters, "
        f"duplicated-cosmology leg on the second client",
    ]
    headers = ["routing", "policy", "data", "dag done", "retry", "zooms",
               "memo hit", "makespan", "run p50", "lens p99", "WAN MiB",
               "moved MiB"]
    rows = []
    for arm in result.runs:
        run_p50, _ = _stage(arm, "run")
        _, lens_p99 = _stage(arm, "lensing")
        rows.append([
            arm.routing, arm.policy, arm.data,
            f"{arm.completed}/{arm.nodes}", str(arm.retries),
            f"{arm.zooms_done}/{result.zooms}",
            f"{arm.hit_rate * 100:.1f}%", _sec(arm.makespan),
            _sec(run_p50), _sec(lens_p99), _mib(arm.bytes_wan),
            _mib(arm.data_moved),
        ])
    lines.append(ascii_table(headers, rows))

    for arm in result.runs:
        lines.append(
            f"memo {arm.routing}/{arm.policy}/{arm.data}: "
            f"{arm.memo_hits} hits / {arm.memo_misses} misses "
            f"({arm.hit_rate * 100:.1f}% hit rate)")
    if ("volatile" in result.data_policies
            and "persistent" in result.data_policies):
        for routing in result.routings:
            for policy in result.policies:
                vol = result.arm(routing, policy, "volatile")
                per = result.arm(routing, policy, "persistent")
                if vol is None or per is None or vol.bytes_wan == 0:
                    continue
                saved = 1.0 - per.bytes_wan / vol.bytes_wan
                lines.append(
                    f"wan {routing}/{policy}: volatile "
                    f"{_mib(vol.bytes_wan)} MiB -> persistent "
                    f"{_mib(per.bytes_wan)} MiB ({saved * 100:.1f}% less)")
    return "\n".join(lines)
