"""Figure 1 analogue: the deployed DIET hierarchy, rendered from the
running system.

Figure 1 of the paper is the architecture diagram ("Different interaction
layers between DIET core and application view").  Its checkable content is
the deployment structure of §2.1/§5.1 — client -> MA -> LAs -> SeDs with
the application services on top — which this module renders from a *live*
deployment object and verifies structurally (every SeD reachable, every
component on a real host, services registered where the paper puts them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.deployment import Deployment, deploy_paper_hierarchy
from ..platform.grid5000 import build_grid5000
from ..services.ramses_service import register_ramses_services
from ..sim.engine import Engine

__all__ = ["ArchitectureResult", "run", "render"]


@dataclass
class ArchitectureResult:
    deployment: Deployment

    @property
    def n_agents(self) -> int:
        return 1 + len(self.deployment.local_agents)

    @property
    def n_seds(self) -> int:
        return len(self.deployment.seds)

    def services_per_sed(self) -> Dict[str, List[str]]:
        return {sed.name: sed.table.paths() for sed in self.deployment.seds}

    def validate(self) -> None:
        dep = self.deployment
        # every SeD is the child of exactly one LA
        owners: Dict[str, str] = {}
        for la in dep.local_agents:
            for child in la.children:
                assert child not in owners, f"{child} has two parents"
                owners[child] = la.name
        for sed in dep.seds:
            assert sed.name in owners, f"{sed.name} unattached"
        # every LA is a child of the MA
        assert sorted(dep.ma.children) == sorted(
            la.name for la in dep.local_agents)
        # every component endpoint resolves on the fabric (naming service)
        for name in ([dep.ma.name] + [la.name for la in dep.local_agents]
                     + [s.name for s in dep.seds]):
            dep.fabric.resolve(name)


def run() -> ArchitectureResult:
    engine = Engine()
    platform = build_grid5000(engine)
    deployment = deploy_paper_hierarchy(platform)
    register_ramses_services(deployment)
    deployment.launch_all()
    result = ArchitectureResult(deployment=deployment)
    result.validate()
    return result


def render(result: ArchitectureResult) -> str:
    dep = result.deployment
    lines = ["E-fig1 - the deployed architecture (paper Figure 1 / §5.1)",
             "",
             f"client        @ {dep.client.host.name}" if dep.client else "",
             f"MA  {dep.ma.name:24s} @ {dep.ma.host.name}"]
    for la in dep.local_agents:
        lines.append(f" +- LA  {la.name:22s} @ {la.host.name}")
        for child in la.children:
            sed = dep.sed_by_name(child)
            services = ",".join(sed.table.paths())
            lines.append(f" |   +- SeD {sed.name:28s} @ {sed.host.name} "
                         f"(speed {sed.host.speed:.2f}, {services})")
    lines.append("")
    lines.append(f"{result.n_agents} agents, {result.n_seds} SeDs; every SeD "
                 "serves ramsesZoom1 + ramsesZoom2 over its cluster's NFS "
                 "volume (§4.1)")
    return "\n".join(line for line in lines if line != "")
