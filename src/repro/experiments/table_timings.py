"""E1: the §5.2 headline timings.

Paper: "The experiment (including both the first and the second part of the
simulation) lasted 16h 18min 43s (1h 15min 11s for the first part and an
average of 1h 24min 1s for the second part). [...] it would take more than
141h to run the 101 simulation sequentially."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..services.perfmodel import (
    PAPER_PART1_SECONDS,
    PAPER_PART2_MEAN_SECONDS,
    PAPER_TOTAL_SECONDS,
)
from ..services.workflow import CampaignConfig, CampaignResult, run_campaign
from .report import ascii_table, hms

__all__ = ["TimingsResult", "run", "render"]

PAPER_SEQUENTIAL_HOURS = 141.0


@dataclass
class TimingsResult:
    campaign: CampaignResult

    @property
    def part1_seconds(self) -> float:
        return self.campaign.part1_duration

    @property
    def part2_mean_seconds(self) -> float:
        return self.campaign.part2_mean_duration

    @property
    def total_seconds(self) -> float:
        return self.campaign.total_elapsed

    @property
    def sequential_hours(self) -> float:
        return self.campaign.sequential_estimate / 3600.0

    @property
    def speedup(self) -> float:
        return self.campaign.speedup


def run(config: Optional[CampaignConfig] = None) -> TimingsResult:
    return TimingsResult(campaign=run_campaign(config or CampaignConfig()))


def render(result: TimingsResult) -> str:
    rows = [
        ("first part (128^3 full box)", hms(result.part1_seconds),
         hms(PAPER_PART1_SECONDS)),
        ("second part (mean of 100 zooms)", hms(result.part2_mean_seconds),
         hms(PAPER_PART2_MEAN_SECONDS)),
        ("total campaign", hms(result.total_seconds),
         hms(PAPER_TOTAL_SECONDS)),
        ("sequential estimate", f"{result.sequential_hours:.1f}h",
         f">{PAPER_SEQUENTIAL_HOURS:.0f}h"),
        ("parallel speedup", f"{result.speedup:.2f}x", "~8.7x (derived)"),
    ]
    return ("E1 - campaign timings (measured vs paper)\n"
            + ascii_table(("quantity", "measured", "paper"), rows))
