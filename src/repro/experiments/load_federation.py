"""E13 — federated load sweep: saturation throughput and tail latency.

The production analogue of Figure 5.  A multi-MA federation
(:mod:`repro.core.federation`) is driven by an open-loop Poisson stream
(:mod:`repro.sim.traffic`) of heterogeneous requests from a Zipf-skewed
client population, with SeD churn injected mid-run.  Each load point
reports what a capacity plan needs: achieved throughput (completed
requests over the makespan — past saturation this flattens at capacity
while offered load keeps climbing), P50/P99 finding time (submit →
winning MA reply, inter-MA redirects included) and P50/P99 end-to-end
latency, per routing mode.  ``peak_heap`` tracks the event-heap
high-water mark — the regression guard for the park-watchdog leak that
used to grow the heap by one dead timer per admitted-after-park request.

With ``memo="on"`` the sweep additionally exercises grid-wide result
memoization (:mod:`repro.data.memo`): clients key each request on its
canonical descriptor, the OUT argument becomes ``PERSISTENT_RETURN`` so
solved results stay on the owning SeD, and repeated requests from the
Zipf-skewed population short-circuit to catalog hits instead of solves.
Each point then also reports hit/miss/invalidation counts, so the report
shows hit rate rising with Zipf skew ``s`` and finding time falling at
high skew.  The memo-off arm is byte-identical to the sweep before
memoization existed.

Every point is a pure function of its arguments, so the sweep runs under
``--jobs`` with byte-identical results, and the same seed reruns
bit-identically with observability on or off.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.agent import ROUTING_MODES, AgentParams
from ..core.data import BaseType, PersistenceMode, scalar_desc
from ..core.exceptions import CommunicationError, ServerNotFoundError
from ..core.federation import (
    ChurnPlan,
    FederatedClient,
    FederationConfig,
    build_federation,
    schedule_churn,
)
from ..core.profile import ProfileDesc
from ..obs import Observability
from ..sim.engine import Engine
from ..sim.rng import RandomStreams
from ..sim.traffic import DEFAULT_MIX, TrafficConfig, generate_arrivals, percentile
from .report import ascii_table, ms
from .runner import Task, derive_seed, run_tasks

__all__ = ["LoadPoint", "LoadResult", "DEFAULT_LOADS", "run", "render"]

#: Offered loads (requests/s) swept by default; the default platform
#: (2 grids x 2 clusters = 6 SeDs, ~1.2 s mean solve) saturates near the
#: middle of the range.
DEFAULT_LOADS: Tuple[float, ...] = (2.0, 4.0, 8.0, 16.0)

#: Seconds between event-heap high-water-mark samples.
_HEAP_SAMPLE_PERIOD = 0.5


@dataclass(frozen=True)
class LoadPoint:
    """One (routing, offered load) measurement."""

    routing: str
    offered: float
    duration: float
    n_arrivals: int
    completed: int
    failed: int
    rejected: int
    redirects: int
    makespan: float
    throughput: float
    find_p50: float
    find_p99: float
    latency_p50: float
    latency_p99: float
    peak_heap: int
    events: int
    #: Zipf skew of the client population and whether memoization ran;
    #: defaulted so memo-off points pickle-compare against older sweeps.
    zipf_s: float = 1.1
    memo: str = "off"
    memo_hits: int = 0
    memo_misses: int = 0
    memo_invalidations: int = 0
    memo_fallbacks: int = 0
    #: Span store when the point ran with observability (None otherwise);
    #: excluded from equality so observe on/off results compare equal.
    span_store: Any = field(default=None, compare=False)

    @property
    def hit_rate(self) -> float:
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0


@dataclass
class LoadResult:
    """The full sweep: every (routing, load) point plus its shape."""

    loads: Tuple[float, ...]
    routings: Tuple[str, ...]
    duration: float
    n_clients: int
    n_grids: int
    clusters_per_grid: int
    churn: int
    zipf: Tuple[float, ...] = (1.1,)
    memo: str = "off"
    runs: List[LoadPoint] = field(default_factory=list)

    def points(self, routing: str) -> List[LoadPoint]:
        return [p for p in self.runs if p.routing == routing]

    def saturation(self, routing: str) -> float:
        """Best achieved throughput across the sweep (requests/s)."""
        points = self.points(routing)
        return max(p.throughput for p in points) if points else 0.0


def _service_desc(name: str, memo: bool = False) -> ProfileDesc:
    desc = ProfileDesc(name, 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    # Memoized runs persist the result on the owning SeD so later hits
    # can fetch it; VOLATILE outputs are never memoized by design.
    out_mode = (PersistenceMode.PERSISTENT_RETURN if memo
                else PersistenceMode.VOLATILE)
    desc.set_arg(1, scalar_desc(BaseType.INT, out_mode))
    return desc


def _make_solver(work: float):
    def solve(profile, ctx):
        yield from ctx.execute(work)
        profile.parameter(1).set(0)
        return 0

    return solve


def _run_point(routing: str, offered: float, duration: float,
               n_clients: int, n_grids: int, clusters_per_grid: int,
               churn: int, seed: int, observe: bool = False,
               zipf_s: float = 1.1, memo: str = "off") -> LoadPoint:
    """One load point, a pure function of its arguments (worker-safe)."""
    memo_on = memo == "on"
    engine = Engine()
    obs = Observability() if observe else None
    agent_params = (AgentParams(heartbeat_interval=1.0) if churn > 0
                    else AgentParams())
    federation = build_federation(
        engine,
        FederationConfig(n_grids=n_grids,
                         clusters_per_grid=clusters_per_grid,
                         routing=routing, agent_params=agent_params,
                         memo=memo_on,
                         # E13's published numbers predate per-grid client
                         # hosts: pin the legacy shared-core placement so
                         # the sweep stays byte-identical (E14 exercises
                         # the priced per-grid placement).
                         client_placement="core"),
        obs=obs)
    for cls in DEFAULT_MIX:
        federation.add_service_everywhere(
            lambda name=cls.name: _service_desc(name, memo_on),
            _make_solver(cls.work))
    federation.launch_all()

    streams = RandomStreams(seed)
    arrivals = generate_arrivals(
        TrafficConfig(rate=offered, duration=duration, n_clients=n_clients,
                      zipf_s=zipf_s),
        streams)
    if churn > 0:
        schedule_churn(
            federation,
            ChurnPlan(n_outages=churn, start=duration * 0.25,
                      end=duration * 0.75),
            streams)

    clients = [FederatedClient(federation.fabric, federation.client_host,
                               name=f"fedcli{g}",
                               ma_names=federation.ma_names, home=g,
                               tracer=federation.tracer,
                               memo_enabled=memo_on)
               for g in range(n_grids)]
    descs = {cls.name: _service_desc(cls.name, memo_on)
             for cls in DEFAULT_MIX}

    stats: Dict[str, int] = {"completed": 0, "failed": 0, "rejected": 0}
    finds: List[float] = []
    latencies: List[float] = []

    def one_request(arrival):
        profile = descs[arrival.request_class.name].instantiate()
        # Memoized runs key the input on the client id: the Zipf-skewed
        # population then repeats identical requests, and skew controls
        # how often the grid has seen a request before.
        profile.parameter(0).set(arrival.client if memo_on else 1)
        profile.parameter(1).set(None)
        started = engine.now
        client = clients[arrival.client % len(clients)]
        try:
            status, _sed, found_at = yield from client.call(profile)
        except ServerNotFoundError:
            stats["rejected"] += 1
            return
        except CommunicationError:
            stats["failed"] += 1  # SeD died mid-solve, job lost
            return
        finds.append(found_at - started)
        latencies.append(engine.now - started)
        if status == 0:
            stats["completed"] += 1
        else:
            stats["failed"] += 1

    peak = {"heap": 0}

    def heap_monitor():
        while True:
            peak["heap"] = max(peak["heap"], len(engine._queue))
            yield engine.timeout(_HEAP_SAMPLE_PERIOD)

    def drive():
        procs = []
        for arrival in arrivals:
            delay = arrival.at - engine.now
            if delay > 0:
                yield engine.timeout(delay)
            procs.append(engine.process(one_request(arrival)))
        if procs:
            yield engine.all_of(procs)

    engine.process(heap_monitor(), name="heap-monitor")
    # run_until_complete: heartbeats and the monitor never finish.
    engine.run_until_complete(drive())
    makespan = engine.now

    memo_stats = (federation.memo.stats if federation.memo is not None
                  else None)
    return LoadPoint(
        routing=routing, offered=offered, duration=duration,
        n_arrivals=len(arrivals), completed=stats["completed"],
        failed=stats["failed"], rejected=stats["rejected"],
        redirects=sum(c.redirects for c in clients),
        makespan=makespan,
        throughput=stats["completed"] / makespan if makespan > 0 else 0.0,
        find_p50=percentile(finds, 50.0) if finds else float("nan"),
        find_p99=percentile(finds, 99.0) if finds else float("nan"),
        latency_p50=percentile(latencies, 50.0) if latencies else float("nan"),
        latency_p99=percentile(latencies, 99.0) if latencies else float("nan"),
        peak_heap=peak["heap"], events=engine.events_scheduled,
        zipf_s=zipf_s, memo=memo,
        memo_hits=memo_stats.hits if memo_stats else 0,
        memo_misses=memo_stats.misses if memo_stats else 0,
        memo_invalidations=memo_stats.invalidations if memo_stats else 0,
        memo_fallbacks=(sum(c.memo_fallbacks for c in clients)
                        if memo_on else 0),
        span_store=obs.spans if obs is not None else None)


def run(loads: Sequence[float] = DEFAULT_LOADS,
        routings: Sequence[str] = ROUTING_MODES,
        duration: float = 60.0, n_clients: int = 1000,
        n_grids: int = 2, clusters_per_grid: int = 2, churn: int = 2,
        seed: int = 2007, jobs: Optional[int] = None,
        observe: bool = False, zipf: Sequence[float] = (1.1,),
        memo: str = "off") -> LoadResult:
    """Sweep every (routing, zipf, load) point; parallel == serial.

    ``jobs`` fans the points over worker processes; each point is a pure
    function of its arguments, so results are identical in task order.
    ``memo="on"`` enables grid-wide result memoization; ``zipf`` sweeps
    the client-population skew (keys stay unchanged for a single skew so
    memo-off output is byte-identical to the pre-memo sweep).
    """
    if memo not in ("on", "off"):
        raise ValueError(f"memo must be 'on' or 'off', got {memo!r}")
    tasks = [Task(key=(f"{routing}@{load:g}" if len(zipf) == 1
                       else f"{routing}@{load:g}@s{z:g}"),
                  func=_run_point,
                  args=(routing, float(load), float(duration), n_clients,
                        n_grids, clusters_per_grid, churn, seed, observe,
                        float(z), memo),
                  seed=derive_seed(seed, i))
             for i, (routing, z, load) in enumerate(
                 (r, z, l) for r in routings for z in zipf for l in loads)]
    # Detach each point through a pickle round trip: worker results arrive
    # detached (their strings/floats share nothing with this process), so
    # serial points must shed their shared references too or the two sweeps
    # pickle to different bytes despite equal values.
    points = [pickle.loads(pickle.dumps(point))
              for point in run_tasks(tasks, jobs=jobs)]
    return LoadResult(loads=tuple(float(l) for l in loads),
                      routings=tuple(routings), duration=float(duration),
                      n_clients=n_clients, n_grids=n_grids,
                      clusters_per_grid=clusters_per_grid, churn=churn,
                      zipf=tuple(float(z) for z in zipf), memo=memo,
                      runs=list(points))


def _sec(v: float) -> str:
    return f"{v:.2f}s" if v == v else "-"  # NaN-safe


def _ms(v: float) -> str:
    return ms(v) if v == v else "-"  # NaN-safe


def render(result: LoadResult) -> str:
    memo_on = result.memo == "on"
    multi_z = len(result.zipf) > 1
    lines = [
        f"E13 - federated load sweep: {result.n_grids} grids x "
        f"{result.clusters_per_grid} clusters, {result.n_clients} clients "
        f"(Zipf), {result.churn} SeD outages, {result.duration:g}s of "
        f"open-loop arrivals",
    ]
    if memo_on:
        lines.append("memoization: on (canonical request descriptors, "
                     "PERSISTENT results)")
    headers = ["offered/s", "arrived", "done", "rej", "lost", "redir",
               "thrpt/s", "find p50", "find p99", "lat p50", "lat p99",
               "peak heap"]
    if multi_z:
        headers.insert(1, "zipf s")
    if memo_on:
        headers.append("hit%")
    for routing in result.routings:
        rows = []
        for p in result.points(routing):
            row = [f"{p.offered:g}", p.n_arrivals, p.completed,
                   p.rejected, p.failed, p.redirects,
                   f"{p.throughput:.2f}",
                   _ms(p.find_p50), _ms(p.find_p99),
                   _sec(p.latency_p50), _sec(p.latency_p99),
                   p.peak_heap]
            if multi_z:
                row.insert(1, f"{p.zipf_s:g}")
            if memo_on:
                row.append(f"{p.hit_rate * 100:.1f}")
            rows.append(tuple(row))
        lines.append("")
        lines.append(f"routing={routing}")
        lines.append(ascii_table(tuple(headers), rows))
    lines.append("")
    for routing in result.routings:
        lines.append(f"{routing} saturation throughput: "
                     f"{result.saturation(routing):.2f} requests/s")
    redirected = sum(p.redirects for p in result.runs)
    lines.append(f"inter-MA redirects across the sweep: {redirected}")
    if memo_on:
        lines.append("")
        for routing in result.routings:
            for z in result.zipf:
                pts = [p for p in result.points(routing)
                       if p.zipf_s == z]
                hits = sum(p.memo_hits for p in pts)
                misses = sum(p.memo_misses for p in pts)
                inval = sum(p.memo_invalidations for p in pts)
                fallbacks = sum(p.memo_fallbacks for p in pts)
                rate = hits / (hits + misses) if hits + misses else 0.0
                lines.append(
                    f"{routing} memo at zipf s={z:g}: "
                    f"hit rate {rate * 100:.1f}% "
                    f"({hits} hits / {misses} misses, "
                    f"{inval} invalidations, {fallbacks} fallbacks)")
    return "\n".join(lines)
