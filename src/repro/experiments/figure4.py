"""E2/E3 — Figure 4: request distribution (Gantt) and per-SeD execution time.

Paper: "After the first part of the simulation, each SED received 9
requests (one of them received 10 requests) to compute the second part (see
Figure 4, left).  As shown in Figure 4 (right) the total execution time for
each SED is not the same: about 15h for Toulouse and 10h30 for Nancy.
Consequently, the schedule is not optimal."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..services.workflow import CampaignConfig, CampaignResult, run_campaign
from .report import ascii_gantt, ascii_table, hms

__all__ = ["Figure4Result", "run", "render"]

#: Paper's reading of Figure 4 right (hours of busy time).
PAPER_MAX_BUSY_HOURS = 15.0     # Toulouse
PAPER_MIN_BUSY_HOURS = 10.5     # Nancy


@dataclass
class Figure4Result:
    campaign: CampaignResult

    @property
    def distribution(self) -> List[int]:
        return sorted(self.campaign.requests_per_sed().values())

    @property
    def busy_hours_by_cluster(self) -> Dict[str, List[float]]:
        out: Dict[str, List[float]] = {}
        for sed, busy in self.campaign.busy_time_per_sed().items():
            cluster = self.campaign.deployment.cluster_of_sed(sed)
            out.setdefault(cluster, []).append(busy / 3600.0)
        return {k: sorted(v) for k, v in sorted(out.items())}

    @property
    def max_busy_hours(self) -> float:
        return max(max(v) for v in self.busy_hours_by_cluster.values())

    @property
    def min_busy_hours(self) -> float:
        return min(min(v) for v in self.busy_hours_by_cluster.values())

    @property
    def busy_spread(self) -> float:
        """max/min busy ratio — the 'schedule is not optimal' signal."""
        return self.max_busy_hours / self.min_busy_hours

    def slowest_cluster(self) -> str:
        by_cluster = self.busy_hours_by_cluster
        return max(by_cluster, key=lambda c: max(by_cluster[c]))

    def fastest_cluster(self) -> str:
        by_cluster = self.busy_hours_by_cluster
        return min(by_cluster, key=lambda c: min(by_cluster[c]))


def run(config: Optional[CampaignConfig] = None) -> Figure4Result:
    return Figure4Result(campaign=run_campaign(config or CampaignConfig()))


def render(result: Figure4Result) -> str:
    parts = ["E2 - Figure 4 left: Gantt chart of the 100 sub-simulations",
             ascii_gantt(result.campaign.gantt()),
             "",
             f"request distribution over SeDs: {result.distribution}"
             "   (paper: 9 x 10 SeDs, 10 x 1 SeD)",
             "",
             "E3 - Figure 4 right: per-SeD execution time"]
    rows: List[Tuple[str, str]] = []
    for cluster, hours in result.busy_hours_by_cluster.items():
        rows.append((cluster, ", ".join(f"{h:.2f}h" for h in hours)))
    parts.append(ascii_table(("cluster", "per-SeD busy time"), rows))
    parts.append("")
    parts.append(
        f"slowest: {result.slowest_cluster()} ({result.max_busy_hours:.1f}h), "
        f"fastest: {result.fastest_cluster()} ({result.min_busy_hours:.1f}h)  "
        f"(paper: Toulouse ~{PAPER_MAX_BUSY_HOURS}h, Nancy ~{PAPER_MIN_BUSY_HOURS}h)")
    parts.append(
        f"busy-time spread max/min = {result.busy_spread:.2f} "
        f"(paper ~{PAPER_MAX_BUSY_HOURS / PAPER_MIN_BUSY_HOURS:.2f}) "
        "=> the default schedule is not optimal")
    return "\n".join(parts)
