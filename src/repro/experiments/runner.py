"""Parallel experiment runner: a process-pool map over independent runs.

The experiments that sweep a parameter (E7's scheduler policies, E10's rank
counts, E11's crash counts) repeat one expensive, fully seeded computation
per sweep point; the points never communicate.  :func:`run_tasks` maps such
a sweep over worker processes while keeping the three properties the
reproduction depends on:

* **Determinism** — every :class:`Task` carries its inputs (including any
  seed) explicitly; workers never draw from inherited global RNG state.
  Results come back in *task order* regardless of completion order, so a
  parallel sweep is byte-identical to the serial one.
* **Crash surfacing** — an exception inside a worker is re-raised in the
  parent as a :class:`WorkerError` naming the task and carrying the remote
  traceback text; a hard worker death (signal, interpreter abort) raises
  :class:`WorkerCrash` instead of hanging the pool.
* **Cheap sharing** — the pool is created *after* the caller has staged any
  large read-only inputs in module globals, and uses the ``fork`` start
  method where available, so workers inherit those inputs by copy-on-write
  instead of pickling them per task (see ``scaling_nodes`` for the
  pattern).

Campaign-shaped tasks must return **detached** results
(:meth:`repro.services.CampaignResult.detach`): live deployments hold the
simulation engine and agent generators, which cannot cross a process
boundary.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["Task", "WorkerCrash", "WorkerError", "canonical_pickle",
           "collect_span_stores", "derive_seed", "resolve_jobs", "run_tasks"]


def canonical_pickle(obj: Any) -> bytes:
    """Pickle ``obj`` into its round-trip fixed point, for byte comparisons.

    ``pickle.dumps`` is not stable under round-trips: interpreter-interned
    strings (identifier-like dict keys, names) are shared objects on first
    pickling and therefore memo references, but come back *non-interned*
    from ``loads`` — so re-pickling a round-tripped object yields different
    bytes than pickling the original, despite equal values.  One
    dump/load/dump settles the object graph into the form every later
    round trip reproduces, making byte equality a sound way to compare a
    result computed in-process with one shipped back from a worker.
    """
    import pickle

    return pickle.dumps(pickle.loads(pickle.dumps(obj)))


class WorkerError(RuntimeError):
    """A task raised inside a worker process.

    ``key`` names the failing task; ``remote_traceback`` is the formatted
    traceback from the worker (the original frames cannot cross the process
    boundary, their text can).
    """

    def __init__(self, key: str, exc_type: str, exc_msg: str,
                 remote_traceback: str):
        super().__init__(f"task {key!r} failed in worker: "
                         f"{exc_type}: {exc_msg}")
        self.key = key
        self.remote_traceback = remote_traceback


class WorkerCrash(RuntimeError):
    """A worker process died without reporting (signal, hard abort)."""

    def __init__(self, key: str, detail: str):
        super().__init__(f"worker crashed while running task {key!r}: {detail}")
        self.key = key


@dataclass(frozen=True)
class Task:
    """One unit of a sweep: a picklable module-level callable + its inputs.

    ``key`` labels the task in error messages and progress accounting.
    ``seed`` is informational — record the task's seed here *and* pass it
    through ``args``/``kwargs``; the runner never injects seeds itself.
    """

    key: str
    func: Callable[..., Any]
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None


def derive_seed(base: int, index: int) -> int:
    """Stable per-task seed: hash, don't offset.

    ``base + index`` collides across sweeps that already use consecutive
    base seeds; a hash keeps every (base, index) stream disjoint and is
    identical across platforms and Python versions (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{base}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % (2 ** 63)


def collect_span_stores(results: Sequence[Any]) -> List[Any]:
    """Span stores of many (possibly detached) campaign results, in order.

    The cross-worker aggregation half of ``--profile``: detached results
    carry their :class:`~repro.obs.Observability` home inside the pickled
    tracer, so a parallel sweep's worth of span stores can be fed to
    :func:`repro.obs.profile_report` exactly like a serial run's.  Results
    without an enabled, non-empty store are skipped.

    Two result shapes are understood: campaign results reach their store
    through ``tracer.obs`` (``span_store`` is a *method* there), while
    per-point sweep results (E13's ``LoadPoint``) carry the detached store
    directly in a ``span_store`` attribute.
    """
    stores: List[Any] = []
    for result in results:
        if result is None:
            continue
        store = getattr(result, "span_store", None)
        if store is not None and not callable(store):
            if getattr(store, "spans", None):
                stores.append(store)
            continue
        tracer = getattr(result, "tracer", None)
        if tracer is None:
            tracer = getattr(getattr(result, "deployment", None), "tracer",
                             None)
        obs = getattr(tracer, "obs", None)
        if obs is not None and obs.enabled and obs.spans.spans:
            stores.append(obs.spans)
    return stores


def resolve_jobs(jobs: Optional[int], n_tasks: int) -> int:
    """Worker count for a sweep: ``None``/1 → serial, 0/negative → one per
    core, anything else clamped to the task count (idle workers cost fork
    time for nothing)."""
    if jobs is None:
        return 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, n_tasks))


def _mp_context():
    """``fork`` where the platform offers it (workers then inherit staged
    module globals copy-on-write); the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _invoke(task: Task) -> Tuple[bool, Any]:
    """Worker-side shim: run the task, shipping failures back as data
    (raising out of a pool worker would lose the traceback text)."""
    try:
        return (True, task.func(*task.args, **task.kwargs))
    except Exception as exc:
        return (False, (type(exc).__name__, str(exc),
                        traceback.format_exc()))


def _unwrap(task: Task, ok: bool, payload: Any) -> Any:
    if ok:
        return payload
    exc_type, exc_msg, tb_text = payload
    raise WorkerError(task.key, exc_type, exc_msg, tb_text)


def run_tasks(tasks: Sequence[Task], jobs: Optional[int] = None) -> List[Any]:
    """Run every task; return their results in task order.

    ``jobs=None`` or ``1`` runs serially in-process (no pool, no fork) —
    the same code path shape, so serial and parallel sweeps differ only in
    *where* each task runs, never in what it computes.  The first failing
    task raises; with a pool, tasks already submitted keep running to
    completion in the background, but their results are discarded.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    n_jobs = resolve_jobs(jobs, len(tasks))
    if n_jobs == 1:
        return [_unwrap(task, *_invoke(task)) for task in tasks]

    results: List[Any] = []
    with ProcessPoolExecutor(max_workers=n_jobs,
                             mp_context=_mp_context()) as pool:
        futures = [(task, pool.submit(_invoke, task)) for task in tasks]
        for task, future in futures:
            try:
                ok, payload = future.result()
            except BrokenExecutor as exc:
                raise WorkerCrash(task.key, str(exc)) from exc
            results.append(_unwrap(task, ok, payload))
    return results
