"""E7 — plug-in scheduler ablation.

Paper §5.2: "Consequently, the schedule is not optimal.  The equal
distribution of the requests does not take into account the machines
processing power. [...] A better makespan could be attained by writing a
plug-in scheduler."  The paper leaves that as future work; this experiment
carries it out: the same campaign under the default policy, MCT (with
SeD-side performance predictors — the plug-in scheduler of Chis et al.),
and two baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..services.ramses_service import ExecutionMode
from ..services.workflow import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
    run_campaign_detached,
)
from .report import ascii_table, hms
from .runner import Task, run_tasks

__all__ = ["AblationResult", "run", "render", "DEFAULT_POLICIES"]

#: (policy name, register predictors?) pairs compared by the ablation.
DEFAULT_POLICIES = (
    ("default", False),
    ("mct", True),
    ("min-queue", False),
    ("fastest", False),
)


@dataclass
class AblationResult:
    campaigns: Dict[str, CampaignResult] = field(default_factory=dict)

    def makespans(self) -> Dict[str, float]:
        return {name: c.total_elapsed for name, c in self.campaigns.items()}

    def part2_makespans(self) -> Dict[str, float]:
        """Makespan of the parallel section only (fairer comparison)."""
        out = {}
        for name, c in self.campaigns.items():
            ends = [t.completed_at for t in c.part2_traces if t.completed_at]
            starts = [t.submitted_at for t in c.part2_traces if t.submitted_at]
            out[name] = max(ends) - min(starts)
        return out

    def improvement_over_default(self, policy: str = "mct") -> float:
        spans = self.part2_makespans()
        return 1.0 - spans[policy] / spans["default"]

    def busy_spread(self, policy: str) -> float:
        busy = self.campaigns[policy].busy_time_per_sed()
        return max(busy.values()) / min(busy.values())


def run(base_config: Optional[CampaignConfig] = None,
        policies=DEFAULT_POLICIES,
        jobs: Optional[int] = None) -> AblationResult:
    """One campaign per policy; ``jobs`` runs the policies in worker
    processes (each campaign is seeded and independent, so the parallel
    sweep returns the same campaigns — detached — as the serial one)."""
    base = base_config or CampaignConfig()
    configs = []
    for policy, with_predictor in policies:
        configs.append(CampaignConfig(
            n_sub_simulations=base.n_sub_simulations,
            resolution=base.resolution,
            boxsize_mpc_h=base.boxsize_mpc_h,
            n_zoom_levels=base.n_zoom_levels,
            mode=base.mode, policy=policy,
            with_predictor=with_predictor, seed=base.seed,
            workdir=base.workdir, real_n_steps=base.real_n_steps,
            real_a_end=base.real_a_end, cluster_specs=base.cluster_specs))
    result = AblationResult()
    if jobs is not None and jobs != 1:
        campaigns = run_tasks(
            [Task(key=f"policy={cfg.policy}", func=run_campaign_detached,
                  args=(cfg,), seed=cfg.seed) for cfg in configs], jobs=jobs)
        for cfg, campaign in zip(configs, campaigns):
            result.campaigns[cfg.policy] = campaign
    else:
        for cfg in configs:
            result.campaigns[cfg.policy] = run_campaign(cfg)
    return result


def render(result: AblationResult) -> str:
    spans = result.part2_makespans()
    rows = []
    for policy, span in sorted(spans.items(), key=lambda kv: kv[1]):
        counts = sorted(result.campaigns[policy].requests_per_sed().values())
        rows.append((policy, hms(span), f"{result.busy_spread(policy):.2f}",
                     f"{min(counts)}..{max(counts)}"))
    gain = result.improvement_over_default("mct") * 100.0
    return ("E7 - scheduler ablation (part-2 makespan; the paper predicts a "
            "plug-in scheduler improves on the default)\n"
            + ascii_table(("policy", "part-2 makespan", "busy max/min",
                           "reqs/SeD"), rows)
            + f"\nMCT plug-in improves the default makespan by {gain:.1f}%")
