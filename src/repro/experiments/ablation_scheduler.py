"""E7 — plug-in scheduler ablation.

Paper §5.2: "Consequently, the schedule is not optimal.  The equal
distribution of the requests does not take into account the machines
processing power. [...] A better makespan could be attained by writing a
plug-in scheduler."  The paper leaves that as future work; this experiment
carries it out: the same campaign under the default policy, MCT (with
SeD-side performance predictors — the plug-in scheduler of Chis et al.),
and two baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..platform.grid5000 import PAPER_CLUSTERS, ClusterSpec
from ..services.ramses_service import ExecutionMode
from ..services.workflow import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
    run_campaign_detached,
)
from .report import ascii_table, hms
from .runner import Task, run_tasks

__all__ = [
    "AblationResult",
    "RoutingAblationResult",
    "run",
    "render",
    "run_routing",
    "render_routing",
    "routing_cluster_specs",
    "DEFAULT_POLICIES",
    "DEFAULT_WIDTHS",
]

#: (policy name, register predictors?) pairs compared by the ablation.
DEFAULT_POLICIES = (
    ("default", False),
    ("mct", True),
    ("min-queue", False),
    ("fastest", False),
)


@dataclass
class AblationResult:
    campaigns: Dict[str, CampaignResult] = field(default_factory=dict)

    def makespans(self) -> Dict[str, float]:
        return {name: c.total_elapsed for name, c in self.campaigns.items()}

    def part2_makespans(self) -> Dict[str, float]:
        """Makespan of the parallel section only (fairer comparison)."""
        out = {}
        for name, c in self.campaigns.items():
            ends = [t.completed_at for t in c.part2_traces if t.completed_at]
            starts = [t.submitted_at for t in c.part2_traces if t.submitted_at]
            out[name] = max(ends) - min(starts)
        return out

    def improvement_over_default(self, policy: str = "mct") -> float:
        spans = self.part2_makespans()
        return 1.0 - spans[policy] / spans["default"]

    def busy_spread(self, policy: str) -> float:
        busy = self.campaigns[policy].busy_time_per_sed()
        return max(busy.values()) / min(busy.values())


def run(base_config: Optional[CampaignConfig] = None,
        policies=DEFAULT_POLICIES,
        jobs: Optional[int] = None) -> AblationResult:
    """One campaign per policy; ``jobs`` runs the policies in worker
    processes (each campaign is seeded and independent, so the parallel
    sweep returns the same campaigns — detached — as the serial one)."""
    base = base_config or CampaignConfig()
    configs = []
    for policy, with_predictor in policies:
        configs.append(CampaignConfig(
            n_sub_simulations=base.n_sub_simulations,
            resolution=base.resolution,
            boxsize_mpc_h=base.boxsize_mpc_h,
            n_zoom_levels=base.n_zoom_levels,
            mode=base.mode, policy=policy,
            with_predictor=with_predictor, seed=base.seed,
            workdir=base.workdir, real_n_steps=base.real_n_steps,
            real_a_end=base.real_a_end, cluster_specs=base.cluster_specs))
    result = AblationResult()
    if jobs is not None and jobs != 1:
        campaigns = run_tasks(
            [Task(key=f"policy={cfg.policy}", func=run_campaign_detached,
                  args=(cfg,), seed=cfg.seed) for cfg in configs], jobs=jobs)
        for cfg, campaign in zip(configs, campaigns):
            result.campaigns[cfg.policy] = campaign
    else:
        for cfg in configs:
            result.campaigns[cfg.policy] = run_campaign(cfg)
    return result


def render(result: AblationResult) -> str:
    spans = result.part2_makespans()
    rows = []
    for policy, span in sorted(spans.items(), key=lambda kv: kv[1]):
        counts = sorted(result.campaigns[policy].requests_per_sed().values())
        rows.append((policy, hms(span), f"{result.busy_spread(policy):.2f}",
                     f"{min(counts)}..{max(counts)}"))
    gain = result.improvement_over_default("mct") * 100.0
    return ("E7 - scheduler ablation (part-2 makespan; the paper predicts a "
            "plug-in scheduler improves on the default)\n"
            + ascii_table(("policy", "part-2 makespan", "busy max/min",
                           "reqs/SeD"), rows)
            + f"\nMCT plug-in improves the default makespan by {gain:.1f}%")


# -- E7b: pull vs push routing at growing hierarchy widths -----------------------

#: Cluster counts swept by the routing ablation (the paper deployed 6).
DEFAULT_WIDTHS = (6, 12, 24)


def routing_cluster_specs(width: int) -> Tuple[ClusterSpec, ...]:
    """A ``width``-cluster platform cycling the paper's six cluster specs
    (names uniquified so every frontend/NFS/SeD gets its own host)."""
    specs = []
    for i in range(width):
        base = PAPER_CLUSTERS[i % len(PAPER_CLUSTERS)]
        specs.append(replace(base, name=f"{base.name}{i}"))
    return tuple(specs)


@dataclass
class RoutingAblationResult:
    """Pull vs push campaigns keyed ``f"{mode}@{width}"``."""

    widths: List[int] = field(default_factory=list)
    campaigns: Dict[str, CampaignResult] = field(default_factory=dict)

    def campaign(self, mode: str, width: int) -> CampaignResult:
        return self.campaigns[f"{mode}@{width}"]

    def n_seds(self, width: int) -> int:
        return len(self.campaign("pull", width).deployment.sed_names)

    def finding_mean(self, mode: str, width: int) -> float:
        """Mean client-observed SeD-finding time — the routing cost the
        pull->push refactor targets (pull grows with width, push must not)."""
        times = self.campaign(mode, width).finding_times()
        return sum(times) / len(times)

    def part2_makespan(self, mode: str, width: int) -> float:
        c = self.campaign(mode, width)
        ends = [t.completed_at for t in c.part2_traces if t.completed_at]
        starts = [t.submitted_at for t in c.part2_traces if t.submitted_at]
        return max(ends) - min(starts)

    def finding_speedup(self, width: int) -> float:
        """How much faster push finds a SeD than pull at this width."""
        return self.finding_mean("pull", width) / self.finding_mean("push", width)


def run_routing(base_config: Optional[CampaignConfig] = None,
                widths: Sequence[int] = DEFAULT_WIDTHS,
                modes: Sequence[str] = ("pull", "push"),
                jobs: Optional[int] = None) -> RoutingAblationResult:
    """One campaign per (routing mode, hierarchy width); ``jobs`` fans the
    (independent, seeded) campaigns out to worker processes."""
    base = base_config or CampaignConfig()
    keyed_configs = []
    for width in widths:
        specs = routing_cluster_specs(width)
        for mode in modes:
            keyed_configs.append((f"{mode}@{width}",
                                  replace(base, cluster_specs=specs,
                                          routing=mode)))
    result = RoutingAblationResult(widths=list(widths))
    if jobs is not None and jobs != 1:
        campaigns = run_tasks(
            [Task(key=key, func=run_campaign_detached, args=(cfg,),
                  seed=cfg.seed) for key, cfg in keyed_configs], jobs=jobs)
    else:
        campaigns = [run_campaign(cfg) for _, cfg in keyed_configs]
    for (key, _), campaign in zip(keyed_configs, campaigns):
        result.campaigns[key] = campaign
    return result


def render_routing(result: RoutingAblationResult) -> str:
    rows = []
    for width in result.widths:
        rows.append((str(width), str(result.n_seds(width)),
                     f"{result.finding_mean('pull', width) * 1e3:.1f}ms",
                     f"{result.finding_mean('push', width) * 1e3:.1f}ms",
                     f"{result.finding_speedup(width):.1f}x",
                     hms(result.part2_makespan("pull", width)),
                     hms(result.part2_makespan("push", width))))
    return ("E7b - routing ablation (pull fans out per request, push admits "
            "from materialized tables)\n"
            + ascii_table(("clusters", "SeDs", "pull find", "push find",
                           "speedup", "pull makespan", "push makespan"),
                          rows))
