"""Experiment reproductions: one module per figure/table of §5 (plus the
Figure 2/3 scientific analogues).  See DESIGN.md's experiment index."""

from . import (
    ablation_scheduler,
    data_locality,
    degraded_campaign,
    figure1_architecture,
    figure2_density,
    figure3_zoom,
    figure4,
    figure5,
    load_federation,
    overhead,
    runner,
    scaling_nodes,
    survey_campaign,
    table_timings,
)
from .report import ascii_gantt, ascii_series, ascii_table, hms, ms

__all__ = [
    "ablation_scheduler",
    "figure1_architecture",
    "ascii_gantt",
    "ascii_series",
    "ascii_table",
    "data_locality",
    "degraded_campaign",
    "figure2_density",
    "figure3_zoom",
    "figure4",
    "figure5",
    "hms",
    "load_federation",
    "ms",
    "overhead",
    "runner",
    "scaling_nodes",
    "survey_campaign",
    "table_timings",
]
