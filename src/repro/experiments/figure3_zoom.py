"""E9 — Figure 3 analogue: zoom re-simulation of a chosen halo.

Figure 3 shows "Re-simulation on a supercluster of galaxies to increase the
resolution".  Quantitatively we check the two properties that make the zoom
method work (§3):

* the mass resolution inside the zoom Lagrangian volume improves by
  ``8 ** n_levels`` (more particles in the halo);
* the re-simulated halo sits where the parent run put it (mode-matched
  initial conditions), with more member particles than before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..galics.halomaker import find_halos
from ..grafic.ic import make_single_level_ic
from ..ramses.cosmology import LCDM_WMAP, Cosmology
from ..ramses.simulation import RamsesRun, RunConfig
from ..ramses.zoom import ZoomSpec, lagrangian_region, resolution_gain, run_zoom
from .report import ascii_table

__all__ = ["Figure3Result", "run", "render"]


@dataclass
class Figure3Result:
    n_levels: int
    parent_halo_mass: float
    parent_halo_npart: int
    zoom_halo_npart: int
    mass_resolution_gain: float
    center_offset: float          # box units, parent halo vs re-simulated
    zoom_region_half_size: float
    n_zoom_particles: int
    n_total_particles: int

    @property
    def expected_gain(self) -> float:
        return 8.0 ** self.n_levels

    @property
    def particle_boost(self) -> float:
        return self.zoom_halo_npart / max(self.parent_halo_npart, 1)


def run(n_coarse: int = 16, boxsize: float = 50.0, n_levels: int = 2,
        cosmology: Optional[Cosmology] = None, seed: int = 11,
        n_steps: int = 24, a_end: float = 1.0) -> Figure3Result:
    cosmo = cosmology or LCDM_WMAP
    # -- part 1: parent low-resolution run -> halo catalog -----------------------
    parent_ic = make_single_level_ic(n_coarse, boxsize, cosmo, a_start=0.05,
                                     seed=seed)
    cfg = RunConfig(a_end=a_end, n_steps=n_steps, output_aexp=(a_end,))
    parent = RamsesRun(parent_ic, cfg).run().final
    catalog = find_halos(parent.particles, parent.aexp, min_particles=8)
    if len(catalog) == 0:
        raise RuntimeError("parent run formed no halos; increase a_end")
    halo = catalog[0]   # the most massive: our 'supercluster'

    # -- select the Lagrangian region and re-simulate ------------------------------
    region = lagrangian_region(halo.member_ids, n_coarse)
    spec = ZoomSpec(center=tuple(region.center), n_levels=n_levels,
                    region_half_size=region.half_size, n_coarse=n_coarse,
                    boxsize_mpc_h=boxsize)
    zoom_result = run_zoom(parent_ic, spec, cfg)
    zoom_snap = zoom_result.final

    gain = resolution_gain(parent.particles, zoom_snap.particles, region)

    # -- match the re-simulated halo -------------------------------------------------
    # FoF across resolutions is ambiguous (fine linking fragments the halo,
    # coarse linking percolates through the better-resolved filaments), so
    # the Figure-3 metric counts particles directly: locate the local mass
    # concentration near the parent halo with a shrinking-sphere recentring,
    # then compare particle counts within the parent halo's radius.
    from ..galics.halomaker import periodic_center

    def sphere_count_and_com(parts, center, radius):
        d = np.abs(parts.x - center)
        d = np.minimum(d, 1.0 - d)
        inside = (d ** 2).sum(axis=1) < radius ** 2
        if not inside.any():
            return 0, np.asarray(center, dtype=float)
        com = periodic_center(parts.x[inside], weights=parts.mass[inside])
        return int(inside.sum()), com

    radius = max(halo.radius, 1.5 / n_coarse)
    center = halo.center.copy()
    for shrink in (1.0, 0.7, 0.5):   # shrinking-sphere recentring
        _, center = sphere_count_and_com(zoom_snap.particles, center,
                                         radius * shrink)
    zoom_npart, _ = sphere_count_and_com(zoom_snap.particles, center, radius)
    parent_npart, _ = sphere_count_and_com(parent.particles, halo.center,
                                           radius)
    d = np.abs(center - halo.center)
    d = np.minimum(d, 1.0 - d)
    offset = float(np.sqrt((d ** 2).sum()))

    n_zoom_parts = int((zoom_snap.particles.level
                        == zoom_snap.particles.level.max()).sum())
    return Figure3Result(
        n_levels=n_levels,
        parent_halo_mass=halo.mass,
        parent_halo_npart=max(parent_npart, halo.n_particles),
        zoom_halo_npart=zoom_npart,
        mass_resolution_gain=gain,
        center_offset=offset,
        zoom_region_half_size=region.half_size,
        n_zoom_particles=n_zoom_parts,
        n_total_particles=len(zoom_snap.particles))


def render(result: Figure3Result) -> str:
    rows = [
        ("zoom levels (nested boxes)", result.n_levels),
        ("parent halo particles", result.parent_halo_npart),
        ("re-simulated halo particles", result.zoom_halo_npart),
        ("particle boost in halo", f"{result.particle_boost:.1f}x"),
        ("mass resolution gain", f"{result.mass_resolution_gain:.0f}x "
         f"(expected {result.expected_gain:.0f}x)"),
        ("halo centre offset (box units)", f"{result.center_offset:.4f}"),
        ("zoom-region half size", f"{result.zoom_region_half_size:.3f}"),
        ("high-res particles / total", f"{result.n_zoom_particles}"
         f"/{result.n_total_particles}"),
    ]
    return ("E9 - Figure 3 analogue: zoom re-simulation of the most massive "
            "halo\n" + ascii_table(("quantity", "value"), rows))
