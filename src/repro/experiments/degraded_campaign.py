"""E11 — the 100-zoom campaign under SeD failures.

The paper's §5.2 numbers assume all 11 SeDs survive the whole campaign; the
follow-up grid deployments (Depardon et al. 2010, the CMS testbed reports)
show node loss is the normal operating mode, not the exception.  This
experiment answers the question the happy path cannot: *what does the
campaign cost when k SeDs die mid-run?*

For each crash count the full fault-tolerant stack runs: seeded outages
(crash + restart), LA heartbeat deregistration, SeD re-registration,
zoom2 checkpointing to the cluster NFS volume, and client-side
resubmission through the normal MA finding path.  Reported per crash
count: makespan inflation over the zero-failure baseline, work lost /
recovered, resubmissions, and how the surviving SeDs absorb the dead
SeDs' share of the 100 zooms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..services import (
    CampaignConfig,
    CampaignResult,
    FailurePlan,
    run_campaign,
    run_campaign_detached,
)
from .report import ascii_table, hms
from .runner import Task, run_tasks

__all__ = ["DegradedRun", "DegradedResult", "run", "render", "DEFAULT_CRASH_COUNTS"]

DEFAULT_CRASH_COUNTS = (1, 2, 4)


@dataclass
class DegradedRun:
    """One degraded campaign against the shared baseline."""

    n_crashes: int
    result: CampaignResult

    @property
    def makespan(self) -> float:
        return self.result.total_elapsed

    @property
    def completed(self) -> int:
        return len(self.result.completed_part2_traces)


@dataclass
class DegradedResult:
    baseline: CampaignResult
    runs: List[DegradedRun]

    def inflation(self, run: DegradedRun) -> float:
        return run.makespan / self.baseline.total_elapsed

    def rebalancing(self, run: DegradedRun) -> Dict[str, Tuple[int, int]]:
        """sed -> (baseline zooms, degraded zooms) for every SeD whose share
        changed — the dead SeDs' lost jobs and where they landed."""
        base = self.baseline.requests_per_sed()
        degraded: Dict[str, int] = {}
        for trace in run.result.completed_part2_traces:
            if trace.sed_name:
                degraded[trace.sed_name] = degraded.get(trace.sed_name, 0) + 1
        out = {}
        for sed in sorted(set(base) | set(degraded)):
            pair = (base.get(sed, 0), degraded.get(sed, 0))
            if pair[0] != pair[1]:
                out[sed] = pair
        return out


def run(crash_counts: Sequence[int] = DEFAULT_CRASH_COUNTS,
        n_sub_simulations: int = 100, seed: int = 2007,
        plan: Optional[FailurePlan] = None,
        jobs: Optional[int] = None) -> DegradedResult:
    """Baseline (no failures) + one degraded campaign per crash count.

    Every campaign shares the seed, so the workload and the non-crashing
    machinery are identical run to run; only the injected failures differ.
    ``jobs`` runs the baseline and the degraded campaigns in worker
    processes — they never communicate, so parallel results (detached)
    match the serial sweep exactly.
    """
    base_plan = plan or FailurePlan()
    configs = [CampaignConfig(n_sub_simulations=n_sub_simulations, seed=seed)]
    for k in crash_counts:
        configs.append(CampaignConfig(
            n_sub_simulations=n_sub_simulations, seed=seed,
            failures=FailurePlan(
                n_crashes=k,
                crash_window=base_plan.crash_window,
                mean_downtime=base_plan.mean_downtime,
                heartbeat_interval=base_plan.heartbeat_interval,
                heartbeat_timeout=base_plan.heartbeat_timeout,
                heartbeat_miss_threshold=base_plan.heartbeat_miss_threshold,
                checkpoint_interval_work=base_plan.checkpoint_interval_work,
                max_solve_attempts=base_plan.max_solve_attempts,
                retry_backoff=base_plan.retry_backoff)))
    if jobs is not None and jobs != 1:
        results = run_tasks(
            [Task(key=("baseline" if cfg.failures is None
                       else f"crashes={cfg.failures.n_crashes}"),
                  func=run_campaign_detached, args=(cfg,), seed=seed)
             for cfg in configs], jobs=jobs)
    else:
        results = [run_campaign(cfg) for cfg in configs]
    runs = [DegradedRun(n_crashes=k, result=result)
            for k, result in zip(crash_counts, results[1:])]
    return DegradedResult(baseline=results[0], runs=runs)


def render(result: DegradedResult) -> str:
    rows = []
    for run_ in result.runs:
        report = run_.result.failure_report
        assert report is not None
        rows.append((run_.n_crashes,
                     f"{run_.completed}/{len(run_.result.statuses)}",
                     hms(run_.makespan),
                     f"{result.inflation(run_):.3f}x",
                     report.resubmissions,
                     f"{report.work_lost:.0f}",
                     f"{report.work_recovered:.0f}",
                     report.checkpoints_written))
    lines = [
        "E11 - the 100-zoom campaign under injected SeD failures",
        f"baseline makespan (no failures): {hms(result.baseline.total_elapsed)}",
        ascii_table(("crashes", "done", "makespan", "inflation",
                     "resubmit", "work lost", "recovered", "ckpts"), rows),
    ]
    for run_ in result.runs:
        report = run_.result.failure_report
        assert report is not None
        moved = result.rebalancing(run_)
        outages = ", ".join(f"{o.name} down {hms(o.downtime)}"
                            for o in report.outages) or "none completed"
        lines.append(f"k={run_.n_crashes}: {outages}")
        if moved:
            shifts = ", ".join(f"{sed} {b}->{d}"
                               for sed, (b, d) in moved.items())
            lines.append(f"  rebalanced: {shifts}")
    lines.append(
        "every zoom completes: lost jobs are resubmitted through the MA and "
        "absorbed by surviving SeDs; checkpoints cut the redone work when a "
        "resubmission lands back on the crashed SeD's cluster (§4.1: restart "
        "dumps do not cross NFS volumes)")
    return "\n".join(lines)
