"""E12 — data-locality ablation: volatile vs persistent vs replicated.

The paper ships every zoom2 result tarball back to the Lyon client over the
RENATER WAN — §4.3.1's profiles are all ``DIET_VOLATILE``.  DIET's data
managers (DTM, later DAGDA) exist precisely to avoid that: a persistent
OUT argument stays on the producing SeD and the client receives a handle.
This experiment quantifies what that buys on the §5.1 testbed: each arm
runs the identical campaign under a different ``data_policy`` and reports
the bytes that entered the network, the subset that crossed a WAN link,
and the data grid's own counters (bytes saved, replicas pushed, ...).

The simulation *work* is untouched by the policy — the solvers, the
schedule and the request phases see the same event stream — so every
figure 4/5 series (request distribution, per-SeD busy time, finding times,
latencies) must be identical across arms; :func:`render` checks this and
says so.  Only the reply leg changes: tarball bytes vs a fixed-size handle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..services import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
    run_campaign_detached,
)
from .report import ascii_table, hms
from .runner import Task, run_tasks

__all__ = ["DataLocalityResult", "run", "render", "DEFAULT_POLICIES"]

#: The ablation arms, in reporting order.  "volatile" is the baseline (the
#: data grid is wired but every argument travels by value, exactly like the
#: paper's campaign); the others keep zoom2 tarballs SeD-side.
DEFAULT_POLICIES = ("volatile", "persistent", "broadcast")


@dataclass
class DataLocalityResult:
    """One campaign per data policy, same seed and workload."""

    #: policy name -> campaign result, in arm order.
    campaigns: Dict[str, CampaignResult]

    @property
    def baseline(self) -> CampaignResult:
        """The arm the others are compared against (prefers "volatile")."""
        if "volatile" in self.campaigns:
            return self.campaigns["volatile"]
        return next(iter(self.campaigns.values()))

    def wan_saved(self, policy: str) -> int:
        """WAN bytes the arm avoided relative to the baseline."""
        return (self.baseline.net_bytes_wan
                - self.campaigns[policy].net_bytes_wan)

    def figure_series(self, policy: str):
        """The figure 4/5 inputs whose values must not depend on the
        data policy: request distribution, per-SeD busy time, finding
        times, latencies."""
        c = self.campaigns[policy]
        return (c.requests_per_sed(), c.busy_time_per_sed(),
                c.finding_times(), c.latencies())

    @property
    def figures_identical(self) -> bool:
        """True when every arm reproduces the baseline's figure series
        exactly (bit-identical floats, not merely close)."""
        ref = self.figure_series(next(iter(self.campaigns)))
        return all(self.figure_series(p) == ref for p in self.campaigns)


def run(policies: Sequence[str] = DEFAULT_POLICIES,
        n_sub_simulations: int = 100, seed: int = 2007,
        jobs: Optional[int] = None) -> DataLocalityResult:
    """One campaign per policy, sharing seed and workload.

    ``jobs`` runs the arms in worker processes; they never communicate, so
    parallel results (detached) match the serial sweep byte for byte.
    """
    configs = [CampaignConfig(n_sub_simulations=n_sub_simulations, seed=seed,
                              data_policy=policy)
               for policy in policies]
    if jobs is not None and jobs != 1:
        results = run_tasks(
            [Task(key=cfg.data_policy, func=run_campaign_detached,
                  args=(cfg,), seed=seed)
             for cfg in configs], jobs=jobs)
    else:
        results = [run_campaign(cfg) for cfg in configs]
    return DataLocalityResult(
        campaigns=dict(zip(policies, results)))


def _mib(n: int) -> str:
    return f"{n / 2 ** 20:.1f} MiB"


def render(result: DataLocalityResult) -> str:
    rows = []
    for policy, campaign in result.campaigns.items():
        report = campaign.data_report or {}
        rows.append((policy,
                     hms(campaign.total_elapsed),
                     _mib(campaign.net_bytes_total),
                     _mib(campaign.net_bytes_wan),
                     _mib(result.wan_saved(policy)),
                     _mib(report.get("bytes_moved", 0)),
                     report.get("hits", 0),
                     report.get("evictions", 0),
                     report.get("replicas", 0)))
    lines = [
        "E12 - data-locality ablation (DTM/DAGDA-style persistence)",
        ascii_table(("policy", "makespan", "net bytes", "WAN bytes",
                     "WAN saved", "moved", "hits", "evict", "repl"), rows),
        "",
        "figure 4/5 series (distribution, busy time, finding, latency) "
        + ("identical across every arm"
           if result.figures_identical
           else "DIFFER ACROSS ARMS — the data layer perturbed the "
                "schedule, this is a bug"),
    ]
    if "persistent" in result.campaigns and "volatile" in result.campaigns:
        saved = result.wan_saved("persistent")
        base = result.baseline.net_bytes_wan
        lines.append(
            f"persistent results keep the zoom tarballs SeD-side: "
            f"{_mib(saved)} of {_mib(base)} WAN traffic "
            f"({100.0 * saved / base:.1f}%) never leaves the clusters")
    return "\n".join(lines)
