"""E8 — Figure 2 analogue: time sequence of the projected density field.

Figure 2 of the paper is a visual ("Time sequence (from left to right) of
the projected density field in a cosmological simulation (large scale
periodic box)").  The quantitative content we reproduce with a real PM run:
the density field's fluctuation amplitude grows monotonically through the
sequence, and by a=1 the box contains collapsed high-density peaks (the
"dark matter halos, seen in Figure 2 as high-density peaks").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..galics.halomaker import find_halos
from ..grafic.ic import make_single_level_ic
from ..ramses.cosmology import LCDM_WMAP, Cosmology
from ..ramses.simulation import RamsesRun, RunConfig, Snapshot
from .report import ascii_table

__all__ = ["Figure2Result", "run", "render"]


@dataclass
class Figure2Result:
    aexps: List[float]
    rms_delta: List[float]
    max_delta: List[float]
    n_halos_final: int
    projections: List[np.ndarray]

    @property
    def monotone_growth(self) -> bool:
        return all(b > a for a, b in zip(self.rms_delta[:-1], self.rms_delta[1:]))


def run(n_per_side: int = 32, boxsize: float = 100.0,
        cosmology: Optional[Cosmology] = None, seed: int = 42,
        n_steps: int = 48) -> Figure2Result:
    cosmo = cosmology or LCDM_WMAP
    ic = make_single_level_ic(n_per_side, boxsize, cosmo, a_start=0.05,
                              seed=seed)
    outputs = (0.1, 0.25, 0.5, 1.0)   # the left-to-right panels
    cfg = RunConfig(a_end=1.0, n_steps=n_steps, output_aexp=outputs)
    result = RamsesRun(ic, cfg).run()
    snaps: List[Snapshot] = result.snapshots
    final_halos = find_halos(snaps[-1].particles, snaps[-1].aexp)
    return Figure2Result(
        aexps=[s.aexp for s in snaps],
        rms_delta=[s.rms_delta for s in snaps],
        max_delta=[s.max_delta for s in snaps],
        n_halos_final=len(final_halos),
        projections=[s.projected_density(n=32) for s in snaps])


def _density_panel(projection: np.ndarray, width: int = 24) -> List[str]:
    """Downsampled ASCII rendering of one projected-density panel."""
    ramp = " .:-=+*#%@"
    n = projection.shape[0]
    step = max(n // width, 1)
    img = projection[::step, ::step]
    logv = np.log10(np.maximum(img, 1e-3))
    lo, hi = logv.min(), max(logv.max(), logv.min() + 1e-9)
    idx = ((logv - lo) / (hi - lo) * (len(ramp) - 1)).astype(int)
    return ["".join(ramp[i] for i in row) for row in idx]


def render(result: Figure2Result) -> str:
    rows = [(f"a={a:.2f}", f"{rms:.3f}", f"{mx:.1f}")
            for a, rms, mx in zip(result.aexps, result.rms_delta,
                                  result.max_delta)]
    parts = ["E8 - Figure 2 analogue: projected density through cosmic time",
             ascii_table(("epoch", "rms delta", "max delta"), rows),
             f"monotone growth: {result.monotone_growth}   "
             f"halos at a=1: {result.n_halos_final}",
             ""]
    panels = [_density_panel(p) for p in result.projections]
    for row_idx in range(len(panels[0])):
        parts.append("   ".join(panel[row_idx] for panel in panels))
    parts.append("   ".join(f"a={a:<21.2f}" for a in result.aexps))
    return "\n".join(parts)
