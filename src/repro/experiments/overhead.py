"""E6 — §5.2 middleware overhead.

Paper: "the average time for initiating the service is 20.8ms (taken on the
12 firsts executions).  The average overhead for one simulation is about
70.6ms, inducing a total overhead for the 101 simulations of 7s, which is
neglectible compared to the total processing time of the simulations."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..services.workflow import CampaignConfig, CampaignResult, run_campaign
from .report import ascii_table

__all__ = ["OverheadResult", "run", "render"]

PAPER_INIT_MS = 20.8
PAPER_PER_SIM_MS = 70.6
PAPER_TOTAL_S = 7.0


@dataclass
class OverheadResult:
    campaign: CampaignResult

    @property
    def init_time_ms(self) -> float:
        """Service-initiation time, measured like the paper: on the first 12
        executions (part 1 plus the 11-SeD first wave — the runs with no
        queue wait).  Span-store derivation when available: an ``init``
        span covers exactly the job-slot-grant → solve-start interval the
        trace stamps bracket; its end *is* the solve start, so ordering by
        it reproduces the paper's "first 12" selection."""
        store = self.campaign.span_store()
        if store is not None:
            part1_rid = self.campaign.part1_trace.request_id
            zoom2 = CampaignResult._ZOOM2
            spans = sorted(
                (s for s in store.find(name="init", status="ok")
                 if s.attrs.get("service") == zoom2
                 or s.attrs.get("request_id") == part1_rid),
                key=lambda s: s.end)
            inits = [s.duration for s in spans[:12]]
        else:
            traces = sorted(
                (t for t in [self.campaign.part1_trace] + self.campaign.part2_traces
                 if t.initiation_time is not None and t.solve_started_at is not None),
                key=lambda t: t.solve_started_at)
            inits = [t.initiation_time for t in traces[:12]]
        return float(np.mean(inits)) * 1e3

    @property
    def per_request_overhead_ms(self) -> float:
        """finding + initiation per request (both measured from the trace)."""
        per = list(self.campaign.overhead_per_request)
        p1 = self.campaign.part1_trace
        if p1.finding_time is not None and p1.initiation_time is not None:
            per.append(p1.finding_time + p1.initiation_time)
        return float(np.mean(per)) * 1e3

    @property
    def total_overhead_s(self) -> float:
        n = len(self.campaign.part2_traces) + 1
        return self.per_request_overhead_ms * n / 1e3

    @property
    def overhead_fraction(self) -> float:
        return self.total_overhead_s / self.campaign.sequential_estimate


def run(config: Optional[CampaignConfig] = None) -> OverheadResult:
    return OverheadResult(campaign=run_campaign(config or CampaignConfig()))


def render(result: OverheadResult) -> str:
    rows = [
        ("service initiation (first 12 runs)",
         f"{result.init_time_ms:.1f}ms", f"{PAPER_INIT_MS}ms"),
        ("overhead per simulation",
         f"{result.per_request_overhead_ms:.1f}ms", f"{PAPER_PER_SIM_MS}ms"),
        ("total overhead, 101 simulations",
         f"{result.total_overhead_s:.1f}s", f"{PAPER_TOTAL_S:.0f}s"),
        ("fraction of total compute",
         f"{result.overhead_fraction:.2e}", "neglectible"),
    ]
    return ("E6 - middleware overhead (measured vs paper)\n"
            + ascii_table(("quantity", "measured", "paper"), rows))
