"""E4/E5 — Figure 5: finding time and latency.

Paper: "The finding time is low and nearly constant (49.8ms on average).
The latency grows rapidly.  Indeed, the client requests 100 sub-simulations
simultaneously, and each SED cannot compute more than one of them at the
same time.  Requests cannot be proceeded until the completion of the
precedent one.  This waiting time is taken into account in the latency."
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..services.workflow import CampaignConfig, CampaignResult, run_campaign
from .report import ascii_series

__all__ = ["Figure5Result", "run", "render"]

PAPER_FINDING_MS = 49.8
PAPER_INIT_MS = 20.8


@dataclass
class Figure5Result:
    campaign: CampaignResult

    @property
    def finding_times(self) -> List[float]:
        return self.campaign.finding_times()

    @property
    def latencies(self) -> List[float]:
        # ordered by submission, like the paper's per-request plot
        return self.campaign.latencies()

    @property
    def finding_mean_ms(self) -> float:
        return float(np.mean(self.finding_times)) * 1e3

    @property
    def finding_cv(self) -> float:
        """Coefficient of variation — 'nearly constant' means small."""
        ft = np.asarray(self.finding_times)
        return float(ft.std() / ft.mean())

    @property
    def latency_growth_decades(self) -> float:
        """log10(max latency / first-wave latency): the figure's log-scale
        rise (hours of queueing vs milliseconds of transfer)."""
        lat = self.latencies
        first = min(lat)
        return math.log10(max(lat) / max(first, 1e-9))

    @property
    def first_wave_latency_ms(self) -> float:
        """Requests served immediately (no queue): transfer + initiation.

        Selected by the measured queue wait (slot granted as soon as the
        data arrived), not by assuming the n_seds smallest latencies were
        the unqueued ones.  Span-store derivation when available: the queue
        span's duration *is* the queue wait, the finding-end → solve-start
        gap *is* the latency; otherwise the same selection runs over the
        trace buffer."""
        store = self.campaign.span_store()
        if store is not None:
            zoom2 = CampaignResult._ZOOM2
            queued = {s.attrs.get("request_id"): s.duration
                      for s in store.find(name="queue", status="ok",
                                          service=zoom2)}
            solve_start = {s.attrs.get("request_id"): s.start
                           for s in store.find(name="solve", service=zoom2)}
            lat = []
            for f in store.find(name="finding", status="ok", service=zoom2):
                rid = f.attrs.get("request_id")
                wait, start = queued.get(rid), solve_start.get(rid)
                if wait is not None and wait < 1e-3 and start is not None:
                    lat.append(start - f.end)
        else:
            lat = [t.latency for t in self.campaign.part2_traces
                   if t.latency is not None
                   and t.queue_wait is not None and t.queue_wait < 1e-3]
        if not lat:  # traces without SeD-side stamps: fall back to smallest
            lat = sorted(self.latencies)[:len(self.campaign.deployment.seds)]
        return float(np.mean(lat)) * 1e3


def run(config: Optional[CampaignConfig] = None) -> Figure5Result:
    return Figure5Result(campaign=run_campaign(config or CampaignConfig()))


def render(result: Figure5Result) -> str:
    ft_ms = [f * 1e3 for f in result.finding_times]
    parts = [
        "E4 - Figure 5: finding time per request",
        ascii_series(ft_ms, label="finding time (ms)"),
        f"mean {result.finding_mean_ms:.1f}ms, CV {result.finding_cv:.3f}"
        f"   (paper: {PAPER_FINDING_MS}ms average, nearly constant)",
        "",
        "E5 - Figure 5: latency per request (log scale)",
        ascii_series(result.latencies, log=True, label="latency (s), log10"),
        f"first-wave latency {result.first_wave_latency_ms:.1f}ms; "
        f"grows {result.latency_growth_decades:.1f} decades to "
        f"{max(result.latencies) / 3600:.1f}h"
        "   (paper: grows rapidly - queueing on busy SeDs)",
    ]
    return "\n".join(parts)
