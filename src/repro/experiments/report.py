"""Rendering helpers shared by the experiment reports."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["hms", "ms", "ascii_table", "ascii_gantt", "ascii_series"]


def hms(seconds: float) -> str:
    """58723 -> '16h 18min 43s' (the paper's style)."""
    seconds = float(seconds)
    h = int(seconds // 3600)
    m = int(seconds % 3600 // 60)
    s = seconds % 60
    return f"{h}h {m:02d}min {s:02.0f}s"


def ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}ms"


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Minimal fixed-width table."""
    cols = [[str(h)] + [str(r[i]) for r in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in col) for col in cols]
    lines = []
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_gantt(chart: Dict[str, List[tuple]], width: int = 72) -> str:
    """Text Gantt chart: one row per SeD, '#' spans busy periods."""
    if not chart:
        return "(empty)"
    t_min = min(s for spans in chart.values() for s, _e, _r in spans)
    t_max = max(e for spans in chart.values() for _s, e, _r in spans)
    span = max(t_max - t_min, 1e-9)
    name_w = max(len(name) for name in chart)
    lines = []
    for name in sorted(chart):
        row = [" "] * width
        for start, end, _rid in chart[name]:
            i0 = int((start - t_min) / span * (width - 1))
            i1 = max(int((end - t_min) / span * (width - 1)), i0)
            for i in range(i0, i1 + 1):
                row[i] = "#" if row[i] == " " else "#"
        # mark job boundaries
        for start, _end, _rid in chart[name]:
            i0 = int((start - t_min) / span * (width - 1))
            row[i0] = "|"
        lines.append(f"{name.ljust(name_w)} {''.join(row)}")
    lines.append(f"{''.ljust(name_w)} 0{'h'.rjust(width - 8)}"
                 f"{(t_max - t_min) / 3600:6.1f}h")
    return "\n".join(lines)


def ascii_series(values: Sequence[float], width: int = 60, height: int = 12,
                 log: bool = False, label: str = "") -> str:
    """Tiny scatter/line plot of a 1-d series (request index on x)."""
    import math

    vals = [float(v) for v in values]
    if not vals:
        return "(empty series)"
    if log:
        vals = [math.log10(max(v, 1e-12)) for v in vals]
    lo, hi = min(vals), max(vals)
    span = max(hi - lo, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    n = len(vals)
    for i, v in enumerate(vals):
        x = int(i / max(n - 1, 1) * (width - 1))
        y = int((v - lo) / span * (height - 1))
        grid[height - 1 - y][x] = "*"
    lines = []
    for j, row in enumerate(grid):
        edge = hi - j * span / (height - 1)
        tick = f"1e{edge:5.2f}" if log else f"{edge:8.3g}"
        lines.append(f"{tick} |{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"request index 0..{n - 1}   {label}")
    return "\n".join(lines)
