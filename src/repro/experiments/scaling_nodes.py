"""E10 (ablation) — why 16 machines per SeD?

§4.1 fixes the deployment granularity: "Each DIET server will be in charge
of a set of machines (typically 32 machines to run a 256^3 particules
simulation)"; §5.1 gives each SeD 16 machines for its 128^3 runs.  The
paper never justifies the number; this ablation does, by sweeping the rank
count of one zoom-simulation step through the parallel-execution model
(compute + ghost exchange + FFT transpose on a GigE-era interconnect) over
a realistically clustered particle distribution.

The expected shape: near-linear speedup while compute dominates, an
efficiency knee in the 16-64 range once boundary exchange takes over, and
decay beyond — making 16 nodes per SeD a sensible §5.1 choice (and freeing
the remaining cluster nodes for a second SeD, which is how the paper gets
2 SeDs per cluster).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..grafic.ic import make_single_level_ic
from ..ramses.cosmology import LCDM_WMAP, Cosmology
from ..ramses.parallel import MpiCostModel, ParallelStepModel, StepBreakdown
from ..ramses.simulation import RamsesRun, RunConfig
from .report import ascii_table
from .runner import Task, run_tasks

__all__ = ["ScalingResult", "run", "render", "DEFAULT_RANKS"]

DEFAULT_RANKS = (1, 2, 4, 8, 16, 32, 64, 128)

#: Staged model for pool workers.  ``run`` places the built model here
#: *before* creating the pool; with the ``fork`` start method workers
#: inherit the ~50 MB particle array copy-on-write instead of having it
#: pickled into every task.
_POOL_MODEL: Optional[ParallelStepModel] = None


def _breakdown_task(ncpu: int) -> StepBreakdown:
    assert _POOL_MODEL is not None, "model not staged before pool creation"
    return _POOL_MODEL.breakdown(ncpu)


@dataclass
class ScalingResult:
    breakdowns: List[StepBreakdown]
    n_particles: int
    n_grid: int

    def efficiency(self, ncpu: int) -> float:
        base = self.breakdowns[0].total * self.breakdowns[0].ncpu
        for bd in self.breakdowns:
            if bd.ncpu == ncpu:
                return base / (bd.total * bd.ncpu)
        raise KeyError(f"no breakdown for {ncpu} ranks")

    @property
    def rank_counts(self) -> List[int]:
        return [bd.ncpu for bd in self.breakdowns]

    def knee(self, floor: float = 0.5) -> int:
        """Largest swept rank count with efficiency >= floor."""
        best = self.breakdowns[0].ncpu
        for bd in self.breakdowns:
            if self.efficiency(bd.ncpu) >= floor:
                best = bd.ncpu
        return best


def run(rank_counts: Sequence[int] = DEFAULT_RANKS,
        base_resolution: int = 32, replicate: int = 64,
        cosmology: Optional[Cosmology] = None, seed: int = 42,
        cost: Optional[MpiCostModel] = None,
        jobs: Optional[int] = None) -> ScalingResult:
    """Sweep rank counts over a 128^3-scale clustered distribution.

    The distribution is an evolved ``base_resolution``^3 snapshot replicated
    ``replicate``x with sub-cell jitter — same clustering statistics at the
    particle count of the paper's zoom runs, for a fraction of the cost.

    ``jobs`` fans the per-rank-count breakdowns (the dominant cost, each a
    pure function of the staged snapshot) over worker processes; the
    result is identical to the serial sweep because each breakdown depends
    only on the snapshot and its rank count.
    """
    cosmo = cosmology or LCDM_WMAP
    ic = make_single_level_ic(base_resolution, 100.0, cosmo, a_start=0.05,
                              seed=seed)
    snap = RamsesRun(ic, RunConfig(a_end=0.8, n_steps=16,
                                   output_aexp=(0.8,))).run().final
    rng = np.random.default_rng(seed)
    x = np.mod(np.repeat(snap.particles.x, replicate, axis=0)
               + 0.004 * rng.standard_normal(
                   (len(snap.particles) * replicate, 3)), 1.0)
    n_grid = int(round((len(x)) ** (1 / 3)))
    model = ParallelStepModel(x, n_grid, cost=cost, node_speed_ghz=2.0)
    if jobs is not None and jobs != 1:
        global _POOL_MODEL
        _POOL_MODEL = model
        try:
            breakdowns = run_tasks(
                [Task(key=f"ranks={p}", func=_breakdown_task, args=(p,),
                      seed=seed) for p in rank_counts], jobs=jobs)
        finally:
            _POOL_MODEL = None
    else:
        breakdowns = [model.breakdown(p) for p in rank_counts]
    return ScalingResult(breakdowns=breakdowns,
                         n_particles=len(x), n_grid=n_grid)


def render(result: ScalingResult) -> str:
    rows = []
    for bd in result.breakdowns:
        rows.append((bd.ncpu, f"{bd.total:8.2f}s", f"{bd.compute:8.2f}s",
                     f"{bd.ghost:6.2f}s", f"{bd.fft:6.3f}s",
                     f"{bd.imbalance:.2f}",
                     f"{result.efficiency(bd.ncpu):.3f}"))
    knee = result.knee()
    return (f"E10 - per-step scaling of one zoom run "
            f"({result.n_particles} particles, {result.n_grid}^3 grid)\n"
            + ascii_table(("ranks", "step", "compute", "ghost", "fft",
                           "imbal", "efficiency"), rows)
            + f"\nefficiency stays above 0.5 up to {knee} ranks => the "
            f"paper's 16 machines/SeD sit on the efficient plateau, leaving "
            f"nodes for the cluster's second SeD")
