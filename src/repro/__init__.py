"""repro: reproduction of "Cosmological Simulations using Grid Middleware".

Subpackages
-----------
``repro.sim``
    Discrete-event simulation kernel (engine, resources, network, RNG).
``repro.platform``
    Grid'5000 testbed model: machines, topology, NFS, batch reservations.
``repro.core``
    The DIET middleware reimplementation: profiles, SeDs, agents, client,
    GridRPC facade, scheduling (default + plug-in), deployment, tracing.
``repro.ramses``
    A working cosmological N-body code: PM gravity, KDK leapfrog, AMR
    bookkeeping, Peano-Hilbert domain decomposition, snapshot I/O.
``repro.grafic``
    Gaussian-random-field initial conditions, single- and multi-level.
``repro.galics``
    HaloMaker (FoF), TreeMaker (merger trees), GalaxyMaker (SAM).
``repro.services``
    The ramsesZoom1/ramsesZoom2 DIET services, the calibrated performance
    model and the full two-part campaign of §5.
``repro.experiments``
    One module per figure/table of the paper's evaluation.
"""

__version__ = "1.0.0"

__all__ = ["sim", "platform", "core", "ramses", "grafic", "galics",
           "services", "experiments", "__version__"]
