"""Catalog containers shared by the GALICS chain (HaloMaker -> TreeMaker ->
GalaxyMaker), plus their on-disk form.

The paper's workflow hands "a catalog of dark matter halos [...] containing
each halo position, mass and velocity" from the first simulation to the
zoom selection step, and ships post-processed results back in the result
tarball.  Catalogs serialize to Fortran unformatted records (like GALICS'
"tree bricks" files) through :func:`write_halo_catalog` /
:func:`read_halo_catalog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..ramses.io import FortranRecordFile

__all__ = ["Halo", "HaloCatalog", "Galaxy", "GalaxyCatalog",
           "write_halo_catalog", "read_halo_catalog"]


@dataclass
class Halo:
    """One dark-matter halo (position/mass/velocity, §3)."""

    halo_id: int
    center: np.ndarray          # (3,) comoving box units
    mass: float                 # box-mass units (total box == 1)
    velocity: np.ndarray        # (3,) mean peculiar velocity, code units
    n_particles: int
    radius: float               # max member distance from centre, box units
    member_ids: np.ndarray      # (n_particles,) int64

    def __post_init__(self):
        self.center = np.asarray(self.center, dtype=np.float64)
        self.velocity = np.asarray(self.velocity, dtype=np.float64)
        self.member_ids = np.asarray(self.member_ids, dtype=np.int64)
        if self.center.shape != (3,) or self.velocity.shape != (3,):
            raise ValueError("center and velocity must be 3-vectors")
        if self.n_particles != len(self.member_ids):
            raise ValueError("n_particles disagrees with member_ids")


@dataclass
class HaloCatalog:
    """All halos of one snapshot, sorted by decreasing mass."""

    aexp: float
    halos: List[Halo] = field(default_factory=list)

    def __post_init__(self):
        self.halos.sort(key=lambda h: -h.mass)

    def __len__(self) -> int:
        return len(self.halos)

    def __iter__(self):
        return iter(self.halos)

    def __getitem__(self, i: int) -> Halo:
        return self.halos[i]

    def by_id(self, halo_id: int) -> Halo:
        for h in self.halos:
            if h.halo_id == halo_id:
                return h
        raise KeyError(f"no halo {halo_id}")

    def masses(self) -> np.ndarray:
        return np.array([h.mass for h in self.halos])

    def mass_function(self, n_bins: int = 8):
        """(bin centres, counts) of the halo mass function (log bins)."""
        m = self.masses()
        if len(m) == 0:
            return np.array([]), np.array([])
        lo, hi = np.log10(m.min() * 0.999), np.log10(m.max() * 1.001)
        edges = np.linspace(lo, hi, n_bins + 1)
        counts, _ = np.histogram(np.log10(m), bins=edges)
        centres = 10 ** (0.5 * (edges[:-1] + edges[1:]))
        return centres, counts


@dataclass
class Galaxy:
    """One semi-analytic galaxy (GalaxyMaker output)."""

    galaxy_id: int
    halo_id: int
    stellar_mass: float         # box-mass units
    cold_gas: float
    hot_gas: float
    bulge_mass: float
    sfr: float                  # star-formation rate, box-mass per 1/H0
    position: np.ndarray        # (3,) box units

    def __post_init__(self):
        self.position = np.asarray(self.position, dtype=np.float64)

    @property
    def disk_mass(self) -> float:
        return self.stellar_mass - self.bulge_mass

    @property
    def bulge_fraction(self) -> float:
        return self.bulge_mass / self.stellar_mass if self.stellar_mass > 0 else 0.0


@dataclass
class GalaxyCatalog:
    aexp: float
    galaxies: List[Galaxy] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.galaxies)

    def __iter__(self):
        return iter(self.galaxies)

    def stellar_masses(self) -> np.ndarray:
        return np.array([g.stellar_mass for g in self.galaxies])

    def total_stellar_mass(self) -> float:
        return float(self.stellar_masses().sum()) if self.galaxies else 0.0


def write_halo_catalog(path: str, catalog: HaloCatalog) -> None:
    """GALICS-style 'tree brick': Fortran unformatted halo records."""
    with open(path, "wb") as raw:
        rec = FortranRecordFile(raw)
        rec.write_ints(len(catalog))
        rec.write_doubles(catalog.aexp)
        for h in catalog:
            rec.write_ints(h.halo_id, h.n_particles)
            rec.write_doubles(h.mass, h.radius, *h.center, *h.velocity)
            rec.write_record(h.member_ids.astype("<i8"))


def read_halo_catalog(path: str) -> HaloCatalog:
    with open(path, "rb") as raw:
        rec = FortranRecordFile(raw)
        n = int(rec.read_ints()[0])
        aexp = float(rec.read_doubles()[0])
        halos: List[Halo] = []
        for _ in range(n):
            ints = rec.read_ints()
            halo_id, npart = int(ints[0]), int(ints[1])
            d = rec.read_doubles()
            mass, radius = float(d[0]), float(d[1])
            center, velocity = d[2:5].copy(), d[5:8].copy()
            member_ids = rec.read_longs().copy()
            halos.append(Halo(halo_id, center, mass, velocity, npart,
                              radius, member_ids))
    return HaloCatalog(aexp=aexp, halos=halos)
