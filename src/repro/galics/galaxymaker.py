"""GalaxyMaker: a semi-analytic galaxy-formation model over merger trees.

§3: "GalaxyMaker applies a semi-analytical model to the results of
TreeMaker to form galaxies, and creates a catalog of galaxies."

The recipes are the classic minimal SAM (White & Frenk 1991 lineage, as in
the original GALICS of Hatton et al. 2003), per tree node in time order:

* **accretion** — newly bound baryons = f_b * (M_halo - sum progenitor M)
  join the hot phase;
* **cooling** — hot gas cools onto the disk on the halo dynamical time,
  modulated by a mass-dependent efficiency;
* **star formation** — stars form from cold gas on a disk timescale,
  dM* = eps_sf * M_cold / t_disk * dt;
* **supernova feedback** — reheats cold gas back to hot, with efficiency
  falling in massive halos;
* **mergers** — galaxies of merging halos combine; major mergers
  (mass ratio > 1:3) move stars into the bulge.

Everything is in box-mass units and Hubble-time units, consistent with the
simulation; conversions to Msun live in :class:`repro.ramses.units.Units`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .catalogs import Galaxy, GalaxyCatalog
from .treemaker import MergerTree, TreeNode
from ..ramses.cosmology import Cosmology

__all__ = ["SamParams", "GalaxyMaker"]


@dataclass(frozen=True)
class SamParams:
    """Recipe efficiencies (dimensionless unless stated)."""

    baryon_fraction: float = 0.15
    cooling_efficiency: float = 0.8
    #: halo mass (box units) above which cooling is quenched by a long
    #: cooling time; below it gas cools in ~1 dynamical time.
    cooling_mass_scale: float = 1e-2
    star_formation_efficiency: float = 0.1
    #: disk star-formation timescale in halo dynamical times.
    disk_timescale: float = 2.0
    feedback_efficiency: float = 0.4
    #: progenitor mass ratio above which a merger is "major".
    major_merger_ratio: float = 1.0 / 3.0

    def __post_init__(self):
        for name in ("baryon_fraction", "cooling_efficiency",
                     "star_formation_efficiency", "feedback_efficiency"):
            v = getattr(self, name)
            if not 0 <= v <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {v}")


@dataclass
class _GalaxyState:
    stellar: float = 0.0
    bulge: float = 0.0
    cold: float = 0.0
    hot: float = 0.0
    sfr: float = 0.0

    @property
    def baryons(self) -> float:
        return self.stellar + self.cold + self.hot


class GalaxyMaker:
    """Runs the SAM over a merger tree and emits galaxy catalogs."""

    def __init__(self, cosmology: Cosmology,
                 params: Optional[SamParams] = None):
        self.cosmology = cosmology
        self.params = params or SamParams()

    # -- recipes -----------------------------------------------------------------

    def _dynamical_time(self, aexp: float) -> float:
        """Halo dynamical time ~ 0.1 / H(a), in 1/H0 units."""
        return 0.1 / float(self.cosmology.hubble(aexp))

    def _evolve_node(self, state: _GalaxyState, halo_mass: float,
                     accreted_dm: float, aexp: float, dt: float) -> None:
        p = self.params
        state.hot += max(accreted_dm, 0.0) * p.baryon_fraction
        t_dyn = self._dynamical_time(aexp)
        # cooling: efficiency drops smoothly above the quenching scale
        quench = 1.0 / (1.0 + (halo_mass / p.cooling_mass_scale) ** 2)
        cool = min(p.cooling_efficiency * quench * dt / t_dyn, 1.0) * state.hot
        state.hot -= cool
        state.cold += cool
        # star formation
        t_disk = p.disk_timescale * t_dyn
        stars = min(p.star_formation_efficiency * dt / t_disk, 1.0) * state.cold
        state.cold -= stars
        state.stellar += stars
        state.sfr = stars / dt if dt > 0 else 0.0
        # supernova feedback reheats cold gas, weaker in deep potentials
        reheat_eff = p.feedback_efficiency / (1.0 + (halo_mass / p.cooling_mass_scale))
        reheated = min(reheat_eff * stars, state.cold)
        state.cold -= reheated
        state.hot += reheated

    # -- tree walk --------------------------------------------------------------------

    def run(self, tree: MergerTree) -> List[GalaxyCatalog]:
        """One galaxy catalog per snapshot of the tree's catalogs."""
        catalogs = tree.catalogs
        n_snaps = len(catalogs)
        ages = [self.cosmology.age(c.aexp) for c in catalogs]
        states: Dict[TreeNode, _GalaxyState] = {}
        outputs: List[GalaxyCatalog] = []

        for snap in range(n_snaps):
            cat = catalogs[snap]
            dt = ages[snap] - ages[snap - 1] if snap > 0 else ages[snap] * 0.5
            galaxies: List[Galaxy] = []
            for halo in cat:
                node = TreeNode(snap, halo.halo_id)
                progs = tree.progenitors(node)
                merged = _GalaxyState()
                prog_dm = 0.0
                major = False
                if progs:
                    prog_masses = [tree.halo(p).mass for p in progs]
                    prog_dm = sum(prog_masses)
                    if len(progs) > 1:
                        ratio = prog_masses[1] / prog_masses[0]
                        major = ratio >= self.params.major_merger_ratio
                    for p in progs:
                        s = states.get(p)
                        if s is None:
                            continue
                        merged.stellar += s.stellar
                        merged.bulge += s.bulge
                        merged.cold += s.cold
                        merged.hot += s.hot
                    if major:
                        # major merger: the combined stars end up in a bulge
                        merged.bulge = merged.stellar
                accreted_dm = max(halo.mass - prog_dm, 0.0)
                self._evolve_node(merged, halo.mass, accreted_dm, cat.aexp, dt)
                states[node] = merged
                galaxies.append(Galaxy(
                    galaxy_id=len(galaxies), halo_id=halo.halo_id,
                    stellar_mass=merged.stellar, cold_gas=merged.cold,
                    hot_gas=merged.hot, bulge_mass=merged.bulge,
                    sfr=merged.sfr, position=halo.center.copy()))
            outputs.append(GalaxyCatalog(aexp=cat.aexp, galaxies=galaxies))
        return outputs
