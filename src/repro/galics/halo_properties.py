"""Physical halo properties beyond raw FoF membership.

HaloMaker's production version reports virial quantities; this module adds
them to our catalogs:

* **M200 / R200** — spherical-overdensity mass and radius: the sphere
  around the halo centre whose mean density is 200x the *mean matter*
  density of the box (the convention matching FoF b=0.2 linking);
* **velocity dispersion** — the 1-d dispersion of member peculiar
  velocities;
* **NFW-free concentration proxy** — r_half / R200, the radius enclosing
  half of M200 (cuspier halos have smaller values).

All computations are vectorized over the particle arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..ramses.particles import ParticleSet
from .catalogs import Halo

__all__ = ["VirialProperties", "virial_properties", "velocity_dispersion"]

#: The spherical-overdensity threshold (x mean matter density).
OVERDENSITY = 200.0


@dataclass(frozen=True)
class VirialProperties:
    """Spherical-overdensity properties of one halo."""

    m200: float            # box-mass units
    r200: float            # box units
    r_half: float          # half-mass radius of the M200 sphere
    sigma_v: float         # 1-d velocity dispersion, code units
    n200: int              # particles within R200

    @property
    def concentration_proxy(self) -> float:
        """r_half / R200 in (0, 1); smaller == more concentrated."""
        return self.r_half / self.r200 if self.r200 > 0 else 0.0


def _periodic_radii(x: np.ndarray, center: np.ndarray) -> np.ndarray:
    d = np.abs(x - center)
    d = np.minimum(d, 1.0 - d)
    return np.sqrt((d ** 2).sum(axis=1))


def velocity_dispersion(parts: ParticleSet, members: np.ndarray,
                        aexp: float) -> float:
    """Mass-weighted 1-d peculiar-velocity dispersion of ``members``."""
    if len(members) == 0:
        raise ValueError("empty member set")
    v = parts.p[members] / aexp
    m = parts.mass[members]
    mean = np.average(v, axis=0, weights=m)
    var = np.average((v - mean) ** 2, axis=0, weights=m)
    return float(np.sqrt(var.mean()))


def virial_properties(halo: Halo, parts: ParticleSet, aexp: float,
                      overdensity: float = OVERDENSITY,
                      r_max: float = 0.25) -> Optional[VirialProperties]:
    """Spherical-overdensity properties around ``halo``'s centre.

    Walks outward in radius until the enclosed mean density (relative to
    the box mean, which is ``total_mass == 1`` by construction) drops below
    ``overdensity``.  Returns None when even the innermost shell is below
    threshold (diffuse FoF bridge artifacts).
    """
    radii = _periodic_radii(parts.x, halo.center)
    order = np.argsort(radii)
    sorted_r = radii[order]
    enclosed_mass = np.cumsum(parts.mass[order])

    # mean enclosed density / box mean = M(<r) / ((4/3) pi r^3 rho_mean)
    # with rho_mean = total_mass / 1  (unit box)
    with np.errstate(divide="ignore", invalid="ignore"):
        density_ratio = enclosed_mass / (4.0 / 3.0 * np.pi * sorted_r ** 3
                                         * parts.total_mass)
    valid = (sorted_r > 0) & (sorted_r < r_max)
    above = valid & (density_ratio >= overdensity)
    if not above.any():
        return None
    # last index still above the threshold defines R200
    idx = np.flatnonzero(above).max()
    r200 = float(sorted_r[idx])
    m200 = float(enclosed_mass[idx])
    n200 = int(idx + 1)

    half_idx = int(np.searchsorted(enclosed_mass[:idx + 1], 0.5 * m200))
    r_half = float(sorted_r[min(half_idx, idx)])

    inside = order[:idx + 1]
    sigma = velocity_dispersion(parts, inside, aexp)
    return VirialProperties(m200=m200, r200=r200, r_half=r_half,
                            sigma_v=sigma, n200=n200)
