"""HaloMaker: friends-of-friends halo finder.

§3: "HaloMaker detects dark matter halos present in RAMSES output files,
and creates a catalog of halos."  We implement the standard
friends-of-friends algorithm (Davis et al. 1985): particles closer than
``b`` times the mean interparticle separation belong to the same group.

The grouping runs on the compiled cell-grid + union-find kernel of
``_physcore.c`` when a C toolchain is available; the numpy mirror uses
scipy's periodic cKDTree and a sparse-graph connected-components pass —
no Python-level loops over particles, per the hpc-parallel guide.  Both
label in first-occurrence order (the group containing the lowest
particle index gets label 0), so the two implementations agree exactly,
not just up to permutation.  Halo centres are periodic-aware (circular
mean); groups below ``min_particles`` are discarded as noise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse
from scipy.spatial import cKDTree

from ..ramses.particles import ParticleSet
from ..ramses.physcore import phys_c
from .catalogs import Halo, HaloCatalog

__all__ = ["friends_of_friends", "find_halos", "periodic_center"]


def _canonical_labels(labels: np.ndarray) -> np.ndarray:
    """Relabel groups in first-occurrence order (deterministic under any
    permutation of the input labelling)."""
    _, first, inverse = np.unique(labels, return_index=True,
                                  return_inverse=True)
    rank = np.argsort(np.argsort(first, kind="stable"), kind="stable")
    return rank[inverse].astype(np.int64)


def periodic_center(x: np.ndarray, weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Weighted mean of points on the periodic unit torus (circular mean)."""
    x = np.asarray(x, dtype=np.float64)
    if len(x) == 0:
        raise ValueError("empty point set")
    w = np.ones(len(x)) if weights is None else np.asarray(weights, dtype=float)
    ang = 2.0 * np.pi * x
    s = np.average(np.sin(ang), axis=0, weights=w)
    c = np.average(np.cos(ang), axis=0, weights=w)
    return np.mod(np.arctan2(s, c) / (2.0 * np.pi), 1.0)


def friends_of_friends(x: np.ndarray, linking_length: float) -> np.ndarray:
    """Group labels (0..n_groups-1) for periodic FoF at ``linking_length``.

    ``linking_length`` is in box units.  Isolated particles get their own
    singleton label; the labelling is otherwise arbitrary but deterministic.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2 or x.shape[1] != 3:
        raise ValueError("x must be (N, 3)")
    if not 0 < linking_length < 0.5:
        raise ValueError("linking_length must be in (0, 0.5) box units")
    n = len(x)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    xm = np.ascontiguousarray(np.mod(x, 1.0))
    if phys_c is not None:
        labels = np.empty(n, dtype=np.int64)
        phys_c.fof(xm, float(linking_length), labels, n)
        return labels
    tree = cKDTree(xm, boxsize=1.0)
    pairs = tree.query_pairs(linking_length, output_type="ndarray")
    if len(pairs) == 0:
        return np.arange(n, dtype=np.int64)
    graph = sparse.coo_matrix(
        (np.ones(len(pairs), dtype=np.int8), (pairs[:, 0], pairs[:, 1])),
        shape=(n, n))
    _n_comp, labels = sparse.csgraph.connected_components(graph, directed=False)
    return _canonical_labels(labels)


def find_halos(parts: ParticleSet, aexp: float, b: float = 0.2,
               min_particles: int = 10,
               mean_separation: Optional[float] = None) -> HaloCatalog:
    """Run FoF and build the halo catalog.

    ``b`` is the dimensionless linking parameter (0.2 is the canonical
    choice); the linking length is ``b * mean_separation`` where the mean
    separation defaults to ``n_effective^{-1/3}`` with ``n_effective``
    derived from the *smallest* particle mass (so zoom runs link at the
    refined resolution).
    """
    if len(parts) == 0:
        return HaloCatalog(aexp=aexp, halos=[])
    if min_particles < 2:
        raise ValueError("min_particles must be >= 2")
    if mean_separation is None:
        n_eff = parts.total_mass / parts.mass.min()
        mean_separation = n_eff ** (-1.0 / 3.0)
    labels = friends_of_friends(parts.x, b * mean_separation)

    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    boundaries = np.flatnonzero(np.diff(sorted_labels)) + 1
    groups = np.split(order, boundaries)

    halos = []
    halo_id = 0
    for members in groups:
        if len(members) < min_particles:
            continue
        sub_x = parts.x[members]
        sub_m = parts.mass[members]
        center = periodic_center(sub_x, weights=sub_m)
        d = np.abs(sub_x - center)
        d = np.minimum(d, 1.0 - d)
        radius = float(np.sqrt((d ** 2).sum(axis=1)).max())
        vel = np.average(parts.p[members] / aexp, axis=0, weights=sub_m)
        halos.append(Halo(
            halo_id=halo_id, center=center, mass=float(sub_m.sum()),
            velocity=vel, n_particles=len(members), radius=radius,
            member_ids=np.sort(parts.ids[members])))
        halo_id += 1
    return HaloCatalog(aexp=aexp, halos=halos)
