"""GALICS substitute: HaloMaker, TreeMaker, GalaxyMaker.

"These three softwares are meant to be used sequentially, each of them
producing different kinds of information" (§3) — FoF halo catalogs, merger
trees by particle-id matching, and a semi-analytic galaxy catalog.
"""

from .catalogs import (
    Galaxy,
    GalaxyCatalog,
    Halo,
    HaloCatalog,
    read_halo_catalog,
    write_halo_catalog,
)
from .galaxymaker import GalaxyMaker, SamParams
from .press_schechter import (
    expected_halo_counts,
    press_schechter_dndlnm,
    sigma_of_mass,
)
from .halo_properties import VirialProperties, velocity_dispersion, virial_properties
from .halomaker import find_halos, friends_of_friends, periodic_center
from .treemaker import MergerTree, TreeNode, build_merger_tree, match_halos

__all__ = [
    "Galaxy",
    "GalaxyCatalog",
    "GalaxyMaker",
    "Halo",
    "HaloCatalog",
    "MergerTree",
    "SamParams",
    "TreeNode",
    "VirialProperties",
    "build_merger_tree",
    "find_halos",
    "friends_of_friends",
    "match_halos",
    "periodic_center",
    "press_schechter_dndlnm",
    "expected_halo_counts",
    "sigma_of_mass",
    "read_halo_catalog",
    "velocity_dispersion",
    "virial_properties",
    "write_halo_catalog",
]
