"""TreeMaker: merger trees from a time series of halo catalogs.

§3: "given the catalog of halos, TreeMaker builds a merger tree: it follows
the position, the mass, the velocity of the different particules present in
the halos through cosmic time."

Progenitor links are established by shared particle identifiers: halo P at
snapshot i is a progenitor of halo D at snapshot i+1 when they share
particles; the link weight is the shared-mass fraction of P.  The *main*
progenitor of D is the one contributing most mass.  The tree is a
:class:`networkx.DiGraph` (edges point forward in time), which tests check
is acyclic and respects mass bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from .catalogs import Halo, HaloCatalog

__all__ = ["TreeNode", "MergerTree", "build_merger_tree", "match_halos"]


@dataclass(frozen=True)
class TreeNode:
    """Identifies one halo at one snapshot."""

    snapshot: int
    halo_id: int


@dataclass
class MergerTree:
    """The full merger forest plus convenient accessors."""

    graph: nx.DiGraph
    catalogs: List[HaloCatalog]

    def halo(self, node: TreeNode) -> Halo:
        return self.catalogs[node.snapshot].by_id(node.halo_id)

    def progenitors(self, node: TreeNode) -> List[TreeNode]:
        return sorted(self.graph.predecessors(node),
                      key=lambda n: -self.graph[n][node]["shared_mass"])

    def descendant(self, node: TreeNode) -> Optional[TreeNode]:
        succ = list(self.graph.successors(node))
        if not succ:
            return None
        # a halo has at most one descendant: the one receiving most mass
        return max(succ, key=lambda n: self.graph[node][n]["shared_mass"])

    def main_progenitor(self, node: TreeNode) -> Optional[TreeNode]:
        progs = self.progenitors(node)
        return progs[0] if progs else None

    def main_branch(self, node: TreeNode) -> List[TreeNode]:
        """The main-progenitor branch, walked backwards in time."""
        branch = [node]
        current = node
        while True:
            prog = self.main_progenitor(current)
            if prog is None:
                break
            branch.append(prog)
            current = prog
        return branch

    def roots(self) -> List[TreeNode]:
        """Final-snapshot halos (tree roots in the astronomer convention)."""
        last = len(self.catalogs) - 1
        return [TreeNode(last, h.halo_id) for h in self.catalogs[last]]

    def n_mergers(self, node: TreeNode) -> int:
        """Mergers experienced along the whole history of ``node``."""
        total = 0
        stack = [node]
        seen = set()
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            progs = self.progenitors(cur)
            if len(progs) > 1:
                total += len(progs) - 1
            stack.extend(progs)
        return total


def match_halos(earlier: HaloCatalog, later: HaloCatalog
                ) -> List[Tuple[int, int, float]]:
    """(earlier_id, later_id, shared_mass_fraction_of_earlier) links.

    Vectorized over particle ids: build id -> later-halo lookup once, then
    intersect each earlier halo's members against it.
    """
    if len(later) == 0 or len(earlier) == 0:
        return []
    later_ids = np.concatenate([h.member_ids for h in later])
    later_halo = np.concatenate([
        np.full(h.n_particles, h.halo_id, dtype=np.int64) for h in later])
    order = np.argsort(later_ids, kind="stable")
    later_ids = later_ids[order]
    later_halo = later_halo[order]

    links: List[Tuple[int, int, float]] = []
    for h in earlier:
        pos = np.searchsorted(later_ids, h.member_ids)
        pos = np.clip(pos, 0, len(later_ids) - 1)
        found = later_ids[pos] == h.member_ids
        if not found.any():
            continue
        dests = later_halo[pos[found]]
        counts = np.bincount(dests)
        for dest in np.flatnonzero(counts):
            links.append((h.halo_id, int(dest),
                          counts[dest] / h.n_particles))
    return links


def build_merger_tree(catalogs: Sequence[HaloCatalog],
                      min_shared_fraction: float = 0.05) -> MergerTree:
    """Link consecutive catalogs into a merger forest.

    Links transferring less than ``min_shared_fraction`` of the progenitor's
    particles are dropped (tidal-stripping noise).  Each halo keeps at most
    one outgoing edge — the descendant that received the most of its mass —
    so the graph is a forest of in-trees, which is what the SAM walks.
    """
    catalogs = list(catalogs)
    if len(catalogs) < 1:
        raise ValueError("need at least one catalog")
    aexps = [c.aexp for c in catalogs]
    if any(b <= a for a, b in zip(aexps[:-1], aexps[1:])):
        raise ValueError("catalogs must be ordered by increasing aexp")

    graph = nx.DiGraph()
    for snap, cat in enumerate(catalogs):
        for h in cat:
            graph.add_node(TreeNode(snap, h.halo_id), mass=h.mass,
                           aexp=cat.aexp)
    for snap in range(len(catalogs) - 1):
        earlier, later = catalogs[snap], catalogs[snap + 1]
        best: Dict[int, Tuple[int, float]] = {}
        for src, dst, frac in match_halos(earlier, later):
            if frac < min_shared_fraction:
                continue
            prev = best.get(src)
            if prev is None or frac > prev[1]:
                best[src] = (dst, frac)
        for src, (dst, frac) in best.items():
            src_halo = earlier.by_id(src)
            graph.add_edge(TreeNode(snap, src), TreeNode(snap + 1, dst),
                           shared_mass=frac * src_halo.mass,
                           shared_fraction=frac)
    return MergerTree(graph=graph, catalogs=catalogs)
