"""Press-Schechter halo mass function — the theory check on HaloMaker.

The paper's halo catalogs ("containing each halo position, mass and
velocity") are credible only if their abundance matches analytic
expectations.  Press & Schechter (1974):

    dn/dlnM = sqrt(2/pi) (rho_mean / M) nu exp(-nu^2 / 2) |dln sigma/dln M|

with ``nu = delta_c / (D(a) sigma(M))``, ``delta_c = 1.686`` the spherical
collapse threshold, and ``sigma(M)`` the z=0 top-hat fluctuation amplitude
on the Lagrangian scale ``R(M) = (3M / 4 pi rho_mean)^(1/3)``.

Units: masses in Msun/h, lengths in Mpc/h, number densities in (Mpc/h)^-3,
matching :class:`repro.ramses.units.Units`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..grafic.power_spectrum import PowerSpectrum
from ..ramses.cosmology import Cosmology
from ..ramses.units import RHO_CRIT_MSUN_H2_MPC3

__all__ = ["DELTA_C", "lagrangian_radius", "sigma_of_mass",
           "press_schechter_dndlnm", "expected_halo_counts"]

#: Spherical-collapse linear threshold.
DELTA_C = 1.686


def mean_matter_density(cosmology: Cosmology) -> float:
    """rho_mean today, (Msun/h) / (Mpc/h)^3."""
    return cosmology.omega_m * RHO_CRIT_MSUN_H2_MPC3


def lagrangian_radius(mass_msun_h: np.ndarray,
                      cosmology: Cosmology) -> np.ndarray:
    """Top-hat radius enclosing ``mass`` at the mean density, Mpc/h."""
    mass = np.asarray(mass_msun_h, dtype=float)
    return (3.0 * mass / (4.0 * np.pi * mean_matter_density(cosmology))) ** (1 / 3)


def sigma_of_mass(mass_msun_h: np.ndarray, spectrum: PowerSpectrum
                  ) -> np.ndarray:
    """sigma(M) at z=0 for an array of masses."""
    mass = np.atleast_1d(np.asarray(mass_msun_h, dtype=float))
    radii = lagrangian_radius(mass, spectrum.cosmology)
    return np.array([spectrum.sigma_r(float(r)) for r in radii])


def press_schechter_dndlnm(mass_msun_h: np.ndarray, spectrum: PowerSpectrum,
                           aexp: float = 1.0) -> np.ndarray:
    """dn/dlnM in (Mpc/h)^-3 at expansion factor ``aexp``."""
    mass = np.atleast_1d(np.asarray(mass_msun_h, dtype=float))
    if np.any(mass <= 0):
        raise ValueError("masses must be positive")
    cosmo = spectrum.cosmology
    growth = float(cosmo.growth_factor(aexp))
    sigma = sigma_of_mass(mass, spectrum) * growth
    # dln sigma / dln M by central differences on log-spaced evaluations
    eps = 0.02
    sig_hi = sigma_of_mass(mass * (1 + eps), spectrum) * growth
    sig_lo = sigma_of_mass(mass * (1 - eps), spectrum) * growth
    dlnsig_dlnm = (np.log(sig_hi) - np.log(sig_lo)) / (2 * eps)
    nu = DELTA_C / sigma
    rho = mean_matter_density(cosmo)
    return (np.sqrt(2.0 / np.pi) * (rho / mass) * nu
            * np.exp(-0.5 * nu ** 2) * np.abs(dlnsig_dlnm))


def expected_halo_counts(mass_edges_msun_h: np.ndarray,
                         spectrum: PowerSpectrum, boxsize_mpc_h: float,
                         aexp: float = 1.0, n_sub: int = 8) -> np.ndarray:
    """Expected halo counts per mass bin in a ``boxsize`` box.

    Integrates dn/dlnM over each bin with log-spaced sub-sampling.
    """
    edges = np.asarray(mass_edges_msun_h, dtype=float)
    if np.any(np.diff(edges) <= 0):
        raise ValueError("mass edges must be increasing")
    volume = boxsize_mpc_h ** 3
    counts = np.empty(len(edges) - 1)
    for i, (lo, hi) in enumerate(zip(edges[:-1], edges[1:])):
        lnm = np.linspace(np.log(lo), np.log(hi), n_sub)
        dndlnm = press_schechter_dndlnm(np.exp(lnm), spectrum, aexp)
        counts[i] = np.trapezoid(dndlnm, lnm) * volume
    return counts
