#!/usr/bin/env python
"""Standalone science pipeline: no middleware, just the cosmology stack.

GRAFIC ICs -> RAMSES PM run -> HaloMaker -> TreeMaker -> GalaxyMaker, with
an ASCII rendering of the projected density field through cosmic time (the
paper's Figure 2).

Run:  python examples/nbody_galaxy_pipeline.py
"""

import numpy as np

from repro.galics import GalaxyMaker, build_merger_tree, find_halos
from repro.grafic import make_single_level_ic
from repro.ramses import LCDM_WMAP, RamsesRun, RunConfig, Units


def density_panel(projection, width=30):
    ramp = " .:-=+*#%@"
    step = max(projection.shape[0] // width, 1)
    img = projection[::step, ::step]
    logv = np.log10(np.maximum(img, 1e-3))
    lo, hi = logv.min(), max(logv.max(), logv.min() + 1e-9)
    idx = ((logv - lo) / (hi - lo) * (len(ramp) - 1)).astype(int)
    return ["".join(ramp[i] for i in row) for row in idx]


def main() -> None:
    n, box = 32, 100.0
    units = Units(box, omega_m=LCDM_WMAP.omega_m)
    print(f"Generating {n}^3 WMAP-cosmology initial conditions "
          f"({box:.0f} Mpc/h box; particle mass "
          f"{units.particle_mass_msun_h(n ** 3):.2e} Msun/h)...")
    ic = make_single_level_ic(n, box, LCDM_WMAP, a_start=0.05, seed=42)

    outputs = (0.25, 0.5, 1.0)
    print(f"Running the PM N-body solver to a=1 ({48} steps)...")
    result = RamsesRun(ic, RunConfig(a_end=1.0, n_steps=48,
                                     output_aexp=outputs)).run()

    print("\nProjected density field through cosmic time (Figure 2):")
    panels = [density_panel(s.projected_density(n=32))
              for s in result.snapshots]
    for row in range(len(panels[0])):
        print("   ".join(p[row] for p in panels))
    print("   ".join(f"a={s.aexp:<27.2f}" for s in result.snapshots))

    print("\nPost-processing (GALICS chain):")
    catalogs = [find_halos(s.particles, s.aexp) for s in result.snapshots]
    for s, cat in zip(result.snapshots, catalogs):
        biggest = (f"{cat[0].n_particles} particles "
                   f"({cat[0].mass * units.total_mass_msun_h:.2e} Msun/h)"
                   if len(cat) else "-")
        print(f"  a={s.aexp:.2f}: {len(cat):3d} halos, biggest: {biggest}")

    nonempty = [c for c in catalogs if len(c)]
    tree = build_merger_tree(nonempty)
    root = tree.roots()[0]
    branch = tree.main_branch(root)
    print(f"\nMerger tree: {tree.graph.number_of_nodes()} nodes, "
          f"{tree.graph.number_of_edges()} links; most massive halo's main "
          f"branch spans {len(branch)} snapshots, "
          f"{tree.n_mergers(root)} mergers in its history")

    galaxy_catalogs = GalaxyMaker(LCDM_WMAP).run(tree)
    final = galaxy_catalogs[-1]
    print(f"\nGalaxyMaker: {len(final)} galaxies at a=1, total stellar mass "
          f"{final.total_stellar_mass() * units.total_mass_msun_h:.2e} Msun/h")
    top = max(final, key=lambda g: g.stellar_mass)
    print(f"  brightest: M*={top.stellar_mass * units.total_mass_msun_h:.2e} "
          f"Msun/h, bulge fraction {top.bulge_fraction:.2f}, "
          f"SFR proxy {top.sfr:.2e}")


if __name__ == "__main__":
    main()
