#!/usr/bin/env python
"""Bring your own grid: a custom platform described in GoDIET XML.

Shows the two extension points a downstream user needs:

1. define a platform from :class:`ClusterSpec` entries (your clusters, your
   CPU models, your WAN latencies);
2. describe the DIET hierarchy in GoDIET-style XML and deploy it with
   :func:`deploy_from_spec`;

then run a small zoom campaign on it with a data-locality-aware scheduler.

Run:  python examples/custom_grid.py
"""

from repro.core import DataLocalityPolicy
from repro.core.godiet import (
    deploy_from_spec,
    paper_hierarchy_spec,
    parse_godiet_xml,
    render_godiet_xml,
)
from repro.experiments.report import hms
from repro.platform import ClusterSpec, build_grid5000
from repro.services import (
    RamsesServiceConfig,
    build_zoom2_profile,
    decode_zoom2,
    default_namelist_text,
    register_ramses_services,
)
from repro.sim import Engine


MY_CLUSTERS = [
    ClusterSpec("paris", "curie", "opteron-252", 64, n_seds=3,
                wan_latency=2.0e-3),
    ClusterSpec("geneva", "mont-blanc", "opteron-275", 48, n_seds=2,
                wan_latency=6.0e-3),
    ClusterSpec("lisbon", "tejo", "opteron-246", 32, n_seds=1,
                wan_latency=9.0e-3),
]


def main() -> None:
    engine = Engine()
    platform = build_grid5000(engine, cluster_specs=MY_CLUSTERS)

    # 1. describe the hierarchy as GoDIET XML (generated here; hand-written
    #    files work the same way through parse_godiet_xml)
    xml = render_godiet_xml(paper_hierarchy_spec(platform))
    print("GoDIET deployment description:")
    print("\n".join("  " + line for line in xml.splitlines()[:8]))
    print("  ...")

    spec = parse_godiet_xml(xml)
    deployment = deploy_from_spec(platform, spec,
                                  policy=DataLocalityPolicy())
    register_ramses_services(deployment, RamsesServiceConfig())
    deployment.launch_all()
    print(f"\ndeployed: {len(deployment.local_agents)} LAs, "
          f"{len(deployment.seds)} SeDs on "
          f"{len(platform.sites)} sites")

    # 2. drive it: a burst of zoom requests
    client = deployment.client
    namelist = default_namelist_text()
    profiles = []

    def campaign():
        client.initialize({"MA_name": "MA"})
        for i in range(12):
            profile = build_zoom2_profile(
                namelist, 128, 100,
                center=(0.1 * i % 1.0, 0.5, 0.5), n_levels=2)
            profiles.append(profile)
            client.call_async(profile)
        yield from client.wait_all()

    engine.run_process(campaign())

    results = [decode_zoom2(p) for p in profiles]
    assert all(r.succeeded for r in results)
    tracer = deployment.tracer
    print(f"\n12 zoom simulations completed in "
          f"{hms(tracer.makespan('ramsesZoom2'))} (simulated)")
    for sed, count in sorted(tracer.requests_per_sed("ramsesZoom2").items()):
        busy = tracer.busy_time_per_sed("ramsesZoom2")[sed]
        print(f"  {sed:28s} {count} requests, busy {hms(busy)}")


if __name__ == "__main__":
    main()
