#!/usr/bin/env python
"""The paper's §4 in runnable form: writing a DIET server and client.

Follows the paper's code listings step by step — profile description with
``(last_in, last_inout, last_out)``, service-table registration, the solve
function reading IN arguments and setting OUT ones, and the GridRPC-flavoured
client (grpc_initialize / grpc_call / grpc_finalize).

Run:  python examples/gridrpc_api_tour.py
"""

from repro.core import (
    BaseType,
    FileRef,
    ProfileDesc,
    deploy_paper_hierarchy,
    file_desc,
    scalar_desc,
)
from repro.core.gridrpc import (
    grpc_call,
    grpc_finalize,
    grpc_function_handle_default,
    grpc_initialize,
    grpc_profile_alloc,
)
from repro.platform import build_grid5000
from repro.sim import Engine


# -- §4.2.1: defining the service profile ---------------------------------------
# The paper: arg.profile = diet_profile_desc_alloc("ramsesZoom2", 6, 6, 8);
# here a reduced two-IN/two-OUT service for the tour.

def make_profile_desc() -> ProfileDesc:
    desc = ProfileDesc("demoSolve", last_in=1, last_inout=1, last_out=3)
    desc.set_arg(0, file_desc())                    # IN: a parameter file
    desc.set_arg(1, scalar_desc(BaseType.INT))      # IN: a resolution
    desc.set_arg(2, file_desc())                    # OUT: a result file
    desc.set_arg(3, scalar_desc(BaseType.INT))      # OUT: error control
    return desc


# -- §4.2.2/§4.2.3: the solve function -------------------------------------------
# int solve_demoSolve(diet_profile_t* pb) { /* download, compute, upload */ }

def solve_demo(profile, ctx):
    namelist = profile.parameter(0).get()           # diet_file_get
    resolution = profile.parameter(1).get()         # diet_scalar_get
    print(f"    [SeD {ctx.sed.name}] solving with {namelist.path!r} "
          f"at resolution {resolution}")
    yield from ctx.execute(float(resolution))       # the computation
    # "The results of the simulation are packed into a tarball file":
    profile.parameter(2).set(FileRef("results.tar.gz", nbytes=1 << 20))
    profile.parameter(3).set(0)                     # error control
    return 0


def main() -> None:
    engine = Engine()
    platform = build_grid5000(engine)
    deployment = deploy_paper_hierarchy(platform)

    # -- server side: register + diet_SeD() --------------------------------------
    desc = make_profile_desc()
    for sed in deployment.seds:
        sed.add_service(desc, solve_demo)           # diet_service_table_add
    deployment.launch_all()                         # diet_SeD()
    print("service table on one SeD:")
    print("  " + deployment.seds[0].table.print_table().replace("\n", "\n  "))

    # -- client side: §4.3.1's main() skeleton ------------------------------------
    client = deployment.client

    def client_main():
        grpc_initialize(client, {"MA_name": "MA"})  # diet_initialize()
        handle = grpc_function_handle_default(client, "demoSolve")
        profile = grpc_profile_alloc(desc)
        # IN parameters (diet_file_set / diet_scalar_set):
        profile.parameter(0).set(FileRef("namelist.nml", nbytes=2048))
        profile.parameter(1).set(64)
        # "OUT arguments should be declared even if their values is set to
        # NULL" (§4.3.1):
        profile.parameter(2).set(None)
        profile.parameter(3).set(None)

        status = yield from grpc_call(client, handle, profile)

        # after the call: read the error code before touching the file
        error = profile.parameter(3).get()
        if not error:
            tarball = profile.parameter(2).get()
            print(f"  call returned status={status} on {handle.server}; "
                  f"result file {tarball.path!r} ({tarball.nbytes} bytes)")
        grpc_finalize(client)                       # diet_finalize()
        # OUT data survive finalize (§4.3.1) - still accessible:
        assert profile.parameter(2).get() is not None

    print("\nclient session:")
    engine.run_process(client_main())
    trace = deployment.tracer.all_traces("demoSolve")[0]
    print(f"  finding time {trace.finding_time * 1e3:.1f} ms, "
          f"latency {trace.latency * 1e3:.1f} ms, "
          f"solve {trace.solve_duration:.1f} s (simulated)")


if __name__ == "__main__":
    main()
