#!/usr/bin/env python
"""The hydro half of RAMSES: a Sod shock tube against the exact solution.

§3 describes RAMSES as an N-body solver "coupled to a finite volume Euler
solver".  This example exercises that finite-volume solver standalone: a
Sod shock tube on a 256-cell grid, compared against the exact Riemann
solution, rendered as ASCII profiles.

Run:  python examples/shock_tube.py
"""

import numpy as np

from repro.ramses import HydroSolver, HydroState, sample_riemann, sod_states


def ascii_profile(x, values, exact, width=72, height=14, label=""):
    lo = min(values.min(), exact.min())
    hi = max(values.max(), exact.max())
    span = max(hi - lo, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for xs, vs, mark in ((x, exact, "."), (x, values, "*")):
        for xi, vi in zip(xs, vs):
            col = int(xi * (width - 1))
            row = height - 1 - int((vi - lo) / span * (height - 1))
            grid[row][col] = mark
    lines = [f"{hi:8.3f} |" + "".join(grid[0])]
    lines += ["         |" + "".join(row) for row in grid[1:-1]]
    lines += [f"{lo:8.3f} |" + "".join(grid[-1])]
    lines.append("          " + "-" * width)
    lines.append(f"          {label}:  * = HLLC solver   . = exact Riemann")
    return "\n".join(lines)


def main() -> None:
    n, t_end = 256, 0.1
    print(f"Sod shock tube, {n} cells, HLLC Godunov to t={t_end} ...")
    idx = np.arange(n)
    rho = np.where(idx < n // 2, 1.0, 0.125)[:, None, None] * np.ones((1, 4, 4))
    p = np.where(idx < n // 2, 1.0, 0.1)[:, None, None] * np.ones((1, 4, 4))
    state = HydroState.from_primitive(rho, np.zeros((n, 4, 4, 3)), p)
    steps = HydroSolver(cfl=0.4).run(state, t_end, dx=1.0 / n)

    x = (idx + 0.5) / n
    left, right = sod_states()
    exact = sample_riemann(left, right, (x - 0.5) / t_end)
    # keep the central region (periodic-wrap waves contaminate the edges)
    mask = (x > 0.25) & (x < 0.78)

    print(f"\n{steps} CFL steps; density profile:")
    print(ascii_profile(x[mask], state.rho[:, 0, 0][mask], exact[mask, 0],
                        label="density"))
    print("\nvelocity profile:")
    print(ascii_profile(x[mask], state.velocity()[:, 0, 0, 0][mask],
                        exact[mask, 1], label="velocity"))

    err = np.abs(state.rho[:, 0, 0][mask] - exact[mask, 0]).mean()
    print(f"\nmean density error vs exact solution: {err:.4f} "
          f"(first-order Godunov at {n} cells)")
    print("wave structure: rarefaction fan | contact | shock  — all present.")


if __name__ == "__main__":
    main()
