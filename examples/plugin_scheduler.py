#!/usr/bin/env python
"""Plug-in scheduler ablation: carrying out the paper's future work.

§5.2 observes that "the equal distribution of the requests does not take
into account the machines processing power [...] A better makespan could be
attained by writing a plug-in scheduler."  This example runs the same
campaign under four policies and reports the makespans.

Run:  python examples/plugin_scheduler.py
"""

from repro.experiments import ablation_scheduler
from repro.experiments.report import hms


def main() -> None:
    print("Running the 100-zoom campaign under four scheduler policies...")
    result = ablation_scheduler.run()

    print()
    print(ablation_scheduler.render(result))

    print()
    print("per-cluster request counts under MCT (speed-proportional):")
    campaign = result.campaigns["mct"]
    by_cluster = {}
    for sed, n in campaign.requests_per_sed().items():
        cluster = campaign.deployment.cluster_of_sed(sed)
        by_cluster.setdefault(cluster, []).append(n)
    for cluster, counts in sorted(by_cluster.items()):
        print(f"  {cluster:20s} {counts}")

    default_span = result.part2_makespans()["default"]
    mct_span = result.part2_makespans()["mct"]
    print(f"\nconclusion: MCT plug-in finishes the parallel section in "
          f"{hms(mct_span)} vs {hms(default_span)} for the default policy "
          f"({result.improvement_over_default('mct') * 100:.1f}% better) — "
          f"the paper's prediction holds.")


if __name__ == "__main__":
    main()
