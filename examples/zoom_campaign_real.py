#!/usr/bin/env python
"""The full HORIZON zoom workflow with *real* physics, end to end.

Same two-part campaign as the quickstart, but in REAL execution mode: the
SeDs genuinely run the Python GRAFIC -> RAMSES -> GALICS pipeline at toy
scale (32^3 particles).  Part 1 produces a real FoF halo catalog on disk;
the client decodes it and launches zoom re-simulations of the most massive
halos; results come back as real .tar.gz archives containing Fortran-record
snapshots and halo catalogs.

Run:  python examples/zoom_campaign_real.py
"""

import os
import tarfile
import tempfile

from repro.galics import read_halo_catalog
from repro.services import (
    CampaignConfig,
    ExecutionMode,
    run_campaign,
)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="zoom-campaign-")
    config = CampaignConfig(
        n_sub_simulations=4,
        resolution=32,
        boxsize_mpc_h=50,
        n_zoom_levels=1,
        mode=ExecutionMode.REAL,
        workdir=workdir,
        real_n_steps=12,
        real_a_end=1.0,
        seed=13)

    print(f"Running a REAL-mode campaign (32^3 toy scale) in {workdir} ...")
    result = run_campaign(config)

    catalog_path = os.path.join(workdir, "zoom1-0001", "halo_catalog.dat")
    catalog = read_halo_catalog(catalog_path)
    print(f"\npart 1 found {len(catalog)} dark-matter halos; the top 3:")
    for halo in list(catalog)[:3]:
        print(f"  halo {halo.halo_id}: {halo.n_particles:4d} particles, "
              f"mass {halo.mass:.4f} (box units), "
              f"centre ({halo.center[0]:.3f}, {halo.center[1]:.3f}, "
              f"{halo.center[2]:.3f})")

    print(f"\npart 2 re-simulated {len(result.part2_traces)} targets:")
    for trace, center in zip(result.part2_traces, result.zoom_centers):
        print(f"  request {trace.request_id}: centre "
              f"({center[0]:.3f}, {center[1]:.3f}, {center[2]:.3f}) "
              f"on {trace.sed_name}, status {trace.status}")

    job_dirs = sorted(d for d in os.listdir(workdir) if d.startswith("zoom2-"))
    tar_path = os.path.join(workdir, job_dirs[0], "results.tar.gz")
    with tarfile.open(tar_path) as tar:
        names = tar.getnames()
    print(f"\nfirst result tarball ({os.path.getsize(tar_path)} bytes) contains:")
    for name in names[:6]:
        print(f"  {name}")

    print(f"\nall outputs kept under {workdir}")


if __name__ == "__main__":
    main()
