#!/usr/bin/env python
"""Quickstart: the paper's experiment in thirty seconds.

Builds the Grid'5000 model, deploys the DIET hierarchy (1 MA, 6 LAs,
11 SeDs), registers the ramsesZoom1/ramsesZoom2 services, and runs the §5
campaign — one 128^3 simulation, then 100 simultaneous zoom sub-simulations
— in MODELED execution mode (calibrated timings, no physics computed).

Run:  python examples/quickstart.py
"""

import statistics

from repro.experiments.report import ascii_gantt, hms
from repro.services import CampaignConfig, run_campaign


def main() -> None:
    print("Running the paper's campaign (MODELED mode, 100 zooms, 11 SeDs)...")
    result = run_campaign(CampaignConfig())

    print()
    print("=== §5.2 headline numbers (measured vs paper) ===")
    rows = [
        ("part 1 (128^3 full box)", result.part1_duration, "1h 15min 11s"),
        ("part 2 (mean of 100 zooms)", result.part2_mean_duration, "1h 24min 01s"),
        ("total campaign", result.total_elapsed, "16h 18min 43s"),
    ]
    for label, seconds, paper in rows:
        print(f"  {label:30s} {hms(seconds):>14s}   (paper: {paper})")
    print(f"  {'sequential estimate':30s} "
          f"{result.sequential_estimate / 3600:11.1f} h   (paper: >141h)")
    print(f"  {'speedup':30s} {result.speedup:12.2f} x")

    print()
    print("=== scheduling (Figures 4-5) ===")
    counts = sorted(result.requests_per_sed().values())
    print(f"  requests per SeD: {counts}  (paper: 9 x 10 SeDs, 10 x 1)")
    finding = statistics.mean(result.finding_times()) * 1e3
    print(f"  mean finding time: {finding:.1f} ms  (paper: 49.8 ms)")
    lat = result.latencies()
    print(f"  latency: first wave {min(lat) * 1e3:.0f} ms -> "
          f"last wave {max(lat) / 3600:.1f} h (queueing)")

    print()
    print("=== Gantt chart of the 100 sub-simulations (Figure 4 left) ===")
    print(ascii_gantt(result.gantt()))


if __name__ == "__main__":
    main()
