"""E13 end to end: federated load sweep acceptance properties.

The sweep must rerun bit-identically (serial vs ``--jobs``, observability
on vs off, both routing modes, SeD churn active), report saturation, and —
the park-watchdog regression guard — keep the push-mode event heap bounded
at the quick-mode's largest load point.
"""

import dataclasses

import pytest

from repro.experiments import load_federation
from repro.experiments.runner import canonical_pickle

LOADS = (3.0, 8.0)
KW = dict(loads=LOADS, duration=15.0, n_clients=500, churn=1, seed=17)


def stripped(result):
    """The result with span stores dropped (observe on/off comparable)."""
    return dataclasses.replace(
        result,
        runs=[dataclasses.replace(p, span_store=None) for p in result.runs])


class TestFederatedLoadSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return load_federation.run(**KW)

    def test_covers_both_routings_under_churn(self, result):
        assert set(p.routing for p in result.runs) == {"pull", "push"}
        for routing in result.routings:
            points = result.points(routing)
            assert len(points) == len(LOADS)
            assert all(p.n_arrivals > 0 and p.completed > 0 for p in points)
            assert result.saturation(routing) > 0

    def test_open_loop_saturates(self, result):
        """Offered load beyond capacity must not inflate throughput: the
        6-SeD platform (~1.2 s mean solve) caps near 5 requests/s, so the
        8 req/s point achieves well under what was offered."""
        for routing in result.routings:
            top = result.points(routing)[-1]
            assert top.offered == LOADS[-1]
            assert top.throughput < 0.9 * top.offered
            assert top.makespan > result.duration   # backlog drains late

    def test_rerun_is_bit_identical(self, result):
        again = load_federation.run(**KW)
        assert canonical_pickle(again) == canonical_pickle(result)

    def test_parallel_is_byte_identical_to_serial(self, result):
        parallel = load_federation.run(**KW, jobs=2)
        assert canonical_pickle(parallel) == canonical_pickle(result)

    def test_observability_does_not_perturb_results(self, result):
        observed = load_federation.run(**KW, observe=True)
        assert all(p.span_store for p in observed.runs)
        assert canonical_pickle(stripped(observed)) == \
            canonical_pickle(result)

    def test_push_heap_stays_bounded_at_peak_load(self, result):
        """The park-watchdog fix: admitted submits must not each leave a
        dead child_timeout timer in the heap.  At the largest quick-mode
        point (~120 arrivals) the leak would push the high-water mark past
        the arrival count; the single-sweeper design keeps it near the
        platform's standing process count."""
        top = [p for p in result.points("push") if p.offered == LOADS[-1]][0]
        assert top.peak_heap < 128
        assert top.peak_heap < top.n_arrivals

    def test_render_reports_saturation_and_redirects(self, result):
        text = load_federation.render(result)
        assert "saturation throughput" in text
        assert "inter-MA redirects" in text
        for routing in result.routings:
            assert f"routing={routing}" in text

    def test_memo_off_render_mentions_no_memo(self, result):
        """The memo-off report must look exactly like the pre-memo one —
        no columns, no summary lines, no mention of memoization."""
        text = load_federation.render(result)
        assert "memo" not in text
        assert "hit" not in text
        assert "zipf s" not in text


#: Quick memo sweep: a near-uniform and a hard-skewed client population.
ZIPF = (0.3, 2.5)
MEMO_KW = dict(KW, zipf=ZIPF, memo="on")


class TestMemoizedLoadSweep:
    @pytest.fixture(scope="class")
    def memo_result(self):
        return load_federation.run(**MEMO_KW)

    @pytest.fixture(scope="class")
    def plain_result(self):
        return load_federation.run(**dict(KW, zipf=ZIPF))

    def test_hit_rate_rises_with_zipf_skew(self, memo_result):
        for routing in memo_result.routings:
            points = memo_result.points(routing)
            by_skew = {}
            for p in points:
                hits, misses = by_skew.get(p.zipf_s, (0, 0))
                by_skew[p.zipf_s] = (hits + p.memo_hits,
                                     misses + p.memo_misses)
            rates = {z: h / (h + m) for z, (h, m) in by_skew.items()}
            assert rates[ZIPF[-1]] > rates[ZIPF[0]], routing
            # hard skew: most requests repeat, so well over half hit
            assert rates[ZIPF[-1]] > 0.5, routing

    def test_memo_cuts_finding_time_at_high_skew(self, memo_result,
                                                 plain_result):
        """Pull-mode P50 finding time must drop strictly: a hit skips the
        whole estimate fan-out and costs one MA round trip."""
        for offered in LOADS:
            memo_p = [p for p in memo_result.points("pull")
                      if p.zipf_s == ZIPF[-1] and p.offered == offered][0]
            plain_p = [p for p in plain_result.points("pull")
                       if p.zipf_s == ZIPF[-1] and p.offered == offered][0]
            assert memo_p.find_p50 < plain_p.find_p50

    def test_churn_invalidates_some_entries(self, memo_result):
        """SeD churn is active: across the sweep at least one crash must
        have dropped memo entries through the invalidation cascade."""
        total = sum(p.memo_invalidations for p in memo_result.runs)
        assert total > 0

    def test_memo_rerun_is_bit_identical(self, memo_result):
        again = load_federation.run(**MEMO_KW)
        assert canonical_pickle(again) == canonical_pickle(memo_result)

    def test_memo_parallel_is_byte_identical_to_serial(self, memo_result):
        parallel = load_federation.run(**MEMO_KW, jobs=2)
        assert canonical_pickle(parallel) == canonical_pickle(memo_result)

    def test_memo_render_reports_hit_rates(self, memo_result):
        text = load_federation.render(memo_result)
        assert "memoization: on" in text
        assert "hit%" in text
        assert "zipf s" in text
        for routing in memo_result.routings:
            for z in ZIPF:
                assert f"{routing} memo at zipf s={z:g}:" in text
