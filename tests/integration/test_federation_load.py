"""E13 end to end: federated load sweep acceptance properties.

The sweep must rerun bit-identically (serial vs ``--jobs``, observability
on vs off, both routing modes, SeD churn active), report saturation, and —
the park-watchdog regression guard — keep the push-mode event heap bounded
at the quick-mode's largest load point.
"""

import dataclasses

import pytest

from repro.experiments import load_federation
from repro.experiments.runner import canonical_pickle

LOADS = (3.0, 8.0)
KW = dict(loads=LOADS, duration=15.0, n_clients=500, churn=1, seed=17)


def stripped(result):
    """The result with span stores dropped (observe on/off comparable)."""
    return dataclasses.replace(
        result,
        runs=[dataclasses.replace(p, span_store=None) for p in result.runs])


class TestFederatedLoadSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return load_federation.run(**KW)

    def test_covers_both_routings_under_churn(self, result):
        assert set(p.routing for p in result.runs) == {"pull", "push"}
        for routing in result.routings:
            points = result.points(routing)
            assert len(points) == len(LOADS)
            assert all(p.n_arrivals > 0 and p.completed > 0 for p in points)
            assert result.saturation(routing) > 0

    def test_open_loop_saturates(self, result):
        """Offered load beyond capacity must not inflate throughput: the
        6-SeD platform (~1.2 s mean solve) caps near 5 requests/s, so the
        8 req/s point achieves well under what was offered."""
        for routing in result.routings:
            top = result.points(routing)[-1]
            assert top.offered == LOADS[-1]
            assert top.throughput < 0.9 * top.offered
            assert top.makespan > result.duration   # backlog drains late

    def test_rerun_is_bit_identical(self, result):
        again = load_federation.run(**KW)
        assert canonical_pickle(again) == canonical_pickle(result)

    def test_parallel_is_byte_identical_to_serial(self, result):
        parallel = load_federation.run(**KW, jobs=2)
        assert canonical_pickle(parallel) == canonical_pickle(result)

    def test_observability_does_not_perturb_results(self, result):
        observed = load_federation.run(**KW, observe=True)
        assert all(p.span_store for p in observed.runs)
        assert canonical_pickle(stripped(observed)) == \
            canonical_pickle(result)

    def test_push_heap_stays_bounded_at_peak_load(self, result):
        """The park-watchdog fix: admitted submits must not each leave a
        dead child_timeout timer in the heap.  At the largest quick-mode
        point (~120 arrivals) the leak would push the high-water mark past
        the arrival count; the single-sweeper design keeps it near the
        platform's standing process count."""
        top = [p for p in result.points("push") if p.offered == LOADS[-1]][0]
        assert top.peak_heap < 128
        assert top.peak_heap < top.n_arrivals

    def test_render_reports_saturation_and_redirects(self, result):
        text = load_federation.render(result)
        assert "saturation throughput" in text
        assert "inter-MA redirects" in text
        for routing in result.routings:
            assert f"routing={routing}" in text
