"""Push-routing campaigns end to end: completion, determinism, figures.

The pull path's bit-identity is pinned by the existing paper-number and
determinism suites; this module pins the push path to the same standards —
serial == parallel, observe-on == observe-off, rerun == rerun — and checks
the campaign completes under both the default and the MCT plug-in policy.
"""

from repro.experiments.runner import Task, canonical_pickle, run_tasks
from repro.services.workflow import (
    CampaignConfig,
    run_campaign,
    run_campaign_detached,
)

N_SUB = 4


def push_cfg(**overrides):
    kw = dict(n_sub_simulations=N_SUB, seed=11, routing="push")
    kw.update(overrides)
    return CampaignConfig(**kw)


def figure_series(result):
    """Every series the §5 figures read, as one comparable tuple."""
    return (result.finding_times(), result.latencies(),
            result.requests_per_sed(), result.busy_time_per_sed(),
            result.gantt(), result.overhead_per_request)


class TestPushCampaign:
    def test_pull_stays_the_default(self):
        assert CampaignConfig().routing == "pull"

    def test_push_campaign_completes(self):
        result = run_campaign(push_cfg())
        assert len(result.statuses) == N_SUB  # one status per zoom request
        assert all(status == 0 for status in result.statuses)
        # every request was actually routed through the materialized table
        assert sum(result.requests_per_sed().values()) == N_SUB
        assert result.deployment.routing == "push"

    def test_push_campaign_with_mct_policy(self):
        result = run_campaign(push_cfg(policy="mct", with_predictor=True))
        assert all(status == 0 for status in result.statuses)
        assert sum(result.requests_per_sed().values()) == N_SUB

    def test_push_rerun_is_bit_identical(self):
        first = run_campaign_detached(push_cfg())
        again = run_campaign_detached(push_cfg())
        assert canonical_pickle(first) == canonical_pickle(again)

    def test_push_serial_matches_parallel(self):
        configs = [push_cfg(seed=11), push_cfg(seed=12)]
        serial = [run_campaign_detached(cfg) for cfg in configs]
        parallel = run_tasks(
            [Task(key=f"seed={cfg.seed}", func=run_campaign_detached,
                  args=(cfg,), seed=cfg.seed) for cfg in configs], jobs=2)
        for s, p in zip(serial, parallel):
            assert canonical_pickle(s) == canonical_pickle(p)

    def test_push_observe_off_matches_on(self):
        on = run_campaign(push_cfg(observe=True))
        off = run_campaign(push_cfg(observe=False))
        assert on.span_store() is not None
        assert off.span_store() is None
        # the span-store derivation and the trace-field fallback agree on
        # every figure series: observing never changes the simulation
        assert figure_series(on) == figure_series(off)

    def test_push_and_pull_solve_the_same_workload(self):
        push = run_campaign(push_cfg())
        pull = run_campaign(push_cfg(routing="pull"))
        assert push.statuses == pull.statuses
        assert push.zoom_centers == pull.zoom_centers
        assert (sum(push.requests_per_sed().values())
                == sum(pull.requests_per_sed().values()))
