"""Integration: several clients sharing one DIET deployment.

§2.1: "Different kinds of clients should be able to connect to DIET" — the
MA serves them all; scheduling state is shared, so concurrent sessions
compete for the same SeDs without interference or double-booking.
"""

import pytest

from repro.core import (
    BaseType,
    DietClient,
    ProfileDesc,
    deploy_paper_hierarchy,
    scalar_desc,
)
from repro.platform import build_grid5000
from repro.sim import Engine


def toy_desc():
    desc = ProfileDesc("toy", 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT))
    return desc


def solve_toy(profile, ctx):
    yield from ctx.execute(2.0 * ctx.host.speed)   # 2 s everywhere
    profile.parameter(1).set(profile.parameter(0).get() + 100)
    return 0


@pytest.fixture
def stack():
    engine = Engine()
    platform = build_grid5000(engine)
    deployment = deploy_paper_hierarchy(platform, with_client=False)
    desc = toy_desc()
    for sed in deployment.seds:
        sed.add_service(desc, solve_toy)
    deployment.launch_all()
    clients = [DietClient(deployment.fabric, platform.client_host,
                          name=f"client-{i}", tracer=deployment.tracer)
               for i in range(3)]
    return engine, deployment, clients, desc


class TestMultiClient:
    def test_concurrent_sessions_all_served(self, stack):
        engine, deployment, clients, desc = stack
        results = {}

        def session(client, tag, n_requests):
            client.initialize({"MA_name": "MA"})
            profiles = []
            for i in range(n_requests):
                p = desc.instantiate()
                p.parameter(0).set(i)
                p.parameter(1).set(None)
                profiles.append(p)
                client.call_async(p)
            yield from client.wait_all()
            results[tag] = [p.parameter(1).get() for p in profiles]

        for i, client in enumerate(clients):
            engine.process(session(client, i, 8))
        engine.run()
        assert results == {i: [100 + j for j in range(8)] for i in range(3)}

    def test_load_spread_across_clients(self, stack):
        """24 simultaneous requests from 3 clients spread like one burst."""
        engine, deployment, clients, desc = stack

        def session(client, n_requests):
            client.initialize({"MA_name": "MA"})
            for i in range(n_requests):
                p = desc.instantiate()
                p.parameter(0).set(i)
                p.parameter(1).set(None)
                client.call_async(p)
            yield from client.wait_all()

        for client in clients:
            engine.process(session(client, 8))
        engine.run()
        counts = deployment.tracer.requests_per_sed("toy")
        assert sum(counts.values()) == 24
        # 24 requests over 11 SeDs: max 3 per SeD under the default policy
        assert max(counts.values()) <= 3

    def test_no_double_booking(self, stack):
        """Per-SeD solve spans never overlap even with competing clients."""
        engine, deployment, clients, desc = stack

        def session(client, n_requests):
            client.initialize({"MA_name": "MA"})
            for i in range(n_requests):
                p = desc.instantiate()
                p.parameter(0).set(i)
                p.parameter(1).set(None)
                client.call_async(p)
            yield from client.wait_all()

        for client in clients:
            engine.process(session(client, 15))
        engine.run()
        for sed, spans in deployment.tracer.gantt("toy").items():
            for (s1, e1, _), (s2, e2, _) in zip(spans[:-1], spans[1:]):
                assert s2 >= e1 - 1e-9, f"double booking on {sed}"
