"""E12 end to end: the data-locality ablation's acceptance properties.

Persistent campaigns must move strictly fewer WAN bytes than volatile ones
while producing bit-identical figure-4/figure-5 series, and the parallel
runner must reproduce the serial results byte for byte.
"""

import pytest

from repro.experiments import data_locality
from repro.services import CampaignConfig, FailurePlan, run_campaign

N_SUB = 12


def fingerprint(result):
    """Everything e12 reports about one campaign arm."""
    return (
        result.total_elapsed,
        tuple(result.statuses),
        result.net_bytes_total,
        result.net_bytes_wan,
        tuple(sorted(result.data_report.items())) if result.data_report
        else None,
        tuple(sorted(result.requests_per_sed().items())),
        tuple(result.finding_times()),
        tuple(sorted(result.busy_time_per_sed().items())),
    )


class TestDataLocalityAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return data_locality.run(policies=("volatile", "persistent"),
                                 n_sub_simulations=N_SUB)

    def test_persistent_moves_strictly_fewer_wan_bytes(self, result):
        volatile = result.campaigns["volatile"]
        persistent = result.campaigns["persistent"]
        assert persistent.net_bytes_wan < volatile.net_bytes_wan
        assert persistent.net_bytes_total < volatile.net_bytes_total
        assert result.wan_saved("persistent") > 0

    def test_figures_are_bit_identical_across_arms(self, result):
        assert result.figures_identical
        assert result.figure_series("persistent") == \
            result.figure_series("volatile")

    def test_persistent_arm_reports_data_savings(self, result):
        report = result.campaigns["persistent"].data_report
        assert report is not None
        assert report["bytes_saved"] > 0

    def test_parallel_run_is_byte_identical_to_serial(self, result):
        again = data_locality.run(policies=("volatile", "persistent"),
                                  n_sub_simulations=N_SUB, jobs=2)
        for policy in ("volatile", "persistent"):
            assert fingerprint(again.campaigns[policy]) == \
                fingerprint(result.campaigns[policy])

    def test_render_mentions_every_arm(self, result):
        text = data_locality.render(result)
        assert "volatile" in text and "persistent" in text
        assert "WAN" in text


class TestDegradedCampaignWithCatalog:
    def test_checkpoint_resume_completes_under_persistence(self):
        """A degraded campaign with the data grid on still finishes every
        zoom; checkpoints are registered as persistent handles."""
        result = run_campaign(CampaignConfig(
            n_sub_simulations=30, seed=2007, data_policy="persistent",
            failures=FailurePlan(n_crashes=1)))
        assert all(s == 0 for s in result.statuses)
        assert len(result.completed_part2_traces) == 30
        assert result.data_report is not None
        assert result.failure_report.checkpoints_written > 0
