"""E14 end to end: survey-campaign acceptance properties.

The campaign must run the cosmology-grid DAGs through both routing modes,
show the persistent data policy moving fewer WAN bytes than volatile,
memo-hit the duplicated-cosmology leg, and rerun bit-identically (serial
vs ``--jobs``, observe on vs off).  Two real-federation scenarios ride
along: a mid-DAG SeD crash recovered by dependency-aware resubmission,
and a memo hit short-circuiting a whole repeated subtree.
"""

import dataclasses

import pytest

from repro.core.federation import FederatedClient, FederationConfig, build_federation
from repro.data import campaign_data_config
from repro.experiments import survey_campaign
from repro.experiments.runner import canonical_pickle
from repro.services.lensing_service import LensingServiceConfig, register_survey_services
from repro.sim.engine import Engine
from repro.survey.dag import DagExecutor
from repro.survey.grid import ParameterGrid
from repro.survey.pipeline import build_survey_dag

KW = dict(routings=("pull", "push"), policies=("default",),
          data_policies=("volatile", "persistent"), shape=(2, 2),
          resolution=32, n_planes=4, zooms=1, seed=17)


def stripped(result):
    """The result with span stores dropped (observe on/off comparable)."""
    return dataclasses.replace(
        result,
        runs=[dataclasses.replace(a, span_store=None) for a in result.runs])


class TestSurveyCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        return survey_campaign.run(**KW)

    def test_every_arm_completes_both_dags_and_the_zooms(self, result):
        assert len(result.runs) == 4
        for arm in result.runs:
            assert arm.completed == arm.nodes
            assert arm.zooms_done == result.zooms
            assert arm.makespan > 0

    def test_duplicated_cosmology_leg_memo_hits(self, result):
        """Both clients submit the identical grid: under the persisting
        policy the second client's whole DAG answers from the memo."""
        for routing in result.routings:
            persistent = result.arm(routing, "default", "persistent")
            assert persistent.memo_hits * 2 == persistent.nodes
            assert persistent.hit_rate == 0.5
            volatile = result.arm(routing, "default", "volatile")
            assert volatile.memo_hits == 0

    def test_persistent_policy_moves_fewer_wan_bytes(self, result):
        for routing in result.routings:
            volatile = result.arm(routing, "default", "volatile")
            persistent = result.arm(routing, "default", "persistent")
            assert persistent.bytes_wan < volatile.bytes_wan
            assert persistent.bytes_total < volatile.bytes_total

    def test_stage_durations_cover_the_pipeline(self, result):
        for arm in result.runs:
            stages = {name for name, _n, _p50, _p99 in arm.stage_stats}
            assert stages == {"ic", "run", "lensing", "reduce"}

    def test_rerun_is_bit_identical(self, result):
        again = survey_campaign.run(**KW)
        assert canonical_pickle(again) == canonical_pickle(result)

    def test_parallel_is_byte_identical_to_serial(self, result):
        parallel = survey_campaign.run(**KW, jobs=2)
        assert canonical_pickle(parallel) == canonical_pickle(result)

    def test_observability_does_not_perturb_results(self, result):
        observed = survey_campaign.run(**KW, observe=True)
        assert all(a.span_store for a in observed.runs)
        assert canonical_pickle(stripped(observed)) == \
            canonical_pickle(result)

    def test_render_reports_memo_and_wan_lines(self, result):
        text = survey_campaign.render(result)
        for routing in result.routings:
            assert f"memo {routing}/default/persistent:" in text
            assert f"wan {routing}/default:" in text
        # The CI smoke grep: nonzero memo hits on the duplicated leg.
        assert "memo pull/default/persistent: 15 hits" in text

    def test_products_materialize_as_a_batch_tree(self, result, tmp_path):
        manifests = survey_campaign.write_batches(result, str(tmp_path))
        assert len(manifests) == len(result.runs)
        import json

        with open(manifests[0]) as fh:
            manifest = json.load(fh)
        assert len(manifest) == result.runs[0].nodes // 2


def _one_point_executor(data_policy, memo, n_points=1, prefix="",
                        engine=None, federation=None, home=0):
    """A small real federation plus one client's survey DAG executor."""
    if engine is None:
        engine = Engine()
        federation = build_federation(
            engine,
            FederationConfig(n_grids=1, clusters_per_grid=1, memo=memo,
                             data=campaign_data_config(data_policy)))
        register_survey_services(federation.seds, LensingServiceConfig())
        federation.launch_all()
    grid = ParameterGrid.cartesian({"omega_m": tuple(
        0.24 + 0.02 * i for i in range(n_points))})
    client = FederatedClient(federation.fabric,
                             federation.client_host_for(0),
                             name=f"cli{prefix or home}",
                             ma_names=federation.ma_names, home=home,
                             tracer=federation.tracer, memo_enabled=memo)
    dag = build_survey_dag(grid, resolution=16, n_planes=2,
                           data_policy=data_policy, realization_seed=3,
                           name=f"dag{prefix}")
    return engine, federation, DagExecutor(client, dag)


class TestDagOnRealFederation:
    def test_mid_dag_sed_crash_recovered_by_dependency_refresh(self):
        """Crash the SeD owning the IC handle after the IC completes: the
        consuming run node fails its first solve (the persistent input
        died with its owner), the executor re-runs the producer and the
        chain still completes."""
        engine, federation, executor = _one_point_executor(
            "persistent", memo=False)
        state = {}

        def saboteur():
            while "p000:ic" not in executor.results:
                yield engine.timeout(0.05)
            owner = executor.results["p000:ic"].sed_name
            sed = next(s for s in federation.seds if s.name == owner)
            sed.crash()
            state["crashed"] = owner

        def drive():
            engine.process(saboteur(), name="saboteur")
            state["results"] = yield from executor.run()

        engine.run_until_complete(drive())
        results = state["results"]
        assert all(r.status == 0 for r in results.values())
        assert set(results) == set(executor.dag.nodes)
        # completed counts accepted executions, refreshes included.
        assert executor.stats.completed > len(executor.dag)
        # The recovery went through the dependency-aware path (and/or the
        # dead-letter path when the dead SeD was still advertised).
        assert executor.stats.dep_refreshes >= 1
        # The refreshed IC lives on a survivor, not the crashed SeD.
        assert results["p000:ic"].sed_name != state["crashed"]

    def test_memo_hit_short_circuits_the_repeated_subtree(self):
        """A second client replaying the same grid must answer every node
        from the federation-wide memo: no new solves, original owners."""
        engine, federation, first = _one_point_executor(
            "persistent", memo=True, n_points=2, prefix="a")
        state = {}

        def drive_first():
            state["first"] = yield from first.run()

        engine.run_until_complete(drive_first())
        n_nodes = len(first.dag)
        assert federation.memo.stats.misses == n_nodes
        assert federation.memo.stats.hits == 0

        _, _, second = _one_point_executor(
            "persistent", memo=True, n_points=2, prefix="b",
            engine=engine, federation=federation)

        def drive_second():
            state["second"] = yield from second.run()

        engine.run_until_complete(drive_second())
        assert federation.memo.stats.hits == n_nodes
        assert federation.memo.stats.misses == n_nodes  # no new solves
        # Hits hand back the original handles: same owners, same data ids.
        for node_id, original in state["first"].items():
            replayed = state["second"][node_id]
            assert replayed.sed_name == original.sed_name
            assert replayed.outputs.keys() == original.outputs.keys()
