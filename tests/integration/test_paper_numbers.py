"""E1-E7 acceptance: the MODELED campaign reproduces §5 of the paper.

These are the headline reproduction checks.  Tolerances are generous where
the paper's number is itself noisy (total makespan depends on which SeD
drew the unlucky jobs) and tight where our calibration pins the value
(part-1 duration, finding time, request distribution).
"""

import math
import statistics

import numpy as np
import pytest

from repro.experiments import ablation_scheduler
from repro.services import (
    CampaignConfig,
    PAPER_PART1_SECONDS,
    PAPER_PART2_MEAN_SECONDS,
    PAPER_TOTAL_SECONDS,
    run_campaign,
)


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(CampaignConfig())


class TestE1Timings:
    def test_part1_duration(self, campaign):
        """Paper: 1h 15min 11s."""
        assert campaign.part1_duration == pytest.approx(
            PAPER_PART1_SECONDS, rel=0.02)

    def test_part2_mean_duration(self, campaign):
        """Paper: 1h 24min 1s average over the 100 sub-simulations."""
        assert campaign.part2_mean_duration == pytest.approx(
            PAPER_PART2_MEAN_SECONDS, rel=0.02)

    def test_total_elapsed(self, campaign):
        """Paper: 16h 18min 43s (within 5%: depends on noise placement)."""
        assert campaign.total_elapsed == pytest.approx(
            PAPER_TOTAL_SECONDS, rel=0.05)

    def test_sequential_estimate_exceeds_141h(self, campaign):
        """Paper: 'more than 141h to run the 101 simulation sequentially'."""
        assert campaign.sequential_estimate > 141 * 3600
        assert campaign.sequential_estimate < 150 * 3600

    def test_parallel_speedup(self, campaign):
        """11 SeDs, heterogeneous: speedup should be ~8-9x."""
        assert 7.5 < campaign.speedup < 10.0

    def test_all_simulations_succeeded(self, campaign):
        assert len(campaign.part2_traces) == 100
        assert all(t.status == 0 for t in campaign.part2_traces)


class TestE2Distribution:
    def test_nine_nine_ten_split(self, campaign):
        """Paper: 'each SED received 9 requests (one of them received 10)'."""
        counts = sorted(campaign.requests_per_sed().values())
        assert counts == [9] * 10 + [10]

    def test_gantt_no_overlap_per_sed(self, campaign):
        for sed, spans in campaign.gantt().items():
            for (s1, e1, _), (s2, e2, _) in zip(spans[:-1], spans[1:]):
                assert s2 >= e1 - 1e-9, f"overlapping jobs on {sed}"


class TestE3BusyTime:
    def test_toulouse_slowest_nancy_fastest_shape(self, campaign):
        """Paper: 'about 15h for Toulouse and 10h30 for Nancy'."""
        by_cluster = {}
        for sed, busy in campaign.busy_time_per_sed().items():
            cluster = campaign.deployment.cluster_of_sed(sed)
            by_cluster.setdefault(cluster, []).append(busy / 3600.0)
        nancy = min(by_cluster["nancy-grillon"])
        toulouse = max(by_cluster["toulouse-violette"])
        assert nancy == pytest.approx(10.5, rel=0.08)
        assert toulouse == pytest.approx(15.0, rel=0.08)
        # Nancy's SeDs are among the least busy, Toulouse's among the most
        assert min(by_cluster, key=lambda c: min(by_cluster[c])) == "nancy-grillon"

    def test_schedule_not_optimal(self, campaign):
        """The spread demonstrates the paper's point: default scheduling
        ignores machine speed."""
        busy = list(campaign.busy_time_per_sed().values())
        assert max(busy) / min(busy) > 1.3


class TestE4FindingTime:
    def test_average_matches_paper(self, campaign):
        """Paper: 49.8 ms average."""
        ft = campaign.finding_times()
        assert statistics.mean(ft) * 1e3 == pytest.approx(49.8, rel=0.03)

    def test_nearly_constant(self, campaign):
        """Paper: 'low and nearly constant'."""
        ft = np.asarray(campaign.finding_times())
        assert ft.std() / ft.mean() < 0.10


class TestE5Latency:
    def test_first_wave_is_milliseconds(self, campaign):
        lat = sorted(campaign.latencies())
        assert lat[0] < 0.5   # transfer + initiation only

    def test_grows_by_orders_of_magnitude(self, campaign):
        """Paper: latency 'grows rapidly' (log-scale plot): queueing."""
        lat = campaign.latencies()
        assert max(lat) / min(lat) > 1e4
        assert max(lat) > 10 * 3600   # last wave waits ~9 solves

    def test_latency_wave_structure(self, campaign):
        """Latencies cluster into ~9-10 waves of ~11 requests."""
        lat = np.sort(campaign.latencies())
        first_wave = np.sum(lat < 60.0)
        assert 10 <= first_wave <= 12


class TestE6Overhead:
    def test_per_request_overhead(self, campaign):
        """Paper: ~70.6 ms per simulation (finding + initiation)."""
        per = statistics.mean(campaign.overhead_per_request) * 1e3
        assert per == pytest.approx(70.6, rel=0.05)

    def test_total_overhead_seconds(self, campaign):
        """Paper: ~7 s for the 101 simulations."""
        total = statistics.mean(campaign.overhead_per_request) * 101
        assert total == pytest.approx(7.0, rel=0.1)

    def test_negligible_fraction(self, campaign):
        total = statistics.mean(campaign.overhead_per_request) * 101
        assert total / campaign.sequential_estimate < 1e-4


class TestE7PluginScheduler:
    @pytest.fixture(scope="class")
    def ablation(self):
        return ablation_scheduler.run(
            policies=(("default", False), ("mct", True)))

    def test_mct_improves_makespan(self, ablation):
        """The paper's prediction: 'a better makespan could be attained by
        writing a plug-in scheduler'."""
        gain = ablation.improvement_over_default("mct")
        assert gain > 0.05

    def test_mct_balances_busy_time(self, ablation):
        assert (ablation.busy_spread("mct")
                < ablation.busy_spread("default"))

    def test_mct_gives_fast_seds_more_work(self, ablation):
        counts = ablation.campaigns["mct"].requests_per_sed()
        by_cluster = {}
        for sed, n in counts.items():
            cl = ablation.campaigns["mct"].deployment.cluster_of_sed(sed)
            by_cluster.setdefault(cl, []).append(n)
        assert max(by_cluster["nancy-grillon"]) >= max(
            by_cluster["toulouse-violette"])
