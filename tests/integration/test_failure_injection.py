"""Failure-injection integration tests: the middleware under adversity."""

import pytest

from repro.core import (
    BaseType,
    ProfileDesc,
    ServerNotFoundError,
    deploy_paper_hierarchy,
    scalar_desc,
)
from repro.platform import build_grid5000
from repro.sim import Engine


def toy_desc(name="toy"):
    desc = ProfileDesc(name, 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT))
    return desc


def solve_ok(profile, ctx):
    yield from ctx.execute(1.0)
    profile.parameter(1).set(1)
    return 0


def fresh_profile(desc, value=1):
    profile = desc.instantiate()
    profile.parameter(0).set(value)
    profile.parameter(1).set(None)
    return profile


@pytest.fixture
def deployment():
    dep = deploy_paper_hierarchy(build_grid5000(Engine()))
    return dep


class TestDeadSeDs:
    def test_requests_rerouted_around_dead_seds(self, deployment):
        desc = toy_desc()
        for sed in deployment.seds:
            sed.add_service(desc, solve_ok)
        deployment.launch_all()
        # kill 3 of the 11 SeDs after launch
        dead = {s.name for s in deployment.seds[:3]}
        for name in dead:
            deployment.fabric.unbind(name)

        client = deployment.client
        served_by = []

        def run():
            client.initialize({"MA_name": "MA"})
            for i in range(16):
                profile = fresh_profile(desc, i)
                handle = client.function_handle("toy")
                status = yield from client.call(profile, handle)
                assert status == 0
                served_by.append(handle.server)

        deployment.engine.run_process(run())
        assert not (set(served_by) & dead)
        assert len(set(served_by)) == 8     # all survivors used

    def test_all_seds_dead_raises(self, deployment):
        desc = toy_desc()
        for sed in deployment.seds:
            sed.add_service(desc, solve_ok)
        deployment.launch_all()
        for sed in deployment.seds:
            deployment.fabric.unbind(sed.name)

        client = deployment.client

        def run():
            client.initialize({"MA_name": "MA"})
            yield from client.call(fresh_profile(desc))

        with pytest.raises(ServerNotFoundError):
            deployment.engine.run_process(run())


class TestPartialServiceAvailability:
    def test_only_capable_seds_chosen(self, deployment):
        """Register the service on a subset; MA must only pick those."""
        desc = toy_desc()
        capable = deployment.seds[4:8]
        for sed in capable:
            sed.add_service(desc, solve_ok)
        # the rest serve something else so they can launch
        other = toy_desc("other")
        for sed in deployment.seds[:4] + deployment.seds[8:]:
            sed.add_service(other, solve_ok)
        deployment.launch_all()

        client = deployment.client
        served_by = set()

        def run():
            client.initialize({"MA_name": "MA"})
            for i in range(8):
                handle = client.function_handle("toy")
                status = yield from client.call(fresh_profile(desc, i), handle)
                assert status == 0
                served_by.add(handle.server)

        deployment.engine.run_process(run())
        assert served_by == {s.name for s in capable}


class TestApplicationFailures:
    def test_failing_solve_reports_nonzero_status(self, deployment):
        desc = toy_desc()

        def solve_crash(profile, ctx):
            yield from ctx.execute(0.5)
            raise RuntimeError("RAMSES segfault")

        for sed in deployment.seds:
            sed.add_service(desc, solve_crash)
        deployment.launch_all()

        client = deployment.client

        def run():
            client.initialize({"MA_name": "MA"})
            status = yield from client.call(fresh_profile(desc))
            return status

        assert deployment.engine.run_process(run()) == 1

    def test_failed_job_frees_the_slot(self, deployment):
        """A crash must not wedge the SeD's job slot."""
        desc = toy_desc()
        calls = {"n": 0}

        def solve_flaky(profile, ctx):
            yield from ctx.execute(0.5)
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first call dies")
            profile.parameter(1).set(99)
            return 0

        sed = deployment.seds[0]
        sed.add_service(desc, solve_flaky)
        other = toy_desc("other")
        for s in deployment.seds[1:]:
            s.add_service(other, solve_ok)
        deployment.launch_all()

        client = deployment.client

        def run():
            client.initialize({"MA_name": "MA"})
            first = yield from client.call(fresh_profile(desc))
            second_profile = fresh_profile(desc)
            second = yield from client.call(second_profile)
            return first, second, second_profile.parameter(1).get()

        first, second, value = deployment.engine.run_process(run())
        assert first == 1 and second == 0 and value == 99
        assert sed.job_slots.count == 0


class TestSlowSeDs:
    def test_agent_timeout_skips_unresponsive_child(self):
        """An estimate that never returns must not hang scheduling forever:
        the agent's child timeout prunes it."""
        from repro.core import AgentParams, FaultInjectionInterceptor

        engine = Engine()
        platform = build_grid5000(engine)
        dep = deploy_paper_hierarchy(
            platform, agent_params=AgentParams(child_timeout=2.0))
        desc = toy_desc()
        for sed in dep.seds:
            sed.add_service(desc, solve_ok)
        dep.launch_all()
        # stall one SeD's estimate path via fault injection (the handler
        # itself is untouched — the message just never reaches it in time)
        stalled = dep.seds[0]
        stalled.endpoint.pipeline.add(FaultInjectionInterceptor(
            delay=1e9, ops=("estimate",), phases=("deliver",)))

        client = dep.client

        def run():
            client.initialize({"MA_name": "MA"})
            handle = client.function_handle("toy")
            status = yield from client.call(fresh_profile(desc), handle)
            return status, handle.server

        status, server = engine.run_process(run(), until=1e8)
        assert status == 0
        assert server != stalled.name


class TestLostEstimates:
    """A dropped estimate request against the agents' retry policy."""

    def _deploy(self, retries):
        from repro.core import AgentParams, FaultInjectionInterceptor

        engine = Engine()
        dep = deploy_paper_hierarchy(
            build_grid5000(engine),
            agent_params=AgentParams(child_timeout=2.0,
                                     child_retries=retries))
        desc = toy_desc()
        # only one SeD knows the service; losing its estimate loses the call
        target = dep.seds[0]
        target.add_service(desc, solve_ok)
        other = toy_desc("other")
        for sed in dep.seds[1:]:
            sed.add_service(other, solve_ok)
        dep.launch_all()
        fault = target.endpoint.pipeline.add(
            FaultInjectionInterceptor(ops=("estimate",), phases=("deliver",)))
        fault.drop_next(1)
        return engine, dep, desc, target, fault

    def test_retry_recovers_dropped_estimate(self):
        engine, dep, desc, target, fault = self._deploy(retries=1)
        client = dep.client

        def run():
            client.initialize({"MA_name": "MA"})
            handle = client.function_handle("toy")
            status = yield from client.call(fresh_profile(desc), handle)
            return status, handle.server

        status, server = engine.run_process(run(), until=1e8)
        assert status == 0
        assert server == target.name
        assert fault.dropped == 1

    def test_without_retry_the_request_fails(self):
        engine, dep, desc, target, fault = self._deploy(retries=0)
        client = dep.client

        def run():
            client.initialize({"MA_name": "MA"})
            yield from client.call(fresh_profile(desc))

        with pytest.raises(ServerNotFoundError):
            engine.run_process(run(), until=1e8)
        assert fault.dropped == 1
