"""Sedov-Taylor blast wave: the hydro solver's self-similar scaling check.

A point energy release in a cold uniform medium drives a spherical shock
with R(t) ~ (E t^2 / rho)^(1/5).  After the initialization transient (the
injection region has finite size), successive shock radii must follow the
t^(2/5) law; the shock shell must stay spherical.
"""

import numpy as np
import pytest

from repro.ramses.hydro import HydroSolver, HydroState


@pytest.fixture(scope="module")
def blast():
    n = 48
    rho = np.ones((n, n, n))
    p = np.full((n, n, n), 1e-5)
    c = n // 2
    p[c - 1:c + 1, c - 1:c + 1, c - 1:c + 1] = 100.0
    state = HydroState.from_primitive(rho, np.zeros((n, n, n, 3)), p)
    solver = HydroSolver(cfl=0.4)

    x = (np.arange(n) + 0.5) / n
    X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
    r = np.sqrt((X - 0.5) ** 2 + (Y - 0.5) ** 2 + (Z - 0.5) ** 2)

    def shock_radius(s):
        mask = s.rho > 1.2
        return float(r[mask].max()) if mask.any() else 0.0

    radii = {}
    t_cur = 0.0
    for t in (0.05, 0.1):
        solver.run(state, t - t_cur)
        t_cur = t
        radii[t] = shock_radius(state)
    return state, r, radii


class TestSedov:
    def test_shock_expands(self, blast):
        _, _, radii = blast
        assert 0 < radii[0.05] < radii[0.1] < 0.5

    def test_sedov_taylor_scaling(self, blast):
        """R(t2)/R(t1) == (t2/t1)^(2/5) past the transient."""
        _, _, radii = blast
        measured = radii[0.1] / radii[0.05]
        expected = (0.1 / 0.05) ** 0.4
        assert measured == pytest.approx(expected, rel=0.08)

    def test_shell_is_spherical(self, blast):
        state, r, _ = blast
        mask = state.rho > 1.2
        shell_r = r[mask]
        # octant symmetry: mean radius identical under axis flips
        assert (shell_r.max() - shell_r.min()) / shell_r.mean() < 0.6
        com = np.array([r_ax[mask].mean() for r_ax in
                        np.meshgrid(*( [ (np.arange(48)+0.5)/48 ]*3 ),
                                    indexing="ij")])
        assert np.allclose(com, 0.5, atol=0.02)

    def test_interior_evacuated(self, blast):
        """Sedov blasts sweep mass into the shell: centre density drops."""
        state, r, _ = blast
        centre = state.rho[22:26, 22:26, 22:26].mean()
        assert centre < 0.9
